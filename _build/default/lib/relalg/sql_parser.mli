(** Parser for the SQL dialect emitted by {!Sql_print}, back into logical
    query trees.

    The parser needs the catalog to recognize base-table scans ([Get]) and
    to collapse identity projections, so that
    [parse cat (Sql_print.to_sql cat t)] returns a tree structurally equal
    to [t] for every valid [t] (round-trip property, tested). *)

val parse : Storage.Catalog.t -> string -> (Logical.t, string) result
