examples/rule_coverage.mli:
