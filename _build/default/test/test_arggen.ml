(* Argument-selection unit tests: FK-biased join predicates, set-operation
   alignment, data-driven constants, wrapper validity. *)
open Storage
open Relalg
module L = Logical
module S = Scalar

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let tpch = Datagen.tpch ~scale:0.001 ()
let micro = Datagen.micro ()
let ctx_of ?(seed = 5) cat = { Core.Arggen.g = Prng.create seed; cat }

let test_fresh_get () =
  let ctx = ctx_of tpch in
  let g1 = Core.Arggen.fresh_get ctx and g2 = Core.Arggen.fresh_get ctx in
  match (g1, g2) with
  | L.Get a, L.Get b ->
    check bool_t "aliases distinct" true (a.alias <> b.alias);
    check bool_t "tables exist" true
      (Catalog.mem tpch a.table && Catalog.mem tpch b.table)
  | _ -> Alcotest.fail "fresh_get must return scans"

let test_join_pred_uses_fk () =
  (* Over many seeds, nation-region joins must predominantly use the FK
     columns: that bias keeps key-dependent rule preconditions reachable. *)
  let fk_hits = ref 0 and total = 30 in
  for seed = 1 to total do
    let ctx = ctx_of ~seed tpch in
    let nation = L.Get { table = "nation"; alias = "n" } in
    let region = L.Get { table = "region"; alias = "r" } in
    match Core.Arggen.join_pred ctx ~left:nation ~right:region with
    | None -> ()
    | Some pred ->
      let cols = S.columns pred in
      if
        Ident.Set.mem (Ident.make "n" "n_regionkey") cols
        && Ident.Set.mem (Ident.make "r" "r_regionkey") cols
      then incr fk_hits
  done;
  check bool_t
    (Printf.sprintf "FK pair dominates (%d/%d)" !fk_hits total)
    true
    (!fk_hits > total / 2)

let test_join_pred_respects_projection () =
  (* FK columns dropped by a projection must not be referenced. *)
  let ctx = ctx_of tpch in
  let nation = L.Get { table = "nation"; alias = "n" } in
  let name_only =
    L.Project
      { cols = [ (Ident.make "n" "n_name", S.Col (Ident.make "n" "n_name")) ];
        child = nation }
  in
  let region = L.Get { table = "region"; alias = "r" } in
  for _ = 1 to 20 do
    match Core.Arggen.join_pred ctx ~left:name_only ~right:region with
    | None -> ()
    | Some pred ->
      check bool_t "no dropped columns" false
        (Ident.Set.mem (Ident.make "n" "n_regionkey") (S.columns pred))
  done

let test_add_setop_alignment () =
  let ctx = ctx_of micro in
  let t1 = L.Get { table = "t1"; alias = "x" } in
  let t2 = L.Get { table = "t2"; alias = "y" } in
  (* t1(int,int,string) vs t2(int,int): alignment must project one side. *)
  match Core.Arggen.add_setop ctx L.KUnionAll t1 t2 with
  | None -> Alcotest.fail "alignment should succeed"
  | Some tree ->
    check bool_t "valid" true (Result.is_ok (Props.validate micro tree));
    (match Props.schema micro tree with
    | Ok cols -> check int_t "aligned to common arity" 2 (List.length cols)
    | Error e -> Alcotest.fail e)

let test_add_setop_identical_children_unwrapped () =
  let ctx = ctx_of micro in
  let t1 = L.Get { table = "t1"; alias = "x" } in
  let t1' = Core.Arggen.refresh_labels t1 in
  match Core.Arggen.add_setop ctx L.KUnionAll t1 t1' with
  | Some (L.UnionAll (L.Get _, L.Get _)) -> ()
  | Some other ->
    Alcotest.failf "expected bare scans under the union, got:\n%s"
      (L.to_string other)
  | None -> Alcotest.fail "alignment failed"

let test_wrappers_valid () =
  let ctx = ctx_of tpch in
  for _ = 1 to 40 do
    let base = Core.Arggen.fresh_get ctx in
    List.iter
      (fun wrap ->
        match wrap ctx base with
        | None -> ()
        | Some t ->
          (match Props.validate tpch t with
          | Ok () -> ()
          | Error e -> Alcotest.failf "invalid wrapper output: %s\n%s" e (L.to_string t)))
      [ Core.Arggen.add_filter; Core.Arggen.add_project; Core.Arggen.add_groupby; Core.Arggen.add_sort ]
  done

let test_join_kinds_valid () =
  let ctx = ctx_of tpch in
  List.iter
    (fun kind ->
      let l = Core.Arggen.fresh_get ctx and r = Core.Arggen.fresh_get ctx in
      match Core.Arggen.add_join ctx kind l r with
      | None -> ()
      | Some t ->
        check bool_t (L.kind_name (L.KJoin kind) ^ " valid") true
          (Result.is_ok (Props.validate tpch t)))
    [ L.Inner; L.Cross; L.LeftOuter; L.RightOuter; L.FullOuter; L.Semi; L.AntiSemi ]

let test_constants_from_data () =
  (* Sampled predicate constants should usually select non-empty results:
     check that a filter over a base table is non-vacuous reasonably often. *)
  let non_empty = ref 0 and total = 20 in
  for seed = 1 to total do
    let ctx = ctx_of ~seed micro in
    let t1 = L.Get { table = "t1"; alias = "x" } in
    match Core.Arggen.add_filter ctx t1 with
    | None -> ()
    | Some t -> (
      match Executor.Exec.run_logical micro t with
      | Ok res -> if Executor.Resultset.row_count res > 0 then incr non_empty
      | Error _ -> ())
  done;
  check bool_t
    (Printf.sprintf "mostly non-vacuous filters (%d/%d)" !non_empty total)
    true
    (!non_empty >= total / 2)

let suite =
  [ ( "core.arggen",
      [ Alcotest.test_case "fresh scans" `Quick test_fresh_get;
        Alcotest.test_case "FK-biased join predicates" `Quick test_join_pred_uses_fk;
        Alcotest.test_case "projection-aware join predicates" `Quick
          test_join_pred_respects_projection;
        Alcotest.test_case "set-op alignment" `Quick test_add_setop_alignment;
        Alcotest.test_case "identity alignment unwrapped" `Quick
          test_add_setop_identical_children_unwrapped;
        Alcotest.test_case "wrappers produce valid trees" `Quick test_wrappers_valid;
        Alcotest.test_case "all join kinds" `Quick test_join_kinds_valid;
        Alcotest.test_case "constants sampled from data" `Slow
          test_constants_from_data ] ) ]
