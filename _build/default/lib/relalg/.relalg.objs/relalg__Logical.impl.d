lib/relalg/logical.ml: Aggregate Format Hashtbl Ident List Printf Scalar Stdlib String
