lib/storage/table.ml: Array Datatype Format Printf Schema Stats String Value
