lib/core/query_gen.mli: Arggen Framework Optimizer Relalg Storage
