(** Physical plan execution over the in-memory catalog.

    Faithful SQL semantics where it matters for rule-correctness testing:
    three-valued predicate logic, NULL-key behaviour of hash and merge
    joins, outer-join padding, NULL-skipping aggregates, a fabricated row
    for global aggregation over empty input, and null-safe set
    operations.

    Two paths share one relational core ({!Relops}): {!run} compiles the
    plan once ({!Compile}) and executes closures, {!run_interpreted}
    walks expression ASTs per row — the reference the compiled path is
    differentially tested and benchmarked against. *)

val run :
  ?pool:Par.Pool.t ->
  ?morsel_rows:int ->
  Storage.Catalog.t ->
  Optimizer.Physical.t ->
  (Resultset.t, string) result
(** Compile then execute, bottom-up and materializing, via the columnar
    batch path ({!Batch}). Fails (rather than raising) on unknown
    tables/columns, arity mismatches — reported at compile time, before
    any row is produced — and on row-time type errors. [pool] schedules
    morsels across domains (default sequential; results byte-identical
    either way). When metrics are enabled, records
    [executor.compile_ns], [executor.exec_ns], [executor.rows], and
    [executor.rows_per_sec]. *)

val run_rowwise :
  Storage.Catalog.t -> Optimizer.Physical.t -> (Resultset.t, string) result
(** The row-at-a-time compiled-closure path ({!Compile}) — the batch
    path's differential reference and benchmark baseline. Same
    observable results and errors as {!run}. *)

val run_interpreted :
  Storage.Catalog.t -> Optimizer.Physical.t -> (Resultset.t, string) result
(** Row-at-a-time interpreter (hashtable column lookups, per-row AST
    walks). Same observable results as {!run}, except that unknown
    columns only fail when a row actually evaluates them. *)

val run_logical :
  ?options:Optimizer.Engine.options ->
  Storage.Catalog.t ->
  Relalg.Logical.t ->
  (Resultset.t, string) result
(** Convenience: optimize then execute. *)
