(** In-process span profiler.

    A {!Trace} consumer that aggregates the same [with_span]
    instrumentation the Chrome-trace sink renders, producing per-name
    and per-domain self/total-time statistics plus a folded-stacks
    export — without writing a trace file. Overhead per span is a stack
    push/pop and a couple of hashtable updates on the emitting domain
    (no locks, no I/O), so profiling a parallel campaign costs a few
    percent at most.

    Semantics:
    - {b total} time of a span name is the sum of wall durations of all
      its spans (a recursive span is counted once per nesting level, the
      usual flat-profile caveat);
    - {b self} time is total minus time spent in {e direct child} spans,
      so across all names Σself = wall time covered by instrumented
      spans at the top level;
    - p50/p95 come from power-of-two duration buckets (same scheme as
      {!Metrics} histograms): exact counts, quantile values accurate to
      the bucket's geometric midpoint and clamped to observed min/max.

    State is per-domain and merged at snapshot time. Take snapshots at
    quiescence — [Par.Pool] joins every helper domain before returning,
    so any point between parallel phases is safe. *)

val enable : unit -> unit
(** Install the profiler consumer (resetting previous data). Idempotent. *)

val disable : unit -> unit
(** Remove the consumer; accumulated data stays readable. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all accumulated data (all domains). *)

type row = {
  name : string;
  count : int;
  total_ns : float;
  self_ns : float;
  min_ns : float;
  max_ns : float;
  p50_ns : float;
  p95_ns : float;
}

val rows : unit -> row list
(** Merged over all domains, sorted by self time descending. *)

val rows_by_domain : unit -> (int * row list) list
(** Per emitting domain (trace [tid]), ascending domain id. *)

val folded : unit -> (string * float) list
(** Folded call stacks: [("a;b;c", self_ns)] per distinct span path,
    sorted by path — the input format of flamegraph tooling. *)

val unmatched : unit -> int
(** End events dropped because their begin predates the profiler. *)

val write_folded : out_channel -> unit
(** Emit folded stacks, one ["path self_us"] line each (microseconds,
    rounded — flamegraph.pl wants integers). *)

val to_json : unit -> Json.t
(** [{spans; by_domain; folded; unmatched}] projection of the same
    data. *)

val pp : Format.formatter -> unit -> unit
(** Text table: span, count, self/total ms, self%%, p50/p95 us. *)
