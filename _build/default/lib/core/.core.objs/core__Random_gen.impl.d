lib/core/random_gen.ml: Arggen Prng Storage
