let col = Schema.column

let region_schema =
  Schema.make "region" ~primary_key:[ "r_regionkey" ]
    [ col "r_regionkey" TInt;
      col "r_name" TString;
      col ~nullable:true "r_comment" TString ]

let nation_schema =
  Schema.make "nation" ~primary_key:[ "n_nationkey" ]
    ~foreign_keys:
      [ { fk_columns = [ "n_regionkey" ];
          fk_table = "region";
          fk_ref_columns = [ "r_regionkey" ] } ]
    [ col "n_nationkey" TInt;
      col "n_name" TString;
      col "n_regionkey" TInt;
      col ~nullable:true "n_comment" TString ]

let supplier_schema =
  Schema.make "supplier" ~primary_key:[ "s_suppkey" ]
    ~foreign_keys:
      [ { fk_columns = [ "s_nationkey" ];
          fk_table = "nation";
          fk_ref_columns = [ "n_nationkey" ] } ]
    [ col "s_suppkey" TInt;
      col "s_name" TString;
      col "s_address" TString;
      col "s_nationkey" TInt;
      col "s_phone" TString;
      col "s_acctbal" TFloat;
      col ~nullable:true "s_comment" TString ]

let part_schema =
  Schema.make "part" ~primary_key:[ "p_partkey" ]
    [ col "p_partkey" TInt;
      col "p_name" TString;
      col "p_mfgr" TString;
      col "p_brand" TString;
      col "p_type" TString;
      col "p_size" TInt;
      col "p_container" TString;
      col "p_retailprice" TFloat;
      col ~nullable:true "p_comment" TString ]

let partsupp_schema =
  Schema.make "partsupp" ~primary_key:[ "ps_partkey"; "ps_suppkey" ]
    ~foreign_keys:
      [ { fk_columns = [ "ps_partkey" ];
          fk_table = "part";
          fk_ref_columns = [ "p_partkey" ] };
        { fk_columns = [ "ps_suppkey" ];
          fk_table = "supplier";
          fk_ref_columns = [ "s_suppkey" ] } ]
    [ col "ps_partkey" TInt;
      col "ps_suppkey" TInt;
      col "ps_availqty" TInt;
      col "ps_supplycost" TFloat;
      col ~nullable:true "ps_comment" TString ]

let customer_schema =
  Schema.make "customer" ~primary_key:[ "c_custkey" ]
    ~foreign_keys:
      [ { fk_columns = [ "c_nationkey" ];
          fk_table = "nation";
          fk_ref_columns = [ "n_nationkey" ] } ]
    [ col "c_custkey" TInt;
      col "c_name" TString;
      col "c_address" TString;
      col "c_nationkey" TInt;
      col "c_phone" TString;
      col "c_acctbal" TFloat;
      col "c_mktsegment" TString;
      col ~nullable:true "c_comment" TString ]

let orders_schema =
  Schema.make "orders" ~primary_key:[ "o_orderkey" ]
    ~foreign_keys:
      [ { fk_columns = [ "o_custkey" ];
          fk_table = "customer";
          fk_ref_columns = [ "c_custkey" ] } ]
    [ col "o_orderkey" TInt;
      col "o_custkey" TInt;
      col "o_orderstatus" TString;
      col "o_totalprice" TFloat;
      col "o_orderdate" TDate;
      col "o_orderpriority" TString;
      col "o_clerk" TString;
      col "o_shippriority" TInt;
      col ~nullable:true "o_comment" TString ]

let lineitem_schema =
  Schema.make "lineitem" ~primary_key:[ "l_orderkey"; "l_linenumber" ]
    ~foreign_keys:
      [ { fk_columns = [ "l_orderkey" ];
          fk_table = "orders";
          fk_ref_columns = [ "o_orderkey" ] };
        { fk_columns = [ "l_partkey" ];
          fk_table = "part";
          fk_ref_columns = [ "p_partkey" ] };
        { fk_columns = [ "l_suppkey" ];
          fk_table = "supplier";
          fk_ref_columns = [ "s_suppkey" ] } ]
    [ col "l_orderkey" TInt;
      col "l_partkey" TInt;
      col "l_suppkey" TInt;
      col "l_linenumber" TInt;
      col "l_quantity" TInt;
      col "l_extendedprice" TFloat;
      col "l_discount" TFloat;
      col "l_tax" TFloat;
      col "l_returnflag" TString;
      col "l_linestatus" TString;
      col "l_shipdate" TDate;
      col "l_commitdate" TDate;
      col "l_receiptdate" TDate;
      col "l_shipinstruct" TString;
      col "l_shipmode" TString;
      col ~nullable:true "l_comment" TString ]

let tpch_schemas =
  [ region_schema; nation_schema; supplier_schema; part_schema;
    partsupp_schema; customer_schema; orders_schema; lineitem_schema ]

(* Word pools, loosely after the TPC-H grammar. *)
let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [| "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA"; "FRANCE";
     "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN"; "JORDAN";
     "KENYA"; "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA";
     "SAUDI ARABIA"; "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES" |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let ship_modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]
let ship_instructs = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]
let containers = [| "SM CASE"; "LG BOX"; "MED BAG"; "JUMBO JAR"; "WRAP PKG" |]
let type_words = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let metal_words = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]
let noise_words =
  [| "furiously"; "quickly"; "carefully"; "blithely"; "slyly"; "ironic";
     "regular"; "express"; "final"; "pending"; "bold"; "even"; "silent" |]

let comment g =
  (* ~6% NULLs so outer joins and 3VL predicates see missing data. *)
  if Prng.chance g 0.06 then Value.Null
  else
    let n = Prng.int_in g 2 5 in
    let words = List.init n (fun _ -> Prng.pick_arr g noise_words) in
    Value.Str (String.concat " " words)

let phone g =
  Value.Str
    (Printf.sprintf "%d-%03d-%03d-%04d" (Prng.int_in g 10 34) (Prng.int g 1000)
       (Prng.int g 1000) (Prng.int g 10000))

let money g lo hi = Value.Float (float_of_int (Prng.int_in g (lo * 100) (hi * 100)) /. 100.0)

let scaled scale base = max 2 (int_of_float (float_of_int base *. scale))

let date_lo = Value.date_of_ymd 1992 1 1
let date_hi = Value.date_of_ymd 1998 8 2

let tpch ?(seed = 2009) ~scale () =
  if scale <= 0.0 then invalid_arg "Datagen.tpch: scale must be positive";
  let g = Prng.create seed in
  let n_supplier = scaled scale 10_000 in
  let n_part = scaled scale 20_000 in
  let n_customer = scaled scale 15_000 in
  let n_orders = scaled scale 150_000 in
  let region =
    Array.init 5 (fun i ->
        [| Value.Int i; Value.Str region_names.(i); comment g |])
  in
  let nation =
    Array.init 25 (fun i ->
        [| Value.Int i; Value.Str nation_names.(i); Value.Int (i mod 5); comment g |])
  in
  let supplier =
    Array.init n_supplier (fun i ->
        [| Value.Int (i + 1);
           Value.Str (Printf.sprintf "Supplier#%09d" (i + 1));
           Value.Str (Printf.sprintf "addr %d %s" (Prng.int g 1000) (Prng.pick_arr g noise_words));
           Value.Int (Prng.int g 25);
           phone g;
           money g (-900) 9900;
           comment g |])
  in
  let part =
    Array.init n_part (fun i ->
        let ty =
          Printf.sprintf "%s %s" (Prng.pick_arr g type_words) (Prng.pick_arr g metal_words)
        in
        [| Value.Int (i + 1);
           Value.Str (Printf.sprintf "%s %s part" (Prng.pick_arr g noise_words) (Prng.pick_arr g metal_words));
           Value.Str (Printf.sprintf "Manufacturer#%d" (1 + Prng.int g 5));
           Value.Str (Printf.sprintf "Brand#%d%d" (1 + Prng.int g 5) (1 + Prng.int g 5));
           Value.Str ty;
           Value.Int (Prng.int_in g 1 50);
           Value.Str (Prng.pick_arr g containers);
           money g 900 2000;
           comment g |])
  in
  let partsupp =
    (* 4 suppliers per part, TPC-H style. *)
    let rows = ref [] in
    for p = 1 to n_part do
      for k = 0 to 3 do
        let s = 1 + ((p + k * ((n_supplier / 4) + 1)) mod n_supplier) in
        rows :=
          [| Value.Int p; Value.Int s;
             Value.Int (Prng.int_in g 1 9999);
             money g 1 1000;
             comment g |]
          :: !rows
      done
    done;
    Array.of_list (List.rev !rows)
  in
  let customer =
    Array.init n_customer (fun i ->
        [| Value.Int (i + 1);
           Value.Str (Printf.sprintf "Customer#%09d" (i + 1));
           Value.Str (Printf.sprintf "addr %d %s" (Prng.int g 1000) (Prng.pick_arr g noise_words));
           Value.Int (Prng.int g 25);
           phone g;
           money g (-900) 9900;
           Value.Str (Prng.pick_arr g segments);
           comment g |])
  in
  let orders =
    Array.init n_orders (fun i ->
        [| Value.Int (i + 1);
           Value.Int (1 + Prng.int g n_customer);
           Value.Str (Prng.pick g [ "O"; "F"; "P" ]);
           money g 800 50000;
           Value.Date (Prng.int_in g date_lo date_hi);
           Value.Str (Prng.pick_arr g priorities);
           Value.Str (Printf.sprintf "Clerk#%09d" (1 + Prng.int g 1000));
           Value.Int 0;
           comment g |])
  in
  let lineitem =
    let rows = ref [] in
    Array.iter
      (fun order ->
        let okey = order.(0) in
        let odate = match order.(4) with Value.Date d -> d | _ -> date_lo in
        let nlines = Prng.int_in g 1 7 in
        for ln = 1 to nlines do
          let ship = odate + Prng.int_in g 1 121 in
          let commit = odate + Prng.int_in g 30 90 in
          let receipt = ship + Prng.int_in g 1 30 in
          rows :=
            [| okey;
               Value.Int (1 + Prng.int g n_part);
               Value.Int (1 + Prng.int g n_supplier);
               Value.Int ln;
               Value.Int (Prng.int_in g 1 50);
               money g 900 100000;
               Value.Float (float_of_int (Prng.int g 11) /. 100.0);
               Value.Float (float_of_int (Prng.int g 9) /. 100.0);
               Value.Str (Prng.pick g [ "R"; "A"; "N" ]);
               Value.Str (Prng.pick g [ "O"; "F" ]);
               Value.Date ship;
               Value.Date commit;
               Value.Date receipt;
               Value.Str (Prng.pick_arr g ship_instructs);
               Value.Str (Prng.pick_arr g ship_modes);
               comment g |]
            :: !rows
        done)
      orders;
    Array.of_list (List.rev !rows)
  in
  Catalog.of_tables
    [ Table.create region_schema region;
      Table.create nation_schema nation;
      Table.create supplier_schema supplier;
      Table.create part_schema part;
      Table.create partsupp_schema partsupp;
      Table.create customer_schema customer;
      Table.create orders_schema orders;
      Table.create lineitem_schema lineitem ]

let micro ?(seed = 7) () =
  let g = Prng.create seed in
  let t1 =
    Schema.make "t1" ~primary_key:[ "a" ]
      [ col "a" TInt; col ~nullable:true "b" TInt; col "c" TString ]
  in
  let t2 =
    Schema.make "t2" ~primary_key:[ "d" ]
      [ col "d" TInt; col ~nullable:true "e" TInt ]
  in
  let t3 = Schema.make "t3" [ col ~nullable:true "f" TInt; col "g" TString ] in
  let words = [| "x"; "y"; "z"; "w" |] in
  let opt_int g bound = if Prng.chance g 0.15 then Value.Null else Value.Int (Prng.int g bound) in
  let rows1 =
    Array.init 30 (fun i ->
        [| Value.Int i; opt_int g 10; Value.Str (Prng.pick_arr g words) |])
  in
  let rows2 = Array.init 20 (fun i -> [| Value.Int i; opt_int g 10 |]) in
  let rows3 =
    Array.init 25 (fun _ -> [| opt_int g 10; Value.Str (Prng.pick_arr g words) |])
  in
  Catalog.of_tables
    [ Table.create t1 rows1; Table.create t2 rows2; Table.create t3 rows3 ]
