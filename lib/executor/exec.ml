open Storage
module P = Optimizer.Physical
module L = Relalg.Logical
module A = Relalg.Aggregate
module Ident = Relalg.Ident

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

module RowTbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b = Resultset.compare_rows a b = 0
  let hash row = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 row
end)

let make_env (cols : Ident.t array) =
  let index : (Ident.t, int) Hashtbl.t = Hashtbl.create (Array.length cols) in
  Array.iteri (fun i c -> Hashtbl.replace index c i) cols;
  fun (row : Value.t array) (id : Ident.t) ->
    match Hashtbl.find_opt index id with
    | Some i -> row.(i)
    | None -> fail "unknown column %s" (Ident.to_sql id)

let key_indices (cols : Ident.t array) keys =
  let find k =
    let rec go i =
      if i = Array.length cols then fail "unknown key column %s" (Ident.to_sql k)
      else if Ident.equal cols.(i) k then i
      else go (i + 1)
    in
    go 0
  in
  Array.of_list (List.map find keys)

let extract_key idx row = Array.map (fun i -> row.(i)) idx
let key_has_null key = Array.exists Value.is_null key
let nulls n = Array.make n Value.Null

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let compute_agg env rows (agg : A.t) : Value.t =
  let non_null e =
    List.filter_map
      (fun row ->
        let v = Eval.scalar (env row) e in
        if Value.is_null v then None else Some v)
      rows
  in
  match agg with
  | A.CountStar -> Value.Int (List.length rows)
  | A.Count e -> Value.Int (List.length (non_null e))
  | A.Sum e -> (
    match non_null e with
    | [] -> Value.Null
    | v :: vs -> List.fold_left Value.add v vs)
  | A.Min e -> (
    match non_null e with
    | [] -> Value.Null
    | v :: vs ->
      List.fold_left (fun a b -> if Value.compare_total b a < 0 then b else a) v vs)
  | A.Max e -> (
    match non_null e with
    | [] -> Value.Null
    | v :: vs ->
      List.fold_left (fun a b -> if Value.compare_total b a > 0 then b else a) v vs)
  | A.Avg e -> (
    match non_null e with
    | [] -> Value.Null
    | vs ->
      let total =
        List.fold_left
          (fun acc v ->
            match v with
            | Value.Int x -> acc +. float_of_int x
            | Value.Float x -> acc +. x
            | _ -> fail "AVG over non-numeric value")
          0.0 vs
      in
      Value.Float (total /. float_of_int (List.length vs)))

(* Output of grouped aggregation: one row per group, keys then aggregates.
   With no keys, exactly one (possibly empty-input) global group exists. *)
let grouped_output (input : Resultset.t) keys aggs
    (groups : (Value.t array * Value.t array list) list) : Resultset.t =
  let env = make_env input.cols in
  let rows =
    List.map
      (fun (key, members) ->
        let agg_values = List.map (fun (_, a) -> compute_agg env members a) aggs in
        Array.append key (Array.of_list agg_values))
      groups
  in
  let cols = Array.of_list (keys @ List.map fst aggs) in
  { Resultset.cols; rows }

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

(* Shared join finalization: [match_lists.(li)] holds the indices of right
   rows fully matching left row [li]. *)
let join_output (kind : L.join_kind) (left : Resultset.t) (right : Resultset.t)
    (match_lists : int list array) : Resultset.t =
  let larr = Array.of_list left.rows in
  let rarr = Array.of_list right.rows in
  let right_matched = Array.make (Array.length rarr) false in
  let out = ref [] in
  let emit row = out := row :: !out in
  let combine li ri = Array.append larr.(li) rarr.(ri) in
  let right_arity = Array.length right.cols in
  let left_arity = Array.length left.cols in
  Array.iteri
    (fun li ms ->
      match kind with
      | L.Semi -> if ms <> [] then emit larr.(li)
      | L.AntiSemi -> if ms = [] then emit larr.(li)
      | L.Inner | L.Cross -> List.iter (fun ri -> emit (combine li ri)) ms
      | L.LeftOuter ->
        if ms = [] then emit (Array.append larr.(li) (nulls right_arity))
        else List.iter (fun ri -> emit (combine li ri)) ms
      | L.RightOuter ->
        List.iter
          (fun ri ->
            right_matched.(ri) <- true;
            emit (combine li ri))
          ms
      | L.FullOuter ->
        if ms = [] then emit (Array.append larr.(li) (nulls right_arity))
        else
          List.iter
            (fun ri ->
              right_matched.(ri) <- true;
              emit (combine li ri))
            ms)
    match_lists;
  (match kind with
  | L.RightOuter | L.FullOuter ->
    Array.iteri
      (fun ri matched ->
        if not matched then emit (Array.append (nulls left_arity) rarr.(ri)))
      right_matched
  | L.Semi | L.AntiSemi | L.Inner | L.Cross | L.LeftOuter -> ());
  let cols =
    match kind with
    | L.Semi | L.AntiSemi -> left.cols
    | L.Inner | L.Cross | L.LeftOuter | L.RightOuter | L.FullOuter ->
      Array.append left.cols right.cols
  in
  { Resultset.cols; rows = List.rev !out }

let nested_loops_matches pred (left : Resultset.t) (right : Resultset.t) =
  let combined_cols = Array.append left.cols right.cols in
  let env = make_env combined_cols in
  let rarr = Array.of_list right.rows in
  let larr = Array.of_list left.rows in
  Array.map
    (fun lrow ->
      let ms = ref [] in
      Array.iteri
        (fun ri rrow ->
          if Eval.pred_true (env (Array.append lrow rrow)) pred then ms := ri :: !ms)
        rarr;
      List.rev !ms)
    larr

let hash_matches ~left_keys ~right_keys ~residual (left : Resultset.t)
    (right : Resultset.t) =
  let lidx = key_indices left.cols left_keys in
  let ridx = key_indices right.cols right_keys in
  let table : int list ref RowTbl.t = RowTbl.create 64 in
  List.iteri
    (fun ri rrow ->
      let key = extract_key ridx rrow in
      if not (key_has_null key) then
        match RowTbl.find_opt table key with
        | Some cell -> cell := ri :: !cell
        | None -> RowTbl.add table key (ref [ ri ]))
    right.rows;
  let rarr = Array.of_list right.rows in
  let combined_cols = Array.append left.cols right.cols in
  let env = make_env combined_cols in
  let check_residual lrow ri =
    Relalg.Scalar.equal residual Relalg.Scalar.true_
    || Eval.pred_true (env (Array.append lrow rarr.(ri))) residual
  in
  Array.of_list
    (List.map
       (fun lrow ->
         let key = extract_key lidx lrow in
         if key_has_null key then []
         else
           match RowTbl.find_opt table key with
           | None -> []
           | Some cell -> List.filter (check_residual lrow) (List.rev !cell))
       left.rows)

(* Inner merge join over inputs already sorted on their keys. Rows with
   NULL keys sort first and can never match; they are skipped. *)
let merge_matches ~left_keys ~right_keys ~residual (left : Resultset.t)
    (right : Resultset.t) =
  let lidx = key_indices left.cols left_keys in
  let ridx = key_indices right.cols right_keys in
  let larr = Array.of_list left.rows in
  let rarr = Array.of_list right.rows in
  let nl = Array.length larr and nr = Array.length rarr in
  let match_lists = Array.make nl [] in
  let combined_cols = Array.append left.cols right.cols in
  let env = make_env combined_cols in
  let key_cmp a b = Resultset.compare_rows a b in
  let li = ref 0 and ri = ref 0 in
  while !li < nl && !ri < nr do
    let lkey = extract_key lidx larr.(!li) in
    let rkey = extract_key ridx rarr.(!ri) in
    if key_has_null lkey then incr li
    else if key_has_null rkey then incr ri
    else
      let c = key_cmp lkey rkey in
      if c < 0 then incr li
      else if c > 0 then incr ri
      else begin
        (* Collect the equal-key groups on both sides. *)
        let l_end = ref !li in
        while
          !l_end < nl && key_cmp (extract_key lidx larr.(!l_end)) lkey = 0
        do
          incr l_end
        done;
        let r_end = ref !ri in
        while
          !r_end < nr && key_cmp (extract_key ridx rarr.(!r_end)) rkey = 0
        do
          incr r_end
        done;
        for i = !li to !l_end - 1 do
          let ms = ref [] in
          for j = !ri to !r_end - 1 do
            let ok =
              Relalg.Scalar.equal residual Relalg.Scalar.true_
              || Eval.pred_true (env (Array.append larr.(i) rarr.(j))) residual
            in
            if ok then ms := j :: !ms
          done;
          match_lists.(i) <- List.rev !ms
        done;
        li := !l_end;
        ri := !r_end
      end
  done;
  match_lists

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

let distinct_rows rows =
  let seen = RowTbl.create 64 in
  List.filter
    (fun row ->
      if RowTbl.mem seen row then false
      else begin
        RowTbl.add seen row ();
        true
      end)
    rows

let op_name : P.t -> string = function
  | P.TableScan _ -> "TableScan"
  | P.FilterOp _ -> "Filter"
  | P.ComputeScalar _ -> "ComputeScalar"
  | P.NestedLoopsJoin _ -> "NestedLoopsJoin"
  | P.HashJoin _ -> "HashJoin"
  | P.MergeJoin _ -> "MergeJoin"
  | P.HashAggregate _ -> "HashAggregate"
  | P.StreamAggregate _ -> "StreamAggregate"
  | P.SortOp _ -> "Sort"
  | P.Concat _ -> "Concat"
  | P.HashUnion _ -> "HashUnion"
  | P.HashIntersect _ -> "HashIntersect"
  | P.HashExcept _ -> "HashExcept"
  | P.HashDistinct _ -> "HashDistinct"
  | P.LimitOp _ -> "Limit"

let rec exec catalog (plan : P.t) : Resultset.t =
  let rs = exec_node catalog plan in
  (* Rows flowing out of every physical operator, by operator kind. *)
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.add
      (Obs.Metrics.counter ~label:(op_name plan) "exec.rows")
      (List.length rs.rows);
    Obs.Metrics.incr (Obs.Metrics.counter ~label:(op_name plan) "exec.operators")
  end;
  rs

and exec_node catalog (plan : P.t) : Resultset.t =
  match plan with
  | P.TableScan { table; alias } -> (
    match Catalog.find catalog table with
    | None -> fail "unknown table %s" table
    | Some tb ->
      let cols =
        Array.of_list
          (List.map (fun c -> Ident.make alias c.Schema.col_name) tb.schema.columns)
      in
      { Resultset.cols; rows = Array.to_list tb.rows })
  | P.FilterOp { pred; child } ->
    let input = exec catalog child in
    let env = make_env input.cols in
    { input with rows = List.filter (fun row -> Eval.pred_true (env row) pred) input.rows }
  | P.ComputeScalar { cols; child } ->
    let input = exec catalog child in
    let env = make_env input.cols in
    let out_cols = Array.of_list (List.map fst cols) in
    let rows =
      List.map
        (fun row ->
          Array.of_list (List.map (fun (_, e) -> Eval.scalar (env row) e) cols))
        input.rows
    in
    { Resultset.cols = out_cols; rows }
  | P.NestedLoopsJoin { kind; pred; left; right } ->
    let l = exec catalog left and r = exec catalog right in
    join_output kind l r (nested_loops_matches pred l r)
  | P.HashJoin { kind; left_keys; right_keys; residual; left; right } ->
    let l = exec catalog left and r = exec catalog right in
    join_output kind l r (hash_matches ~left_keys ~right_keys ~residual l r)
  | P.MergeJoin { left_keys; right_keys; residual; left; right } ->
    let l = exec catalog left and r = exec catalog right in
    join_output L.Inner l r (merge_matches ~left_keys ~right_keys ~residual l r)
  | P.HashAggregate { keys; aggs; child } ->
    let input = exec catalog child in
    let kidx = key_indices input.cols keys in
    if keys = [] then
      grouped_output input keys aggs [ ([||], input.rows) ]
    else begin
      let table : Value.t array list ref RowTbl.t = RowTbl.create 64 in
      let order = ref [] in
      List.iter
        (fun row ->
          let key = extract_key kidx row in
          match RowTbl.find_opt table key with
          | Some cell -> cell := row :: !cell
          | None ->
            RowTbl.add table key (ref [ row ]);
            order := key :: !order)
        input.rows;
      let groups =
        List.rev_map
          (fun key -> (key, List.rev !(RowTbl.find table key)))
          !order
      in
      grouped_output input keys aggs groups
    end
  | P.StreamAggregate { keys; aggs; child } ->
    let input = exec catalog child in
    let kidx = key_indices input.cols keys in
    if keys = [] then grouped_output input keys aggs [ ([||], input.rows) ]
    else begin
      (* Consecutive runs of equal keys (input sorted by keys). *)
      let groups = ref [] in
      let current_key = ref None in
      let current = ref [] in
      let flush () =
        match !current_key with
        | Some key -> groups := (key, List.rev !current) :: !groups
        | None -> ()
      in
      List.iter
        (fun row ->
          let key = extract_key kidx row in
          match !current_key with
          | Some k when Resultset.compare_rows k key = 0 -> current := row :: !current
          | _ ->
            flush ();
            current_key := Some key;
            current := [ row ])
        input.rows;
      flush ();
      grouped_output input keys aggs (List.rev !groups)
    end
  | P.SortOp { keys; child } ->
    let input = exec catalog child in
    let kidx = key_indices input.cols (List.map fst keys) in
    let dirs = Array.of_list (List.map snd keys) in
    let cmp a b =
      let rec go i =
        if i = Array.length kidx then 0
        else
          let c = Value.compare_total a.(kidx.(i)) b.(kidx.(i)) in
          let c = match dirs.(i) with L.Asc -> c | L.Desc -> -c in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    in
    { input with rows = List.stable_sort cmp input.rows }
  | P.Concat (a, b) ->
    let ra = exec catalog a and rb = exec catalog b in
    check_arity ra rb;
    { ra with rows = ra.rows @ rb.rows }
  | P.HashUnion (a, b) ->
    let ra = exec catalog a and rb = exec catalog b in
    check_arity ra rb;
    { ra with rows = distinct_rows (ra.rows @ rb.rows) }
  | P.HashIntersect (a, b) ->
    let ra = exec catalog a and rb = exec catalog b in
    check_arity ra rb;
    let in_b = RowTbl.create 64 in
    List.iter (fun row -> RowTbl.replace in_b row ()) rb.rows;
    { ra with rows = distinct_rows (List.filter (RowTbl.mem in_b) ra.rows) }
  | P.HashExcept (a, b) ->
    let ra = exec catalog a and rb = exec catalog b in
    check_arity ra rb;
    let in_b = RowTbl.create 64 in
    List.iter (fun row -> RowTbl.replace in_b row ()) rb.rows;
    { ra with
      rows = distinct_rows (List.filter (fun r -> not (RowTbl.mem in_b r)) ra.rows) }
  | P.HashDistinct child ->
    let input = exec catalog child in
    { input with rows = distinct_rows input.rows }
  | P.LimitOp { count; child } ->
    let input = exec catalog child in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: xs -> x :: take (n - 1) xs
    in
    { input with rows = take count input.rows }

and check_arity (a : Resultset.t) (b : Resultset.t) =
  if Array.length a.cols <> Array.length b.cols then
    fail "set operation arity mismatch: %d vs %d" (Array.length a.cols)
      (Array.length b.cols)

let run catalog plan =
  Obs.Trace.with_span "exec.run" @@ fun () ->
  try Ok (exec catalog plan) with
  | Exec_error msg -> Error msg
  | Invalid_argument msg -> Error ("execution type error: " ^ msg)

let run_logical ?options catalog tree =
  match Optimizer.Engine.optimize ?options catalog tree with
  | Error e -> Error e
  | Ok r -> run catalog r.plan
