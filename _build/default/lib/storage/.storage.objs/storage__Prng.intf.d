lib/storage/prng.mli:
