(* Engine tests: RuleSet tracking, rule disabling, cost monotonicity,
   determinism, budgets, implementation-rule behaviour. *)
open Relalg
module S = Scalar
module L = Logical
module E = Optimizer.Engine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let cat = Storage.Datagen.micro ()
let id = Ident.make
let get1 = L.Get { table = "t1"; alias = "x" }
let get2 = L.Get { table = "t2"; alias = "y" }
let a = id "x" "a"
let d = id "y" "d"

let join =
  L.Join { kind = L.Inner; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 }

let filtered =
  L.Filter { pred = S.Cmp (S.Gt, S.col a, S.int 3); child = join }

let disabled_options names =
  { E.default_options with
    disabled = List.fold_left (fun s n -> E.SSet.add n s) E.SSet.empty names }

let test_ruleset_tracking () =
  let rs = Result.get_ok (E.ruleset cat filtered) in
  check bool_t "join commute exercised" true (E.SSet.mem "JoinCommute" rs);
  check bool_t "select pushdown exercised" true (E.SSet.mem "PushSelectBelowJoin" rs);
  check bool_t "merge select into join" true (E.SSet.mem "MergeSelectIntoJoin" rs);
  check bool_t "group-by rules not exercised" false (E.SSet.mem "GbAggPullAboveJoin" rs)

let test_ruleset_deterministic () =
  let rs1 = Result.get_ok (E.ruleset cat filtered) in
  let rs2 = Result.get_ok (E.ruleset cat filtered) in
  check bool_t "same set" true (E.SSet.equal rs1 rs2)

let test_disabled_not_exercised () =
  let options = disabled_options [ "JoinCommute" ] in
  let rs = Result.get_ok (E.ruleset ~options cat filtered) in
  check bool_t "disabled rule absent" false (E.SSet.mem "JoinCommute" rs)

let test_optimize_result () =
  let r = Result.get_ok (E.optimize cat filtered) in
  check bool_t "cost positive" true (r.cost > 0.0);
  check bool_t "explored several trees" true (r.trees_explored > 1);
  check bool_t "plan uses a scan" true
    (let rec has_scan p =
       match p with
       | Optimizer.Physical.TableScan _ -> true
       | _ -> List.exists has_scan (Optimizer.Physical.children p)
     in
     has_scan r.plan);
  check bool_t "impl rules tracked" true
    (E.SSet.mem "GetToTableScan" r.impl_exercised)

let test_cost_monotone_under_disable () =
  let base = Result.get_ok (E.optimize cat filtered) in
  E.SSet.iter
    (fun rule ->
      let r = Result.get_ok (E.optimize ~options:(disabled_options [ rule ]) cat filtered) in
      check bool_t ("cost(off " ^ rule ^ ") >= cost") true (r.cost >= base.cost -. 1e-9))
    base.exercised

let test_invalid_tree_rejected () =
  let bad = L.Filter { pred = S.col a; child = get1 } in
  check bool_t "rejects non-boolean" true (Result.is_error (E.optimize cat bad));
  let unknown = L.Get { table = "zzz"; alias = "q" } in
  check bool_t "rejects unknown table" true (Result.is_error (E.optimize cat unknown))

let test_no_plan_when_impl_disabled () =
  let r = E.optimize ~options:(disabled_options [ "GetToTableScan" ]) cat filtered in
  check bool_t "no plan without scans" true (Result.is_error r)

let test_join_impl_alternatives () =
  (* Disabling hash join must leave a working (more expensive or equal)
     nested-loops plan. *)
  let base = Result.get_ok (E.optimize cat join) in
  let no_hash =
    Result.get_ok (E.optimize ~options:(disabled_options [ "JoinToHashJoin" ]) cat join)
  in
  check bool_t "still plans" true (no_hash.cost >= base.cost);
  let rec uses_hash p =
    match p with
    | Optimizer.Physical.HashJoin _ -> true
    | _ -> List.exists uses_hash (Optimizer.Physical.children p)
  in
  check bool_t "no hash join in plan" false (uses_hash no_hash.plan)

let test_budget_respected () =
  let options = { E.default_options with max_trees = 10 } in
  let r = Result.get_ok (E.optimize ~options cat filtered) in
  check bool_t "at most 10 trees" true (r.trees_explored <= 10)

let test_growth_cap () =
  let options = { E.default_options with max_growth = 0 } in
  let r = Result.get_ok (E.optimize ~options cat filtered) in
  (* With zero growth the engine still works; it just explores less. *)
  check bool_t "still optimizes" true (r.cost > 0.0)

let test_exploration_finds_cheaper_plan () =
  (* Pushing the selective filter below the join should beat the naive
     plan of filtering after the join. *)
  let all_off = disabled_options Optimizer.Rules.names in
  let naive = Result.get_ok (E.optimize ~options:all_off cat filtered) in
  let smart = Result.get_ok (E.optimize cat filtered) in
  check bool_t "exploration helps" true (smart.cost <= naive.cost)

let test_custom_rules_param () =
  (* With an empty exploration registry, only the input tree is planned. *)
  let r = Result.get_ok (E.optimize ~rules:[] cat filtered) in
  check int_t "single tree" 1 r.trees_explored;
  check bool_t "nothing exercised" true (E.SSet.is_empty r.exercised)

(* ------------------------------------------------------------------ *)
(* Memoized exploration vs the per-tree reference path                  *)
(* ------------------------------------------------------------------ *)

let float_t = Alcotest.float 1e-9

let check_memo_equivalent name options q =
  let on = Result.get_ok (E.optimize ~options:{ options with memoize = true } cat q) in
  let off = Result.get_ok (E.optimize ~options:{ options with memoize = false } cat q) in
  check float_t (name ^ ": same cost") off.cost on.cost;
  check int_t (name ^ ": same closure size") off.trees_explored on.trees_explored;
  check bool_t (name ^ ": same truncation") true
    (off.budget_truncated = on.budget_truncated);
  check bool_t (name ^ ": same exercised") true
    (E.SSet.equal off.exercised on.exercised);
  check bool_t (name ^ ": same impl exercised") true
    (E.SSet.equal off.impl_exercised on.impl_exercised);
  check bool_t (name ^ ": same best tree") true
    (L.equal off.best_logical on.best_logical)

let test_memoize_equivalent () =
  List.iter
    (fun q -> check_memo_equivalent "default budget" E.default_options q)
    [ join; filtered; get1 ];
  (* Tiny budgets truncate the closure mid-enumeration: both paths must
     still admit bit-identical tree sets, which is only true if memoized
     replay preserves the reference enumeration order exactly. *)
  List.iter
    (fun budget ->
      check_memo_equivalent
        (Printf.sprintf "budget %d" budget)
        { E.default_options with max_trees = budget }
        filtered)
    [ 2; 3; 5; 10; 50 ]

let test_closure_dedup () =
  (* JoinCommute applied twice yields the original tree; the closure must
     not blow up re-admitting known trees through new derivations. *)
  let r = Result.get_ok (E.optimize cat join) in
  check bool_t "closure completed" false r.budget_truncated;
  let r10 =
    Result.get_ok (E.optimize ~options:{ E.default_options with max_trees = 1000 } cat join)
  in
  check int_t "fixpoint independent of budget headroom" r.trees_explored
    r10.trees_explored

let test_budget_truncated_invariants () =
  let tight = { E.default_options with max_trees = 3 } in
  let r = Result.get_ok (E.optimize ~options:tight cat filtered) in
  check bool_t "tight budget reported exhausted" true r.budget_truncated;
  check int_t "admits exactly max_trees" 3 r.trees_explored;
  let loose = Result.get_ok (E.optimize cat filtered) in
  check bool_t "default budget completes on micro" false loose.budget_truncated;
  check bool_t "exhausted run costs no less" true (r.cost >= loose.cost -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Shared exploration                                                   *)
(* ------------------------------------------------------------------ *)

let test_shared_cost_empty_disabled () =
  List.iter
    (fun q ->
      let full = Result.get_ok (E.optimize cat q) in
      let sh = Result.get_ok (E.explore_shared cat q) in
      check int_t "shared closure size = explore's" full.trees_explored
        (E.shared_trees sh);
      check bool_t "same exercised" true
        (E.SSet.equal full.exercised (E.shared_exercised sh));
      let c = Result.get_ok (E.shared_cost sh ~disabled:E.SSet.empty) in
      check float_t "shared_cost {} = optimize cost" full.cost c)
    [ join; filtered; get1 ]

let test_shared_cost_singleton_disabled () =
  (* On the micro catalog the closure completes within the default
     budget, so the shared filtered cost must equal a from-scratch
     optimization with the rule disabled — for every exercised logical
     rule and for implementation rules too. *)
  let sh = Result.get_ok (E.explore_shared cat filtered) in
  check bool_t "closure complete" false (E.shared_truncated sh);
  E.SSet.iter
    (fun rule ->
      let scratch =
        Result.get_ok
          (E.optimize ~options:(disabled_options [ rule ]) cat filtered)
      in
      let shared =
        Result.get_ok (E.shared_cost sh ~disabled:(E.SSet.singleton rule))
      in
      check float_t ("shared = scratch with " ^ rule ^ " off") scratch.cost shared)
    (E.shared_exercised sh);
  let no_hash =
    Result.get_ok (E.shared_cost sh ~disabled:(E.SSet.singleton "JoinToHashJoin"))
  in
  let scratch =
    Result.get_ok
      (E.optimize ~options:(disabled_options [ "JoinToHashJoin" ]) cat filtered)
  in
  check float_t "impl rule honoured" scratch.cost no_hash

let test_shared_cost_conservative () =
  (* Pair-disabling: never cheaper than the from-scratch cost. *)
  let sh = Result.get_ok (E.explore_shared cat filtered) in
  let rules = E.SSet.elements (E.shared_exercised sh) in
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          let disabled = E.SSet.of_list [ r1; r2 ] in
          let scratch =
            Result.get_ok
              (E.optimize ~options:(disabled_options [ r1; r2 ]) cat filtered)
          in
          match E.shared_cost sh ~disabled with
          | Ok c ->
            check bool_t
              (Printf.sprintf "shared >= scratch without {%s,%s}" r1 r2)
              true
              (c >= scratch.cost -. 1e-9)
          | Error _ -> Alcotest.fail "shared_cost failed on complete closure")
        rules)
    rules

let test_shared_cost_all_impl_disabled () =
  let sh = Result.get_ok (E.explore_shared cat filtered) in
  let disabled = E.SSet.of_list E.implementation_rule_names in
  check bool_t "no plan when all impl rules disabled" true
    (Result.is_error (E.shared_cost sh ~disabled))

let suite =
  [ ( "optimizer.engine",
      [ Alcotest.test_case "ruleset tracking" `Quick test_ruleset_tracking;
        Alcotest.test_case "ruleset deterministic" `Quick test_ruleset_deterministic;
        Alcotest.test_case "disabled rules" `Quick test_disabled_not_exercised;
        Alcotest.test_case "optimize result" `Quick test_optimize_result;
        Alcotest.test_case "cost monotone under disabling" `Quick
          test_cost_monotone_under_disable;
        Alcotest.test_case "invalid trees rejected" `Quick test_invalid_tree_rejected;
        Alcotest.test_case "no plan when scans disabled" `Quick
          test_no_plan_when_impl_disabled;
        Alcotest.test_case "join implementation alternatives" `Quick
          test_join_impl_alternatives;
        Alcotest.test_case "tree budget" `Quick test_budget_respected;
        Alcotest.test_case "growth cap" `Quick test_growth_cap;
        Alcotest.test_case "exploration finds cheaper plans" `Quick
          test_exploration_finds_cheaper_plan;
        Alcotest.test_case "custom rule registry" `Quick test_custom_rules_param ] ) ]
