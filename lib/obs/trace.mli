(** Span-based tracing fanned out to pluggable consumers.

    Every instrumentation point ({!with_span}, {!instant}, {!counter})
    produces one {!event} that is dispatched, with a nanosecond
    timestamp and the emitting domain's id, to every installed
    {!consumer}. Two consumers ship with the library:

    - the Chrome trace-event JSONL writer ({!start} / {!start_buffer} /
      {!stop}), which renders each event as one JSON object per line —
      ["B"]/["E"] duration pairs for spans, ["i"] instants, ["C"]
      counter samples. Timestamps are microseconds on the monotonic
      clock relative to the writer's installation. The stream loads in
      [chrome://tracing] / Perfetto after wrapping in a JSON array
      (['jq -s . t.jsonl']), and every line is a complete JSON document,
      so the file doubles as a machine-readable log. The file writer
      flushes per line, so a crash mid-campaign loses at most the line
      being written;
    - the in-process profiler ({!Profile}), which aggregates the same
      span stream into a self/total-time profile without writing
      anything to disk.

    With no consumer installed (the default) every entry point is one
    atomic load and returns immediately. The consumer list is global,
    like the metrics registry, and domain-safe: the JSONL writer
    serializes whole lines under a mutex (no mid-line interleaving), and
    events carry the emitting domain's id as [tid], so parallel workers
    show up as separate tracks in trace viewers. *)

type event =
  | Begin of { name : string; cat : string option; args : (string * Json.t) list }
  | End of { name : string }
  | Instant of { name : string; cat : string option; args : (string * Json.t) list }
  | Counter of { name : string; values : (string * float) list }

type consumer = {
  cname : string;  (** unique key; adding a consumer replaces its namesake *)
  handle : ts_ns:int64 -> tid:int -> event -> unit;
      (** called synchronously on the emitting domain; must be
          domain-safe *)
  flush : unit -> unit;
  close : unit -> unit;  (** called once when the consumer is removed *)
}

val add_consumer : consumer -> unit
(** Install a consumer; a previous consumer with the same [cname] is
    closed and replaced. *)

val remove_consumer : string -> unit
(** Remove (and close) the consumer registered under this name. No-op if
    absent. *)

val consumer_installed : string -> bool

val start : string -> unit
(** Open [path] (truncating) and start the JSONL writer, replacing any
    previous writer. The underlying channel is flushed after every line
    and on {!flush}/{!stop}, so an interrupted run keeps its tail. *)

val start_buffer : Buffer.t -> unit
(** JSONL writer into a buffer instead of a file — used by tests. *)

val stop : unit -> unit
(** Flush and close the JSONL writer; other consumers (e.g. the
    profiler) keep running. Safe to call twice. *)

val flush : unit -> unit
(** Flush every consumer. Invoked automatically from the
    uncaught-exception handler, and all consumers are closed on
    [at_exit], so a trace is not lost when the process dies
    mid-stream. *)

val enabled : unit -> bool
(** At least one consumer is installed. *)

val with_span : ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a [name] span. The end event is
    emitted even when [f] raises. [args] lands on the begin event. *)

val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit

val counter : string -> (string * float) list -> unit
(** [counter name values] emits a Chrome ["C"] counter sample — trace
    viewers render these as stacked area charts per [tid] (used for
    pool queue depth). *)

val depth : unit -> int
(** Number of currently open spans (0 at top level) — exposed so tests
    can assert balanced nesting. *)
