lib/core/correctness.mli: Compress Format Framework Relalg Suite
