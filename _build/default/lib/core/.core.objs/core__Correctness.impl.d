lib/core/correctness.ml: Array Compress Executor Format Framework Hashtbl List Optimizer Printf Relalg Storage String Suite
