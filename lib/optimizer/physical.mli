(** Physical operator trees — the output of implementation rules, and the
    executor's input. *)

type t =
  | TableScan of { table : string; alias : string }
  | FilterOp of { pred : Relalg.Scalar.t; child : t }
  | ComputeScalar of { cols : (Relalg.Ident.t * Relalg.Scalar.t) list; child : t }
  | NestedLoopsJoin of {
      kind : Relalg.Logical.join_kind;
      pred : Relalg.Scalar.t;
      left : t;
      right : t;
    }
  | HashJoin of {
      kind : Relalg.Logical.join_kind;
      left_keys : Relalg.Ident.t list;
      right_keys : Relalg.Ident.t list;
      residual : Relalg.Scalar.t;
      left : t;
      right : t;
    }  (** equi-join on positionally paired keys; NULL keys never match *)
  | MergeJoin of {
      left_keys : Relalg.Ident.t list;
      right_keys : Relalg.Ident.t list;
      residual : Relalg.Scalar.t;
      left : t;
      right : t;
    }  (** inner only; children must deliver key order *)
  | HashAggregate of {
      keys : Relalg.Ident.t list;
      aggs : (Relalg.Ident.t * Relalg.Aggregate.t) list;
      child : t;
    }
  | StreamAggregate of {
      keys : Relalg.Ident.t list;
      aggs : (Relalg.Ident.t * Relalg.Aggregate.t) list;
      child : t;
    }  (** child must deliver key order *)
  | SortOp of { keys : (Relalg.Ident.t * Relalg.Logical.sort_dir) list; child : t }
  | Concat of t * t
  | HashUnion of t * t
  | HashIntersect of t * t
  | HashExcept of t * t
  | HashDistinct of t
  | LimitOp of { count : int; child : t }

val children : t -> t list
val size : t -> int
val op_name : t -> string
val equal : t -> t -> bool

val fingerprint : t -> int
(** Full-depth structural hash — the plan analogue of
    {!Relalg.Logical.hash}. Consistent with {!equal}; non-negative.
    Folds in every constructor tag and payload (scalars, identifiers,
    aggregates, join kinds, sort directions), so plans differing only
    deep inside an expression hash apart. Keys the executor's
    result cache. *)

(** Hashtable keyed by plans: {!equal} equality, {!fingerprint} hash. *)
module Tbl : Hashtbl.S with type key = t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
