type join_kind = Inner | Cross | LeftOuter | RightOuter | FullOuter | Semi | AntiSemi
type sort_dir = Asc | Desc

type t =
  | Get of { table : string; alias : string }
  | Filter of { pred : Scalar.t; child : t }
  | Project of { cols : (Ident.t * Scalar.t) list; child : t }
  | Join of { kind : join_kind; pred : Scalar.t; left : t; right : t }
  | GroupBy of { keys : Ident.t list; aggs : (Ident.t * Aggregate.t) list; child : t }
  | UnionAll of t * t
  | Union of t * t
  | Intersect of t * t
  | Except of t * t
  | Distinct of t
  | Sort of { keys : (Ident.t * sort_dir) list; child : t }
  | Limit of { count : int; child : t }

type op_kind =
  | KGet
  | KFilter
  | KProject
  | KJoin of join_kind
  | KGroupBy
  | KUnionAll
  | KUnion
  | KIntersect
  | KExcept
  | KDistinct
  | KSort
  | KLimit

let kind = function
  | Get _ -> KGet
  | Filter _ -> KFilter
  | Project _ -> KProject
  | Join { kind; _ } -> KJoin kind
  | GroupBy _ -> KGroupBy
  | UnionAll _ -> KUnionAll
  | Union _ -> KUnion
  | Intersect _ -> KIntersect
  | Except _ -> KExcept
  | Distinct _ -> KDistinct
  | Sort _ -> KSort
  | Limit _ -> KLimit

let join_kind_to_sql = function
  | Inner -> "JOIN"
  | Cross -> "CROSS JOIN"
  | LeftOuter -> "LEFT OUTER JOIN"
  | RightOuter -> "RIGHT OUTER JOIN"
  | FullOuter -> "FULL OUTER JOIN"
  | Semi -> "SEMI JOIN"
  | AntiSemi -> "ANTI SEMI JOIN"

let kind_name = function
  | KGet -> "Get"
  | KFilter -> "Filter"
  | KProject -> "Project"
  | KJoin Inner -> "Join"
  | KJoin Cross -> "CrossJoin"
  | KJoin LeftOuter -> "LeftOuterJoin"
  | KJoin RightOuter -> "RightOuterJoin"
  | KJoin FullOuter -> "FullOuterJoin"
  | KJoin Semi -> "SemiJoin"
  | KJoin AntiSemi -> "AntiSemiJoin"
  | KGroupBy -> "GbAgg"
  | KUnionAll -> "UnionAll"
  | KUnion -> "Union"
  | KIntersect -> "Intersect"
  | KExcept -> "Except"
  | KDistinct -> "Distinct"
  | KSort -> "Sort"
  | KLimit -> "Limit"

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let children = function
  | Get _ -> []
  | Filter { child; _ } | Project { child; _ } | GroupBy { child; _ }
  | Distinct child | Sort { child; _ } | Limit { child; _ } ->
    [ child ]
  | Join { left; right; _ } -> [ left; right ]
  | UnionAll (a, b) | Union (a, b) | Intersect (a, b) | Except (a, b) -> [ a; b ]

let with_children node kids =
  match node, kids with
  | Get _, [] -> node
  | Filter f, [ c ] -> Filter { f with child = c }
  | Project p, [ c ] -> Project { p with child = c }
  | GroupBy g, [ c ] -> GroupBy { g with child = c }
  | Distinct _, [ c ] -> Distinct c
  | Sort s, [ c ] -> Sort { s with child = c }
  | Limit l, [ c ] -> Limit { l with child = c }
  | Join j, [ l; r ] -> Join { j with left = l; right = r }
  | UnionAll _, [ a; b ] -> UnionAll (a, b)
  | Union _, [ a; b ] -> Union (a, b)
  | Intersect _, [ a; b ] -> Intersect (a, b)
  | Except _, [ a; b ] -> Except (a, b)
  | _ -> invalid_arg "Logical.with_children: arity mismatch"

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 (children t)

(* ------------------------------------------------------------------ *)
(* Structural hashing                                                  *)
(*                                                                     *)
(* The previous [hash = Hashtbl.hash] sampled only a bounded prefix of  *)
(* the tree, so all realistic-size trees sharing a top shape collided   *)
(* and every tree-keyed table degenerated to linear scans. These        *)
(* hashes mix every node.                                              *)
(* ------------------------------------------------------------------ *)

let comb = Scalar.hash_combine

(* Hash of a node's own payload — everything except the children. Used
   both for the full structural hash and as the shallow key of the
   hash-consing table (see {!Hashcons}). *)
let payload_hash = function
  | Get g -> comb (comb 1 (Hashtbl.hash g.table)) (Hashtbl.hash g.alias)
  | Filter f -> comb 2 (Scalar.hash f.pred)
  | Project p ->
    List.fold_left
      (fun h (id, e) -> comb (comb h (Ident.hash id)) (Scalar.hash e))
      3 p.cols
  | Join j -> comb (comb 4 (Hashtbl.hash j.kind)) (Scalar.hash j.pred)
  | GroupBy g ->
    let h = List.fold_left (fun h k -> comb h (Ident.hash k)) 5 g.keys in
    List.fold_left
      (fun h (id, a) -> comb (comb h (Ident.hash id)) (Aggregate.hash a))
      h g.aggs
  | UnionAll _ -> 6
  | Union _ -> 7
  | Intersect _ -> 8
  | Except _ -> 9
  | Distinct _ -> 10
  | Sort s ->
    List.fold_left
      (fun h (id, dir) -> comb (comb h (Ident.hash id)) (Hashtbl.hash dir))
      11 s.keys
  | Limit l -> comb 12 l.count

(* Payload equality — same constructor and non-child fields, children
   ignored. *)
let payload_equal a b =
  match (a, b) with
  | Get g1, Get g2 -> String.equal g1.table g2.table && String.equal g1.alias g2.alias
  | Filter f1, Filter f2 -> Scalar.equal f1.pred f2.pred
  | Project p1, Project p2 ->
    List.length p1.cols = List.length p2.cols
    && List.for_all2
         (fun (i1, e1) (i2, e2) -> Ident.equal i1 i2 && Scalar.equal e1 e2)
         p1.cols p2.cols
  | Join j1, Join j2 -> j1.kind = j2.kind && Scalar.equal j1.pred j2.pred
  | GroupBy g1, GroupBy g2 ->
    List.length g1.keys = List.length g2.keys
    && List.for_all2 Ident.equal g1.keys g2.keys
    && List.length g1.aggs = List.length g2.aggs
    && List.for_all2
         (fun (i1, a1) (i2, a2) -> Ident.equal i1 i2 && Aggregate.equal a1 a2)
         g1.aggs g2.aggs
  | UnionAll _, UnionAll _ | Union _, Union _ | Intersect _, Intersect _
  | Except _, Except _ | Distinct _, Distinct _ ->
    true
  | Sort s1, Sort s2 ->
    List.length s1.keys = List.length s2.keys
    && List.for_all2
         (fun (i1, d1) (i2, d2) -> Ident.equal i1 i2 && d1 = d2)
         s1.keys s2.keys
  | Limit l1, Limit l2 -> l1.count = l2.count
  | _ -> false

let rec hash t =
  List.fold_left (fun h c -> comb h (hash c)) (payload_hash t) (children t)

(* Shape hash of a node's payload: operator kind and expression skeletons
   only. Table names are kept (the shape of a bug includes which base
   relations it touches); aliases, literal constant values, column identity
   and output names are ignored. Two reproducers that differ only in those
   respects are, for triage purposes, the same bug. *)
let payload_shape_hash = function
  | Get g -> comb 21 (Hashtbl.hash g.table)
  | Filter f -> comb 22 (Scalar.shape_hash f.pred)
  | Project p ->
    List.fold_left (fun h (_, e) -> comb h (Scalar.shape_hash e)) 23 p.cols
  | Join j -> comb (comb 24 (Hashtbl.hash j.kind)) (Scalar.shape_hash j.pred)
  | GroupBy g ->
    List.fold_left
      (fun h (_, a) -> comb h (Aggregate.shape_hash a))
      (comb 25 (List.length g.keys))
      g.aggs
  | UnionAll _ -> 26
  | Union _ -> 27
  | Intersect _ -> 28
  | Except _ -> 29
  | Distinct _ -> 30
  | Sort s -> comb 31 (List.length s.keys)
  | Limit _ -> 32

let rec shape_hash t =
  List.fold_left (fun h c -> comb h (shape_hash c)) (payload_shape_hash t) (children t)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let rec fold f acc t = List.fold_left (fold f) (f acc t) (children t)

let aliases t =
  List.rev
    (fold (fun acc n -> match n with Get g -> g.alias :: acc | _ -> acc) [] t)

let label = function
  | Get g -> Printf.sprintf "Get(%s AS %s)" g.table g.alias
  | Filter f -> Printf.sprintf "Filter(%s)" (Scalar.to_sql f.pred)
  | Project p ->
    let item (id, e) = Ident.to_sql id ^ " := " ^ Scalar.to_sql e in
    Printf.sprintf "Project(%s)" (String.concat ", " (List.map item p.cols))
  | Join j -> (
    match j.kind with
    | Cross -> "CrossJoin"
    | k -> Printf.sprintf "%s(%s)" (kind_name (KJoin k)) (Scalar.to_sql j.pred))
  | GroupBy g ->
    let agg (id, a) = Ident.to_sql id ^ " := " ^ Aggregate.to_sql a in
    Printf.sprintf "GbAgg(keys=[%s]; %s)"
      (String.concat ", " (List.map Ident.to_sql g.keys))
      (String.concat ", " (List.map agg g.aggs))
  | UnionAll _ -> "UnionAll"
  | Union _ -> "Union"
  | Intersect _ -> "Intersect"
  | Except _ -> "Except"
  | Distinct _ -> "Distinct"
  | Sort s ->
    let key (id, dir) =
      Ident.to_sql id ^ (match dir with Asc -> " ASC" | Desc -> " DESC")
    in
    Printf.sprintf "Sort(%s)" (String.concat ", " (List.map key s.keys))
  | Limit l -> Printf.sprintf "Limit(%d)" l.count

let rec pp_indent fmt depth t =
  Format.fprintf fmt "%s%s" (String.make (2 * depth) ' ') (label t);
  List.iter
    (fun c ->
      Format.pp_print_cut fmt ();
      pp_indent fmt (depth + 1) c)
    (children t)

let pp fmt t = Format.fprintf fmt "@[<v>%a@]" (fun fmt -> pp_indent fmt 0) t
let to_string t = Format.asprintf "%a" pp t
