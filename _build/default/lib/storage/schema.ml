type column = { col_name : string; col_type : Datatype.t; nullable : bool }

type foreign_key = {
  fk_columns : string list;
  fk_table : string;
  fk_ref_columns : string list;
}

type t = {
  name : string;
  columns : column list;
  primary_key : string list;
  unique_keys : string list list;
  foreign_keys : foreign_key list;
}

let column ?(nullable = false) col_name col_type = { col_name; col_type; nullable }

let find_column t name =
  List.find_opt (fun c -> String.equal c.col_name name) t.columns

let column_index t name =
  let rec go i = function
    | [] -> None
    | c :: _ when String.equal c.col_name name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let column_names t = List.map (fun c -> c.col_name) t.columns
let arity t = List.length t.columns
let keys t = (if t.primary_key = [] then [] else [ t.primary_key ]) @ t.unique_keys

let make ?(primary_key = []) ?(unique_keys = []) ?(foreign_keys = []) name columns =
  if columns = [] then invalid_arg "Schema.make: no columns";
  let names = List.map (fun c -> c.col_name) columns in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg ("Schema.make: duplicate column names in " ^ name);
  let check_cols what cols =
    List.iter
      (fun c ->
        if not (List.mem c names) then
          invalid_arg
            (Printf.sprintf "Schema.make: %s column %s not in table %s" what c name))
      cols
  in
  check_cols "primary key" primary_key;
  List.iter (check_cols "unique key") unique_keys;
  List.iter (fun fk -> check_cols "foreign key" fk.fk_columns) foreign_keys;
  { name; columns; primary_key; unique_keys; foreign_keys }

let pp fmt t =
  let pp_col fmt c =
    Format.fprintf fmt "%s %a%s" c.col_name Datatype.pp c.col_type
      (if c.nullable then "" else " NOT NULL")
  in
  Format.fprintf fmt "@[<v 2>CREATE TABLE %s (@,%a" t.name
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@,") pp_col)
    t.columns;
  if t.primary_key <> [] then
    Format.fprintf fmt ",@,PRIMARY KEY (%s)" (String.concat ", " t.primary_key);
  List.iter
    (fun k -> Format.fprintf fmt ",@,UNIQUE (%s)" (String.concat ", " k))
    t.unique_keys;
  List.iter
    (fun fk ->
      Format.fprintf fmt ",@,FOREIGN KEY (%s) REFERENCES %s (%s)"
        (String.concat ", " fk.fk_columns)
        fk.fk_table
        (String.concat ", " fk.fk_ref_columns))
    t.foreign_keys;
  Format.fprintf fmt ")@]"
