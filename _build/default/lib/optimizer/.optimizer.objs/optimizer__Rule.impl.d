lib/optimizer/rule.ml: Ident List Logical Pattern Props Relalg Scalar Storage
