lib/optimizer/rules_extra.ml: Logical Pattern Props Relalg Rule Scalar
