lib/core/arggen.ml: Aggregate Array Catalog Datatype Fun Ident List Logical Option Prng Props Relalg Scalar Schema Storage String Table Value
