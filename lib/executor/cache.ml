module PTbl = Optimizer.Physical.Tbl

(* Execution results keyed by the structural fingerprint of the physical
   plan. The store is per-domain (Domain.DLS), matching the [lib/par]
   discipline: no locks on the hot path, no cross-domain sharing of the
   mutable table, and — because hits and misses never leak into any
   reported count — [--jobs N] output stays byte-identical to [--jobs 1]
   even though each domain warms its own cache. Callers that report
   execution totals must count *logical* executions (increment whether
   or not the run was served from cache).

   Plans from different catalogs may collide structurally, so the store
   remembers which catalog filled it and resets on (physical) catalog
   change; tests and multi-catalog tools get isolation for free.

   Below the per-domain memory tier sits an optional shared disk tier
   ([set_disk]): misses consult a [Storage.Diskcache] entry keyed by the
   caller-supplied catalog key plus the plan fingerprint, and computed
   results are written back. Entries store the full plan alongside the
   result and are only served on structural [Physical.equal] — a
   fingerprint (or filename) collision degrades to a miss, never to a
   wrong result. The disk tier is configured once at startup, before
   any worker domains spawn. *)

type store = {
  mutable catalog : Storage.Catalog.t option;
  tbl : (Resultset.t, string) result PTbl.t;
}

let key =
  Domain.DLS.new_key (fun () -> { catalog = None; tbl = PTbl.create 256 })

let hits_c = Obs.Metrics.counter "executor.result_cache.hits"
let miss_c = Obs.Metrics.counter "executor.result_cache.misses"
let disk_hit_c = Obs.Metrics.counter "executor.result_cache.disk_hits"
let disk_miss_c = Obs.Metrics.counter "executor.result_cache.disk_misses"
let disk_store_c = Obs.Metrics.counter "executor.result_cache.disk_stores"

(* Per-site attribution: the same totals, additionally keyed by which
   caller asked (validate vs triage-oracle vs replay ...), so `qtr
   stats`/`qtr report` can say who benefits from the cache and who only
   fills it. Sites are a small closed set of short strings, so the
   labeled-counter registry stays tiny. *)
let site_hit site = Obs.Metrics.counter ~label:site "executor.result_cache.hits"
let site_miss site = Obs.Metrics.counter ~label:site "executor.result_cache.misses"

(* Safety valve against unbounded growth in very long sessions; far
   above what a validate or reduce run touches. *)
let max_entries = 8192

let disk_ns = "results"

(* Written once during CLI startup, read by every domain afterwards: an
   immutable option behind a plain reference is race-free for that
   pattern. *)
let disk : (Storage.Diskcache.t * string) option ref = ref None
let set_disk d = disk := d

let disk_key catkey plan =
  Printf.sprintf "%s/%x" catkey (Optimizer.Physical.fingerprint plan)

let disk_load plan =
  match !disk with
  | None -> None
  | Some (dc, catkey) -> (
    Obs.Trace.with_span "cache.disk.load" @@ fun () ->
    match
      (Storage.Diskcache.load dc ~ns:disk_ns ~key:(disk_key catkey plan)
        : (Optimizer.Physical.t * (Resultset.t, string) result) option)
    with
    | Some (stored_plan, r) when Optimizer.Physical.equal stored_plan plan ->
      Obs.Metrics.incr disk_hit_c;
      Some r
    | Some _ | None ->
      Obs.Metrics.incr disk_miss_c;
      None)

let disk_store plan r =
  match !disk with
  | None -> ()
  | Some (dc, catkey) ->
    Obs.Trace.with_span "cache.disk.store" @@ fun () ->
    if Storage.Diskcache.store dc ~ns:disk_ns ~key:(disk_key catkey plan) (plan, r)
    then Obs.Metrics.incr disk_store_c

let run ?(site = "adhoc") catalog plan =
  let s = Domain.DLS.get key in
  (match s.catalog with
  | Some c when c == catalog -> ()
  | _ ->
    PTbl.reset s.tbl;
    s.catalog <- Some catalog);
  match PTbl.find_opt s.tbl plan with
  | Some r ->
    Obs.Metrics.incr hits_c;
    Obs.Metrics.incr (site_hit site);
    r
  | None ->
    Obs.Metrics.incr miss_c;
    Obs.Metrics.incr (site_miss site);
    let r, from_disk =
      match disk_load plan with
      | Some r -> (r, true)
      | None -> (Exec.run catalog plan, false)
    in
    (* Pre-sort on the owning domain so a cached result handed to later
       bag comparisons is already normalized (and never mutated by a
       reader on another domain). *)
    (match r with
    | Ok rs -> ignore (Resultset.normalized rs)
    | Error _ -> ());
    if not from_disk then disk_store plan r;
    if PTbl.length s.tbl >= max_entries then PTbl.reset s.tbl;
    PTbl.add s.tbl plan r;
    r

let clear () =
  let s = Domain.DLS.get key in
  PTbl.reset s.tbl;
  s.catalog <- None
