(** Table schemas: columns, primary/unique keys, foreign keys. *)

type column = {
  col_name : string;
  col_type : Datatype.t;
  nullable : bool;
}

type foreign_key = {
  fk_columns : string list;  (** referencing columns, in this table *)
  fk_table : string;  (** referenced table name *)
  fk_ref_columns : string list;  (** referenced columns (its key) *)
}

type t = {
  name : string;
  columns : column list;
  primary_key : string list;  (** empty when the table has no PK *)
  unique_keys : string list list;  (** additional unique keys *)
  foreign_keys : foreign_key list;
}

val make :
  ?primary_key:string list ->
  ?unique_keys:string list list ->
  ?foreign_keys:foreign_key list ->
  string ->
  column list ->
  t
(** [make name columns] builds a schema, validating that key and FK columns
    exist and that column names are distinct. Raises [Invalid_argument]
    otherwise. *)

val column : ?nullable:bool -> string -> Datatype.t -> column
(** Column constructor; [nullable] defaults to [false]. *)

val find_column : t -> string -> column option
val column_index : t -> string -> int option
val column_names : t -> string list
val arity : t -> int

val keys : t -> string list list
(** Primary key (if any) followed by unique keys. *)

val pp : Format.formatter -> t -> unit
(** CREATE TABLE-style rendering. *)
