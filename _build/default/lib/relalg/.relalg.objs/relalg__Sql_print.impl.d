lib/relalg/sql_print.ml: Aggregate Buffer Ident List Logical Printf Scalar Storage String
