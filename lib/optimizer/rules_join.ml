(* The join family, stated in the rewrite DSL (lib/dsl/rdsl.ml) and
   compiled to engine rules. The original closure implementations are kept
   below as [closure_rules]: test_dsl.ml checks rule-by-rule that the
   compiled DSL rules produce identical substitutes on random trees, and
   the registry would fall back to them if a rule ever outgrew the DSL. *)

open Relalg
module L = Logical
module S = Scalar
module R = Dsl.Rdsl

(* Metavariable conventions: relations A=0, B=1, C=2; predicates p0, p1
   with join binders numbered innermost-first (so a Filter-over-Join lhs
   binds the join's predicate as p0 and the filter's as p1). *)
let a = R.Var 0
let b = R.Var 1
let c = R.Var 2
let p0 = R.Pvar 0
let p1 = R.Pvar 1

(* Push a filter below a join onto the side(s) legal for the kind:
   Filter[p1](Join[p0](A, B)) ->
   Filter?[resid](Join[p0](Filter?[part_A](A), Filter?[part_B](B))),
   the right part split from the residual left behind by the left split. *)
let push_select kind name ~left_ok ~right_ok : R.rule =
  let after_left = if left_ok then R.Presid (p1, R.Rels [ 0 ]) else p1 in
  let after_right = if right_ok then R.Presid (after_left, R.Rels [ 1 ]) else after_left in
  let wrap ok part child = if ok then R.Filter_nontrivial (part, child) else child in
  { name;
    lhs = R.Filter (p1, R.Join (kind, p0, a, b));
    rhs =
      R.Filter_nontrivial
        ( after_right,
          R.Join
            ( kind,
              p0,
              wrap left_ok (R.Ppart (p1, R.Rels [ 0 ])) a,
              wrap right_ok (R.Ppart (after_left, R.Rels [ 1 ])) b ) );
    sides =
      [ R.Some_pushed
          ((if left_ok then [ (p1, R.Rels [ 0 ]) ] else [])
          @ if right_ok then [ (after_left, R.Rels [ 1 ]) ] else []) ] }

(* A filter null-rejecting on the padded side turns an outer join into a
   stricter join. *)
let simplify_outer kind name ~reject_left ~result_kind : R.rule =
  { name;
    lhs = R.Filter (p1, R.Join (kind, p0, a, b));
    rhs = R.Filter (p1, R.Join (result_kind, p0, a, b));
    sides = [ R.Null_rejecting (1, [ (if reject_left then 0 else 1) ]) ] }

(* Join(A,B) -> Project[original order](Join(B,A)): the identity projection
   restores the output column order positional consumers rely on. *)
let commute kind name ~flipped : R.rule =
  { name;
    lhs = R.Join (kind, p0, a, b);
    rhs = R.Keep_schema (R.Join (flipped, p0, b, a));
    sides = [] }

let dsl : R.rule list =
  [ commute L.Inner "JoinCommute" ~flipped:L.Inner;
    (* (A join B) join C -> A join (B join C); conjuncts scoped to B u C
       sink into the new inner join *)
    { name = "JoinAssocLeft";
      lhs = R.Join (L.Inner, p1, R.Join (L.Inner, p0, a, b), c);
      rhs =
        R.Join
          ( L.Inner,
            R.Presid (R.Pand (p0, p1), R.Rels [ 1; 2 ]),
            a,
            R.Join (L.Inner, R.Ppart (R.Pand (p0, p1), R.Rels [ 1; 2 ]), b, c) );
      sides = [] };
    { name = "JoinAssocRight";
      lhs = R.Join (L.Inner, p1, a, R.Join (L.Inner, p0, b, c));
      rhs =
        R.Join
          ( L.Inner,
            R.Presid (R.Pand (p0, p1), R.Rels [ 0; 1 ]),
            R.Join (L.Inner, R.Ppart (R.Pand (p0, p1), R.Rels [ 0; 1 ]), a, b),
            c );
      sides = [] };
    { name = "CrossJoinToInnerJoin";
      lhs = R.Join (L.Cross, p0, a, b);
      rhs = R.Join (L.Inner, R.Ptrue, a, b);
      sides = [] };
    { name = "MergeSelectIntoJoin";
      lhs = R.Filter (p1, R.Join (L.Inner, p0, a, b));
      rhs = R.Join (L.Inner, R.Pand (p0, p1), a, b);
      sides = [] };
    { name = "SelectCrossToInnerJoin";
      lhs = R.Filter (p1, R.Join (L.Cross, p0, a, b));
      rhs = R.Join (L.Inner, p1, a, b);
      sides = [] };
    push_select L.Inner "PushSelectBelowJoin" ~left_ok:true ~right_ok:true;
    push_select L.Cross "PushSelectBelowCrossJoin" ~left_ok:true ~right_ok:true;
    push_select L.LeftOuter "PushSelectBelowLeftOuterJoin" ~left_ok:true ~right_ok:false;
    push_select L.RightOuter "PushSelectBelowRightOuterJoin" ~left_ok:false ~right_ok:true;
    push_select L.Semi "PushSelectBelowSemiJoin" ~left_ok:true ~right_ok:false;
    push_select L.AntiSemi "PushSelectBelowAntiSemiJoin" ~left_ok:true ~right_ok:false;
    simplify_outer L.LeftOuter "SimplifyLeftOuterJoin" ~reject_left:false
      ~result_kind:L.Inner;
    simplify_outer L.RightOuter "SimplifyRightOuterJoin" ~reject_left:true
      ~result_kind:L.Inner;
    simplify_outer L.FullOuter "SimplifyFullOuterJoinToRight" ~reject_left:false
      ~result_kind:L.RightOuter;
    simplify_outer L.FullOuter "SimplifyFullOuterJoinToLeft" ~reject_left:true
      ~result_kind:L.LeftOuter;
    commute L.LeftOuter "LeftOuterJoinCommute" ~flipped:L.RightOuter;
    commute L.RightOuter "RightOuterJoinCommute" ~flipped:L.LeftOuter;
    commute L.FullOuter "FullOuterJoinCommute" ~flipped:L.FullOuter;
    (* the paper's running example: R join (S LOJ T) -> (R join S) LOJ T,
       legal when the join predicate does not touch T *)
    { name = "JoinLeftOuterJoinAssoc";
      lhs = R.Join (L.Inner, p1, a, R.Join (L.LeftOuter, p0, b, c));
      rhs = R.Join (L.LeftOuter, p0, R.Join (L.Inner, p1, a, b), c);
      sides = [ R.Scoped_within (1, [ 0; 1 ]) ] };
    (* Semi(A,B,p) -> project_A(A join B) when B matches each A row at most
       once: the equi-join columns on B's side cover a key of B *)
    { name = "SemiJoinToInnerJoin";
      lhs = R.Join (L.Semi, p0, a, b);
      rhs = R.Keep_schema (R.Join (L.Inner, p0, a, b));
      sides = [ R.Key_within_equi (0, 0, 1) ] } ]

let rules = List.map R.compile dsl

(* ------------------------------------------------------------------ *)
(* The original closure implementations (parity reference / fallback). *)
(* ------------------------------------------------------------------ *)

let ( let* ) o f = match o with Ok v -> f v | Error _ -> []
let schema = Props.schema

let join_commute =
  Rule.make "JoinCommute"
    (Pattern.Op (L.KJoin L.Inner, [ Pattern.Any; Pattern.Any ]))
    (fun cat t ->
      match t with
      | L.Join ({ kind = L.Inner; left; right; _ } as j) ->
        let* cols = schema cat t in
        [ Rule.identity_project cols (L.Join { j with left = right; right = left }) ]
      | _ -> [])

let join_assoc_left =
  Rule.make "JoinAssocLeft"
    (Pattern.Op
       ( L.KJoin L.Inner,
         [ Pattern.Op (L.KJoin L.Inner, [ Pattern.Any; Pattern.Any ]); Pattern.Any ] ))
    (fun cat t ->
      match t with
      | L.Join
          { kind = L.Inner;
            pred = p2;
            left = L.Join { kind = L.Inner; pred = p1; left = a; right = b };
            right = c } ->
        let bc = Ident.Set.union (Props.output_idents cat b) (Props.output_idents cat c) in
        let inner, outer = Rule.split_by_scope (S.And (p1, p2)) bc in
        [ L.Join
            { kind = L.Inner;
              pred = outer;
              left = a;
              right = L.Join { kind = L.Inner; pred = inner; left = b; right = c } } ]
      | _ -> [])

let join_assoc_right =
  Rule.make "JoinAssocRight"
    (Pattern.Op
       ( L.KJoin L.Inner,
         [ Pattern.Any; Pattern.Op (L.KJoin L.Inner, [ Pattern.Any; Pattern.Any ]) ] ))
    (fun cat t ->
      match t with
      | L.Join
          { kind = L.Inner;
            pred = p2;
            left = a;
            right = L.Join { kind = L.Inner; pred = p1; left = b; right = c } } ->
        let ab = Ident.Set.union (Props.output_idents cat a) (Props.output_idents cat b) in
        let inner, outer = Rule.split_by_scope (S.And (p1, p2)) ab in
        [ L.Join
            { kind = L.Inner;
              pred = outer;
              left = L.Join { kind = L.Inner; pred = inner; left = a; right = b };
              right = c } ]
      | _ -> [])

let cross_to_inner =
  Rule.make "CrossJoinToInnerJoin"
    (Pattern.Op (L.KJoin L.Cross, [ Pattern.Any; Pattern.Any ]))
    (fun _cat t ->
      match t with
      | L.Join { kind = L.Cross; left; right; _ } ->
        [ L.Join { kind = L.Inner; pred = S.true_; left; right } ]
      | _ -> [])

let merge_select_into_join =
  Rule.make "MergeSelectIntoJoin"
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KJoin L.Inner, [ Pattern.Any; Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child = L.Join ({ kind = L.Inner; _ } as j) } ->
        [ L.Join { j with pred = S.And (j.pred, pred) } ]
      | _ -> [])

let select_cross_to_inner =
  Rule.make "SelectCrossToInnerJoin"
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KJoin L.Cross, [ Pattern.Any; Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child = L.Join { kind = L.Cross; left; right; _ } } ->
        [ L.Join { kind = L.Inner; pred; left; right } ]
      | _ -> [])

(* Push a filter below a join, onto the side(s) it scopes to. *)
let push_select_closure kind name ~left_ok ~right_ok =
  Rule.make name
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KJoin kind, [ Pattern.Any; Pattern.Any ]) ]))
    (fun cat t ->
      match t with
      | L.Filter { pred; child = L.Join ({ kind = k; left; right; _ } as j) }
        when k = kind ->
        let lids = Props.output_idents cat left in
        let rids = Props.output_idents cat right in
        let pl, rest = if left_ok then Rule.split_by_scope pred lids else (S.true_, pred) in
        let pr, rest = if right_ok then Rule.split_by_scope rest rids else (S.true_, rest) in
        if S.equal pl S.true_ && S.equal pr S.true_ then []
        else
          let wrap pred child = if S.equal pred S.true_ then child else L.Filter { pred; child } in
          [ wrap rest (L.Join { j with left = wrap pl left; right = wrap pr right }) ]
      | _ -> [])

let push_select_below_join =
  push_select_closure L.Inner "PushSelectBelowJoin" ~left_ok:true ~right_ok:true

let push_select_below_cross =
  push_select_closure L.Cross "PushSelectBelowCrossJoin" ~left_ok:true ~right_ok:true

let push_select_below_loj =
  push_select_closure L.LeftOuter "PushSelectBelowLeftOuterJoin" ~left_ok:true ~right_ok:false

let push_select_below_roj =
  push_select_closure L.RightOuter "PushSelectBelowRightOuterJoin" ~left_ok:false ~right_ok:true

let push_select_below_semi =
  push_select_closure L.Semi "PushSelectBelowSemiJoin" ~left_ok:true ~right_ok:false

let push_select_below_anti =
  push_select_closure L.AntiSemi "PushSelectBelowAntiSemiJoin" ~left_ok:true ~right_ok:false

(* Filter null-rejecting on the padded side turns an outer join into a
   stricter join. *)
let simplify_outer_closure kind name ~reject_left ~result_kind =
  Rule.make name
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KJoin kind, [ Pattern.Any; Pattern.Any ]) ]))
    (fun cat t ->
      match t with
      | L.Filter { pred; child = L.Join ({ kind = k; left; right; _ } as j) }
        when k = kind ->
        let side = if reject_left then left else right in
        let side_ids = Props.output_idents cat side in
        if S.is_null_rejecting pred side_ids then
          [ L.Filter { pred; child = L.Join { j with kind = result_kind } } ]
        else []
      | _ -> [])

let simplify_loj =
  simplify_outer_closure L.LeftOuter "SimplifyLeftOuterJoin" ~reject_left:false
    ~result_kind:L.Inner

let simplify_roj =
  simplify_outer_closure L.RightOuter "SimplifyRightOuterJoin" ~reject_left:true
    ~result_kind:L.Inner

let simplify_foj_to_roj =
  simplify_outer_closure L.FullOuter "SimplifyFullOuterJoinToRight" ~reject_left:false
    ~result_kind:L.RightOuter

let simplify_foj_to_loj =
  simplify_outer_closure L.FullOuter "SimplifyFullOuterJoinToLeft" ~reject_left:true
    ~result_kind:L.LeftOuter

let commute_outer kind name ~flipped =
  Rule.make name
    (Pattern.Op (L.KJoin kind, [ Pattern.Any; Pattern.Any ]))
    (fun cat t ->
      match t with
      | L.Join ({ kind = k; left; right; _ } as j) when k = kind ->
        let* cols = schema cat t in
        [ Rule.identity_project cols
            (L.Join { j with kind = flipped; left = right; right = left }) ]
      | _ -> [])

let loj_commute = commute_outer L.LeftOuter "LeftOuterJoinCommute" ~flipped:L.RightOuter
let roj_commute = commute_outer L.RightOuter "RightOuterJoinCommute" ~flipped:L.LeftOuter
let foj_commute = commute_outer L.FullOuter "FullOuterJoinCommute" ~flipped:L.FullOuter

(* The paper's running example: R join (S LOJ T) -> (R join S) LOJ T, legal
   when the join predicate does not touch T. *)
let join_loj_assoc =
  Rule.make "JoinLeftOuterJoinAssoc"
    (Pattern.Op
       ( L.KJoin L.Inner,
         [ Pattern.Any;
           Pattern.Op (L.KJoin L.LeftOuter, [ Pattern.Any; Pattern.Any ]) ] ))
    (fun cat t ->
      match t with
      | L.Join
          { kind = L.Inner;
            pred = p1;
            left = r;
            right = L.Join { kind = L.LeftOuter; pred = p2; left = s; right = tt } } ->
        let rs = Ident.Set.union (Props.output_idents cat r) (Props.output_idents cat s) in
        if Ident.Set.subset (S.columns p1) rs then
          [ L.Join
              { kind = L.LeftOuter;
                pred = p2;
                left = L.Join { kind = L.Inner; pred = p1; left = r; right = s };
                right = tt } ]
        else []
      | _ -> [])

(* Semi(A,B,p) -> project_A(A join B) when B matches each A row at most
   once: the equi-join columns on B's side cover a key of B. *)
let semi_to_inner =
  Rule.make "SemiJoinToInnerJoin"
    (Pattern.Op (L.KJoin L.Semi, [ Pattern.Any; Pattern.Any ]))
    (fun cat t ->
      match t with
      | L.Join { kind = L.Semi; pred; left; right } ->
        let lids = Props.output_idents cat left in
        let rids = Props.output_idents cat right in
        let _, rcols = Props.equi_join_columns pred lids rids in
        if Props.has_key_within cat right rcols then
          let* lcols = schema cat left in
          [ Rule.identity_project lcols
              (L.Join { kind = L.Inner; pred; left; right }) ]
        else []
      | _ -> [])

let closure_rules =
  [ join_commute; join_assoc_left; join_assoc_right; cross_to_inner;
    merge_select_into_join; select_cross_to_inner; push_select_below_join;
    push_select_below_cross; push_select_below_loj; push_select_below_roj;
    push_select_below_semi; push_select_below_anti; simplify_loj; simplify_roj;
    simplify_foj_to_roj; simplify_foj_to_loj; loj_commute; roj_commute;
    foj_commute; join_loj_assoc; semi_to_inner ]
