(** Versioned on-disk key/value store backing the warm-start caches
    (executor result cache, §5 edge-cost matrices).

    Entries are [Marshal]ed payloads under a header carrying a magic
    string, a format version (including [Sys.ocaml_version] and a
    caller-supplied salt), the full key, and an MD5 of the payload
    bytes. Every mismatch — missing file, stale version, truncated or
    bit-flipped payload, filename collision — loads as [None], never as
    an error: a bad cache behaves like an empty one. Writes are
    write-to-temp-then-rename in the target directory, so concurrent
    writers and crashed runs can't leave a partial entry visible.

    Type safety is the caller's contract: a [(ns, key)] pair must always
    be written and read at one type (the version salt is the lever —
    bump it whenever the stored type changes shape). *)

type t

val create : ?version:string -> dir:string -> unit -> t
(** Opens (creating directories as needed) a cache rooted at [dir].
    [version] salts the on-disk version string; entries written under a
    different salt load as misses. *)

val dir : t -> string

val path : t -> ns:string -> key:string -> string
(** The file an entry lives at — exposed for tests and diagnostics. *)

val store : t -> ns:string -> key:string -> 'a -> bool
(** Atomically persists [v] under [(ns, key)]. [false] on I/O failure
    (unwritable directory, full disk) — callers treat this as
    "cache unavailable", not as an error. *)

val load : t -> ns:string -> key:string -> 'a option
(** [None] unless a complete, digest-verified entry written by the same
    format/compiler/salt under exactly this key exists. *)

val entries : t -> ns:string -> int
(** Number of entries currently stored under [ns]. *)
