(** The optimizer's search engine.

    A Volcano-style exhaustive transformation closure: starting from the
    input logical tree, every enabled exploration rule is applied at every
    node of every (deduplicated) tree until fixpoint or budget; every
    explored tree is then costed through the implementation rules, with
    planning memoized per logical subtree. The engine provides the two
    extensions the paper requires of the DBMS (§2.3):

    - tracking which rules are exercised during an optimization
      ([RuleSet(q)], the [exercised] field), and
    - optimizing with a given set of rules disabled
      ([Plan(q, ¬R)], the [disabled] option).

    Because disabling a rule only removes trees from the closure (and
    plans from the implementation alternatives), the engine is
    "well-behaved" in the paper's §5.2 sense: [Cost(q) <= Cost(q, ¬R)]
    whenever the closure completes within budget.

    Internally every tree is hash-consed ({!Relalg.Hashcons}): the
    closure's seen set, the rewrite memo, the planner cache and the
    cardinality memos all key on the interned node id — one int compare —
    and the rewrites of each distinct subtree are computed once and
    replayed for every containing tree (Cascades-memo behaviour). The
    [memoize] option turns the replay off, restoring the original
    recompute-per-tree engine; both paths enumerate rewrites in the same
    order, so they admit bit-identical closures even when [max_trees]
    truncates — the equivalence the property tests assert. *)

module SSet : Set.S with type elt = string

type options = {
  disabled : SSet.t;  (** rule names (logical or implementation) to turn off *)
  max_trees : int;  (** exploration budget; default 1200 *)
  max_growth : int;  (** max extra operators over the input size; default 6 *)
  memoize : bool;
      (** replay per-subtree rewrite memos instead of recomputing rule
          applications for every containing tree; default [true].
          Observationally equivalent either way — [false] exists for
          equivalence tests and before/after benchmarks. *)
}

val default_options : options

type result = {
  best_logical : Relalg.Logical.t;
  plan : Physical.t;
  cost : float;
  exercised : SSet.t;  (** logical (exploration) rules exercised *)
  impl_exercised : SSet.t;  (** implementation rules exercised *)
  trees_explored : int;
  budget_truncated : bool;
      (** the [max_trees] budget truncated the closure: some rewrites
          were discovered but never explored, so [exercised] (and the
          chosen plan) may under-report what an unbounded search would
          find. Callers doing coverage analysis should surface this. *)
}

val optimize :
  ?options:options ->
  ?rules:Rule.t list ->
  Storage.Catalog.t ->
  Relalg.Logical.t ->
  (result, string) Stdlib.result
(** Full optimization: explore, then cost. Fails when the input tree is
    invalid, or no physical plan exists (e.g. all implementation rules for
    some operator are disabled). [rules] overrides the exploration-rule
    registry (default {!Rules.all}) — used to inject deliberately broken
    rules in correctness-testing demonstrations. *)

val ruleset :
  ?options:options ->
  ?rules:Rule.t list ->
  Storage.Catalog.t ->
  Relalg.Logical.t ->
  (SSet.t, string) Stdlib.result
(** [RuleSet(q)]: the logical rules exercised when optimizing [q] —
    exploration only, skipping the costing phase (used by the coverage
    experiments, which never execute queries). *)

val implementation_rule_names : string list
(** Names of the implementation rules (disjoint from {!Rules.names}). *)

(** {2 Shared exploration}

    The compression algorithms need [Cost(q, ¬R)] for the same query
    under many different disabled sets (one per edge of the suite-versus-
    target cost matrix, Figures 12–14). Re-running the full closure for
    each is wasteful: by the engine's well-behavedness, the closure under
    [¬R] is exactly the subset of the full closure derivable without the
    rules in [R]. {!explore_shared} explores once with all rules enabled
    and tags every tree with the minimal sets of rule names used along
    its derivation paths; {!shared_cost} then serves any [¬R] by keeping
    the trees with a tag set disjoint from [R] and re-costing — a cheap
    filtered pass over an already-built closure, through a plan memo
    shared across all the passes.

    Exact when the closure completes within budget and the per-tree tag
    antichain never overflows its cap; tag-cap overflow alone is
    conservative in the direction §5.2 allows (a tree may be excluded
    from some [¬R] closure, never wrongly included, so the reported cost
    is >= the from-scratch one). Under budget {e truncation} the shared
    and from-scratch costs become incomparable — both are upper bounds on
    the untruncated [Cost(q, ¬R)], but the all-rules frontier differs
    from the [¬R] frontier, so either may win. Two facts survive
    truncation: [shared_cost ~disabled:SSet.empty] equals {!optimize}'s
    cost exactly, and any [shared_cost] is >= the all-rules optimum
    (the surviving trees are a subset of the very closure it searched). *)

type shared

val explore_shared :
  ?options:options ->
  ?rules:Rule.t list ->
  Storage.Catalog.t ->
  Relalg.Logical.t ->
  (shared, string) Stdlib.result
(** One full exploration with derivation tags, reusable for any disabled
    set. Fails when the input tree is invalid. *)

val shared_cost : shared -> disabled:SSet.t -> (float, string) Stdlib.result
(** Best plan cost over the trees of the shared closure derivable without
    [disabled]; implementation rules in [disabled] are honoured by the
    costing pass. Fails when no surviving tree has a physical plan. *)

val shared_truncated : shared -> bool
(** The tree budget truncated the underlying closure (costs for non-empty
    disabled sets are then conservative upper bounds). *)

val shared_exercised : shared -> SSet.t
(** Logical rules exercised by the underlying (all-rules) exploration. *)

val shared_trees : shared -> int
(** Number of trees in the shared closure. *)

(** {2 Telemetry}

    When [Obs.Metrics] collection is enabled the engine feeds:

    - ["optimizer.rule.attempts"{rule}] — rule application attempts
      (one per rule per node of every *distinct* subtree; with
      [memoize = false], of every node of every explored tree);
    - ["optimizer.rule.rewrites"{rule}] — rewrites those attempts
      produced (so [rewrites/attempts] is the rule's match rate);
    - ["optimizer.rule.match_ns"{rule}] — latency histogram of one
      application attempt, in nanoseconds;
    - ["optimizer.explore.trees"], ["optimizer.explore.queue_depth"],
      ["optimizer.explore.budget_exhausted"] — closure statistics;
    - ["optimizer.rewrite_memo.hits"/"optimizer.rewrite_memo.misses"] —
      the per-subtree rewrite memo (hit rate is the Cascades-style
      sharing factor of the closure);
    - ["optimizer.memo.hits"/"optimizer.memo.misses"] — the planner's
      per-subtree memo table;
    - ["optimizer.hashcons.nodes"] — live interned nodes (gauge);
    - ["optimizer.shared.explorations"/"optimizer.shared.cost_passes"] —
      shared-exploration usage.

    With a trace sink installed, [optimize] wraps exploration and
    costing in ["engine.explore"]/["engine.cost"] spans (shared
    exploration uses ["engine.explore_shared"]) and emits an
    ["explore.budget_exhausted"] instant event on truncation. *)
