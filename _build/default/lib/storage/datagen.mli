(** Deterministic TPC-H-schema data generator.

    The paper's evaluation (§6.1) runs against the TPC-H database. We
    regenerate a synthetic, deterministically seeded database with the same
    schema (8 tables, primary keys, foreign keys) so that every experiment
    is reproducible offline. Comment-like columns are nullable and carry
    occasional NULLs so outer-join and 3VL behaviour is exercised — a
    deliberate deviation from stock TPC-H, which is NULL-free. *)

val tpch_schemas : Schema.t list
(** The eight TPC-H table schemas. *)

val tpch : ?seed:int -> scale:float -> unit -> Catalog.t
(** [tpch ~scale ()] generates the full database. [scale] is the TPC-H
    scale factor: at [1.0], orders has 1500 * 1000 rows; the framework's
    tests use small scales (e.g. [0.001]). Minimum table sizes are clamped
    so every table is non-empty at any positive scale. *)

val micro : ?seed:int -> unit -> Catalog.t
(** A three-table toy catalog [t1(a,b,c)], [t2(d,e)], [t3(f,g)] with small
    integer domains — convenient for unit tests where hand-checking results
    matters more than realism. *)
