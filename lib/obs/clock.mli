(** Monotonic time. Wraps the CLOCK_MONOTONIC stub shipped with bechamel,
    so intervals are immune to wall-clock adjustments (NTP slew, DST) —
    the property bench timings and span durations rely on. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. Only differences are meaningful. *)

val now_s : unit -> float
(** The same instant in seconds. Drop-in replacement for the
    [Unix.gettimeofday]-based interval timing in benchmarks. *)

val ns_between : int64 -> int64 -> float
(** [ns_between t0 t1] is [t1 - t0] in nanoseconds as a float, clamped
    at zero. *)

val ns_to_ms : float -> float
val ns_to_us : float -> float
