(** Transformation rules: (name, pattern, substitution) triples (§3.1).

    [apply] is the substitution function: given a tree whose root matches
    [pattern], it returns zero or more equivalent trees. Returning [] means
    the rule's preconditions (beyond the pattern) did not hold — the
    pattern is necessary, not sufficient. A rule is {e exercised} when
    [apply] returns at least one substitute. *)

type t = {
  name : string;
  pattern : Pattern.t;
  apply : Storage.Catalog.t -> Relalg.Logical.t -> Relalg.Logical.t list;
}

val make :
  string ->
  Pattern.t ->
  (Storage.Catalog.t -> Relalg.Logical.t -> Relalg.Logical.t list) ->
  t
(** Wraps [apply] with the pattern check: the returned rule's [apply] is a
    no-op on trees whose root does not match [pattern]. When metrics are
    enabled, a non-matching root is additionally probed against the raw
    [apply]: if it would have produced substitutes, the
    [optimizer.rule.pattern_mismatch] counter (labelled with the rule
    name) is bumped — the rule's declared pattern and its implementation
    disagree, and the engine would silently never fire it. *)

(** {2 Helpers shared by rule implementations} *)

val subst :
  (Relalg.Ident.t -> Relalg.Scalar.t option) -> Relalg.Scalar.t -> Relalg.Scalar.t
(** Substitutes column references by expressions. *)

val positional_rename :
  Relalg.Props.col_info list ->
  Relalg.Props.col_info list ->
  Relalg.Ident.t ->
  Relalg.Ident.t
(** [positional_rename from_cols to_cols] maps the i-th ident of
    [from_cols] to the i-th of [to_cols]; other idents map to themselves. *)

val split_by_scope :
  Relalg.Scalar.t -> Relalg.Ident.Set.t -> Relalg.Scalar.t * Relalg.Scalar.t
(** [split_by_scope pred cols] splits the conjuncts of [pred] into (those
    referencing only [cols] — and at least one column, so constant
    conjuncts stay behind —, the rest). Both sides are [Scalar.true_] when
    empty. *)

val identity_project :
  Relalg.Props.col_info list -> Relalg.Logical.t -> Relalg.Logical.t
(** Project re-exporting exactly the given columns (used by rules that
    change column order and must restore it). *)

val null_safe_row_eq :
  Relalg.Props.col_info list -> Relalg.Props.col_info list -> Relalg.Scalar.t
(** Pairwise null-safe equality predicate
    [(a1 = b1 OR (a1 IS NULL AND b1 IS NULL)) AND ...] between two
    positionally-matched column lists. *)
