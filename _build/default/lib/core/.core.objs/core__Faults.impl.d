lib/core/faults.ml: Aggregate Ident List Logical Optimizer Props Relalg Scalar String
