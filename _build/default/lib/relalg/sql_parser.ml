open Sql_lexer

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { mutable toks : token list; catalog : Storage.Catalog.t }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let eat st tok =
  if peek st = tok then advance st
  else fail "expected %s, found %s" (token_to_string tok) (token_to_string (peek st))

let eat_kw st kw = eat st (KW kw)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (KW kw)

let ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | t -> fail "expected identifier, found %s" (token_to_string t)

let column_ident st =
  (* Either [alias.col] or the flat global spelling [alias_col]. *)
  let first = ident st in
  if accept st DOT then Ident.make first (ident st)
  else
    match Ident.of_sql first with
    | Some id -> id
    | None -> fail "not a column identifier: %s" first

(* ------------------------------------------------------------------ *)
(* Scalar expressions                                                  *)
(* ------------------------------------------------------------------ *)

let rec expr_or st =
  let lhs = expr_and st in
  if accept_kw st "OR" then Scalar.Or (lhs, expr_or st) else lhs

and expr_and st =
  let lhs = expr_not st in
  if accept_kw st "AND" then Scalar.And (lhs, expr_and st) else lhs

and expr_not st =
  if accept_kw st "NOT" then Scalar.Not (expr_not st) else expr_cmp st

and expr_cmp st =
  let lhs = expr_add st in
  match peek st with
  | EQ ->
    advance st;
    Scalar.Cmp (Scalar.Eq, lhs, expr_add st)
  | NE ->
    advance st;
    Scalar.Cmp (Scalar.Ne, lhs, expr_add st)
  | LT ->
    advance st;
    Scalar.Cmp (Scalar.Lt, lhs, expr_add st)
  | LE ->
    advance st;
    Scalar.Cmp (Scalar.Le, lhs, expr_add st)
  | GT ->
    advance st;
    Scalar.Cmp (Scalar.Gt, lhs, expr_add st)
  | GE ->
    advance st;
    Scalar.Cmp (Scalar.Ge, lhs, expr_add st)
  | KW "IS" ->
    advance st;
    if accept_kw st "NOT" then begin
      eat_kw st "NULL";
      Scalar.IsNotNull lhs
    end
    else begin
      eat_kw st "NULL";
      Scalar.IsNull lhs
    end
  | _ -> lhs

and expr_add st =
  let rec loop lhs =
    match peek st with
    | PLUS ->
      advance st;
      loop (Scalar.Arith (Scalar.Add, lhs, expr_mul st))
    | MINUS ->
      advance st;
      loop (Scalar.Arith (Scalar.Sub, lhs, expr_mul st))
    | _ -> lhs
  in
  loop (expr_mul st)

and expr_mul st =
  let rec loop lhs =
    match peek st with
    | STAR ->
      advance st;
      loop (Scalar.Arith (Scalar.Mul, lhs, expr_unary st))
    | SLASH ->
      advance st;
      loop (Scalar.Arith (Scalar.Div, lhs, expr_unary st))
    | _ -> lhs
  in
  loop (expr_unary st)

and expr_unary st =
  if accept st MINUS then Scalar.Neg (expr_unary st) else expr_atom st

and expr_atom st =
  match peek st with
  | INT n ->
    advance st;
    Scalar.Const (Storage.Value.Int n)
  | FLOAT f ->
    advance st;
    Scalar.Const (Storage.Value.Float f)
  | STRING s ->
    advance st;
    Scalar.Const (Storage.Value.Str s)
  | KW "NULL" ->
    advance st;
    Scalar.Const Storage.Value.Null
  | KW "TRUE" ->
    advance st;
    Scalar.Const (Storage.Value.Bool true)
  | KW "FALSE" ->
    advance st;
    Scalar.Const (Storage.Value.Bool false)
  | KW "DATE" ->
    advance st;
    (match peek st with
    | STRING s ->
      advance st;
      (match String.split_on_char '-' s with
      | [ y; m; d ] -> (
        match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
        | Some y, Some m, Some d ->
          Scalar.Const (Storage.Value.Date (Storage.Value.date_of_ymd y m d))
        | _ -> fail "bad date literal %s" s)
      | _ -> fail "bad date literal %s" s)
    | t -> fail "expected date string, found %s" (token_to_string t))
  | LPAREN ->
    advance st;
    let e = expr_or st in
    eat st RPAREN;
    e
  | IDENT _ -> Scalar.Col (column_ident st)
  | t -> fail "unexpected token in expression: %s" (token_to_string t)

(* ------------------------------------------------------------------ *)
(* Select statements                                                   *)
(* ------------------------------------------------------------------ *)

type select_item =
  | Item_star
  | Item_expr of Scalar.t * Ident.t option
  | Item_agg of Aggregate.t * Ident.t

type where_clause =
  | W_pred of Scalar.t
  | W_exists of bool * Logical.t * Scalar.t  (** negated?, subtree, predicate *)

let agg_keyword = function
  | KW ("COUNT" | "SUM" | "MIN" | "MAX" | "AVG") -> true
  | _ -> false

let out_ident st =
  let name = ident st in
  match Ident.of_sql name with
  | Some id -> id
  | None -> fail "output alias %s is not a column identifier" name

let rec select_item st =
  if accept st STAR then Item_star
  else if agg_keyword (peek st) then begin
    let kw = match peek st with KW k -> k | _ -> assert false in
    advance st;
    eat st LPAREN;
    let agg =
      if kw = "COUNT" && peek st = STAR then begin
        advance st;
        Aggregate.CountStar
      end
      else
        let e = expr_or st in
        match kw with
        | "COUNT" -> Aggregate.Count e
        | "SUM" -> Aggregate.Sum e
        | "MIN" -> Aggregate.Min e
        | "MAX" -> Aggregate.Max e
        | "AVG" -> Aggregate.Avg e
        | _ -> assert false
    in
    eat st RPAREN;
    eat_kw st "AS";
    Item_agg (agg, out_ident st)
  end
  else
    let e = expr_or st in
    if accept_kw st "AS" then Item_expr (e, Some (out_ident st))
    else Item_expr (e, None)

and select_items st =
  let first = select_item st in
  let rec loop acc = if accept st COMMA then loop (select_item st :: acc) else List.rev acc in
  loop [ first ]

(* FROM primaries: base table or parenthesized body. *)
and from_primary st =
  match peek st with
  | IDENT _ ->
    let table = ident st in
    eat_kw st "AS";
    let alias = ident st in
    if not (Storage.Catalog.mem st.catalog table) then
      fail "unknown table %s" table;
    Logical.Get { table; alias }
  | LPAREN ->
    advance st;
    let t = body st in
    eat st RPAREN;
    eat_kw st "AS";
    let _dalias = ident st in
    t
  | t -> fail "unexpected token in FROM: %s" (token_to_string t)

and from_clause st =
  let lhs = from_primary st in
  let rec loop lhs =
    match peek st with
    | KW "CROSS" ->
      advance st;
      eat_kw st "JOIN";
      let rhs = from_primary st in
      loop
        (Logical.Join { kind = Logical.Cross; pred = Scalar.true_; left = lhs; right = rhs })
    | KW "INNER" | KW "JOIN" | KW "LEFT" | KW "RIGHT" | KW "FULL" ->
      let kind =
        match peek st with
        | KW "INNER" ->
          advance st;
          Logical.Inner
        | KW "JOIN" -> Logical.Inner
        | KW "LEFT" ->
          advance st;
          ignore (accept_kw st "OUTER");
          Logical.LeftOuter
        | KW "RIGHT" ->
          advance st;
          ignore (accept_kw st "OUTER");
          Logical.RightOuter
        | KW "FULL" ->
          advance st;
          ignore (accept_kw st "OUTER");
          Logical.FullOuter
        | _ -> assert false
      in
      eat_kw st "JOIN";
      let rhs = from_primary st in
      eat_kw st "ON";
      let pred = expr_or st in
      loop (Logical.Join { kind; pred; left = lhs; right = rhs })
    | _ -> lhs
  in
  loop lhs

and where_clause st : where_clause =
  (* NOT only introduces an anti-semi-join when directly followed by
     EXISTS; otherwise it belongs to the predicate grammar. *)
  let negated =
    match st.toks with
    | KW "NOT" :: KW "EXISTS" :: _ ->
      advance st;
      true
    | _ -> false
  in
  if accept_kw st "EXISTS" then begin
    eat st LPAREN;
    eat_kw st "SELECT";
    (* The Sql_print form is SELECT 1 FROM (body) AS d WHERE pred. *)
    (match peek st with
    | INT _ ->
      advance st
    | STAR -> advance st
    | t -> fail "unexpected EXISTS select list: %s" (token_to_string t));
    eat_kw st "FROM";
    let sub = from_primary st in
    eat_kw st "WHERE";
    let pred = expr_or st in
    eat st RPAREN;
    W_exists (negated, sub, pred)
  end
  else if negated then W_pred (Scalar.Not (expr_or st))
  else W_pred (expr_or st)

and order_clause st =
  let one () =
    let id = column_ident st in
    let dir =
      if accept_kw st "DESC" then Logical.Desc
      else begin
        ignore (accept_kw st "ASC");
        Logical.Asc
      end
    in
    (id, dir)
  in
  let first = one () in
  let rec loop acc = if accept st COMMA then loop (one () :: acc) else List.rev acc in
  loop [ first ]

and select_stmt st : Logical.t =
  eat_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let items = select_items st in
  eat_kw st "FROM";
  let from = from_clause st in
  let where = if accept_kw st "WHERE" then Some (where_clause st) else None in
  let groupby =
    if accept_kw st "GROUP" then begin
      eat_kw st "BY";
      let first = column_ident st in
      let rec loop acc =
        if accept st COMMA then loop (column_ident st :: acc) else List.rev acc
      in
      Some (loop [ first ])
    end
    else None
  in
  let orderby =
    if accept_kw st "ORDER" then begin
      eat_kw st "BY";
      Some (order_clause st)
    end
    else None
  in
  let limit =
    if accept_kw st "LIMIT" then begin
      match peek st with
      | INT n ->
        advance st;
        Some n
      | t -> fail "expected integer after LIMIT, found %s" (token_to_string t)
    end
    else None
  in
  build st ~distinct ~items ~from ~where ~groupby ~orderby ~limit

and build st ~distinct ~items ~from ~where ~groupby ~orderby ~limit =
  let t = from in
  let t =
    match where with
    | None -> t
    | Some (W_pred pred) -> Logical.Filter { pred; child = t }
    | Some (W_exists (negated, sub, pred)) ->
      let kind = if negated then Logical.AntiSemi else Logical.Semi in
      Logical.Join { kind; pred; left = t; right = sub }
  in
  let is_agg = function Item_agg _ -> true | Item_star | Item_expr _ -> false in
  let t =
    if groupby <> None || List.exists is_agg items then begin
      let keys = Option.value groupby ~default:[] in
      let aggs =
        List.filter_map
          (function Item_agg (a, id) -> Some (id, a) | Item_star | Item_expr _ -> None)
          items
      in
      (* Non-aggregate items must be exactly the grouping keys. *)
      let plain =
        List.filter_map
          (function
            | Item_expr (Scalar.Col c, None) -> Some c
            | Item_expr (Scalar.Col c, Some id) when Ident.equal c id -> Some c
            | Item_expr _ -> fail "non-column item in aggregation select list"
            | Item_star -> fail "star mixed with aggregates"
            | Item_agg _ -> None)
          items
      in
      let same_keys =
        List.length keys = List.length plain
        && List.for_all2 Ident.equal keys plain
      in
      if not same_keys then fail "select list does not match GROUP BY keys"
      else Logical.GroupBy { keys; aggs; child = t }
    end
    else
      match items with
      | [ Item_star ] -> t
      | _ ->
        let cols =
          List.map
            (function
              | Item_expr (e, Some id) -> (id, e)
              | Item_expr (Scalar.Col c, None) -> (c, Scalar.Col c)
              | Item_expr _ -> fail "projection item without AS alias"
              | Item_star -> fail "star mixed with projection items"
              | Item_agg _ -> assert false)
            items
        in
        collapse_identity st (Logical.Project { cols; child = t })
  in
  let t = if distinct then Logical.Distinct t else t in
  let t =
    match orderby with None -> t | Some keys -> Logical.Sort { keys; child = t }
  in
  match limit with None -> t | Some count -> Logical.Limit { count; child = t }

(* Project that re-exports exactly the child's columns in order is the
   printer's encoding of a bare Get; drop it. *)
and collapse_identity st t =
  match t with
  | Logical.Project { cols; child } -> (
    match Props.schema st.catalog child with
    | Error _ -> t
    | Ok child_cols ->
      let identity =
        List.length cols = List.length child_cols
        && List.for_all2
             (fun (id, e) (ci : Props.col_info) ->
               Ident.equal id ci.id
               && match e with Scalar.Col c -> Ident.equal c ci.id | _ -> false)
             cols child_cols
      in
      if identity then child else t)
  | _ -> t

and body st : Logical.t =
  let term () =
    if peek st = LPAREN then begin
      advance st;
      let t = body st in
      eat st RPAREN;
      t
    end
    else select_stmt st
  in
  let lhs = term () in
  let rec loop lhs =
    match peek st with
    | KW "UNION" ->
      advance st;
      if accept_kw st "ALL" then loop (Logical.UnionAll (lhs, term ()))
      else loop (Logical.Union (lhs, term ()))
    | KW "INTERSECT" ->
      advance st;
      loop (Logical.Intersect (lhs, term ()))
    | KW "EXCEPT" ->
      advance st;
      loop (Logical.Except (lhs, term ()))
    | _ -> lhs
  in
  loop lhs

let parse catalog input =
  match tokenize input with
  | Error msg -> Error ("lex error: " ^ msg)
  | Ok toks -> (
    let st = { toks; catalog } in
    try
      let t = body st in
      if peek st <> EOF then
        Error ("parse error: trailing tokens at " ^ token_to_string (peek st))
      else Ok t
    with Parse_error msg -> Error ("parse error: " ^ msg))
