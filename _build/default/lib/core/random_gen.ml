open Storage

let generate ?(min_ops = 2) ?(max_ops = 10) (ctx : Arggen.ctx) =
  let target = Prng.int_in ctx.g (max 1 min_ops) (max min_ops max_ops) in
  let base = Arggen.fresh_get ctx in
  Arggen.pad ctx base (target - 1)
