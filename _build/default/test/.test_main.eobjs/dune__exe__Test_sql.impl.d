test/test_sql.ml: Aggregate Alcotest Core Executor Ident List Logical QCheck QCheck_alcotest Relalg Result Scalar Sql_parser Sql_print Storage
