lib/storage/value.ml: Buffer Datatype Float Format Hashtbl Option Printf Stdlib String
