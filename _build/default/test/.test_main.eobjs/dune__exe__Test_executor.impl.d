test/test_executor.ml: Alcotest Array Catalog Datatype Executor List Optimizer Relalg Result Schema Storage Table Value
