(** Derived logical properties: output schema, candidate keys, validity.

    Transformation-rule preconditions (group-by pull-up/push-down,
    outer-join simplification, distinct elimination, ...) are expressed in
    terms of these properties — the paper's point that a rule's pattern is
    a necessary but not sufficient firing condition (§3.1). *)

type col_info = {
  id : Ident.t;
  ty : Storage.Datatype.t;
  nullable : bool;
}

val clear : unit -> unit
(** Drop the calling domain's schema/keys memo tables. The caches flush
    themselves when the catalog changes; [clear] is for long-lived
    processes (benchmarks, tests) that want to release the retained
    trees between phases. *)

val schema :
  Storage.Catalog.t -> Logical.t -> (col_info list, string) result
(** Output columns of a tree, in order. Fails when the tree is ill-formed
    (unknown table/column, type error, arity mismatch, ...). *)

val schema_exn : Storage.Catalog.t -> Logical.t -> col_info list
val output_idents : Storage.Catalog.t -> Logical.t -> Ident.Set.t
val env_of : col_info list -> Scalar.env

val keys : Storage.Catalog.t -> Logical.t -> Ident.Set.t list
(** Candidate keys of the output (conservative under-approximation). A
    returned [Ident.Set.empty] means the output has at most one row. For an
    ill-formed tree, returns []. *)

val has_key_within : Storage.Catalog.t -> Logical.t -> Ident.Set.t -> bool
(** [has_key_within cat t cols]: some candidate key of [t] is a subset of
    [cols]. *)

val validate : Storage.Catalog.t -> Logical.t -> (unit, string) result
(** Full well-formedness check of every operator in the tree: column
    scoping, expression typing, set-operation compatibility, distinct
    output names, unique relation aliases. *)

val equi_join_columns : Scalar.t -> Ident.Set.t -> Ident.Set.t -> Ident.Set.t * Ident.Set.t
(** [equi_join_columns pred left right] returns the columns of each side
    equated across sides by top-level [Eq] conjuncts of [pred]. *)
