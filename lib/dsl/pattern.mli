(** Rule patterns (paper §3.1, Figure 3).

    A pattern is the operator shape that must be present in a logical tree
    for a rule to be considered — a {e necessary} (not sufficient) firing
    condition. Concrete nodes name an operator kind; [Any] is the generic
    placeholder (drawn as a circle in the paper) that matches any operator
    subtree.

    The DBMS side of the paper exports rule patterns through a new API in
    XML; {!to_xml}/{!of_xml} reproduce that interface. *)

type t =
  | Op of Relalg.Logical.op_kind * t list
  | Any

val matches : t -> Relalg.Logical.t -> bool
(** Structural match at the root of the tree. *)

val matches_anywhere : t -> Relalg.Logical.t -> bool
(** Match at any node of the tree. *)

val size : t -> int
(** Number of concrete (non-[Any]) nodes. *)

val leaves : t -> int
(** Number of [Any] placeholders. *)

val substitute_leaf : t -> int -> t -> t option
(** [substitute_leaf p i q] replaces the [i]-th [Any] placeholder (in
    left-to-right order) of [p] with [q]; [None] when [i] is out of
    range. Used for rule-pair pattern composition (§3.2). *)

val to_xml : t -> string
(** E.g. [<op kind="Join"><any/><any/></op>]. *)

val of_xml : string -> (t, string) result
(** Inverse of {!to_xml}. *)

val pp : Format.formatter -> t -> unit
