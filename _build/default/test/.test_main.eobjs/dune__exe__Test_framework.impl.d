test/test_framework.ml: Alcotest Core Executor List Optimizer Printf Relalg Result Storage
