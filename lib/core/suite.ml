module L = Relalg.Logical

type target = Single of string | Pair of string * string

let target_name = function
  | Single r -> r
  | Pair (a, b) -> a ^ "+" ^ b

let rules_of = function Single r -> [ r ] | Pair (a, b) -> [ a; b ]

let all_pairs rules =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pairs := Pair (arr.(i), arr.(j)) :: !pairs
    done
  done;
  List.rev !pairs

type entry = { query : L.t; ruleset : Framework.SSet.t; cost : float }

type t = {
  k : int;
  targets : target list;
  entries : entry array;
  per_target : (target * int list) list;
}

type gen_method = Pattern_based | Random_based

(* Disjoint fresh-alias ranges for parallel generation: task [ti] draws
   aliases from [ti * fresh_stride] upward. 100k aliases per target is
   far beyond what 3k generation attempts can consume. *)
let fresh_stride = 100_000

type gen_record = {
  gr_target : target;
  gr_index : int;
  gr_deps : string list;
  gr_accepted : entry list;
  gr_reused : bool;
}

let make_generate_one ~gen ~extra_ops ~max_trials fw =
 fun g target ->
  match gen with
  | Random_based ->
    Option.map
      (fun (r : Query_gen.generated) -> r.query)
      (Query_gen.random_for_rules ~max_trials fw g (rules_of target))
  | Pattern_based -> (
    let res =
      match target with
      | Single r -> Query_gen.for_rule ~max_trials ~extra_ops fw g r
      | Pair (a, b) -> Query_gen.for_pair ~max_trials ~extra_ops fw g (a, b)
    in
    match res with Some r -> Some r.query | None -> None)

(* Pooled generation with provenance: each target is one task with its
   own PRNG substream (derived here, in target order, before fanning out)
   and its own fresh-alias range, so the queries a target yields are a
   function of the target index alone — the same for any job count,
   including the inline jobs=1 pool. Each task runs under a matched-rule
   collector, so its record carries the names of every rule whose pattern
   fired during generation and acceptance checking: the target's
   dependency set for incremental maintenance. [reuse ti target] may
   serve a target's accepted entries (and recorded deps) from a prior
   run's manifest, skipping generation entirely — the PRNG substream for
   the target is still split in order, so the remaining targets draw
   exactly what a full rebuild would. The cross-target dedup and
   entry-index assignment run on the calling domain in target order, so
   a suite built from any mix of reused and regenerated targets is
   byte-identical to the cold rebuild that regenerates everything. *)
let generate_tracked ?(gen = Pattern_based) ?(extra_ops = 3) ?(max_trials = 60)
    ?reuse ~pool fw g ~targets ~k =
  Obs.Trace.with_span "suite.generate"
    ~args:[ ("targets", Obs.Json.Int (List.length targets)); ("k", Obs.Json.Int k) ]
  @@ fun () ->
  let dedup_c = Obs.Metrics.counter "suite.dedup_hits" in
  let entries : entry list ref = ref [] in
  let count = ref 0 in
  (* Structural dedup across the whole suite: query -> entry index,
     hashed with the full structural [Logical.hash] instead of a linear
     scan of every prior entry per candidate. *)
  let index : int L.Tbl.t = L.Tbl.create 64 in
  let generate_one = make_generate_one ~gen ~extra_ops ~max_trials fw in
  let tasks =
    List.mapi (fun ti target -> (ti, target, Storage.Prng.split g)) targets
  in
  let produced =
    Par.Pool.map_list pool
      (fun (ti, target, g) ->
        match (match reuse with None -> None | Some f -> f ti target) with
        | Some (accepted, deps) -> (target, accepted, deps, true)
        | None ->
          let accepted, deps =
            Framework.with_matched (fun () ->
                Relalg.Ident.set_fresh (ti * fresh_stride);
                let accepted = ref [] in
                let seen : unit L.Tbl.t = L.Tbl.create 16 in
                let attempts = ref 0 in
                let n = ref 0 in
                while !n < k && !attempts < 3 * k do
                  incr attempts;
                  match generate_one g target with
                  | None -> ()
                  | Some query ->
                    if not (L.Tbl.mem seen query) then begin
                      L.Tbl.replace seen query ();
                      match
                        (Framework.ruleset fw query, Framework.cost fw query)
                      with
                      | Ok ruleset, Ok cost ->
                        accepted := { query; ruleset; cost } :: !accepted;
                        incr n
                      | _ -> ()
                    end
                done;
                List.rev !accepted)
          in
          (target, accepted, deps, false))
      tasks
  in
  let records = ref [] in
  let per_target =
    List.mapi
      (fun ti (target, accepted, deps, reused) ->
        records :=
          { gr_target = target;
            gr_index = ti;
            gr_deps = deps;
            gr_accepted = accepted;
            gr_reused = reused }
          :: !records;
        let indices = ref [] in
        List.iter
          (fun (e : entry) ->
            let i =
              match L.Tbl.find_opt index e.query with
              | Some i ->
                Obs.Metrics.incr dedup_c;
                i
              | None ->
                entries := e :: !entries;
                L.Tbl.replace index e.query !count;
                incr count;
                !count - 1
            in
            if not (List.mem i !indices) then indices := i :: !indices)
          accepted;
        (target, List.rev !indices))
      produced
  in
  ( { k; targets; entries = Array.of_list (List.rev !entries); per_target },
    List.rev !records )

let generate ?(gen = Pattern_based) ?(extra_ops = 3) ?(max_trials = 60) ?pool fw
    g ~targets ~k =
  match pool with
  | Some pool ->
    fst (generate_tracked ~gen ~extra_ops ~max_trials ~pool fw g ~targets ~k)
  | None ->
    Obs.Trace.with_span "suite.generate"
      ~args:
        [ ("targets", Obs.Json.Int (List.length targets)); ("k", Obs.Json.Int k) ]
    @@ fun () ->
    let dedup_c = Obs.Metrics.counter "suite.dedup_hits" in
    let entries : entry list ref = ref [] in
    let count = ref 0 in
    let index : int L.Tbl.t = L.Tbl.create 64 in
    let add query =
      match L.Tbl.find_opt index query with
      | Some i ->
        Obs.Metrics.incr dedup_c;
        Some i
      | None -> (
        match (Framework.ruleset fw query, Framework.cost fw query) with
        | Ok ruleset, Ok cost ->
          entries := { query; ruleset; cost } :: !entries;
          L.Tbl.replace index query !count;
          incr count;
          Some (!count - 1)
        | _ -> None)
    in
    let generate_one = make_generate_one ~gen ~extra_ops ~max_trials fw in
    (* Sequential reference: one PRNG stream threaded through every
       target in order, queries checked and interned as they appear. *)
    let per_target =
      List.map
        (fun target ->
          (* Up to k distinct queries; cap attempts so a hard target
             cannot stall the generation forever. *)
          let indices = ref [] in
          let attempts = ref 0 in
          while List.length !indices < k && !attempts < 3 * k do
            incr attempts;
            match generate_one g target with
            | None -> ()
            | Some query -> (
              match add query with
              | Some i when not (List.mem i !indices) -> indices := i :: !indices
              | _ -> ())
          done;
          (target, List.rev !indices))
        targets
    in
    { k; targets; entries = Array.of_list (List.rev !entries); per_target }

let covering t target =
  let wanted = rules_of target in
  let hits = ref [] in
  Array.iteri
    (fun i e ->
      if List.for_all (fun r -> Framework.SSet.mem r e.ruleset) wanted then
        hits := i :: !hits)
    t.entries;
  List.rev !hits

let shortfall t =
  List.filter_map
    (fun (target, indices) ->
      let n = List.length indices in
      if n < t.k then Some (target, t.k - n) else None)
    t.per_target
