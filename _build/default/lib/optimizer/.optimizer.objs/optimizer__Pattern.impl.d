lib/optimizer/pattern.ml: Format List Logical Option Printf Relalg String
