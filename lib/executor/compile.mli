(** One-time plan compilation.

    Walks a physical plan once, resolving every column reference to an
    array offset and every scalar operator to a closure, so the per-row
    hot loop does zero hashtable lookups and zero AST dispatch. Anything
    knowable from the plan and catalog alone — unknown tables, unknown
    columns, set-operation arity mismatches — is reported here, at
    compile time, before a single row is produced; only value-dependent
    failures (type errors, AVG over non-numerics) remain row-time. *)

exception Compile_error of string
(** Static plan error: unknown table/column, set-operation arity
    mismatch. Raised by {!plan} (and {!scalar}/{!pred}) — never from the
    returned closures. *)

val scalar :
  Relalg.Ident.t array ->
  Relalg.Scalar.t ->
  Storage.Value.t array ->
  Storage.Value.t
(** [scalar cols e] compiles [e] against the row layout [cols]. The
    returned closure agrees with {!Eval.scalar} on every row (same
    three-valued logic, same [Invalid_argument] on type errors). *)

val pred :
  Relalg.Ident.t array -> Relalg.Scalar.t -> Storage.Value.t array -> bool
(** Compiled {!Eval.pred_true}: [true] iff exactly [Bool true]. *)

type t
(** A compiled plan: output columns plus a generator that executes the
    operator tree. Reusable — each {!execute} runs the plan afresh. *)

val cols : t -> Relalg.Ident.t array

val plan : Storage.Catalog.t -> Optimizer.Physical.t -> t
(** Compile the whole plan. Raises {!Compile_error} on static errors. *)

val execute : t -> Resultset.t
(** Run the compiled plan. Raises {!Relops.Exec_error} or
    [Invalid_argument] only for value-dependent failures. *)

(** {2 Shared with the batch compiler ({!Batch})} *)

val v : Relalg.Ident.t array -> (unit -> Storage.Value.t array array) -> t
(** Wrap output columns and a row generator as a compiled plan. *)

val column_index : Relalg.Ident.t array -> Relalg.Ident.t -> int
(** Offset of a column in a row layout. Raises {!Compile_error} on
    unknown columns. *)

val key_indices : Relalg.Ident.t array -> Relalg.Ident.t list -> int array
