(** Per-table statistics used by the optimizer's cardinality estimator. *)

type col_stats = {
  ndv : int;  (** number of distinct non-NULL values *)
  null_count : int;
  min_value : Value.t;  (** [Null] when the column is all-NULL or empty *)
  max_value : Value.t;
}

type t = {
  row_count : int;
  by_column : (string * col_stats) list;
}

val compute : Schema.t -> Value.t array array -> t
(** Exact single-pass statistics over the rows. *)

val col : t -> string -> col_stats option

val empty : Schema.t -> t
(** Stats for an empty table (row_count 0). *)

val pp : Format.formatter -> t -> unit
