(** Per-domain execution-result cache keyed by
    {!Optimizer.Physical.fingerprint}.

    Correctness validation executes many rule-off variants that compile
    to plans already executed (different targets converging on the same
    winner), and delta reduction re-executes near-identical candidate
    plans hundreds of times; a hit skips compilation and execution
    entirely and returns the previously materialized result.

    The store lives in [Domain.DLS], so it is domain-safe without locks
    and hit/miss patterns can differ across [--jobs] settings — callers
    must therefore report *logical* execution counts (incremented on hit
    or miss alike) to keep output byte-identical across job counts. The
    cache resets automatically when called with a different catalog
    (physical identity). *)

val run :
  ?site:string ->
  Storage.Catalog.t -> Optimizer.Physical.t -> (Resultset.t, string) result
(** {!Exec.run} with memoization. Cached [Ok] results are pre-normalized
    (see {!Resultset.normalized}) on the executing domain, so sharing
    them read-only across domains is safe. Records
    [executor.result_cache.hits]/[.misses] when metrics are enabled —
    both the unlabeled totals and a per-[site] labeled pair attributing
    the traffic to its caller ([validate], [triage-oracle], [replay],
    [stats]; default [adhoc]). *)

val set_disk : (Storage.Diskcache.t * string) option -> unit
(** Attach (or detach) the shared disk tier: memory misses consult the
    {!Storage.Diskcache} under namespace ["results"], keyed by the given
    catalog key (callers derive it from {!Storage.Catalog.content_hash})
    plus the plan fingerprint; computed results are written back
    (atomic, versioned). Entries carry the full plan and are served only
    on structural {!Optimizer.Physical.equal}, so collisions degrade to
    misses. Configure once at startup, before spawning worker domains.
    Records [executor.result_cache.disk_hits]/[.disk_misses]/
    [.disk_stores]. *)

val clear : unit -> unit
(** Drop the calling domain's cache (test isolation, fresh
    measurements). The disk tier, when configured, is unaffected. *)
