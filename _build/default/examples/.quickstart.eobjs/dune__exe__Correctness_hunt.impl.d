examples/correctness_hunt.ml: Array Core Datagen Format List Printf Prng Relalg Storage
