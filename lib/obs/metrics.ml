let on = ref false
let set_enabled b = on := b
let enabled () = !on

(* Counters and gauges are single atomics: parallel workers bump them
   lock-free and the totals are exact. Histograms mutate several fields
   per sample, so each carries its own mutex; the registry itself is
   mutexed too (registration is rare — instruments are interned once and
   cached by the call sites). *)
type counter = int Atomic.t
type gauge = float Atomic.t

(* Power-of-two buckets: bucket [i] counts samples in [2^(i-1), 2^i).
   64 buckets cover anything from sub-nanosecond to ~9e18, so latencies
   in nanoseconds never clip in practice. *)
let n_buckets = 64

type histogram = {
  lock : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  buckets : int array;
}

type instrument =
  | C of counter
  | G of gauge
  | H of histogram

let registry : (string * string option, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register key mk extract =
  Mutex.protect registry_lock @@ fun () ->
  match Hashtbl.find_opt registry key with
  | Some i -> extract i
  | None ->
    let v = mk () in
    Hashtbl.replace registry key v;
    extract v

let wrong_kind (name, _) = invalid_arg ("metric registered with another kind: " ^ name)

let counter ?label name =
  let key = (name, label) in
  register key
    (fun () -> C (Atomic.make 0))
    (function C c -> c | _ -> wrong_kind key)

let gauge ?label name =
  let key = (name, label) in
  register key
    (fun () -> G (Atomic.make 0.0))
    (function G g -> g | _ -> wrong_kind key)

let fresh_hist () =
  { lock = Mutex.create ();
    count = 0;
    sum = 0.0;
    lo = Float.infinity;
    hi = Float.neg_infinity;
    buckets = Array.make n_buckets 0 }

let histogram ?label name =
  let key = (name, label) in
  register key
    (fun () -> H (fresh_hist ()))
    (function H h -> h | _ -> wrong_kind key)

(* ------------------------------------------------------------------ *)
(* Hot path                                                            *)
(* ------------------------------------------------------------------ *)

let incr c = if !on then Atomic.incr c
let add c n = if !on then ignore (Atomic.fetch_and_add c n)
let gauge_set g v = if !on then Atomic.set g v

let gauge_max g v =
  if !on then begin
    let rec loop () =
      let cur = Atomic.get g in
      if v > cur && not (Atomic.compare_and_set g cur v) then loop ()
    in
    loop ()
  end

let bucket_of v =
  if v < 1.0 then 0
  else
    let b = 1 + int_of_float (Float.log2 v) in
    if b >= n_buckets then n_buckets - 1 else b

let observe h v =
  if !on then begin
    Mutex.protect h.lock @@ fun () ->
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1
  end

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let counter_value c = Atomic.get c
let gauge_value g = Atomic.get g

type hist_snapshot = { count : int; sum : float; min : float; max : float }

let hist_snapshot (h : histogram) =
  Mutex.protect h.lock @@ fun () ->
  { count = h.count; sum = h.sum; min = h.lo; max = h.hi }

let hist_mean (h : histogram) =
  let s = hist_snapshot h in
  if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

let hist_quantile (h : histogram) q =
  Mutex.protect h.lock @@ fun () ->
  if h.count = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.count in
    let cum = ref 0 in
    let result = ref h.hi in
    (try
       for b = 0 to n_buckets - 1 do
         cum := !cum + h.buckets.(b);
         if float_of_int !cum >= rank then begin
           (* Geometric midpoint of [2^(b-1), 2^b), clamped to samples. *)
           let mid = if b = 0 then 0.5 else Float.pow 2.0 (float_of_int b -. 0.5) in
           result := Float.min h.hi (Float.max h.lo mid);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

let snapshot () =
  let entries =
    Mutex.protect registry_lock @@ fun () ->
    Hashtbl.fold (fun key i acc -> (key, i) :: acc) registry []
  in
  List.map
    (fun ((name, label), i) ->
      let v =
        match i with
        | C c -> Counter (Atomic.get c)
        | G g -> Gauge (Atomic.get g)
        | H h -> Histogram (hist_snapshot h)
      in
      (name, label, v))
    entries
  |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))

let find ?label name =
  let inst =
    Mutex.protect registry_lock @@ fun () ->
    Hashtbl.find_opt registry (name, label)
  in
  match inst with
  | Some (C c) -> Some (Counter (Atomic.get c))
  | Some (G g) -> Some (Gauge (Atomic.get g))
  | Some (H h) -> Some (Histogram (hist_snapshot h))
  | None -> None

let counter_total ?label name =
  match find ?label name with Some (Counter c) -> c | _ -> 0

let reset () =
  Mutex.protect registry_lock @@ fun () ->
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g 0.0
      | H h ->
        Mutex.protect h.lock @@ fun () ->
        h.count <- 0;
        h.sum <- 0.0;
        h.lo <- Float.infinity;
        h.hi <- Float.neg_infinity;
        Array.fill h.buckets 0 n_buckets 0)
    registry

let clear () =
  Mutex.protect registry_lock @@ fun () -> Hashtbl.reset registry
