(** Cardinality estimation from base-table statistics.

    Standard textbook heuristics (1/ndv equality selectivity, range
    interpolation, independence for conjunctions). The estimator memoizes
    per hash-consed subtree id (see {!Relalg.Hashcons}) — one int-keyed
    lookup — so repeated planning of trees that share subtrees is cheap.
    Estimates feed the cost model; the paper's compression experiments
    (Figures 11–13) are measured in optimizer-estimated cost, exactly as
    here. *)

type t

val create : Storage.Catalog.t -> t

val rows_node : t -> Relalg.Hashcons.node -> float
(** Estimated output cardinality of a hash-consed tree, memoized by node
    id; always >= 0. This is the engine's hot entry point. *)

val rows : t -> Relalg.Logical.t -> float
(** [rows_node] after interning. Estimated output cardinality; always
    >= 0, and 1.0 at minimum for non-empty inputs of pipeline
    operators. *)

val selectivity : t -> Relalg.Logical.t list -> Relalg.Scalar.t -> float
(** [selectivity est children pred]: estimated fraction of rows of the
    cross product of [children] satisfying [pred]; in [1e-4, 1.0]. *)

val ndv : t -> Relalg.Logical.t list -> Relalg.Ident.t -> float
(** Distinct-value estimate for a column, resolved to its base table
    through the [Get] aliases in the given scope. Defaults to 100.0 for
    computed columns. *)
