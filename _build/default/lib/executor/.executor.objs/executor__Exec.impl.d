lib/executor/exec.ml: Array Catalog Eval Hashtbl List Optimizer Printf Relalg Resultset Schema Storage Value
