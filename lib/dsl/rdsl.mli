(** Rules as data: a declarative rewrite DSL over relation ([rv]),
    predicate ([pv]) and projection-definition ([dv]) metavariables, with
    explicit side-conditions; an interpreter compiling a rule to the
    engine's [Rule.t]; and a bounded symbolic verification oracle
    ([Verify]) that checks both sides set-theoretically over small
    symbolic tables with distinguished rows and NULLs — no executor
    involved. *)

type rv = int
(** Relation metavariable (rendered A, B, C). *)

type pv = int
(** Predicate metavariable (rendered p0, p1). *)

type dv = int
(** Projection-definition metavariable (rendered d0, d1). *)

type scope =
  | Rels of rv list
      (** the output columns of these relation metavariables *)
  | Keys  (** the grouping keys of the rule's (single) GroupBy binder *)

(** Predicate expressions. [Ppart (e, s)] / [Presid (e, s)] are the two
    halves of [Rule.split_by_scope e s]; [Pfirst]/[Prest] split off the
    first conjunct; [Prename (e, a, b)] positionally renames [b]'s columns
    to [a]'s; [Psubst (d, e)] substitutes [d]'s definitions into [e]. *)
type pexp =
  | Ptrue
  | Pvar of pv
  | Pand of pexp * pexp
  | Ppart of pexp * scope
  | Presid of pexp * scope
  | Pfirst of pv
  | Prest of pv
  | Prename of pexp * rv * rv
  | Psubst of dv * pexp

type dexp =
  | Dvar of dv
  | Dcompose of dv * dv  (** outer-after-inner composition *)

(** Tree terms. On the lhs, [Filter]/[Join] must bind a [Pvar], [Proj] a
    [Dvar], and [GroupBy] binds its keys/aggs slot. Rhs-only: a
    [Filter_nontrivial] is emitted only when its predicate is non-trivial,
    and [Keep_schema] is the identity projection restoring the lhs root's
    output columns. *)
type term =
  | Var of rv
  | Filter of pexp * term
  | Filter_nontrivial of pexp * term
  | Join of Relalg.Logical.join_kind * pexp * term * term
  | Proj of dexp * term
  | GroupBy of term
  | Distinct of term
  | UnionAll of term * term
  | Union of term * term
  | Keep_schema of term

(** Side-conditions. The first five are semantic — the rewrite is unsound
    without them, and [Verify] models them as constraints. [Splittable]
    and [Some_pushed] are firing-only: they restrict when the rule fires,
    never its soundness, and the oracle verifies the rewrite without
    them (a superset of the fired cases). *)
type side =
  | Null_rejecting of pv * rv list
  | Key_within_equi of pv * rv * rv
  | Trivial of pv
  | Identity_proj of dv * rv
  | Scoped_within of pv * rv list
  | Splittable of pv
  | Some_pushed of (pexp * scope) list

type rule = { name : string; lhs : term; rhs : term; sides : side list }

val firing_only : side -> bool

val pattern : rule -> Pattern.t
(** The engine pattern of the rule's lhs ([Var] becomes [Any]). *)

val rvars : rule -> rv list
(** Sorted distinct relation metavariables of the lhs. *)

val image :
  Storage.Catalog.t -> rule -> Relalg.Logical.t -> Relalg.Logical.t option
(** One application at the root: match the lhs, check the sides, build the
    rhs. [None] when the rule does not fire. *)

val compile : rule -> Rule.t
(** Compile to an engine rule. The compiled [apply] returns
    [image cat r tree] as a singleton (or []), so DSL-backed rules flow
    through exploration, generation, compression and discovery unchanged.
    The compiled rule's [fingerprint] is {!fingerprint}[ r], so editing
    any part of the definition (lhs, rhs, side conditions) changes the
    rule's content identity. *)

val fingerprint : rule -> string
(** Content digest of the rule's deterministic {!to_string} rendering —
    the DSL half of the registry's rule-content fingerprints. *)

val compose : rule -> rule -> Pattern.t list
(** Rule-pair composition patterns (§3.2) derived from the DSL terms:
    each lhs pattern substituted into each leaf of the other, plus shared
    Join/UnionAll roots, sorted by size. Produces the same candidates as
    the legacy pattern-level composition. *)

val mutations : rule -> (string * rule) list
(** Systematically broken variants (dropped side-conditions, dropped
    conjuncts/residuals/renames/substitutions, widened parts) for
    rule-definition fuzzing, labelled by mutation tag. *)

val to_string : rule -> string
val pp : Format.formatter -> rule -> unit

val soundness_note : rule -> string
(** Human-readable note separating semantic side-conditions from
    firing-only ones. *)

module Verify : sig
  type counterexample = {
    instances : (string * string) list;
        (** relation metavariable -> symbolic instance *)
    valuation : string list;  (** predicate atom assignments *)
    lhs_rows : string;
    rhs_rows : string;
  }

  type verdict =
    | Sound_bounded
        (** both sides agree on every symbolic instance within the bounds *)
    | Refuted of counterexample
    | Unknown of string  (** out of the oracle's fragment, or budget hit *)

  val verify : ?max_valuations:int -> rule -> verdict
  (** Enumerates small symbolic instances (up to two distinguished rows
      per relation, with duplicates and outer-join NULL padding), all
      predicate behaviors as boolean valuations over predicate atoms
      (discovered lazily), and all groupings; compares both sides as row
      multisets. Semantic side-conditions constrain the enumeration;
      firing-only ones are ignored. Deterministic. *)

  val verdict_to_string : verdict -> string
end
