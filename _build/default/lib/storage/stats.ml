type col_stats = {
  ndv : int;
  null_count : int;
  min_value : Value.t;
  max_value : Value.t;
}

type t = { row_count : int; by_column : (string * col_stats) list }

module VSet = Set.Make (struct
  type t = Value.t

  let compare = Value.compare_total
end)

let compute (schema : Schema.t) rows =
  let n = Array.length rows in
  let per_col i name =
    let distinct = ref VSet.empty in
    let nulls = ref 0 in
    let mn = ref Value.Null and mx = ref Value.Null in
    Array.iter
      (fun row ->
        let v = row.(i) in
        if Value.is_null v then incr nulls
        else begin
          distinct := VSet.add v !distinct;
          (if Value.is_null !mn || Value.compare_total v !mn < 0 then mn := v);
          if Value.is_null !mx || Value.compare_total v !mx > 0 then mx := v
        end)
      rows;
    ( name,
      { ndv = VSet.cardinal !distinct;
        null_count = !nulls;
        min_value = !mn;
        max_value = !mx } )
  in
  { row_count = n;
    by_column = List.mapi (fun i c -> per_col i c.Schema.col_name) schema.columns }

let col t name = List.assoc_opt name t.by_column

let empty (schema : Schema.t) =
  let zero =
    { ndv = 0; null_count = 0; min_value = Value.Null; max_value = Value.Null }
  in
  { row_count = 0;
    by_column = List.map (fun c -> (c.Schema.col_name, zero)) schema.columns }

let pp fmt t =
  Format.fprintf fmt "@[<v>rows=%d" t.row_count;
  List.iter
    (fun (name, cs) ->
      Format.fprintf fmt "@,%s: ndv=%d nulls=%d min=%a max=%a" name cs.ndv
        cs.null_count Value.pp cs.min_value Value.pp cs.max_value)
    t.by_column;
  Format.fprintf fmt "@]"
