lib/storage/schema.ml: Datatype Format List Printf String
