examples/suite_compression.ml: Array Core Datagen Format List Optimizer Printf Prng Storage String
