open Storage

type col_info = { id : Ident.t; ty : Datatype.t; nullable : bool }

let ( let* ) = Result.bind

(* Derived properties are recomputed millions of times during rule
   exploration; memoize per subtree. Tables use [Logical.Tbl] — the full
   structural hash — so lookups cannot degenerate into linear collision
   scans the way polymorphic [Hashtbl.hash]'s truncated traversal did on
   realistic tree sizes. Caches are keyed on the catalog's physical
   identity and flushed when a different catalog shows up. They are
   domain-local ([Domain.DLS]) so parallel workers memoize without
   synchronization — same values on every domain, just computed once per
   domain instead of once per process. *)
type caches = {
  mutable owner : Catalog.t option;
  schema_cache : (col_info list, string) result Logical.Tbl.t;
  keys_cache : Ident.Set.t list Logical.Tbl.t;
}

let caches_key =
  Domain.DLS.new_key (fun () ->
      { owner = None;
        schema_cache = Logical.Tbl.create 4096;
        keys_cache = Logical.Tbl.create 4096 })

let clear () =
  let cs = Domain.DLS.get caches_key in
  cs.owner <- None;
  Logical.Tbl.reset cs.schema_cache;
  Logical.Tbl.reset cs.keys_cache

let with_cache cat select compute t =
  let cs = Domain.DLS.get caches_key in
  let flush = match cs.owner with Some c -> not (c == cat) | None -> true in
  if flush then begin
    Logical.Tbl.reset cs.schema_cache;
    Logical.Tbl.reset cs.keys_cache;
    cs.owner <- Some cat
  end;
  let cache = select cs in
  match Logical.Tbl.find_opt cache t with
  | Some r -> r
  | None ->
    let r = compute t in
    Logical.Tbl.replace cache t r;
    r

let env_of cols : Scalar.env =
 fun id ->
  List.find_map
    (fun c -> if Ident.equal c.id id then Some c.ty else None)
    cols

let distinct_idents ids =
  let sorted = List.sort_uniq Ident.compare ids in
  List.length sorted = List.length ids

let rec schema cat (t : Logical.t) : (col_info list, string) result =
  with_cache cat (fun cs -> cs.schema_cache) (schema_uncached cat) t

and schema_uncached cat (t : Logical.t) : (col_info list, string) result =
  match t with
  | Get { table; alias } -> (
    match Catalog.find cat table with
    | None -> Error ("unknown table " ^ table)
    | Some tb ->
      Ok
        (List.map
           (fun (c : Schema.column) ->
             { id = Ident.make alias c.col_name;
               ty = c.col_type;
               nullable = c.nullable })
           tb.schema.columns))
  | Filter { pred; child } ->
    let* cols = schema cat child in
    let* ty = Scalar.type_of (env_of cols) pred in
    if Datatype.equal ty TBool then Ok cols
    else Error "Filter predicate is not boolean"
  | Project { cols = items; child } ->
    let* cols = schema cat child in
    let env = env_of cols in
    if not (distinct_idents (List.map fst items)) then
      Error "Project: duplicate output columns"
    else if items = [] then Error "Project: empty column list"
    else
      let rec build = function
        | [] -> Ok []
        | (id, e) :: rest ->
          let* ty = Scalar.type_of env e in
          let nullable =
            match e with
            | Scalar.Col c ->
              List.exists (fun ci -> Ident.equal ci.id c && ci.nullable) cols
            | _ -> true
          in
          let* tail = build rest in
          Ok ({ id; ty; nullable } :: tail)
      in
      build items
  | Join { kind; pred; left; right } -> (
    let* lc = schema cat left in
    let* rc = schema cat right in
    let both = lc @ rc in
    if not (distinct_idents (List.map (fun c -> c.id) both)) then
      Error "Join: overlapping column identifiers"
    else
      let* pty = Scalar.type_of (env_of both) pred in
      if not (Datatype.equal pty TBool) then Error "Join predicate is not boolean"
      else
        let scoped =
          Ident.Set.subset (Scalar.columns pred)
            (Ident.Set.of_list (List.map (fun c -> c.id) both))
        in
        if not scoped then Error "Join predicate references out-of-scope columns"
        else
          let nullable_all = List.map (fun c -> { c with nullable = true }) in
          match kind with
          | Cross ->
            if Scalar.equal pred Scalar.true_ then Ok both
            else Error "Cross join with a predicate"
          | Inner -> Ok both
          | LeftOuter -> Ok (lc @ nullable_all rc)
          | RightOuter -> Ok (nullable_all lc @ rc)
          | FullOuter -> Ok (nullable_all lc @ nullable_all rc)
          | Semi | AntiSemi -> Ok lc)
  | GroupBy { keys; aggs; child } ->
    let* cols = schema cat child in
    let env = env_of cols in
    let find_key k =
      match List.find_opt (fun c -> Ident.equal c.id k) cols with
      | Some c -> Ok c
      | None -> Error ("GroupBy key not in child: " ^ Ident.to_sql k)
    in
    let rec build_keys = function
      | [] -> Ok []
      | k :: rest ->
        let* c = find_key k in
        let* tail = build_keys rest in
        Ok (c :: tail)
    in
    let rec build_aggs = function
      | [] -> Ok []
      | (id, agg) :: rest ->
        let* ty = Aggregate.result_type env agg in
        let nullable =
          (* COUNT never returns NULL; other aggregates do on empty groups
             (only possible for global aggregation) or NULL-only groups. *)
          match agg with Aggregate.CountStar | Aggregate.Count _ -> false | _ -> true
        in
        let* tail = build_aggs rest in
        Ok ({ id; ty; nullable } :: tail)
    in
    let* kcols = build_keys keys in
    let* acols = build_aggs aggs in
    let out = kcols @ acols in
    if aggs = [] && keys = [] then Error "GroupBy: no keys and no aggregates"
    else if not (distinct_idents (List.map (fun c -> c.id) out)) then
      Error "GroupBy: duplicate output columns"
    else Ok out
  | UnionAll (a, b) | Union (a, b) | Intersect (a, b) | Except (a, b) ->
    let* ac = schema cat a in
    let* bc = schema cat b in
    if List.length ac <> List.length bc then
      Error "set operation: children have different arities"
    else
      let compatible =
        List.for_all2 (fun x y -> Datatype.equal x.ty y.ty) ac bc
      in
      if not compatible then Error "set operation: column type mismatch"
      else
        Ok
          (List.map2
             (fun x y -> { x with nullable = x.nullable || y.nullable })
             ac bc)
  | Distinct child -> schema cat child
  | Sort { keys; child } ->
    let* cols = schema cat child in
    let ids = Ident.Set.of_list (List.map (fun c -> c.id) cols) in
    if List.for_all (fun (k, _) -> Ident.Set.mem k ids) keys then Ok cols
    else Error "Sort key not in child output"
  | Limit { count; child } ->
    if count < 0 then Error "Limit: negative count" else schema cat child

let schema_exn cat t =
  match schema cat t with
  | Ok cols -> cols
  | Error msg -> invalid_arg ("Props.schema_exn: " ^ msg)

let output_idents cat t =
  match schema cat t with
  | Ok cols -> Ident.Set.of_list (List.map (fun c -> c.id) cols)
  | Error _ -> Ident.Set.empty

let equi_join_columns pred left right =
  List.fold_left
    (fun (ls, rs) conjunct ->
      match conjunct with
      | Scalar.Cmp (Scalar.Eq, Scalar.Col a, Scalar.Col b) ->
        if Ident.Set.mem a left && Ident.Set.mem b right then
          (Ident.Set.add a ls, Ident.Set.add b rs)
        else if Ident.Set.mem b left && Ident.Set.mem a right then
          (Ident.Set.add b ls, Ident.Set.add a rs)
        else (ls, rs)
      | _ -> (ls, rs))
    (Ident.Set.empty, Ident.Set.empty)
    (Scalar.conjuncts pred)

let rec keys cat (t : Logical.t) : Ident.Set.t list =
  with_cache cat (fun cs -> cs.keys_cache) (keys_uncached cat) t

and keys_uncached cat (t : Logical.t) : Ident.Set.t list =
  match t with
  | Get { table; alias } -> (
    match Catalog.find cat table with
    | None -> []
    | Some tb ->
      List.map
        (fun key -> Ident.Set.of_list (List.map (Ident.make alias) key))
        (Schema.keys tb.schema))
  | Filter { child; _ } | Sort { child; _ } | Limit { child; _ } -> keys cat child
  | Project { cols; child } ->
    (* A child key survives when each of its columns is exported verbatim. *)
    let exports =
      List.filter_map
        (fun (id, e) -> match e with Scalar.Col c -> Some (c, id) | _ -> None)
        cols
    in
    let translate key =
      let translated =
        Ident.Set.fold
          (fun k acc ->
            match acc with
            | None -> None
            | Some s -> (
              match List.find_opt (fun (c, _) -> Ident.equal c k) exports with
              | Some (_, out) -> Some (Ident.Set.add out s)
              | None -> None))
          key (Some Ident.Set.empty)
      in
      translated
    in
    List.filter_map translate (keys cat child)
  | Join { kind; pred; left; right } -> (
    let lk = keys cat left and rk = keys cat right in
    let lids = output_idents cat left and rids = output_idents cat right in
    let lcols, rcols = equi_join_columns pred lids rids in
    let right_on_key = List.exists (fun k -> Ident.Set.subset k rcols) rk in
    let left_on_key = List.exists (fun k -> Ident.Set.subset k lcols) lk in
    let combined =
      List.concat_map (fun a -> List.map (fun b -> Ident.Set.union a b) rk) lk
    in
    match kind with
    | Semi | AntiSemi -> lk
    | Inner ->
      (if right_on_key then lk else [])
      @ (if left_on_key then rk else [])
      @ combined
    | Cross -> combined
    | LeftOuter -> (if right_on_key then lk else []) @ combined
    | RightOuter -> (if left_on_key then rk else []) @ combined
    | FullOuter -> [])
  | GroupBy { keys = gks; aggs = _; child = _ } -> [ Ident.Set.of_list gks ]
  | Distinct child -> [ output_idents cat child ]
  | Union _ | Intersect _ | Except _ ->
    (* Set semantics: the full column list is a key. *)
    [ output_idents cat t ]
  | UnionAll _ -> []

let has_key_within cat t cols =
  List.exists (fun k -> Ident.Set.subset k cols) (keys cat t)

let validate cat t =
  (* [schema] already walks the whole tree and checks scoping/typing;
     additionally require globally unique Get aliases. *)
  let aliases = Logical.aliases t in
  let sorted = List.sort_uniq String.compare aliases in
  if List.length sorted <> List.length aliases then
    Error "duplicate relation aliases"
  else
    let* _ = schema cat t in
    Ok ()
