module RS = Executor.Resultset

type bug = {
  target : Suite.target;
  query_index : int;
  query : Relalg.Logical.t;
  expected_rows : int;
  actual_rows : int;
  diff : RS.diff;
  detail : string;
}

type report = {
  pairs_checked : int;
  executions : int;
  skipped_identical : int;
  bugs : bug list;
  errors : (string * string) list;
}

let run fw (suite : Suite.t) (sol : Compress.solution) =
  let cat = Framework.catalog fw in
  let baseline_cache : (int, (Optimizer.Physical.t * RS.t, string) result) Hashtbl.t =
    Hashtbl.create 16
  in
  let executions = ref 0 in
  let baseline q =
    match Hashtbl.find_opt baseline_cache q with
    | Some r -> r
    | None ->
      let r =
        match Framework.optimize fw suite.entries.(q).query with
        | Error e -> Error e
        | Ok res -> (
          incr executions;
          match Executor.Exec.run cat res.plan with
          | Error e -> Error e
          | Ok rows -> Ok (res.plan, rows))
      in
      Hashtbl.replace baseline_cache q r;
      r
  in
  let pairs = ref 0 and skipped = ref 0 in
  let bugs = ref [] and errors = ref [] in
  List.iter
    (fun (target, picks) ->
      let disabled = Suite.rules_of target in
      List.iter
        (fun (q, _edge_cost) ->
          incr pairs;
          let context =
            Printf.sprintf "%s / query %d" (Suite.target_name target) q
          in
          match baseline q with
          | Error e -> errors := (context, "baseline: " ^ e) :: !errors
          | Ok (base_plan, expected) -> (
            match Framework.optimize fw ~disabled suite.entries.(q).query with
            | Error e -> errors := (context, "variant: " ^ e) :: !errors
            | Ok res ->
              if Optimizer.Physical.equal res.plan base_plan then incr skipped
              else begin
                incr executions;
                match Executor.Exec.run cat res.plan with
                | Error e -> errors := (context, "variant exec: " ^ e) :: !errors
                | Ok actual ->
                  if not (RS.equal_bag expected actual) then
                    let diff = RS.bag_diff expected actual in
                    bugs :=
                      { target;
                        query_index = q;
                        query = suite.entries.(q).query;
                        expected_rows = RS.row_count expected;
                        actual_rows = RS.row_count actual;
                        diff;
                        detail = RS.diff_summary diff }
                      :: !bugs
              end))
        picks)
    sol.assignment;
  { pairs_checked = !pairs;
    executions = !executions;
    skipped_identical = !skipped;
    bugs = List.rev !bugs;
    errors = List.rev !errors }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>checked %d (rule, query) pairs; %d plan executions; %d skipped (identical plans); %d bugs; %d errors"
    r.pairs_checked r.executions r.skipped_identical (List.length r.bugs)
    (List.length r.errors);
  List.iter
    (fun b ->
      Format.fprintf fmt "@,BUG %s on query #%d: %d rows vs %d rows (%s)"
        (Suite.target_name b.target) b.query_index b.expected_rows b.actual_rows
        b.detail)
    r.bugs;
  List.iter (fun (c, e) -> Format.fprintf fmt "@,error %s: %s" c e) r.errors;
  Format.fprintf fmt "@]"
