examples/rule_coverage.ml: Array Core Datagen List Optimizer Printf Prng Relalg Storage String Sys
