lib/optimizer/card.mli: Relalg Storage
