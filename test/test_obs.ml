(* Obs tests: counter/gauge/histogram semantics, JSON round-trips, span
   nesting and JSONL well-formedness, and the engine/framework
   instrumentation contract (optimize emits the expected spans and
   counters). *)
open Relalg
module S = Scalar
module L = Logical
module M = Obs.Metrics

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Telemetry state is global; leave it as we found it. *)
let with_metrics f =
  M.clear ();
  M.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled false;
      M.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_semantics () =
  with_metrics @@ fun () ->
  let c = M.counter "t.counter" in
  M.incr c;
  M.add c 4;
  check int_t "accumulates" 5 (M.counter_value c);
  check bool_t "same name, same instrument" true (M.counter "t.counter" == c);
  let lbl = M.counter ~label:"a" "t.counter2" in
  check bool_t "labels distinguish" true (M.counter ~label:"b" "t.counter2" != lbl);
  M.reset ();
  check int_t "reset zeroes" 0 (M.counter_value c)

let test_disabled_is_inert () =
  M.clear ();
  M.set_enabled false;
  let c = M.counter "t.off" in
  let h = M.histogram "t.off_h" in
  M.incr c;
  M.observe h 42.0;
  check int_t "counter untouched" 0 (M.counter_value c);
  check int_t "histogram untouched" 0 (M.hist_snapshot h).count;
  M.clear ()

let test_gauge_semantics () =
  with_metrics @@ fun () ->
  let g = M.gauge "t.gauge" in
  M.gauge_set g 3.0;
  M.gauge_max g 1.0;
  check bool_t "max keeps high-water" true (M.gauge_value g = 3.0);
  M.gauge_max g 7.0;
  check bool_t "max raises" true (M.gauge_value g = 7.0)

let test_histogram_semantics () =
  with_metrics @@ fun () ->
  let h = M.histogram "t.hist" in
  List.iter (M.observe h) [ 10.0; 20.0; 30.0; 1000.0 ];
  let s = M.hist_snapshot h in
  check int_t "count" 4 s.count;
  check bool_t "sum" true (s.sum = 1060.0);
  check bool_t "min" true (s.min = 10.0);
  check bool_t "max" true (s.max = 1000.0);
  check bool_t "mean" true (M.hist_mean h = 265.0);
  let p50 = M.hist_quantile h 0.5 in
  check bool_t "p50 within sample range" true (p50 >= 10.0 && p50 <= 1000.0);
  check bool_t "p100 is max bucket" true (M.hist_quantile h 1.0 <= 1000.0)

let test_snapshot_sorted () =
  with_metrics @@ fun () ->
  ignore (M.counter "t.b");
  ignore (M.counter "t.a");
  ignore (M.counter ~label:"x" "t.a");
  let names = List.map (fun (n, l, _) -> (n, l)) (M.snapshot ()) in
  check bool_t "sorted by name then label" true
    (names = List.sort compare names)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [ ("s", Obs.Json.String "a \"quoted\"\n\ttab");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj [] ]) ]
  in
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok j' -> check bool_t "round-trips" true (j = j')

let test_json_rejects_garbage () =
  List.iter
    (fun s -> check bool_t s true (Result.is_error (Obs.Json.of_string s)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "{} trailing"; "\"unterminated" ]

let test_json_nonfinite_floats () =
  check bool_t "nan is null" true (Obs.Json.to_string (Obs.Json.Float Float.nan) = "null");
  check bool_t "inf is null" true
    (Obs.Json.to_string (Obs.Json.Float Float.infinity) = "null")

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let parse_lines buf =
  Buffer.contents buf |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match Obs.Json.of_string l with
         | Ok j -> j
         | Error e -> Alcotest.failf "unparseable trace line %S: %s" l e)

let str_member key j =
  match Obs.Json.member key j with Some (Obs.Json.String s) -> s | _ -> ""

(* Replay B/E events against a stack: every E must match the innermost
   open B, and nothing may stay open. *)
let check_nesting events =
  let stack =
    List.fold_left
      (fun stack ev ->
        match str_member "ph" ev with
        | "B" -> str_member "name" ev :: stack
        | "E" -> (
          match stack with
          | top :: rest ->
            check bool_t "E matches innermost B" true (top = str_member "name" ev);
            rest
          | [] -> Alcotest.fail "E without matching B")
        | _ -> stack)
      [] events
  in
  check int_t "all spans closed" 0 (List.length stack)

let test_span_nesting () =
  let buf = Buffer.create 256 in
  Obs.Trace.start_buffer buf;
  Fun.protect ~finally:Obs.Trace.stop (fun () ->
      Obs.Trace.with_span "outer" (fun () ->
          check int_t "depth inside" 1 (Obs.Trace.depth ());
          Obs.Trace.with_span "inner" (fun () -> Obs.Trace.instant "tick"));
      (try Obs.Trace.with_span "raises" (fun () -> failwith "boom") with _ -> ());
      check int_t "depth restored" 0 (Obs.Trace.depth ()));
  let events = parse_lines buf in
  check int_t "6 span events + 1 instant" 7 (List.length events);
  check_nesting events;
  (* Timestamps must be monotone non-decreasing. *)
  let ts =
    List.filter_map (fun e -> Option.bind (Obs.Json.member "ts" e) Obs.Json.to_float)
      events
  in
  check bool_t "monotone timestamps" true (List.sort compare ts = ts)

let test_disabled_trace_is_inert () =
  Obs.Trace.stop ();
  check bool_t "no sink" false (Obs.Trace.enabled ());
  (* Must be no-ops, not crashes. *)
  Obs.Trace.with_span "x" (fun () -> Obs.Trace.instant "y")

(* ------------------------------------------------------------------ *)
(* Framework-level contract                                            *)
(* ------------------------------------------------------------------ *)

let cat = Storage.Datagen.micro ()

let filtered_join =
  let id = Ident.make in
  L.Filter
    { pred = S.Cmp (S.Gt, S.col (id "x" "a"), S.int 3);
      child =
        L.Join
          { kind = L.Inner;
            pred = S.eq (S.col (id "x" "a")) (S.col (id "y" "d"));
            left = L.Get { table = "t1"; alias = "x" };
            right = L.Get { table = "t2"; alias = "y" } } }

let counter_value name label =
  M.counter_value (M.counter ?label name)

let test_optimize_emits_telemetry () =
  with_metrics @@ fun () ->
  let buf = Buffer.create 1024 in
  Obs.Trace.start_buffer buf;
  let fw = Core.Framework.create cat in
  let r =
    Fun.protect ~finally:Obs.Trace.stop (fun () ->
        Result.get_ok (Core.Framework.optimize fw filtered_join))
  in
  (* Counters: every explored tree offered JoinCommute at least one
     join node, and the commute must actually have rewritten some. *)
  let attempts = counter_value "optimizer.rule.attempts" (Some "JoinCommute") in
  let rewrites = counter_value "optimizer.rule.rewrites" (Some "JoinCommute") in
  check bool_t "join commute attempted" true (attempts > 0);
  check bool_t "join commute rewrote" true (rewrites > 0);
  check bool_t "attempts >= rewrites" true (attempts >= rewrites);
  check int_t "trees counter matches result" r.trees_explored
    (counter_value "optimizer.explore.trees" None);
  check bool_t "memo misses counted" true
    (counter_value "optimizer.memo.misses" None >= r.trees_explored);
  check int_t "one framework invocation" 1 (counter_value "framework.invocations" None);
  let h = M.histogram ~label:"JoinCommute" "optimizer.rule.match_ns" in
  check int_t "latency sampled per attempt" attempts (M.hist_snapshot h).count;
  (* Spans: well-formed JSONL, balanced, and the expected hierarchy. *)
  let events = parse_lines buf in
  check_nesting events;
  let begins ph name =
    List.exists (fun e -> str_member "ph" e = ph && str_member "name" e = name) events
  in
  check bool_t "framework.optimize span" true (begins "B" "framework.optimize");
  check bool_t "engine.explore span" true (begins "B" "engine.explore");
  check bool_t "engine.cost span" true (begins "B" "engine.cost")

let test_budget_exhaustion_reported () =
  let options = { Optimizer.Engine.default_options with max_trees = 5 } in
  let truncated =
    Result.get_ok (Optimizer.Engine.optimize ~options cat filtered_join)
  in
  check bool_t "tiny budget exhausts" true truncated.budget_truncated;
  let unbounded = Result.get_ok (Optimizer.Engine.optimize cat filtered_join) in
  check bool_t "default budget suffices" false unbounded.budget_truncated

let suite =
  [ ( "obs",
      [ Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
        Alcotest.test_case "disabled collector is inert" `Quick test_disabled_is_inert;
        Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
        Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
        Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
        Alcotest.test_case "json non-finite floats" `Quick test_json_nonfinite_floats;
        Alcotest.test_case "span nesting + JSONL" `Quick test_span_nesting;
        Alcotest.test_case "disabled trace is inert" `Quick test_disabled_trace_is_inert;
        Alcotest.test_case "optimize emits spans and counters" `Quick
          test_optimize_emits_telemetry;
        Alcotest.test_case "budget exhaustion reported" `Quick
          test_budget_exhaustion_reported ] ) ]
