(** Argument selection for query generation (paper §3.1 step (b)):
    instantiating operators with concrete arguments — predicates drawn
    from the data, foreign-key-biased join conditions, grouping keys and
    aggregates, projections — over the schemas of already-built subtrees.

    Shared by the stochastic generator (the RANDOM baseline) and the
    pattern-based generator (PATTERN): both select arguments the same way,
    so coverage comparisons isolate the effect of the pattern shape. *)

type ctx = { g : Storage.Prng.t; cat : Storage.Catalog.t }

val fresh_get : ctx -> Relalg.Logical.t
(** Scan of a uniformly chosen table under a fresh alias. *)

val refresh_labels : Relalg.Logical.t -> Relalg.Logical.t
(** Structural copy with every relation label (Get aliases and computed
    output columns) replaced by a fresh one — used to build
    union-compatible branches and self-joins. *)

val schema_of : ctx -> Relalg.Logical.t -> Relalg.Props.col_info list
(** Output schema (trees built here are valid by construction). *)

val random_pred : ctx -> Relalg.Logical.t -> Relalg.Scalar.t option
(** 1–2 conjuncts over the subtree's columns; constants are sampled from
    the actual base-table data so predicates are rarely vacuous. [None]
    when the subtree exports no usable column. *)

val join_pred :
  ctx -> left:Relalg.Logical.t -> right:Relalg.Logical.t -> Relalg.Scalar.t option
(** An equi-join predicate between the two subtrees, biased toward
    foreign-key/primary-key column pairs and toward candidate-key columns
    (both make downstream rule preconditions satisfiable); occasionally
    augmented with an extra comparison. *)

val add_filter : ctx -> Relalg.Logical.t -> Relalg.Logical.t option
val add_project : ctx -> Relalg.Logical.t -> Relalg.Logical.t option
val add_groupby : ctx -> Relalg.Logical.t -> Relalg.Logical.t option
(** Grouping keys are biased toward the equi-join columns and candidate
    keys when the child is a join (see §3.1's discussion of preconditions
    beyond the pattern). *)

val add_sort : ctx -> Relalg.Logical.t -> Relalg.Logical.t option

val add_join :
  ctx -> Relalg.Logical.join_kind -> Relalg.Logical.t -> Relalg.Logical.t ->
  Relalg.Logical.t option

val add_setop :
  ctx -> Relalg.Logical.op_kind -> Relalg.Logical.t -> Relalg.Logical.t ->
  Relalg.Logical.t option
(** Aligns the two branches to a common column signature with projections
    when needed; [None] when no alignment exists. *)

val pad : ctx -> Relalg.Logical.t -> int -> Relalg.Logical.t
(** Grows the tree by roughly [n] random operators (never removing the
    existing ones) — the paper's "add additional random operators"
    constraint for complex test queries (§2.3). *)
