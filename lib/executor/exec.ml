open Storage
module P = Optimizer.Physical
module L = Relalg.Logical
module Ident = Relalg.Ident
module RS = Resultset

let fail fmt = Relops.fail fmt

(* ------------------------------------------------------------------ *)
(* Reference interpreter                                               *)
(*                                                                     *)
(* Row-at-a-time: every column reference is a hashtable lookup and      *)
(* every expression an AST walk ([Eval.scalar]). Kept as the semantic   *)
(* baseline the compiled path ([Compile]) is differentially tested      *)
(* against, and as the interpreter side of the [execute] bench.         *)
(* ------------------------------------------------------------------ *)

let make_env (cols : Ident.t array) =
  let index : (Ident.t, int) Hashtbl.t = Hashtbl.create (Array.length cols) in
  Array.iteri (fun i c -> Hashtbl.replace index c i) cols;
  fun (row : Value.t array) (id : Ident.t) ->
    match Hashtbl.find_opt index id with
    | Some i -> row.(i)
    | None -> fail "unknown column %s" (Ident.to_sql id)

let key_indices (cols : Ident.t array) keys =
  let find k =
    let rec go i =
      if i = Array.length cols then fail "unknown key column %s" (Ident.to_sql k)
      else if Ident.equal cols.(i) k then i
      else go (i + 1)
    in
    go 0
  in
  Array.of_list (List.map find keys)

(* Aggregate arguments interpreted per row, per group. *)
let interp_aggs cols aggs =
  let env = make_env cols in
  Array.of_list
    (List.map
       (fun (_, a) -> Relops.make_agg (fun e row -> Eval.scalar (env row) e) a)
       aggs)

let residual_env cols r =
  if Relalg.Scalar.equal r Relalg.Scalar.true_ then None
  else
    let env = make_env cols in
    Some (fun row -> Eval.pred_true (env row) r)

let op_name : P.t -> string = function
  | P.TableScan _ -> "TableScan"
  | P.FilterOp _ -> "Filter"
  | P.ComputeScalar _ -> "ComputeScalar"
  | P.NestedLoopsJoin _ -> "NestedLoopsJoin"
  | P.HashJoin _ -> "HashJoin"
  | P.MergeJoin _ -> "MergeJoin"
  | P.HashAggregate _ -> "HashAggregate"
  | P.StreamAggregate _ -> "StreamAggregate"
  | P.SortOp _ -> "Sort"
  | P.Concat _ -> "Concat"
  | P.HashUnion _ -> "HashUnion"
  | P.HashIntersect _ -> "HashIntersect"
  | P.HashExcept _ -> "HashExcept"
  | P.HashDistinct _ -> "HashDistinct"
  | P.LimitOp _ -> "Limit"

let rec exec catalog (plan : P.t) : RS.t =
  let rs = exec_node catalog plan in
  (* Rows flowing out of every physical operator, by operator kind. *)
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.add
      (Obs.Metrics.counter ~label:(op_name plan) "exec.rows")
      (RS.row_count rs);
    Obs.Metrics.incr (Obs.Metrics.counter ~label:(op_name plan) "exec.operators")
  end;
  rs

and exec_join catalog kind left right matches =
  let l = exec catalog left and r = exec catalog right in
  let larr = RS.rows l and rarr = RS.rows r in
  RS.make
    (Relops.join_cols kind (RS.cols l) (RS.cols r))
    (Relops.join_rows kind
       ~left_arity:(Array.length (RS.cols l))
       ~right_arity:(Array.length (RS.cols r))
       larr rarr
       (matches l r larr rarr))

and exec_agg catalog keys aggs child group =
  let input = exec catalog child in
  let kidx = key_indices (RS.cols input) keys in
  let rows = RS.rows input in
  let groups =
    (* With no keys, exactly one (possibly empty-input) global group
       exists. *)
    if keys = [] then [| ([||], rows) |] else group kidx rows
  in
  RS.make
    (Array.of_list (keys @ List.map fst aggs))
    (Relops.grouped_rows (interp_aggs (RS.cols input) aggs) groups)

and exec_node catalog (plan : P.t) : RS.t =
  match plan with
  | P.TableScan { table; alias } -> (
    match Catalog.find catalog table with
    | None -> fail "unknown table %s" table
    | Some tb ->
      let cols =
        Array.of_list
          (List.map (fun c -> Ident.make alias c.Schema.col_name) tb.schema.columns)
      in
      RS.make cols tb.rows)
  | P.FilterOp { pred; child } ->
    let input = exec catalog child in
    let env = make_env (RS.cols input) in
    RS.make (RS.cols input)
      (Relops.filter_rows (fun row -> Eval.pred_true (env row) pred)
         (RS.rows input))
  | P.ComputeScalar { cols; child } ->
    let input = exec catalog child in
    let env = make_env (RS.cols input) in
    let out_cols = Array.of_list (List.map fst cols) in
    let rows =
      Array.map
        (fun row ->
          Array.of_list (List.map (fun (_, e) -> Eval.scalar (env row) e) cols))
        (RS.rows input)
    in
    RS.make out_cols rows
  | P.NestedLoopsJoin { kind; pred; left; right } ->
    exec_join catalog kind left right (fun l r larr rarr ->
        let env = make_env (Array.append (RS.cols l) (RS.cols r)) in
        Relops.nested_loops_matches
          (fun row -> Eval.pred_true (env row) pred)
          larr rarr)
  | P.HashJoin { kind; left_keys; right_keys; residual; left; right } ->
    exec_join catalog kind left right (fun l r larr rarr ->
        let lidx = key_indices (RS.cols l) left_keys in
        let ridx = key_indices (RS.cols r) right_keys in
        let res = residual_env (Array.append (RS.cols l) (RS.cols r)) residual in
        Relops.hash_matches ~lidx ~ridx ~residual:res larr rarr)
  | P.MergeJoin { left_keys; right_keys; residual; left; right } ->
    exec_join catalog L.Inner left right (fun l r larr rarr ->
        let lidx = key_indices (RS.cols l) left_keys in
        let ridx = key_indices (RS.cols r) right_keys in
        let res = residual_env (Array.append (RS.cols l) (RS.cols r)) residual in
        Relops.merge_matches ~lidx ~ridx ~residual:res larr rarr)
  | P.HashAggregate { keys; aggs; child } ->
    exec_agg catalog keys aggs child Relops.hash_groups
  | P.StreamAggregate { keys; aggs; child } ->
    exec_agg catalog keys aggs child Relops.stream_groups
  | P.SortOp { keys; child } ->
    let input = exec catalog child in
    let kidx = key_indices (RS.cols input) (List.map fst keys) in
    let dirs = Array.of_list (List.map snd keys) in
    let rows = Array.copy (RS.rows input) in
    Array.stable_sort (Relops.sort_compare kidx dirs) rows;
    RS.make (RS.cols input) rows
  | P.Concat (a, b) ->
    let ra = exec catalog a and rb = exec catalog b in
    check_arity ra rb;
    RS.make (RS.cols ra) (Array.append (RS.rows ra) (RS.rows rb))
  | P.HashUnion (a, b) ->
    let ra = exec catalog a and rb = exec catalog b in
    check_arity ra rb;
    RS.make (RS.cols ra)
      (Relops.distinct_rows (Array.append (RS.rows ra) (RS.rows rb)))
  | P.HashIntersect (a, b) ->
    let ra = exec catalog a and rb = exec catalog b in
    check_arity ra rb;
    let in_b = Relops.row_set (RS.rows rb) in
    RS.make (RS.cols ra)
      (Relops.distinct_rows
         (Relops.filter_rows (Relops.RowTbl.mem in_b) (RS.rows ra)))
  | P.HashExcept (a, b) ->
    let ra = exec catalog a and rb = exec catalog b in
    check_arity ra rb;
    let in_b = Relops.row_set (RS.rows rb) in
    RS.make (RS.cols ra)
      (Relops.distinct_rows
         (Relops.filter_rows
            (fun r -> not (Relops.RowTbl.mem in_b r))
            (RS.rows ra)))
  | P.HashDistinct child ->
    let input = exec catalog child in
    RS.make (RS.cols input) (Relops.distinct_rows (RS.rows input))
  | P.LimitOp { count; child } ->
    let input = exec catalog child in
    RS.make (RS.cols input) (Relops.take_rows count (RS.rows input))

and check_arity (a : RS.t) (b : RS.t) =
  if Array.length (RS.cols a) <> Array.length (RS.cols b) then
    fail "set operation arity mismatch: %d vs %d"
      (Array.length (RS.cols a))
      (Array.length (RS.cols b))

let run_interpreted catalog plan =
  Obs.Trace.with_span "exec.interpret" @@ fun () ->
  try Ok (exec catalog plan) with
  | Relops.Exec_error msg -> Error msg
  | Invalid_argument msg -> Error ("execution type error: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Compiled execution                                                  *)
(* ------------------------------------------------------------------ *)

let compile_h = Obs.Metrics.histogram "executor.compile_ns"
let exec_h = Obs.Metrics.histogram "executor.exec_ns"
let rows_c = Obs.Metrics.counter "executor.rows"
let rps_g = Obs.Metrics.gauge "executor.rows_per_sec"

let timed_run span compile =
  Obs.Trace.with_span span @@ fun () ->
  try
    if Obs.Metrics.enabled () then begin
      let t0 = Obs.Clock.now_ns () in
      let compiled = compile () in
      let t1 = Obs.Clock.now_ns () in
      Obs.Metrics.observe compile_h (Obs.Clock.ns_between t0 t1);
      let rs = Compile.execute compiled in
      let t2 = Obs.Clock.now_ns () in
      let dt = Obs.Clock.ns_between t1 t2 in
      Obs.Metrics.observe exec_h dt;
      Obs.Metrics.add rows_c (RS.row_count rs);
      if dt > 0.0 then
        Obs.Metrics.gauge_set rps_g (float_of_int (RS.row_count rs) *. 1e9 /. dt);
      Ok rs
    end
    else Ok (Compile.execute (compile ()))
  with
  | Compile.Compile_error msg | Relops.Exec_error msg -> Error msg
  | Invalid_argument msg -> Error ("execution type error: " ^ msg)

(* The default path: columnar batch kernels ([Batch]), morsel-scheduled
   through [pool] when one is supplied. Sequential by default — the
   campaign layers already fan out across queries, and nested domain
   pools oversubscribe. *)
let run ?pool ?morsel_rows catalog plan =
  timed_run "exec.batch" (fun () -> Batch.plan ?pool ?morsel_rows catalog plan)

(* The PR-5 row-at-a-time compiled closures, kept as a differential
   reference and the batch path's benchmark baseline. *)
let run_rowwise catalog plan =
  timed_run "exec.run" (fun () -> Compile.plan catalog plan)

let run_logical ?options catalog tree =
  match Optimizer.Engine.optimize ?options catalog tree with
  | Error e -> Error e
  | Ok r -> run catalog r.plan
