(* Discovery subsystem: template normalization laws (QCheck) and an
   end-to-end determinism check of the mine→validate→rank→promote
   driver across pool sizes. *)

module T = Discovery.Template
module V = Discovery.Validate
module D = Discovery.Driver

(* ------------------------------------------------------------------ *)
(* Random template generators                                          *)
(* ------------------------------------------------------------------ *)

let gen_pred =
  QCheck2.Gen.(
    oneof
      [ map (fun i -> T.Pvar i) (int_range 0 2);
        map2 (fun a b -> T.Pand (a, b)) (int_range 0 2) (int_range 0 2) ])

let gen_node =
  QCheck2.Gen.(
    sized_size (int_range 0 3) @@ fix (fun self n ->
        let leaf = map (fun i -> T.Rel i) (int_range 0 1) in
        if n <= 0 then leaf
        else
          let sub = self (n - 1) in
          let split = self (n / 2) in
          oneof
            [ leaf;
              map2 (fun p t -> T.Filter (p, t)) gen_pred sub;
              map3 (fun j a b -> T.Join (j, a, b)) (int_range 0 1) split split;
              map (fun t -> T.Distinct t) sub;
              map2 (fun a b -> T.UnionAll (a, b)) split split;
              map2 (fun a b -> T.Union (a, b)) split split;
              map2 (fun a b -> T.Intersect (a, b)) split split;
              map2 (fun a b -> T.Except (a, b)) split split ]))

let gen_candidate =
  QCheck2.Gen.map2 (fun lhs rhs -> { T.lhs; rhs }) gen_node gen_node

let print_candidate c = T.display c

(* Injective renaming of every metavariable class. Offsets keep the
   maps injective without tracking which indices actually occur. *)
let rename ~rel ~pred ~join c =
  let rp = function
    | T.Pvar i -> T.Pvar (pred i)
    | T.Pand (a, b) -> T.Pand (pred a, pred b)
  in
  let rec rn = function
    | T.Rel i -> T.Rel (rel i)
    | T.Filter (p, t) -> T.Filter (rp p, rn t)
    | T.Join (j, a, b) -> T.Join (join j, rn a, rn b)
    | T.Distinct t -> T.Distinct (rn t)
    | T.UnionAll (a, b) -> T.UnionAll (rn a, rn b)
    | T.Union (a, b) -> T.Union (rn a, rn b)
    | T.Intersect (a, b) -> T.Intersect (rn a, rn b)
    | T.Except (a, b) -> T.Except (rn a, rn b)
  in
  { T.lhs = rn c.T.lhs; rhs = rn c.T.rhs }

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let prop_standardize_idempotent =
  QCheck2.Test.make ~name:"standardize is idempotent" ~count:500
    ~print:print_candidate gen_candidate (fun c ->
      let once = T.standardize c in
      T.equal once (T.standardize once))

let prop_swap_same_normal_ids =
  QCheck2.Test.make ~name:"swapped sides share normal ids" ~count:500
    ~print:print_candidate gen_candidate (fun c ->
      T.normal_ids c = T.normal_ids { T.lhs = c.T.rhs; rhs = c.T.lhs })

let prop_rename_same_normal_ids =
  QCheck2.Test.make ~name:"injectively renamed candidates share normal ids"
    ~count:500 ~print:print_candidate gen_candidate (fun c ->
      let renamed =
        rename ~rel:(fun i -> 1 - i) ~pred:(fun i -> i + 3)
          ~join:(fun i -> i + 5) c
      in
      T.normal_ids c = T.normal_ids renamed)

(* ------------------------------------------------------------------ *)
(* Unit checks on the reference sets                                   *)
(* ------------------------------------------------------------------ *)

let test_reference_sets () =
  List.iter
    (fun (name, c) ->
      Alcotest.(check bool)
        (name ^ " is standardized") true
        (T.equal c (T.standardize c)))
    (T.known_sound @ T.seeded_unsound);
  let cands = T.enumerate T.Setops ~max_nodes:2 in
  List.iter
    (fun (name, seeded) ->
      Alcotest.(check bool)
        (name ^ " enumerated") true
        (List.exists (fun c -> T.equal c seeded) cands))
    T.seeded_unsound;
  (* Dedup really is one id comparison per side: no two enumerated
     candidates share both normal ids. *)
  let tbl = Hashtbl.create 512 in
  List.iter
    (fun c ->
      let ids = T.normal_ids c in
      Alcotest.(check bool) "no duplicate normal ids" false
        (Hashtbl.mem tbl ids);
      Hashtbl.add tbl ids ())
    cands

(* ------------------------------------------------------------------ *)
(* End-to-end: the driver report is byte-identical across pool sizes   *)
(* ------------------------------------------------------------------ *)

let small_config =
  {
    D.default_config with
    alphabet = T.Basic;
    params = { V.default_params with trials = 4 };
    top_k = 2;
    rank_budget = 64;
  }

let test_driver_jobs_deterministic () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  let sequential = D.run small_config in
  let pool = Par.Pool.create ~jobs:4 () in
  let parallel = D.run ~pool small_config in
  Alcotest.(check string)
    "report identical for jobs 1 and 4"
    (Obs.Json.to_string (D.report_json sequential))
    (Obs.Json.to_string (D.report_json parallel));
  Alcotest.(check bool)
    "rediscovered at least one known-sound rewrite" true
    (sequential.D.rediscovered <> []);
  Alcotest.(check (list string))
    "every seeded-unsound candidate refuted" [] sequential.D.seeded_survived

let suite =
  [ ( "discovery.template",
      [ QCheck_alcotest.to_alcotest prop_standardize_idempotent;
        QCheck_alcotest.to_alcotest prop_swap_same_normal_ids;
        QCheck_alcotest.to_alcotest prop_rename_same_normal_ids;
        Alcotest.test_case "reference sets" `Quick test_reference_sets ] );
    ( "discovery.driver",
      [ Alcotest.test_case "determinism across jobs" `Slow
          test_driver_jobs_deterministic ] ) ]
