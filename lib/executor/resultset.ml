open Storage

type t = { cols : Relalg.Ident.t array; rows : Value.t array list }

let row_count t = List.length t.rows

let compare_rows (a : Value.t array) (b : Value.t array) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Stdlib.compare (Array.length a) (Array.length b)
    else
      match Value.compare_total a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let normalize t = { t with rows = List.sort compare_rows t.rows }

let same_cols a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2 Relalg.Ident.equal a.cols b.cols

let equal_bag a b =
  same_cols a b
  &&
  let ra = List.sort compare_rows a.rows and rb = List.sort compare_rows b.rows in
  List.length ra = List.length rb
  && List.for_all2 (fun x y -> compare_rows x y = 0) ra rb

type diff = {
  missing_count : int;
  extra_count : int;
  missing_sample : Value.t array list;
  extra_sample : Value.t array list;
}

let no_diff =
  { missing_count = 0; extra_count = 0; missing_sample = []; extra_sample = [] }

(* Multiset difference by sorted merge: a row appearing m times in
   [expected] and n times in [actual] contributes max(0, m-n) to missing
   and max(0, n-m) to extra. *)
let bag_diff ?(samples = 3) expected actual =
  let ra = List.sort compare_rows expected.rows
  and rb = List.sort compare_rows actual.rows in
  let take_sample sample row = if List.length sample < samples then row :: sample else sample in
  let rec go mc ec ms es = function
    | [], [] ->
      { missing_count = mc;
        extra_count = ec;
        missing_sample = List.rev ms;
        extra_sample = List.rev es }
    | x :: xs, [] -> go (mc + 1) ec (take_sample ms x) es (xs, [])
    | [], y :: ys -> go mc (ec + 1) ms (take_sample es y) ([], ys)
    | x :: xs, y :: ys ->
      let c = compare_rows x y in
      if c = 0 then go mc ec ms es (xs, ys)
      else if c < 0 then go (mc + 1) ec (take_sample ms x) es (xs, y :: ys)
      else go mc (ec + 1) ms (take_sample es y) (x :: xs, ys)
  in
  go 0 0 [] [] (ra, rb)

let row_to_sql row =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_sql row)) ^ ")"

let diff_summary d =
  if d.missing_count = 0 && d.extra_count = 0 then "results identical"
  else
    let side count sample what =
      if count = 0 then []
      else
        [ Printf.sprintf "%d row(s) %s%s" count what
            (match sample with
            | [] -> ""
            | rows -> ", e.g. " ^ String.concat " " (List.map row_to_sql rows)) ]
    in
    String.concat "; "
      (side d.missing_count d.missing_sample "only with rule on"
      @ side d.extra_count d.extra_sample "only with rule off")

let first_difference a b =
  if not (same_cols a b) then Some (None, None)
  else
    let ra = List.sort compare_rows a.rows and rb = List.sort compare_rows b.rows in
    let rec go = function
      | [], [] -> None
      | x :: _, [] -> Some (Some x, None)
      | [], y :: _ -> Some (None, Some y)
      | x :: xs, y :: ys ->
        if compare_rows x y = 0 then go (xs, ys) else Some (Some x, Some y)
    in
    go (ra, rb)

let pp fmt t =
  Format.fprintf fmt "@[<v>%s  (%d rows)"
    (String.concat ", "
       (Array.to_list (Array.map Relalg.Ident.to_sql t.cols)))
    (row_count t);
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: take (n - 1) xs
  in
  List.iter
    (fun row ->
      Format.fprintf fmt "@,(%s)"
        (String.concat ", " (Array.to_list (Array.map Value.to_sql row))))
    (take 20 t.rows);
  if row_count t > 20 then Format.fprintf fmt "@,...";
  Format.fprintf fmt "@]"
