lib/relalg/ident.ml: Format Hashtbl Map Set String
