lib/relalg/scalar.ml: Buffer Format Ident List Printf Result Stdlib Storage
