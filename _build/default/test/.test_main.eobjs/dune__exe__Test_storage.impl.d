test/test_storage.ml: Alcotest Array Catalog Datagen Datatype Fun List Option Printf Prng Random Schema Stats Storage Table Value
