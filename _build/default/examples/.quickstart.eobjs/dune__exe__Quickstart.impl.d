examples/quickstart.ml: Aggregate Core Datagen Executor Format Ident List Logical Optimizer Option Relalg Scalar Sql_print Storage String Value
