lib/optimizer/engine.ml: Card Float Hashtbl Ident List Logical Option Physical Props Queue Relalg Rule Rules Scalar Set Storage String
