(** The test-suite compression problem (§4) and its algorithms (§5).

    Given the bipartite rule/query graph implied by a {!Suite.t} — node
    cost [Cost(q)], edge cost [Cost(q, ¬R)] — find, for every target, [k]
    covering queries minimizing the total execution cost
    [Σ_{q used} Cost(q) + Σ_{edges} Cost(q, ¬R)].

    - {!baseline} — the paper's BASELINE: each target keeps the queries
      generated for it, no sharing (§2.3).
    - {!smc} — the greedy Constrained Set-Multicover heuristic (Figure 5);
      ignores edge costs.
    - {!topk} — TopKIndependent (Figure 6); per target, the [k] cheapest
      edges. Factor-2 approximation. With [~exploit_monotonicity:true],
      edge-cost computations are pruned using
      [Cost(q) <= Cost(q, ¬R)] (§5.3.1, Figure 14).

    Every edge-cost computation is one optimizer invocation, counted by
    the service so Figure 14 can be reproduced. *)

type edge_costs
(** Memoized [Cost(q, ¬R)] service over a suite. With the default
    [share_exploration:true], the service explores each query once with
    all rules enabled ({!Framework.explore_shared}) and serves every
    disabled-set edge for that query as a cheap filtered re-costing pass
    — turning the R×Q cost matrix from R×Q full optimizations into Q
    explorations plus R×Q costing passes. [share_exploration:false]
    restores one full [Cost(q, ¬R)] optimization per edge (the reference
    path, kept for equivalence tests and benchmarks). *)

val edge_costs :
  ?share_exploration:bool ->
  ?disk:Storage.Diskcache.t ->
  ?warm_edges:((int * int) * float) list ->
  Framework.t ->
  Suite.t ->
  edge_costs
(** With [?disk], the service warm-starts from a previously spilled
    edge-cost matrix, keyed by a hash of the catalog contents, the
    rule-content fingerprints, and the suite (queries, targets, [k],
    per-target picks) — any drift, including editing a rule's body under
    an unchanged name, invalidates the entry. [?warm_edges] injects
    additional warm cells (the incremental layer's manifest-surviving
    slice, already re-indexed to this suite). A warm-served edge still
    counts into {!invocations_used} (so warm and cold runs produce
    byte-identical solutions) but skips the exploration/costing work;
    the extra counters [compress.matrix.disk_edges_loaded] and
    [compress.matrix.disk_served] record the savings. *)

val edge_cost : edge_costs -> target_idx:int -> query_idx:int -> float
(** Infinity when no plan exists with the rules disabled. *)

val save_matrix : edge_costs -> unit
(** Spill every known edge (computed this run or inherited warm) back to
    the attached disk cache; no-op without [?disk]. The algorithms below
    call this before returning. *)

val prefetch : ?pool:Par.Pool.t -> edge_costs -> (int * int) list -> unit
(** [prefetch ?pool ec pairs] fills the memo for the given
    [(target_idx, query_idx)] pairs, partitioned by query index so each
    worker owns one query's shared exploration and its edges. Results
    are merged on the calling domain in task order: the memo contents,
    {!invocations_used}, and every subsequent {!edge_cost} are identical
    whatever the pool size ([Par.Pool.sequential], the default, is the
    reference). Already-memoized and duplicate pairs are skipped. *)

val invocations_used : edge_costs -> int
(** Distinct edge computations so far. Each is one unit of the paper's
    abstract optimizer work (Figure 14's x-axis), however it was served;
    the concrete count of full optimizer runs is
    {!Framework.invocations}. *)

val computed_edges : edge_costs -> int
(** Edges that actually ran an exploration/costing pass this run. *)

val warm_served_edges : edge_costs -> int
(** Edges served from the warm tier (spilled matrix or manifest cells)
    — [computed_edges + warm_served_edges = invocations_used]. *)

val snapshot : edge_costs -> ((int * int) * float) list
(** Every cell the service knows — computed this run or inherited warm —
    as sorted ((target index, query index), cost); what the incremental
    manifest persists. *)

val column_deps : edge_costs -> (int * string list) list
(** Per query column with at least one computed edge: the sorted names
    of every rule whose pattern matched while computing that column (the
    shared exploration plus per-call fallbacks). A rule absent from a
    column's set cannot change the column's costs via a body-only edit,
    except through the disabled sets — which is why the incremental
    reuse criterion exempts the rules a cell's own target disables. *)

type solution = {
  assignment : (Suite.target * (int * float) list) list;
      (** per target: the chosen (query index, edge cost) pairs *)
  total_cost : float;
  invocations : int;
      (** optimizer invocations consumed building the solution *)
  under_covered : (Suite.target * int) list;
      (** targets assigned fewer than [k] queries, with the deficit
          [k - assigned] — the suite has no [k] covering queries for
          them, so the solution is weaker than requested there. Empty
          when every target got its full [k]. *)
}

(** The optional [pool] parallelizes the edge-cost matrix fill via
    {!prefetch}; solutions are identical for any pool size. The optional
    [disk] warm-starts the edge-cost service from a spilled matrix and
    spills the filled matrix back on completion (see {!edge_costs});
    solutions are identical warm or cold. The optional [ec] supplies a
    pre-built service instead (overriding [share_exploration]/[disk]) —
    the incremental layer shares one manifest-warmed service across
    algorithms and snapshots it afterwards; note a shared service's
    [calls] accumulate, so each solution's [invocations] then reports
    the cumulative count at the time that algorithm finished. *)

val baseline :
  ?share_exploration:bool ->
  ?pool:Par.Pool.t ->
  ?disk:Storage.Diskcache.t ->
  ?ec:edge_costs ->
  Framework.t ->
  Suite.t ->
  solution

val smc :
  ?share_exploration:bool ->
  ?pool:Par.Pool.t ->
  ?disk:Storage.Diskcache.t ->
  ?ec:edge_costs ->
  Framework.t ->
  Suite.t ->
  solution

val topk :
  ?exploit_monotonicity:bool ->
  ?share_exploration:bool ->
  ?pool:Par.Pool.t ->
  ?disk:Storage.Diskcache.t ->
  ?ec:edge_costs ->
  Framework.t ->
  Suite.t ->
  solution
(** Default [exploit_monotonicity] is [false] (the naive variant that
    computes every edge cost). With [~exploit_monotonicity:true] the
    edge scan is adaptive and [pool] is ignored (the scan stays
    sequential). *)

(** {2 Internals exposed for tests} *)

module Kqueue : sig
  type t

  val create : int -> t
  val size : t -> int

  val max_cost : t -> float
  (** Cost of the current worst kept item; [infinity] when empty. *)

  val push : t -> float -> int -> unit
  (** Keep the [k] items smallest by [(cost, query index)] — equal-cost
      ties deterministically keep the smaller query index, independent
      of push order. *)

  val contents : t -> (int * float) list
  (** Kept items as (query, cost), ascending by (cost, query index). *)
end

val solution_cost : Suite.t -> solution -> float
(** Recomputes a solution's cost under shared-execution semantics
    (distinct query node costs counted once, plus all edge costs) — the
    objective of §4.1. Exposed for tests; equals [total_cost] for {!smc}
    and {!topk} solutions. *)
