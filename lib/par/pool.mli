(** Domain-based worker pool with deterministic results (OCaml 5, no
    external dependencies).

    A pool is a capacity, not a set of live threads: every {!map_array}
    call spawns up to [jobs - 1] helper domains, work-steals task indices
    from a shared atomic cursor, and joins them before returning. Results
    are written to per-task slots and merged in task order, so the output
    of a map is a pure function of the input array — never of the
    scheduling. Anything that must also hold for the {e work} done inside
    a task (PRNG draws, fresh-name allocation) is the caller's job:
    derive a per-task substream before fanning out
    ([Prng.create (seed + task_id)] / {!Storage.Prng.split}) and key
    fresh-name bases on the task index ({!Relalg.Ident.set_fresh}).

    With [jobs = 1] every combinator runs inline on the calling domain —
    no domains are spawned, so a sequential pool is also the reference
    semantics parallel runs must reproduce byte for byte.

    {b Attribution.} Every parallel map decomposes each worker's share
    of its wall time into named buckets — [busy] (running tasks),
    [steal] (claiming indices from the shared cursor), [merge_wait]
    (the caller joining helpers; worker 0 only), and [idle] (the
    residual: spawn latency, tail-waiting on the slowest worker) — and,
    when metrics are enabled, accumulates them into
    [par.pool.{busy,steal,idle,merge_wait,wall}_ns] and
    [par.pool.tasks] counters labeled by worker index ([w0] is the
    calling domain). Per worker the buckets sum exactly to the map's
    wall clock. When tracing, each task claim also emits a
    [par.queue_depth] counter sample and each worker a [par.worker]
    instant with its buckets. Timing reads the monotonic clock a few
    times per task; tasks are coarse (whole optimizer runs), so this is
    noise — and none of it feeds back into results, preserving
    [--jobs N] ≡ [--jobs 1] byte-identity. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to [Domain.recommended_domain_count ()]. Raises
    [Invalid_argument] when [jobs < 1]. *)

val sequential : t
(** A pool with [jobs = 1]: all combinators run inline. *)

val jobs : t -> int

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic output order. Tasks are
    distributed dynamically (an atomic cursor), so uneven task costs
    load-balance; slot [i] always holds [f arr.(i)]. If one or more
    tasks raise, the exception of the {e lowest} task index is re-raised
    (with its backtrace) after all domains have been joined. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list, preserving order. *)

val init : t -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)
