(* Min-cost max-flow on the bipartite graph
     source -> target_i (capacity k, cost 0)
     target_i -> query_j (capacity 1, cost Cost(q)+Cost(q, negated R))
     query_j -> sink (capacity 1, cost 0)
   solved with successive shortest augmenting paths (Bellman-Ford, since
   reduced costs are not maintained; graphs here are small). *)

type arc = {
  dst : int;
  mutable cap : int;
  cost : float;
  mutable flow : int;
  rev : int;  (* index of the reverse arc in graph.(dst) *)
}

type graph = { arcs : arc list Stdlib.ref array }

let add_arc g u v cap cost =
  let fwd = { dst = v; cap; cost; flow = 0; rev = List.length !(g.arcs.(v)) } in
  let bwd =
    { dst = u; cap = 0; cost = -.cost; flow = 0; rev = List.length !(g.arcs.(u)) }
  in
  g.arcs.(u) := !(g.arcs.(u)) @ [ fwd ];
  g.arcs.(v) := !(g.arcs.(v)) @ [ bwd ]

type result = {
  assignment : (Suite.target * (int * float) list) list;
  total_cost : float;
  complete : bool;
}

let solve fw (suite : Suite.t) =
  let ec = Compress.edge_costs fw suite in
  let targets = Array.of_list suite.targets in
  let nt = Array.length targets in
  let nq = Array.length suite.entries in
  let n = 2 + nt + nq in
  let source = 0 and sink = 1 in
  let tnode i = 2 + i and qnode j = 2 + nt + j in
  let g = { arcs = Array.init n (fun _ -> ref []) } in
  Array.iteri (fun ti _ -> add_arc g source (tnode ti) suite.k 0.0) targets;
  for j = 0 to nq - 1 do
    add_arc g (qnode j) sink 1 0.0
  done;
  Array.iteri
    (fun ti target ->
      List.iter
        (fun q ->
          let c = Compress.edge_cost ec ~target_idx:ti ~query_idx:q in
          if c < Float.infinity then
            add_arc g (tnode ti) (qnode q)
              1
              (c +. suite.entries.(q).cost))
        (Suite.covering suite target))
    targets;
  (* Successive shortest paths with Bellman-Ford over residual graph. *)
  let rec augment () =
    let dist = Array.make n Float.infinity in
    let prev = Array.make n None in
    dist.(source) <- 0.0;
    let changed = ref true in
    while !changed do
      changed := false;
      for u = 0 to n - 1 do
        if dist.(u) < Float.infinity then
          List.iteri
            (fun ai arc ->
              if arc.cap - arc.flow > 0 && dist.(u) +. arc.cost < dist.(arc.dst) -. 1e-9
              then begin
                dist.(arc.dst) <- dist.(u) +. arc.cost;
                prev.(arc.dst) <- Some (u, ai);
                changed := true
              end)
            !(g.arcs.(u))
      done
    done;
    if dist.(sink) = Float.infinity then ()
    else begin
      (* Unit augmentation along the shortest path. *)
      let rec push v =
        match prev.(v) with
        | None -> ()
        | Some (u, ai) ->
          let arc = List.nth !(g.arcs.(u)) ai in
          arc.flow <- arc.flow + 1;
          let back = List.nth !(g.arcs.(arc.dst)) arc.rev in
          back.flow <- back.flow - 1;
          push u
      in
      push sink;
      augment ()
    end
  in
  augment ();
  let assignment =
    Array.to_list
      (Array.mapi
         (fun ti target ->
           let picks =
             List.filter_map
               (fun arc ->
                 if arc.flow > 0 && arc.dst >= 2 + nt then
                   let q = arc.dst - 2 - nt in
                   Some (q, Compress.edge_cost ec ~target_idx:ti ~query_idx:q)
                 else None)
               !(g.arcs.(tnode ti))
           in
           (target, picks))
         targets)
  in
  let total =
    List.fold_left
      (fun acc (_, picks) ->
        List.fold_left
          (fun acc (q, ecost) -> acc +. suite.entries.(q).cost +. ecost)
          acc picks)
      0.0 assignment
  in
  let complete =
    List.for_all (fun (_, picks) -> List.length picks = suite.k) assignment
  in
  { assignment; total_cost = total; complete }
