(** Aggregate functions of the GroupBy operator. *)

type t =
  | CountStar
  | Count of Scalar.t  (** counts non-NULL evaluations *)
  | Sum of Scalar.t
  | Min of Scalar.t
  | Max of Scalar.t
  | Avg of Scalar.t

val equal : t -> t -> bool

val hash : t -> int
(** Full-depth structural hash, consistent with {!equal}. *)

val shape_hash : t -> int
(** Skeleton hash: the aggregate function plus {!Scalar.shape_hash} of its
    argument (literals and column identity ignored). *)

val argument : t -> Scalar.t option
val columns : t -> Ident.Set.t
val rename : (Ident.t -> Ident.t) -> t -> t

val result_type :
  Scalar.env -> t -> (Storage.Datatype.t, string) result
(** COUNT yields TInt; AVG yields TFloat; SUM/MIN/MAX take the argument
    type (SUM requires numeric). *)

val is_duplicate_insensitive : t -> bool
(** MIN and MAX ignore duplicates; COUNT/SUM/AVG do not. *)

val to_sql : t -> string
val pp : Format.formatter -> t -> unit
