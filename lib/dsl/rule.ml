open Relalg

type t = {
  name : string;
  pattern : Pattern.t;
  apply : Storage.Catalog.t -> Logical.t -> Logical.t list;
  fingerprint : string;
  pattern_fp : string;
}

(* Matched-rule collector: a per-domain slot that, while set, records the
   name of every rule whose pattern accepted a tree. The record happens in
   the [guarded] wrapper below — the single chokepoint every registered
   rule's pattern check goes through — so the collected set is exactly
   the rules whose bodies could have influenced whatever ran under the
   collector (a rule whose pattern never matched contributed nothing to
   any exploration). The slot is domain-local: wrap work that runs wholly
   on one domain (a pool task body, or inline code). *)
let collector_key : (string, unit) Hashtbl.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let collect_matched f =
  let slot = Domain.DLS.get collector_key in
  let saved = !slot in
  let tbl = Hashtbl.create 32 in
  slot := Some tbl;
  Fun.protect
    ~finally:(fun () -> slot := saved)
    (fun () ->
      let r = f () in
      let names = Hashtbl.fold (fun name () acc -> name :: acc) tbl [] in
      (r, List.sort String.compare names))

let digest_hex parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let make ?(version = "") ?fingerprint name pattern apply =
  let pattern_fp = digest_hex [ "pattern"; Pattern.to_xml pattern ] in
  let fingerprint =
    match fingerprint with
    | Some fp -> fp
    | None -> digest_hex [ "closure"; name; pattern_fp; version ]
  in
  let guarded cat tree =
    if Pattern.matches pattern tree then begin
      (match !(Domain.DLS.get collector_key) with
      | Some tbl -> Hashtbl.replace tbl name ()
      | None -> ());
      apply cat tree
    end
    else begin
      (* A rule whose [apply] would return substitutes on a root its own
         pattern rejects is mis-declared: the engine (which consults the
         pattern first) silently never fires it. Probe only when metrics
         are on so the hot path keeps its single-branch cost. *)
      if Obs.Metrics.enabled () then
        (match apply cat tree with
        | exception _ -> ()
        | [] -> ()
        | _ :: _ ->
          Obs.Metrics.incr
            (Obs.Metrics.counter ~label:name "optimizer.rule.pattern_mismatch"));
      []
    end
  in
  { name; pattern; apply = guarded; fingerprint; pattern_fp }

let rec subst f (e : Scalar.t) : Scalar.t =
  match e with
  | Scalar.Col id -> ( match f id with Some e' -> e' | None -> e)
  | Scalar.Const _ -> e
  | Scalar.Neg a -> Scalar.Neg (subst f a)
  | Scalar.Not a -> Scalar.Not (subst f a)
  | Scalar.IsNull a -> Scalar.IsNull (subst f a)
  | Scalar.IsNotNull a -> Scalar.IsNotNull (subst f a)
  | Scalar.Arith (op, a, b) -> Scalar.Arith (op, subst f a, subst f b)
  | Scalar.Cmp (op, a, b) -> Scalar.Cmp (op, subst f a, subst f b)
  | Scalar.And (a, b) -> Scalar.And (subst f a, subst f b)
  | Scalar.Or (a, b) -> Scalar.Or (subst f a, subst f b)

let positional_rename from_cols to_cols =
  let table =
    List.map2
      (fun (a : Props.col_info) (b : Props.col_info) -> (a.id, b.id))
      from_cols to_cols
  in
  fun id ->
    match List.find_opt (fun (a, _) -> Ident.equal a id) table with
    | Some (_, b) -> b
    | None -> id

let split_by_scope pred cols =
  let inside, outside =
    List.partition
      (fun conjunct ->
        let used = Scalar.columns conjunct in
        (not (Ident.Set.is_empty used)) && Ident.Set.subset used cols)
      (Scalar.conjuncts pred)
  in
  (Scalar.conj inside, Scalar.conj outside)

let identity_project cols child =
  Logical.Project
    { cols = List.map (fun (c : Props.col_info) -> (c.id, Scalar.Col c.id)) cols;
      child }

let null_safe_row_eq left_cols right_cols =
  let pair (a : Props.col_info) (b : Props.col_info) =
    let ca = Scalar.Col a.id and cb = Scalar.Col b.id in
    Scalar.Or
      (Scalar.Cmp (Scalar.Eq, ca, cb), Scalar.And (Scalar.IsNull ca, Scalar.IsNull cb))
  in
  Scalar.conj (List.map2 pair left_cols right_cols)
