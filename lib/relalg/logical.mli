(** Logical query trees (the optimizer's input representation, paper §2.2).

    Every [Get] carries a unique relation label ([alias]); all columns are
    identified globally (see {!Ident}), so subtrees can be rearranged by
    transformation rules without renaming. *)

type join_kind =
  | Inner
  | Cross  (** no predicate *)
  | LeftOuter
  | RightOuter
  | FullOuter
  | Semi  (** left rows with a match; output = left columns *)
  | AntiSemi  (** left rows without a match *)

type sort_dir = Asc | Desc

type t =
  | Get of { table : string; alias : string }
  | Filter of { pred : Scalar.t; child : t }
  | Project of { cols : (Ident.t * Scalar.t) list; child : t }
  | Join of { kind : join_kind; pred : Scalar.t; left : t; right : t }
      (** [pred] is [Scalar.true_] for [Cross]. *)
  | GroupBy of {
      keys : Ident.t list;
      aggs : (Ident.t * Aggregate.t) list;
      child : t;
    }  (** output columns = [keys @ map fst aggs] *)
  | UnionAll of t * t
  | Union of t * t  (** set union (distinct) *)
  | Intersect of t * t
  | Except of t * t
  | Distinct of t
  | Sort of { keys : (Ident.t * sort_dir) list; child : t }
  | Limit of { count : int; child : t }

type op_kind =
  | KGet
  | KFilter
  | KProject
  | KJoin of join_kind
  | KGroupBy
  | KUnionAll
  | KUnion
  | KIntersect
  | KExcept
  | KDistinct
  | KSort
  | KLimit

val kind : t -> op_kind
val kind_name : op_kind -> string
val join_kind_to_sql : join_kind -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Full structural hash, consistent with {!equal}: every node of the
    tree contributes, unlike [Hashtbl.hash], whose bounded traversal
    made all realistic-size trees with a common top shape collide. *)

val payload_hash : t -> int
(** Hash of the node's own payload only (children ignored) — the shallow
    key used by {!Hashcons}. *)

val payload_equal : t -> t -> bool
(** Same constructor and non-child fields; children are ignored. *)

val shape_hash : t -> int
(** Hash of the tree's operator/expression skeleton: operator kinds, base
    table names, and {!Scalar.shape_hash} of every predicate/projection —
    aliases, literal constant values, column identity and output names are
    ignored. Used as the structural component of triage bug signatures, so
    reproducers differing only in constants or labels dedup together. *)

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by whole trees, using the structural {!hash}. *)

val children : t -> t list
val with_children : t -> t list -> t
(** Replaces the children in order; raises [Invalid_argument] on arity
    mismatch. *)

val size : t -> int
(** Number of operator nodes. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val aliases : t -> string list
(** Relation labels of all [Get] nodes, in tree order. *)

val pp : Format.formatter -> t -> unit
(** Indented tree rendering, one operator per line (paper Figure 1). *)

val to_string : t -> string
