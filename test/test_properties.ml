(* Property-based tests over the whole stack (QCheck): generator validity,
   schema invariance under rewrites, optimizer determinism and cost
   monotonicity, plan/executor agreement, and the paper's correctness
   methodology itself as a property. *)
open Storage
module L = Relalg.Logical
module F = Core.Framework

let cat = Datagen.tpch ~scale:0.001 ()
let micro = Datagen.micro ()
let seed_arb = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let quick_options = { Optimizer.Engine.default_options with max_trees = 600 }

let random_tree ?(max_ops = 7) catalog seed =
  let g = Prng.create seed in
  let ctx = { Core.Arggen.g; cat = catalog } in
  Core.Random_gen.generate ~max_ops ctx

let prop_generated_trees_valid =
  QCheck.Test.make ~name:"random generator produces valid trees" ~count:200 seed_arb
    (fun seed ->
      let t = random_tree cat seed in
      match Relalg.Props.validate cat t with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "invalid: %s\n%s" e (L.to_string t))

let prop_instantiation_valid =
  QCheck.Test.make ~name:"pattern instantiation produces valid trees" ~count:150
    seed_arb (fun seed ->
      let g = Prng.create seed in
      let ctx = { Core.Arggen.g; cat } in
      let rule = Optimizer.Rules.nth (seed mod Optimizer.Rules.count) in
      match Core.Query_gen.instantiate ctx rule.pattern with
      | None -> true (* argument selection may fail; that is a trial miss *)
      | Some t -> (
        match Relalg.Props.validate cat t with
        | Ok () ->
          (* Alignment of set-operation branches may interpose projections,
             in which case the composite shape is approximate (a RuleSet
             check decides, as in the paper); otherwise the pattern must be
             present. *)
          let has_project =
            L.fold (fun acc n -> acc || L.kind n = L.KProject) false t
          in
          Optimizer.Pattern.matches_anywhere rule.pattern t || has_project
        | Error e -> QCheck.Test.fail_reportf "invalid: %s\n%s" e (L.to_string t)))

let prop_rewrites_preserve_schema =
  QCheck.Test.make ~name:"every rule substitute keeps the output schema" ~count:80
    seed_arb (fun seed ->
      let t = random_tree micro seed in
      let original =
        List.map (fun (c : Relalg.Props.col_info) -> (c.id, c.ty))
          (Relalg.Props.schema_exn micro t)
      in
      List.for_all
        (fun (r : Optimizer.Rule.t) ->
          List.for_all
            (fun t' ->
              match Relalg.Props.schema micro t' with
              | Error e ->
                QCheck.Test.fail_reportf "%s invalid: %s" r.Optimizer.Rule.name e
              | Ok cols ->
                let now =
                  List.map (fun (c : Relalg.Props.col_info) -> (c.id, c.ty)) cols
                in
                now = original
                || QCheck.Test.fail_reportf "%s changed schema" r.Optimizer.Rule.name)
            (r.apply micro t))
        Optimizer.Rules.all)

let prop_optimizer_deterministic =
  QCheck.Test.make ~name:"optimizer is deterministic" ~count:25 seed_arb (fun seed ->
      let t = random_tree cat seed in
      match
        ( Optimizer.Engine.optimize ~options:quick_options cat t,
          Optimizer.Engine.optimize ~options:quick_options cat t )
      with
      | Ok a, Ok b ->
        a.cost = b.cost
        && Optimizer.Physical.equal a.plan b.plan
        && Optimizer.Engine.SSet.equal a.exercised b.exercised
      | Error _, Error _ -> true
      | _ -> false)

(* Well-behavedness (§5.2) with a comparison that is well-defined whether
   or not [max_trees] truncated the closure. When the closure completes,
   a from-scratch [Cost(q, not R)] can never beat [Cost(q)] — disabling
   only removes trees. Under truncation that from-scratch comparison is
   ill-posed (the all-rules and not-R searches reach different frontiers,
   so either may win — the historical flake at QCheck seed 454192), but
   the shared-exploration form survives: the not-R closure is filtered
   out of the very closure the all-rules search ranked, so its best cost
   is >= the all-rules optimum, truncated or not. [base.budget_truncated]
   picks the comparison; nothing is skipped. *)
let prop_cost_monotone =
  QCheck.Test.make ~name:"disabling rules never lowers the cost" ~count:20 seed_arb
    (fun seed ->
      let t = random_tree cat seed in
      match Optimizer.Engine.optimize ~options:quick_options cat t with
      | Error _ -> true
      | Ok base ->
        let g = Prng.create (seed + 1) in
        let exercised = Optimizer.Engine.SSet.elements base.exercised in
        let subset = Prng.sample g 2 exercised in
        let disabled =
          List.fold_left
            (fun s r -> Optimizer.Engine.SSet.add r s)
            Optimizer.Engine.SSet.empty subset
        in
        if base.budget_truncated then (
          match Optimizer.Engine.explore_shared ~options:quick_options cat t with
          | Error e -> QCheck.Test.fail_reportf "explore_shared failed: %s" e
          | Ok sh -> (
            match Optimizer.Engine.shared_cost sh ~disabled with
            | Error _ -> true (* every derivation used a disabled rule *)
            | Ok c ->
              c >= base.cost -. 1e-6
              || QCheck.Test.fail_reportf
                   "truncated: shared cost dropped from %.3f to %.3f disabling [%s]"
                   base.cost c (String.concat "; " subset)))
        else
          match
            Optimizer.Engine.optimize ~options:{ quick_options with disabled } cat t
          with
          | Error _ -> true
          | Ok r ->
            r.cost >= base.cost -. 1e-6
            || QCheck.Test.fail_reportf
                 "cost dropped from %.3f to %.3f disabling [%s]" base.cost r.cost
                 (String.concat "; " subset))

(* Regression for the budget-truncation flake family: the property must
   hold deterministically for ten consecutive QCheck seeds including
   454192, the seed that historically produced a truncated closure whose
   from-scratch comparison failed. *)
let test_cost_monotone_seeds () =
  for seed = 454192 to 454201 do
    QCheck.Test.check_exn ~rand:(Random.State.make [| seed |]) prop_cost_monotone
  done

let prop_plan_columns_match_schema =
  QCheck.Test.make ~name:"executed columns match the logical schema" ~count:25 seed_arb
    (fun seed ->
      let t = random_tree cat ~max_ops:6 seed in
      match Optimizer.Engine.optimize ~options:quick_options cat t with
      | Error _ -> true
      | Ok r -> (
        match Executor.Exec.run cat r.plan with
        | Error e -> QCheck.Test.fail_reportf "execution failed: %s" e
        | Ok res ->
          let expected =
            List.map (fun (c : Relalg.Props.col_info) -> c.id)
              (Relalg.Props.schema_exn cat t)
          in
          let got = Array.to_list (Executor.Resultset.cols res) in
          got = expected
          || QCheck.Test.fail_reportf "columns [%s] vs [%s]"
               (String.concat ", " (List.map Relalg.Ident.to_sql got))
               (String.concat ", " (List.map Relalg.Ident.to_sql expected))))

(* The paper's §2.3 methodology, as a property over random queries: for a
   random exercised rule, Plan(q) and Plan(q, not r) return the same bag. *)
let prop_rule_off_same_results =
  QCheck.Test.make ~name:"disabling an exercised rule preserves results" ~count:15
    seed_arb (fun seed ->
      let t = random_tree cat ~max_ops:6 seed in
      match Optimizer.Engine.optimize ~options:quick_options cat t with
      | Error _ -> true
      | Ok base -> (
        match Optimizer.Engine.SSet.elements base.exercised with
        | [] -> true
        | rules -> (
          let g = Prng.create (seed + 7) in
          let rule = Prng.pick g rules in
          let options =
            { quick_options with disabled = Optimizer.Engine.SSet.singleton rule }
          in
          match Optimizer.Engine.optimize ~options cat t with
          | Error _ -> true
          | Ok off -> (
            match (Executor.Exec.run cat base.plan, Executor.Exec.run cat off.plan) with
            | Ok r1, Ok r2 ->
              Executor.Resultset.equal_bag r1 r2
              || QCheck.Test.fail_reportf "results differ disabling %s on\n%s" rule
                   (L.to_string t)
            | Error e, _ | _, Error e -> QCheck.Test.fail_reportf "exec: %s" e))))

(* The compiled scalar evaluator (column references resolved to array
   offsets, operators dispatched once) must agree with the per-row AST
   interpreter on random expressions over random rows — including NULL
   (Kleene) logic and type errors, where both sides must fail alike. *)
let scalar_cols = [| Relalg.Ident.make "t" "a"; Relalg.Ident.make "t" "b" |]

let random_value g =
  match Prng.int g 6 with
  | 0 -> Value.Null
  | 1 | 2 -> Value.Int (Prng.int_in g (-3) 3)
  | 3 -> Value.Bool (Prng.bool g)
  | 4 -> Value.Float (Prng.float g 4.0 -. 2.0)
  | _ -> Value.Str (Prng.pick g [ "x"; "y" ])

let rec random_scalar g depth : Relalg.Scalar.t =
  let module S = Relalg.Scalar in
  if depth = 0 || Prng.chance g 0.3 then
    match Prng.int g 4 with
    | 0 -> S.Const (random_value g)
    | 1 -> S.col scalar_cols.(0)
    | _ -> S.col scalar_cols.(1)
  else
    let sub () = random_scalar g (depth - 1) in
    match Prng.int g 8 with
    | 0 -> S.Neg (sub ())
    | 1 -> S.Arith (Prng.pick g [ S.Add; S.Sub; S.Mul; S.Div ], sub (), sub ())
    | 2 -> S.Cmp (Prng.pick g [ S.Eq; S.Ne; S.Lt; S.Le; S.Gt; S.Ge ], sub (), sub ())
    | 3 -> S.And (sub (), sub ())
    | 4 -> S.Or (sub (), sub ())
    | 5 -> S.Not (sub ())
    | 6 -> S.IsNull (sub ())
    | _ -> S.IsNotNull (sub ())

let prop_compiled_scalar_agrees =
  QCheck.Test.make ~name:"compiled scalar evaluator agrees with Eval.scalar"
    ~count:500 seed_arb (fun seed ->
      let g = Prng.create seed in
      let e = random_scalar g 4 in
      let compiled = Executor.Compile.scalar scalar_cols e in
      List.for_all
        (fun row ->
          let env id =
            if Relalg.Ident.equal id scalar_cols.(0) then row.(0) else row.(1)
          in
          let attempt f = try Ok (f ()) with Invalid_argument m -> Error m in
          match
            ( attempt (fun () -> Executor.Eval.scalar env e),
              attempt (fun () -> compiled row) )
          with
          | Ok a, Ok b ->
            Value.compare_total a b = 0
            || QCheck.Test.fail_reportf "%s vs %s on %s" (Value.to_sql a)
                 (Value.to_sql b)
                 (Relalg.Scalar.to_sql e)
          | Error a, Error b ->
            a = b
            || QCheck.Test.fail_reportf "errors differ: %s vs %s" a b
          | Ok v, Error m | Error m, Ok v ->
            QCheck.Test.fail_reportf "one path failed (%s), the other gave %s on %s"
              m (Value.to_sql v) (Relalg.Scalar.to_sql e))
        (List.init 8 (fun _ -> [| random_value g; random_value g |])))

(* The batch kernels are a third evaluator for the same scalar language:
   a whole morsel at a time, with unboxed fast paths, selection
   transformers and per-morsel CSE underneath. They must agree with both
   row paths on values *and* on errors — same message, and the lowest
   erroring row's message (what a sequential scan would have raised). *)
let prop_batch_scalar_agrees =
  QCheck.Test.make
    ~name:"batch kernels agree with Eval.scalar (values and errors)" ~count:500
    seed_arb (fun seed ->
      let g = Prng.create seed in
      let e = random_scalar g 4 in
      let rows =
        Array.init 8 (fun _ -> [| random_value g; random_value g |])
      in
      let attempt f = try Ok (f ()) with Invalid_argument m -> Error m in
      let by_row =
        Array.map
          (fun row ->
            let env id =
              if Relalg.Ident.equal id scalar_cols.(0) then row.(0)
              else row.(1)
            in
            attempt (fun () -> Executor.Eval.scalar env e))
          rows
      in
      let compiled = Executor.Compile.scalar scalar_cols e in
      Array.iteri
        (fun i row ->
          match (by_row.(i), attempt (fun () -> compiled row)) with
          | Ok a, Ok b when Value.compare_total a b = 0 -> ()
          | Error a, Error b when a = b -> ()
          | _ ->
            QCheck.Test.fail_reportf "compiled differs from Eval on row %d of %s"
              i (Relalg.Scalar.to_sql e))
        rows;
      let kernel = Executor.Batch.scalar scalar_cols e in
      (match
         ( attempt (fun () -> Executor.Batch.eval_column kernel rows),
           Array.find_opt Result.is_error by_row )
       with
      | Ok col, None ->
        Array.iteri
          (fun i v ->
            let want = Result.get_ok by_row.(i) in
            if Value.compare_total want v <> 0 then
              QCheck.Test.fail_reportf "batch %s vs row %s at %d on %s"
                (Value.to_sql v) (Value.to_sql want) i
                (Relalg.Scalar.to_sql e))
          col
      | Ok _, Some (Error m) ->
        QCheck.Test.fail_reportf "batch succeeded, rows fail with %s on %s" m
          (Relalg.Scalar.to_sql e)
      | Error m, None ->
        QCheck.Test.fail_reportf "batch failed with %s, rows succeed on %s" m
          (Relalg.Scalar.to_sql e)
      | Error got, Some (Error want) ->
        (* the batch error must be the *first* erroring row's *)
        if got <> want then
          QCheck.Test.fail_reportf "batch error %S, first row error %S on %s"
            got want (Relalg.Scalar.to_sql e)
      | _, Some (Ok _) -> assert false);
      (* ...and morsel size must be invisible: a one-row morsel per row
         gives the same column (or the same per-row error). *)
      Array.iteri
        (fun i row ->
          let single = attempt (fun () -> Executor.Batch.eval_column kernel [| row |]) in
          match (by_row.(i), single) with
          | Ok a, Ok [| b |] when Value.compare_total a b = 0 -> ()
          | Error a, Error b when a = b -> ()
          | _ ->
            QCheck.Test.fail_reportf "singleton morsel differs at row %d on %s"
              i (Relalg.Scalar.to_sql e))
        rows;
      true)

(* Whole-plan differential check: compiled execution vs the row-at-a-time
   interpreter on optimized random queries. *)
let prop_compiled_plan_agrees =
  QCheck.Test.make ~name:"compiled execution equals interpretation" ~count:15
    seed_arb (fun seed ->
      let t = random_tree cat ~max_ops:6 seed in
      match Optimizer.Engine.optimize ~options:quick_options cat t with
      | Error _ -> true
      | Ok r -> (
        match
          (Executor.Exec.run cat r.plan, Executor.Exec.run_interpreted cat r.plan)
        with
        | Ok a, Ok b ->
          Executor.Resultset.equal_bag a b
          || QCheck.Test.fail_reportf "results differ on\n%s" (L.to_string t)
        | Error _, Error _ -> true
        | Error e, Ok _ -> QCheck.Test.fail_reportf "compiled failed: %s" e
        | Ok _, Error e -> QCheck.Test.fail_reportf "interpreter failed: %s" e))

let prop_refresh_labels_disjoint =
  QCheck.Test.make ~name:"refreshed copies share no labels" ~count:100 seed_arb
    (fun seed ->
      let t = random_tree cat seed in
      let t' = Core.Arggen.refresh_labels t in
      let labels tree =
        Relalg.Logical.fold
          (fun acc n ->
            match n with Relalg.Logical.Get { alias; _ } -> alias :: acc | _ -> acc)
          [] tree
      in
      List.for_all (fun l -> not (List.mem l (labels t))) (labels t'))

let prop_pad_grows =
  QCheck.Test.make ~name:"padding never shrinks a tree and keeps validity" ~count:80
    seed_arb (fun seed ->
      let g = Prng.create seed in
      let ctx = { Core.Arggen.g; cat } in
      let t = Core.Random_gen.generate ~max_ops:4 ctx in
      let padded = Core.Arggen.pad ctx t 4 in
      L.size padded >= L.size t && Result.is_ok (Relalg.Props.validate cat padded))

(* The memoized (hash-consed, Cascades-style) engine must be
   observationally indistinguishable from the per-tree reference path,
   including under budgets that truncate the closure mid-enumeration. *)
let prop_memoized_engine_equivalent =
  QCheck.Test.make ~name:"memoized exploration equals the reference engine" ~count:25
    seed_arb (fun seed ->
      let t = random_tree cat seed in
      (* Vary the budget so some runs truncate and some complete. *)
      let max_trees = 50 + (seed mod 5 * 150) in
      let options mem = { quick_options with max_trees; memoize = mem } in
      match
        ( Optimizer.Engine.optimize ~options:(options true) cat t,
          Optimizer.Engine.optimize ~options:(options false) cat t )
      with
      | Error _, Error _ -> true
      | Ok m, Ok r ->
        (m.cost = r.cost
        && m.trees_explored = r.trees_explored
        && m.budget_truncated = r.budget_truncated
        && Optimizer.Engine.SSet.equal m.exercised r.exercised
        && Optimizer.Engine.SSet.equal m.impl_exercised r.impl_exercised
        && L.equal m.best_logical r.best_logical)
        || QCheck.Test.fail_reportf
             "diverged (budget %d): cost %.3f vs %.3f, trees %d vs %d on\n%s"
             max_trees m.cost r.cost m.trees_explored r.trees_explored
             (L.to_string t)
      | _ -> QCheck.Test.fail_reportf "one engine failed, the other did not")

(* Shared exploration with nothing disabled is exactly a full optimize;
   with a disabled set it can only overestimate (§5.2 direction). *)
let prop_shared_cost_consistent =
  QCheck.Test.make ~name:"shared_cost agrees with optimize" ~count:20 seed_arb
    (fun seed ->
      let t = random_tree cat ~max_ops:6 seed in
      match Optimizer.Engine.optimize ~options:quick_options cat t with
      | Error _ -> true
      | Ok base -> (
        match Optimizer.Engine.explore_shared ~options:quick_options cat t with
        | Error e -> QCheck.Test.fail_reportf "explore_shared failed: %s" e
        | Ok sh ->
          let empty_ok =
            match
              Optimizer.Engine.shared_cost sh ~disabled:Optimizer.Engine.SSet.empty
            with
            | Ok c ->
              c = base.cost
              || QCheck.Test.fail_reportf "shared {} %.4f <> optimize %.4f" c
                   base.cost
            | Error e -> QCheck.Test.fail_reportf "shared_cost {} failed: %s" e
          in
          let g = Prng.create (seed + 13) in
          let subset =
            Prng.sample g 2 (Optimizer.Engine.SSet.elements base.exercised)
          in
          let disabled =
            List.fold_left
              (fun s r -> Optimizer.Engine.SSet.add r s)
              Optimizer.Engine.SSet.empty subset
          in
          let monotone =
            (* Always true, truncated or not: the surviving set is a
               subset of the very closure optimize searched. *)
            match Optimizer.Engine.shared_cost sh ~disabled with
            | Ok shc ->
              shc >= base.cost -. 1e-6
              || QCheck.Test.fail_reportf
                   "shared %.4f below the all-rules optimum %.4f" shc base.cost
            | Error _ -> true (* every derivation used a disabled rule *)
          in
          let conservative =
            (* Comparable to a from-scratch Cost(q, not R) only when the
               closure completed: under truncation the two searches have
               different frontiers and are incomparable. *)
            Optimizer.Engine.shared_truncated sh
            ||
            match
              ( Optimizer.Engine.shared_cost sh ~disabled,
                Optimizer.Engine.optimize
                  ~options:{ quick_options with disabled }
                  cat t )
            with
            | Ok shc, Ok scratch ->
              shc >= scratch.cost -. 1e-6
              || QCheck.Test.fail_reportf
                   "shared %.4f below scratch %.4f disabling [%s]" shc scratch.cost
                   (String.concat "; " subset)
            | Error _, _ -> true
            | Ok _, Error _ -> true
          in
          empty_ok && monotone && conservative))

let prop_ruleset_subset_of_registry =
  QCheck.Test.make ~name:"RuleSet only contains registered rules" ~count:50 seed_arb
    (fun seed ->
      let t = random_tree cat seed in
      match Optimizer.Engine.ruleset ~options:quick_options cat t with
      | Error _ -> true
      | Ok rs ->
        Optimizer.Engine.SSet.for_all
          (fun r -> List.mem r Optimizer.Rules.names)
          rs)

let to_alco = QCheck_alcotest.to_alcotest

let suite =
  [ ( "properties",
      [ to_alco prop_generated_trees_valid;
        to_alco prop_instantiation_valid;
        to_alco prop_rewrites_preserve_schema;
        to_alco prop_optimizer_deterministic;
        to_alco prop_cost_monotone;
        Alcotest.test_case "cost monotonicity at the historical flake seeds" `Slow
          test_cost_monotone_seeds;
        to_alco prop_plan_columns_match_schema;
        to_alco prop_rule_off_same_results;
        to_alco prop_compiled_scalar_agrees;
        to_alco prop_batch_scalar_agrees;
        to_alco prop_compiled_plan_agrees;
        to_alco prop_refresh_labels_disjoint;
        to_alco prop_pad_grows;
        to_alco prop_memoized_engine_equivalent;
        to_alco prop_shared_cost_consistent;
        to_alco prop_ruleset_subset_of_registry ] ) ]
