lib/executor/resultset.mli: Format Relalg Storage
