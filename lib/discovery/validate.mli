(** Differential validation of candidate rewrites (discovery stage 2).

    Each candidate's metavariables are instantiated several times over
    the catalog — relation variables become concrete subtrees
    ({!Core.Arggen} machinery), predicate and join variables become
    data-driven scalars scoped to every occurrence — and the two
    instantiated sides are executed and bag-compared through
    {!Triage.Differential}. One diverging instance refutes the
    candidate; enough clean instances and it survives; anything else
    (instantiation kept failing, executions errored) is inconclusive
    and the candidate is dropped without prejudice.

    Instance 0 is adversarial rather than random: every relation
    variable is a single-column projection of a column with duplicated
    values, the worst case for candidates that confuse bag and set
    semantics ([Distinct]/[Union] droppers survive uniform-unique data
    unscathed). *)

type params = {
  seed : int;
  trials : int;  (** instantiation attempts per candidate; default 6 *)
  min_instances : int;  (** clean instances required to survive; default 2 *)
  budget : int;  (** differential planning budget; default 1 *)
}

val default_params : params

(** The metavariable assignment behind an instance — kept on refuted
    candidates so the counterexample can be minimized move-by-move
    without leaving the candidate's instance space. *)
type assignment = {
  rels : (int * Relalg.Logical.t) list;
  preds : (int * Relalg.Scalar.t) list;
  joins : (int * Relalg.Scalar.t) list;
}

type refutation = {
  assignment : assignment;
  lhs_instance : Relalg.Logical.t;
  rhs_instance : Relalg.Logical.t;
  divergence : Triage.Divergence.t;
  instance_index : int;
}

type verdict =
  | Survived of int  (** clean instances *)
  | Refuted of refutation
  | Inconclusive of string

type result = {
  cand : Template.candidate;
  name : string;
  verdict : verdict;
  checks : int;  (** differential checks run *)
}

type mode =
  | Adversarial  (** duplicated-value projections, data-driven predicates *)
  | Adversarial_weak  (** duplicated-value projections, always-true predicates *)
  | Random

val mode_of_instance : int -> mode
(** Instance 0 is {!Adversarial}, 1 is {!Adversarial_weak}, the rest
    {!Random}. *)

val instantiate :
  params ->
  Storage.Catalog.t ->
  Storage.Prng.t ->
  mode:mode ->
  Template.candidate ->
  (assignment * Relalg.Logical.t * Relalg.Logical.t) option
(** One instantiation attempt; [None] when no valid assignment was
    found (predicate scoping or set-op alignment failed). *)

val build :
  assignment -> Template.candidate ->
  (Relalg.Logical.t * Relalg.Logical.t) option
(** Re-instantiate both sides from an (edited) assignment; [None] when
    the assignment no longer covers the candidate's variables. *)

val run :
  ?pool:Par.Pool.t ->
  params ->
  Storage.Catalog.t ->
  (string * Template.candidate) list ->
  result list
(** Validate every (name, candidate) pair. Fans out over the pool with
    per-candidate PRNG substreams and disjoint alias ranges; results
    are byte-identical for any job count. *)

type minimized = {
  refutation : refutation;  (** with minimized instances *)
  nodes_before : int;  (** lhs+rhs operator nodes before *)
  nodes_after : int;
  steps : int;  (** accepted shrink moves *)
  min_checks : int;  (** differential checks spent minimizing *)
}

val minimize :
  ?max_checks:int ->
  params ->
  Storage.Catalog.t ->
  Template.candidate ->
  refutation ->
  minimized
(** Greedy assignment-level descent: try one-edit shrinks of each
    relation subtree ({!Triage.Reduce.candidates}) and conjunct drops /
    [true_] for predicate and join variables, keeping any move that
    still yields a valid, diverging instance pair. The result is still
    an instance of the candidate. *)
