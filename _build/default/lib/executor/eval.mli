(** Scalar evaluation with SQL three-valued logic. *)

type env = Relalg.Ident.t -> Storage.Value.t
(** Value of each in-scope column for the current row. Raise [Not_found]
    for unknown columns. *)

val scalar : env -> Relalg.Scalar.t -> Storage.Value.t
(** Comparisons and logical connectives return [Bool _] or [Null]
    (UNKNOWN). Arithmetic propagates NULL. Raises [Invalid_argument] on
    type errors the binder should have prevented. *)

val pred_true : env -> Relalg.Scalar.t -> bool
(** [true] iff the predicate evaluates to exactly [Bool true] — UNKNOWN
    does not pass a WHERE/ON clause. *)
