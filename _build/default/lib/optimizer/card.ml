open Relalg
module L = Logical
module S = Scalar
open Storage

type t = {
  catalog : Catalog.t;
  rows_cache : (L.t, float) Hashtbl.t;
  alias_cache : (L.t, (string * string) list) Hashtbl.t;
      (* subtree -> (alias, table) bindings *)
}

let create catalog =
  { catalog; rows_cache = Hashtbl.create 512; alias_cache = Hashtbl.create 512 }

let clamp lo hi x = Float.max lo (Float.min hi x)

let aliases_of est tree =
  match Hashtbl.find_opt est.alias_cache tree with
  | Some a -> a
  | None ->
    let a =
      L.fold
        (fun acc node ->
          match node with L.Get { table; alias } -> (alias, table) :: acc | _ -> acc)
        [] tree
    in
    Hashtbl.replace est.alias_cache tree a;
    a

let col_stats est scope (id : Ident.t) =
  let bindings = List.concat_map (aliases_of est) scope in
  match List.assoc_opt id.rel bindings with
  | None -> None
  | Some table -> (
    match Catalog.find est.catalog table with
    | None -> None
    | Some tb -> Stats.col tb.stats id.name)

let ndv est scope id =
  match col_stats est scope id with
  | Some cs when cs.ndv > 0 -> float_of_int cs.ndv
  | _ -> 100.0

let null_fraction est scope id =
  match col_stats est scope id with
  | Some cs when cs.ndv + cs.null_count > 0 ->
    float_of_int cs.null_count /. float_of_int (cs.ndv + cs.null_count)
  | _ -> 0.05

(* Fraction of a numeric/date column's range below a constant. *)
let range_fraction est scope id v op =
  let default = 1.0 /. 3.0 in
  match col_stats est scope id with
  | None -> default
  | Some cs -> (
    let as_float = function
      | Value.Int x -> Some (float_of_int x)
      | Value.Float x -> Some x
      | Value.Date x -> Some (float_of_int x)
      | Value.Null | Value.Str _ | Value.Bool _ -> None
    in
    match (as_float cs.min_value, as_float cs.max_value, as_float v) with
    | Some lo, Some hi, Some x when hi > lo ->
      let below = clamp 0.0 1.0 ((x -. lo) /. (hi -. lo)) in
      (match op with
      | S.Lt | S.Le -> below
      | S.Gt | S.Ge -> 1.0 -. below
      | S.Eq | S.Ne -> default)
    | _ -> default)

let rec pred_selectivity est scope (p : S.t) : float =
  match p with
  | S.Const (Value.Bool true) -> 1.0
  | S.Const (Value.Bool false) | S.Const Value.Null -> 0.0
  | S.Const _ | S.Col _ -> 0.5
  | S.And (a, b) -> pred_selectivity est scope a *. pred_selectivity est scope b
  | S.Or (a, b) ->
    let pa = pred_selectivity est scope a and pb = pred_selectivity est scope b in
    pa +. pb -. (pa *. pb)
  | S.Not a -> 1.0 -. pred_selectivity est scope a
  | S.IsNull (S.Col id) -> null_fraction est scope id
  | S.IsNull _ -> 0.05
  | S.IsNotNull (S.Col id) -> 1.0 -. null_fraction est scope id
  | S.IsNotNull _ -> 0.95
  | S.Cmp (S.Eq, S.Col a, S.Col b) ->
    1.0 /. Float.max (ndv est scope a) (ndv est scope b)
  | S.Cmp (S.Eq, S.Col a, S.Const _) | S.Cmp (S.Eq, S.Const _, S.Col a) ->
    1.0 /. ndv est scope a
  | S.Cmp (S.Eq, _, _) -> 0.1
  | S.Cmp (S.Ne, a, b) -> 1.0 -. pred_selectivity est scope (S.Cmp (S.Eq, a, b))
  | S.Cmp (op, S.Col a, S.Const v) -> range_fraction est scope a v op
  | S.Cmp (op, S.Const v, S.Col a) ->
    let flipped =
      match op with
      | S.Lt -> S.Gt
      | S.Le -> S.Ge
      | S.Gt -> S.Lt
      | S.Ge -> S.Le
      | S.Eq | S.Ne -> op
    in
    range_fraction est scope a v flipped
  | S.Cmp ((S.Lt | S.Le | S.Gt | S.Ge), _, _) -> 1.0 /. 3.0
  | S.Neg _ | S.Arith _ -> 0.5

let selectivity est scope pred = clamp 1e-4 1.0 (pred_selectivity est scope pred)

let rec rows est (t : L.t) : float =
  match Hashtbl.find_opt est.rows_cache t with
  | Some r -> r
  | None ->
    let r = compute est t in
    let r = Float.max 0.0 r in
    Hashtbl.replace est.rows_cache t r;
    r

and compute est (t : L.t) : float =
  match t with
  | L.Get { table; _ } -> (
    match Catalog.find est.catalog table with
    | Some tb -> float_of_int (Table.row_count tb)
    | None -> 1000.0)
  | L.Filter { pred; child } -> rows est child *. selectivity est [ child ] pred
  | L.Project { child; _ } -> rows est child
  | L.Join { kind; pred; left; right } -> (
    let nl = rows est left and nr = rows est right in
    let inner = nl *. nr *. selectivity est [ left; right ] pred in
    match kind with
    | L.Inner | L.Cross -> inner
    | L.LeftOuter -> Float.max inner nl
    | L.RightOuter -> Float.max inner nr
    | L.FullOuter -> Float.max inner (nl +. nr)
    | L.Semi -> Float.min nl inner
    | L.AntiSemi -> Float.max 1.0 (nl -. Float.min nl inner))
  | L.GroupBy { keys; child; _ } ->
    if keys = [] then 1.0
    else
      let n = rows est child in
      let groups =
        List.fold_left (fun acc k -> acc *. ndv est [ child ] k) 1.0 keys
      in
      Float.min n groups
  | L.UnionAll (a, b) -> rows est a +. rows est b
  | L.Union (a, b) -> 0.9 *. (rows est a +. rows est b)
  | L.Intersect (a, b) -> 0.5 *. Float.min (rows est a) (rows est b)
  | L.Except (a, _) -> 0.5 *. rows est a
  | L.Distinct child -> 0.9 *. rows est child
  | L.Sort { child; _ } -> rows est child
  | L.Limit { count; child } -> Float.min (float_of_int count) (rows est child)
