(** Candidate rewrite-rule templates (discovery stage 1).

    A candidate is a pair of small logical-tree {e templates} over
    metavariables: relation variables ([Rel i], standing for arbitrary
    subtrees), predicate variables ([Pvar i], standing for arbitrary
    boolean scalars) and join-predicate variables. Enumeration is bounded
    by operator count and an operator alphabet; every pair is then
    {e standardized} — oriented and variable-renumbered into a normal
    form — so symmetric and alpha-equivalent candidates collapse, and the
    normal form's encoding as a [Logical] tree is interned through
    {!Relalg.Hashcons} so dedup is one id comparison per side. *)

type pred =
  | Pvar of int
  | Pand of int * int
      (** conjunction of two predicate variables; operand order is
          normalized away *)

type node =
  | Rel of int
  | Filter of pred * node
  | Join of int * node * node  (** inner join under a join-pred variable *)
  | Distinct of node
  | UnionAll of node * node
  | Union of node * node
  | Intersect of node * node
  | Except of node * node

type candidate = { lhs : node; rhs : node }

type alphabet =
  | Basic  (** Filter, Join, Distinct *)
  | Setops  (** Basic + UnionAll, Union *)
  | Full  (** Setops + Intersect, Except *)

val alphabet_of_string : string -> (alphabet, string) result
val alphabet_name : alphabet -> string

val ops : node -> int
(** Operator nodes ([Rel] leaves excluded). *)

val rel_vars : node -> int list
(** Distinct relation variables, sorted. *)

val has_setop : node -> bool

val equal : candidate -> candidate -> bool

val standardize : candidate -> candidate
(** Normal form: orient the pair (the side whose variable set strictly
    contains the other's — and otherwise the larger side — becomes the
    lhs, with a canonical-form comparison breaking exact ties), then
    renumber every variable class by first occurrence over the
    lhs-then-rhs preorder walk. Idempotent; invariant under swapping the
    sides and under injective renaming of the variables. *)

val normal_ids : candidate -> int * int
(** Hash-cons ids of the standardized sides' {!Logical} encodings —
    the dedup key. Ids are domain-local: compare ids obtained on one
    domain only, and never persist them. *)

val display : candidate -> string
(** Compact rendering, e.g. ["F[p0](F[p1](R0)) -> F[p0&p1](R0)"]. *)

val name_of : candidate -> string
(** Deterministic rule name ["Disc%08x"] derived from {!display} of the
    standardized candidate — stable across processes and job counts. *)

val enumerate : ?pool:Par.Pool.t -> alphabet -> max_nodes:int -> candidate list
(** All standardized, deduplicated candidates whose sides each use at
    most [max_nodes] operators over one or two relation variables (each
    side uses the same relation-variable set, linearly). Statically
    filtered: the two sides must expose compatible outputs and one
    side's variable set must contain the other's. Every seeded-unsound
    candidate expressible in [alphabet] is present. Deterministic and
    independent of [pool]. *)

val enumerate_counted :
  ?pool:Par.Pool.t -> alphabet -> max_nodes:int -> candidate list * int
(** {!enumerate} plus the raw pre-dedup pair count. *)

val known_sound : (string * candidate) list
(** Standardized forms of known-sound rewrites (named after the
    corresponding optimizer rule where one exists) — the rediscovery
    reference set. *)

val seeded_unsound : (string * candidate) list
(** Standardized forms of deliberately unsound candidates that
    validation must refute (the discovery analogue of [Core.Faults]). *)

val rediscovered_name : candidate -> string option
val seeded_name : candidate -> string option

val to_pattern : candidate -> Optimizer.Pattern.t
(** Pattern of the standardized lhs ([Any] at relation variables). *)

val to_rdsl : ?name:string -> candidate -> Dsl.Rdsl.rule option
(** Bridge into the rewrite DSL for the symbolic small-scope oracle:
    filter/join predicate variables become DSL predicate metavariables
    (join variables in a disjoint namespace), relation variables become
    relation metavariables, with no side-conditions. [None] when the
    candidate uses Intersect/Except, which fall outside the DSL
    fragment. *)

val to_rule : ?name:string -> candidate -> Optimizer.Rule.t
(** Bridge into a real optimizer rule: match the lhs template (binding
    relation subtrees and predicates), build the rhs, and re-align the
    output schema to the matched tree's (identity projection when only
    column order changed, positional rename when the sides export
    different columns of equal type). [apply] returns [] whenever the
    match or the alignment fails. *)
