let hist_json (h : Metrics.hist_snapshot) ~quantile =
  Json.Obj
    [ ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("min", Json.Float (if h.count = 0 then 0.0 else h.min));
      ("max", Json.Float (if h.count = 0 then 0.0 else h.max));
      ("mean", Json.Float (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count));
      ("p50", Json.Float (quantile 0.5));
      ("p95", Json.Float (quantile 0.95)) ]

let value_json (v : Metrics.value) ~quantile =
  match v with
  | Metrics.Counter c -> Json.Int c
  | Metrics.Gauge g -> Json.Float g
  | Metrics.Histogram h -> hist_json h ~quantile

(* Quantiles need the live histogram (snapshots drop the buckets);
   re-resolve it by name, which returns the registered instance. *)
let quantile_of name label = function
  | Metrics.Histogram _ ->
    let h = Metrics.histogram ?label name in
    fun q -> Metrics.hist_quantile h q
  | _ -> fun _ -> 0.0

let metrics_json () =
  let items =
    List.map
      (fun (name, label, v) ->
        let base =
          [ ("name", Json.String name) ]
          @ (match label with Some l -> [ ("label", Json.String l) ] | None -> [])
        in
        Json.Obj (base @ [ ("value", value_json v ~quantile:(quantile_of name label v)) ]))
      (Metrics.snapshot ())
  in
  Json.Obj [ ("metrics", Json.List items) ]

let pp_metrics fmt () =
  List.iter
    (fun (name, label, v) ->
      let full = match label with Some l -> name ^ "{" ^ l ^ "}" | None -> name in
      match v with
      | Metrics.Counter c -> Format.fprintf fmt "%-54s %12d@." full c
      | Metrics.Gauge g -> Format.fprintf fmt "%-54s %12.1f@." full g
      | Metrics.Histogram h ->
        Format.fprintf fmt "%-54s %12d  sum %.0f  mean %.0f@." full h.count h.sum
          (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count))
    (Metrics.snapshot ())

let label_table names =
  let snap = Metrics.snapshot () in
  let labels =
    List.sort_uniq compare
      (List.filter_map
         (fun (name, label, _) ->
           match label with Some l when List.mem name names -> Some l | _ -> None)
         snap)
  in
  let find name label =
    List.find_map
      (fun (n, l, v) -> if n = name && l = Some label then Some v else None)
      snap
  in
  List.map (fun l -> (l, List.map (fun n -> find n l) names)) labels
