lib/core/suite.ml: Array Framework List Option Query_gen Relalg
