let () =
  Alcotest.run "qtr"
    (List.concat
       [ Test_storage.suite; Test_relalg.suite; Test_props.suite; Test_sql.suite; Test_patterns.suite; Test_rules.suite; Test_executor.suite; Test_engine.suite; Test_framework.suite; Test_compress.suite; Test_incremental.suite; Test_triage.suite; Test_properties.suite; Test_misc.suite; Test_arggen.suite; Test_obs.suite; Test_profile.suite; Test_par.suite; Test_discovery.suite; Test_dsl.suite ])
