test/test_properties.ml: Array Core Datagen Executor List Optimizer Prng QCheck QCheck_alcotest Relalg Result Storage String
