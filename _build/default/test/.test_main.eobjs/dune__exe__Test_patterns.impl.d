test/test_patterns.ml: Alcotest Core Ident List Logical Optimizer Relalg Result Scalar String
