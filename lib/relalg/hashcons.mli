(** Hash-consed logical trees: unique node ids, O(1) equality/hash,
    cached size, maximal physical sharing of equal subtrees.

    {!intern} walks a tree bottom-up once; every structurally distinct
    subtree is assigned a unique id and canonicalized so equal subtrees
    are physically shared. All the optimizer's hot tables (the closure's
    seen set, the rewrite memo, the planner cache, cardinality and
    property memos) key on {!id} — one int compare — instead of deep
    structural hashing.

    The interning table is {e domain-local} ([Domain.DLS]): each domain
    interns into its own table with zero synchronization, and ids are
    allocated from per-domain blocks carved off one global atomic
    counter, so ids are unique across the whole process and never
    reused. Consequences: within a domain, [==]/{!equal} and {!id}
    behave exactly as a global table; across domains, two structurally
    equal trees interned independently are {e distinct} nodes with
    distinct ids — an id-keyed cache fed from several domains can
    therefore miss (recompute) but never alias two different trees.
    {!clear} and the {!hits}/{!misses}/{!live_nodes} introspection are
    likewise per-domain. See DESIGN.md §10 for the trade-off against a
    shared mutex-protected table. *)

type node = private {
  repr : Logical.t;
      (** the canonical tree; children are themselves canonical reprs *)
  id : int;  (** unique per structurally distinct tree, never reused *)
  hkey : int;  (** cached [Logical.hash repr] *)
  nsize : int;  (** cached [Logical.size repr] *)
  kids : node array;  (** canonical children, in order *)
}

val intern : Logical.t -> node
(** Canonicalize a tree. O(size) on first sight, O(size) table hits on a
    re-interning; trees that share subtrees physically share the
    interning work of those subtrees' canonical forms. *)

val rebuild : node -> int -> node -> node
(** [rebuild n i kid] is the node for [n.repr] with child [i] replaced by
    [kid] — O(payload), not O(size); this is how the engine re-wraps
    memoized child rewrites. Raises [Invalid_argument] on a bad index. *)

val repr : node -> Logical.t
val id : node -> int
val hash : node -> int
val size : node -> int

val equal : node -> node -> bool
(** Physical (= structural, by the interning invariant) equality. *)

(** {2 Introspection} (wired into [Obs.Metrics] by the engine) *)

val live_nodes : unit -> int
val hits : unit -> int
val misses : unit -> int

type occupancy = {
  entries : int;  (** distinct interned nodes (= {!live_nodes}) *)
  buckets : int;  (** current bucket-array length of the table *)
  load_factor : float;  (** entries / buckets; > 1 means chains *)
  longest_chain : int;  (** worst-case probe length right now *)
}

val occupancy : unit -> occupancy
(** Table-shape snapshot for the calling domain — how full the interning
    table is, not just how many nodes it holds. Costs a full bucket scan
    ([Hashtbl.stats]); call at phase boundaries, not per intern. *)

val clear : unit -> unit
(** Drop the table (test isolation). Ids are not reused. *)
