open Storage
module P = Optimizer.Physical
module S = Relalg.Scalar
module A = Relalg.Aggregate
module L = Relalg.Logical
module Ident = Relalg.Ident

(* Columnar batch execution. Scalars are compiled once into *kernels*
   that evaluate a whole morsel (a chunk of rows) at a time: every
   expression node produces a [Value.t array] column, so per-row cost is
   a tight loop body instead of a closure call per AST node. Observable
   behaviour — values, three-valued logic, *and the exact error raised* —
   must match the row-at-a-time paths ([Eval], [Compile.scalar]); the
   QCheck differential properties hold all three to that.

   Error discipline. Row-at-a-time evaluation aborts a row at its first
   failing expression node and aborts the operator at its first failing
   row. Kernels reproduce that with a per-row [exn option] slot shared
   across the expressions of one operator: a kernel records an error
   only into an empty slot (first expression wins per row), [And]/[Or]
   evaluate their right side only over the selection where the left side
   didn't short-circuit (a row short-circuited to FALSE/TRUE must not
   observe errors from the unreached side), and when an operator
   materializes its morsel the error of the *lowest* erroring row index
   is raised — exactly the row a sequential scan would have died on.
   [Par.Pool.map_array] re-raises the lowest-index task's exception, so
   the same holds across parallel morsels. *)

(* ------------------------------------------------------------------ *)
(* Morsel context                                                      *)
(* ------------------------------------------------------------------ *)

type ctx = {
  rows : Value.t array array;
  n : int;
  (* Allocated on the first error — the overwhelmingly common clean
     morsel never pays for the slots. *)
  mutable err : exn option array;
  mutable has_err : bool;
  (* Per-morsel unboxed-column cache: [Some] once a column proved
     all-float/NULL over the whole morsel, [None] once it proved mixed.
     Kernels sharing a column (several comparison leaves over the same
     price column, say) pay the unboxing scan once per morsel instead
     of once per kernel. *)
  mutable ucache : (int * (float array * bool array * bool) option) list;
  (* Per-morsel common-subexpression store for the unboxed fast path:
     full-selection, division-free float subtrees evaluate once per
     morsel no matter how many kernels (or how many occurrences inside
     one tree) mention them. Keyed structurally — column indices are
     operator-relative, and both the cache and the kernels live per
     operator, so equal keys mean equal values. *)
  mutable fmemo : (fexpr * float array) list;
}

and fexpr =
  | FConst of float
  | FNull
  | FCol of int
  | FNeg of fexpr
  | FOp of S.arith_op * fexpr * fexpr

let make_ctx rows =
  let n = Array.length rows in
  { rows; n; err = [||]; has_err = false; ucache = []; fmemo = [] }

let ok ctx i =
  (not ctx.has_err) || (match ctx.err.(i) with None -> true | Some _ -> false)

let set_err ctx i e =
  if not ctx.has_err then begin
    ctx.err <- Array.make ctx.n None;
    ctx.err.(i) <- Some e;
    ctx.has_err <- true
  end
  else match ctx.err.(i) with Some _ -> () | None -> ctx.err.(i) <- Some e

(* Raise the first (lowest-row) recorded error, if any. *)
let check ctx =
  if ctx.has_err then
    for i = 0 to ctx.n - 1 do
      match ctx.err.(i) with Some e -> raise e | None -> ()
    done

let full_sel n = Array.init n (fun i -> i)

(* Pre-sized immediate-int vector for selection building. Capacity is an
   upper bound the caller knows (the selection being partitioned), so
   pushes skip both the growth check and — ints being immediate — the
   [caml_modify] write barrier a generic ['a] vector pays. *)
module Ivec = struct
  type t = { a : int array; mutable len : int }

  let create cap = { a = Array.make (max cap 1) 0; len = 0 }

  let push v i =
    Array.unsafe_set v.a v.len i;
    v.len <- v.len + 1

  let to_array v =
    if v.len = Array.length v.a then v.a else Array.sub v.a 0 v.len
end

(* A kernel fills its output column at the selected row indices; rows
   outside the selection (or already carrying an error) hold garbage the
   caller never reads. *)
type kernel = ctx -> int array -> Value.t array

let bad_bool_exn v =
  Invalid_argument ("Eval: expected boolean, got " ^ Value.to_sql v)

(* ------------------------------------------------------------------ *)
(* Unboxed float fast path                                             *)
(* ------------------------------------------------------------------ *)

(* A maximal Arith/Neg/Const/Col subtree whose constants are floats can
   evaluate entirely over unboxed [float array]s + null masks when — at
   runtime — every referenced column holds only floats and NULLs in the
   current morsel: Float⊙Float semantics never raises, never produces an
   Int, and division by zero yields NULL via the mask, so the fused loop
   is observationally identical to node-wise generic evaluation. NaN
   columns (absent from generated data, but cheap to guard) fall back to
   the generic path, whose [Stdlib.compare]-based semantics NaN-raw
   float comparisons would not reproduce. *)

let rec float_plan cols (e : S.t) : fexpr option =
  match e with
  | S.Const (Value.Float f) when not (Float.is_nan f) -> Some (FConst f)
  | S.Const Value.Null -> Some FNull
  | S.Col id -> Some (FCol (Compile.column_index cols id))
  | S.Neg a -> Option.map (fun fa -> FNeg fa) (float_plan cols a)
  | S.Arith (op, a, b) -> (
    match (float_plan cols a, float_plan cols b) with
    | Some fa, Some fb -> Some (FOp (op, fa, fb))
    | _ -> None)
  | _ -> None

let rec fexpr_cols acc = function
  | FConst _ | FNull -> acc
  | FCol c -> if List.mem c acc then acc else c :: acc
  | FNeg a -> fexpr_cols acc a
  | FOp (_, a, b) -> fexpr_cols (fexpr_cols acc a) b

(* Unbox one column over the *whole morsel* (so the result is valid for
   any selection and cacheable per ctx): [None] unless every value is a
   (non-NaN) float or NULL. The third component records whether any
   NULL was seen — when it's [false] the mask is all-false and the
   closure-compiled no-mask fast path applies. *)
let unbox_col ctx c =
  let rec find = function
    | (c', r) :: rest -> if c' = c then r else find rest
    | [] ->
      let n = ctx.n in
      let buf = Array.make n 0.0 in
      let mask = Array.make n false in
      let has_null = ref false in
      let okay = ref true in
      let r = ref 0 in
      while !okay && !r < n do
        (match (Array.unsafe_get ctx.rows !r).(c) with
        | Value.Float x when not (Float.is_nan x) -> Array.unsafe_set buf !r x
        | Value.Null ->
          Array.unsafe_set mask !r true;
          has_null := true
        | _ -> okay := false);
        incr r
      done;
      let res = if !okay then Some (buf, mask, !has_null) else None in
      ctx.ucache <- (c, res) :: ctx.ucache;
      res
  in
  find ctx.ucache

(* Unbox several columns in one pass over the rows (each row object is
   loaded once however many columns an expression references), filling
   the ctx cache; already-cached columns are skipped. *)
let unbox_cols ctx cols_idx =
  (match
     List.filter (fun c -> not (List.mem_assoc c ctx.ucache)) cols_idx
   with
  | [] -> ()
  | missing ->
    let cs = Array.of_list missing in
    let m = Array.length cs in
    let bufs = Array.init m (fun _ -> Array.make ctx.n 0.0) in
    let masks = Array.init m (fun _ -> Array.make ctx.n false) in
    let hasn = Array.make m false in
    let okay = Array.make m true in
    for r = 0 to ctx.n - 1 do
      let row = Array.unsafe_get ctx.rows r in
      for j = 0 to m - 1 do
        if Array.unsafe_get okay j then
          match row.(Array.unsafe_get cs j) with
          | Value.Float x when not (Float.is_nan x) ->
            Array.unsafe_set (Array.unsafe_get bufs j) r x
          | Value.Null ->
            (Array.unsafe_get masks j).(r) <- true;
            hasn.(j) <- true
          | _ -> okay.(j) <- false
      done
    done;
    for j = 0 to m - 1 do
      ctx.ucache <-
        ( cs.(j),
          if okay.(j) then Some (bufs.(j), masks.(j), hasn.(j)) else None )
        :: ctx.ucache
    done);
  let rec go acc = function
    | [] -> Some acc
    | c :: rest -> (
      match unbox_col ctx c with
      | Some v -> go ((c, v) :: acc) rest
      | None -> None)
  in
  go [] cols_idx

let rec has_fnull = function
  | FNull -> true
  | FConst _ | FCol _ -> false
  | FNeg a -> has_fnull a
  | FOp (_, a, b) -> has_fnull a || has_fnull b

let rec has_fdiv = function
  | FConst _ | FNull | FCol _ -> false
  | FNeg a -> has_fdiv a
  | FOp (S.Div, _, _) -> true
  | FOp (_, a, b) -> has_fdiv a || has_fdiv b

(* Node-wise masked evaluation — the general form, used whenever NULLs
   are in play (nullable column or NULL literal). *)
let rec feval ctx sel env = function
  | FConst f -> (Array.make ctx.n f, Array.make ctx.n false)
  | FNull -> (Array.make ctx.n 0.0, Array.make ctx.n true)
  | FCol c ->
    let buf, mask, _ = List.assoc c env in
    (buf, mask)
  | FNeg a ->
    let va, ma = feval ctx sel env a in
    let buf = Array.make ctx.n 0.0 in
    let len = Array.length sel in
    for k = 0 to len - 1 do
      let i = Array.unsafe_get sel k in
      buf.(i) <- -.va.(i)
    done;
    (buf, ma)
  | FOp (op, a, b) ->
    let va, ma = feval ctx sel env a in
    let vb, mb = feval ctx sel env b in
    let buf = Array.make ctx.n 0.0 in
    let mask = Array.make ctx.n false in
    let len = Array.length sel in
    (match op with
    | S.Add ->
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        mask.(i) <- ma.(i) || mb.(i);
        buf.(i) <- va.(i) +. vb.(i)
      done
    | S.Sub ->
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        mask.(i) <- ma.(i) || mb.(i);
        buf.(i) <- va.(i) -. vb.(i)
      done
    | S.Mul ->
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        mask.(i) <- ma.(i) || mb.(i);
        buf.(i) <- va.(i) *. vb.(i)
      done
    | S.Div ->
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        if ma.(i) || mb.(i) || vb.(i) = 0.0 then mask.(i) <- true
        else buf.(i) <- va.(i) /. vb.(i)
      done);
    (buf, mask)

(* NULL-free fast path: one tight unboxed loop per node, no masks, no
   per-row closure calls, no boxed intermediates (float array reads and
   writes stay unboxed, which per-node closures could not — an
   [int -> float] closure boxes every return). Constant operands fold
   into the loop instead of materializing a column. Division (the only
   NULL source left once columns are NULL-free and the tree has no NULL
   literal) records into the shared [dmask]; a masked row's 0.0
   placeholder may feed parent nodes, but the mask stays set so the
   garbage is never materialized — exactly [feval]'s propagation. *)
let rec feval_nm ctx sel (env : (int * float array) list)
    (dmask : bool array) fe : float array =
  match fe with
  | FConst f -> Array.make ctx.n f
  | FNull -> assert false (* callers exclude via [has_fnull] *)
  | FCol c -> List.assoc c env
  | FNeg _ | FOp _ ->
    (* Common-subexpression elimination per morsel: a full-selection,
       division-free subtree evaluates once and is shared — both across
       repeated occurrences inside one tree and across the kernels of
       one operator (they share the ctx). Division is excluded because
       its NULLs live in the caller's dmask, not in the buffer. *)
    if not (has_fdiv fe) then (
      match List.assoc_opt fe ctx.fmemo with
      | Some buf -> buf (* full-sel buffers serve any narrower sel *)
      | None ->
        let buf = feval_nm_node ctx sel env dmask fe in
        if Array.length sel = ctx.n then ctx.fmemo <- (fe, buf) :: ctx.fmemo;
        buf)
    else feval_nm_node ctx sel env dmask fe

and feval_nm_node ctx sel env dmask fe : float array =
  match fe with
  | FConst _ | FNull | FCol _ -> assert false (* handled by [feval_nm] *)
  | FNeg a ->
    let va = feval_nm ctx sel env dmask a in
    let buf = Array.make ctx.n 0.0 in
    let len = Array.length sel in
    for k = 0 to len - 1 do
      let i = Array.unsafe_get sel k in
      Array.unsafe_set buf i (-.Array.unsafe_get va i)
    done;
    buf
  | FOp (op, a, b) ->
    let buf = Array.make ctx.n 0.0 in
    let len = Array.length sel in
    (match (op, a, b) with
    | S.Add, a, FConst cb ->
      let va = feval_nm ctx sel env dmask a in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set buf i (Array.unsafe_get va i +. cb)
      done
    | S.Add, FConst ca, b ->
      let vb = feval_nm ctx sel env dmask b in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set buf i (ca +. Array.unsafe_get vb i)
      done
    | S.Add, a, b ->
      let va = feval_nm ctx sel env dmask a in
      let vb = feval_nm ctx sel env dmask b in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set buf i
          (Array.unsafe_get va i +. Array.unsafe_get vb i)
      done
    | S.Sub, a, FConst cb ->
      let va = feval_nm ctx sel env dmask a in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set buf i (Array.unsafe_get va i -. cb)
      done
    | S.Sub, FConst ca, b ->
      let vb = feval_nm ctx sel env dmask b in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set buf i (ca -. Array.unsafe_get vb i)
      done
    | S.Sub, a, b ->
      let va = feval_nm ctx sel env dmask a in
      let vb = feval_nm ctx sel env dmask b in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set buf i
          (Array.unsafe_get va i -. Array.unsafe_get vb i)
      done
    | S.Mul, a, FConst cb ->
      let va = feval_nm ctx sel env dmask a in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set buf i (Array.unsafe_get va i *. cb)
      done
    | S.Mul, FConst ca, b ->
      let vb = feval_nm ctx sel env dmask b in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set buf i (ca *. Array.unsafe_get vb i)
      done
    | S.Mul, a, b ->
      let va = feval_nm ctx sel env dmask a in
      let vb = feval_nm ctx sel env dmask b in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set buf i
          (Array.unsafe_get va i *. Array.unsafe_get vb i)
      done
    | S.Div, a, FConst cb ->
      let va = feval_nm ctx sel env dmask a in
      if cb = 0.0 then
        for k = 0 to len - 1 do
          dmask.(Array.unsafe_get sel k) <- true
        done
      else
        for k = 0 to len - 1 do
          let i = Array.unsafe_get sel k in
          Array.unsafe_set buf i (Array.unsafe_get va i /. cb)
        done
    | S.Div, a, b ->
      let va = feval_nm ctx sel env dmask a in
      let vb = feval_nm ctx sel env dmask b in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        let d = Array.unsafe_get vb i in
        if d = 0.0 then dmask.(i) <- true
        else Array.unsafe_set buf i (Array.unsafe_get va i /. d)
      done);
    buf

let fenv_of env = List.map (fun (c, (b, _, _)) -> (c, (b : float array))) env
let env_has_null env = List.exists (fun (_, (_, _, hn)) -> hn) env

(* Monomorphic float comparisons: the polymorphic operators would go
   through the generic compare runtime per row. NaN never reaches these
   from a column (unboxing bails), and a computed NaN compares the same
   way the polymorphic operators compare raw floats. *)
let float_cmp : S.cmp_op -> float -> float -> bool = function
  | S.Eq -> fun a b -> a = b
  | S.Ne -> fun a b -> a <> b
  | S.Lt -> fun a b -> a < b
  | S.Le -> fun a b -> a <= b
  | S.Gt -> fun a b -> a > b
  | S.Ge -> fun a b -> a >= b

let vtrue = Value.Bool true
let vfalse = Value.Bool false
let vbool b = if b then vtrue else vfalse

(* SQL comparison on boxed values: [None] is NULL; may raise on
   incomparable types (recorded per row by the caller). *)
let cmp_fn : S.cmp_op -> Value.t -> Value.t -> bool option = function
  | S.Eq -> Value.eq_sql
  | S.Ne -> fun va vb -> Option.map not (Value.eq_sql va vb)
  | S.Lt -> Value.lt_sql
  | S.Le -> Value.le_sql
  | S.Gt -> fun va vb -> Value.lt_sql vb va
  | S.Ge -> fun va vb -> Value.le_sql vb va

(* ------------------------------------------------------------------ *)
(* Scalar kernels                                                      *)
(* ------------------------------------------------------------------ *)

(* The apply loops only need the per-row [ok] guard when some earlier
   kernel already recorded an error (its input slots hold garbage): if
   [has_err] is still false when the loop starts, every selected row's
   inputs are valid, and a row that errors *inside* the loop is visited
   exactly once — so the guard-free loop is safe. *)

let map1 (f : Value.t -> Value.t) (ka : kernel) : kernel =
 fun ctx sel ->
  let ca = ka ctx sel in
  let out = Array.make ctx.n Value.Null in
  let len = Array.length sel in
  if not ctx.has_err then
    for k = 0 to len - 1 do
      let i = Array.unsafe_get sel k in
      try Array.unsafe_set out i (f (Array.unsafe_get ca i))
      with e -> set_err ctx i e
    done
  else
    for k = 0 to len - 1 do
      let i = Array.unsafe_get sel k in
      if ok ctx i then
        try out.(i) <- f ca.(i) with e -> set_err ctx i e
    done;
  out

let map2_ord (rl : bool) (f : Value.t -> Value.t -> Value.t) (ka : kernel)
    (kb : kernel) : kernel =
 fun ctx sel ->
  (* Operand evaluation order decides which error wins a row when both
     sides fail, so it must copy the row paths node for node: [Cmp]
     binds left-to-right explicitly ([Compile.scalar]), but [Arith] in
     both row paths is a plain application [f (eval a) (eval b)] — and
     OCaml evaluates function arguments right to left. *)
  let ca, cb =
    if rl then
      let cb = kb ctx sel in
      (ka ctx sel, cb)
    else
      let ca = ka ctx sel in
      (ca, kb ctx sel)
  in
  let out = Array.make ctx.n Value.Null in
  let len = Array.length sel in
  if not ctx.has_err then
    for k = 0 to len - 1 do
      let i = Array.unsafe_get sel k in
      try Array.unsafe_set out i (f (Array.unsafe_get ca i) (Array.unsafe_get cb i))
      with e -> set_err ctx i e
    done
  else
    for k = 0 to len - 1 do
      let i = Array.unsafe_get sel k in
      if ok ctx i then
        try out.(i) <- f ca.(i) cb.(i) with e -> set_err ctx i e
    done;
  out

let map2 f ka kb = map2_ord false f ka kb
let map2_arith f ka kb = map2_ord true f ka kb

let rec scalar (cols : Ident.t array) (e : S.t) : kernel =
  match e with
  | S.Const v -> fun ctx _sel -> Array.make ctx.n v
  | S.Col id ->
    let c = Compile.column_index cols id in
    fun ctx sel ->
      let out = Array.make ctx.n Value.Null in
      let len = Array.length sel in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        Array.unsafe_set out i (Array.unsafe_get ctx.rows i).(c)
      done;
      out
  | S.Neg _ | S.Arith (_, _, _) -> (
    match float_plan cols e with
    | Some fe -> fused_arith cols e fe
    | None -> generic_arith cols e)
  | S.Cmp (op, a, b) -> (
    let cmp = cmp_fn op in
    let generic () =
      let ka = scalar cols a and kb = scalar cols b in
      map2
        (fun va vb ->
          match cmp va vb with None -> Value.Null | Some b -> vbool b)
        ka kb
    in
    match (float_plan cols a, float_plan cols b) with
    | Some fa, Some fb -> fused_cmp op fa fb generic
    | _ -> generic ())
  | S.And (a, b) ->
    let ka = scalar cols a and kb = scalar cols b in
    fun ctx sel ->
      let ca = ka ctx sel in
      let out = Array.make ctx.n Value.Null in
      let sub = Ivec.create (Array.length sel) in
      Array.iter
        (fun i ->
          if ok ctx i then
            match ca.(i) with
            | Value.Bool false -> out.(i) <- Value.Bool false
            | Value.Bool true | Value.Null -> Ivec.push sub i
            | v -> set_err ctx i (bad_bool_exn v))
        sel;
      let sub = Ivec.to_array sub in
      let cb = kb ctx sub in
      Array.iter
        (fun i ->
          if ok ctx i then
            match (ca.(i), cb.(i)) with
            | Value.Bool true, ((Value.Bool _ | Value.Null) as v) ->
              out.(i) <- v
            | Value.Null, Value.Bool false -> out.(i) <- Value.Bool false
            | Value.Null, (Value.Bool true | Value.Null) ->
              out.(i) <- Value.Null
            | _, v -> set_err ctx i (bad_bool_exn v))
        sub;
      out
  | S.Or (a, b) ->
    let ka = scalar cols a and kb = scalar cols b in
    fun ctx sel ->
      let ca = ka ctx sel in
      let out = Array.make ctx.n Value.Null in
      let sub = Ivec.create (Array.length sel) in
      Array.iter
        (fun i ->
          if ok ctx i then
            match ca.(i) with
            | Value.Bool true -> out.(i) <- Value.Bool true
            | Value.Bool false | Value.Null -> Ivec.push sub i
            | v -> set_err ctx i (bad_bool_exn v))
        sel;
      let sub = Ivec.to_array sub in
      let cb = kb ctx sub in
      Array.iter
        (fun i ->
          if ok ctx i then
            match (ca.(i), cb.(i)) with
            | Value.Bool false, ((Value.Bool _ | Value.Null) as v) ->
              out.(i) <- v
            | Value.Null, Value.Bool true -> out.(i) <- Value.Bool true
            | Value.Null, (Value.Bool false | Value.Null) ->
              out.(i) <- Value.Null
            | _, v -> set_err ctx i (bad_bool_exn v))
        sub;
      out
  | S.Not a ->
    map1
      (function
        | Value.Bool b -> Value.Bool (not b)
        | Value.Null -> Value.Null
        | v -> raise (bad_bool_exn v))
      (scalar cols a)
  | S.IsNull a ->
    map1 (fun v -> Value.Bool (Value.is_null v)) (scalar cols a)
  | S.IsNotNull a ->
    map1 (fun v -> Value.Bool (not (Value.is_null v))) (scalar cols a)

and generic_arith cols e : kernel =
  match e with
  | S.Neg a -> map1 Value.neg (scalar cols a)
  | S.Arith (op, a, b) ->
    let f =
      match op with
      | S.Add -> Value.add
      | S.Sub -> Value.sub
      | S.Mul -> Value.mul
      | S.Div -> Value.div
    in
    map2_arith f (scalar cols a) (scalar cols b)
  | _ -> assert false

and fused_arith cols e fe : kernel =
  let cols_idx = fexpr_cols [] fe in
  let generic = generic_arith cols e in
  let fnull = has_fnull fe in
  let fdiv = has_fdiv fe in
  fun ctx sel ->
    match unbox_cols ctx cols_idx with
    | None -> generic ctx sel
    | Some env ->
      let out = Array.make ctx.n Value.Null in
      let len = Array.length sel in
      if fnull || env_has_null env then begin
        let buf, mask = feval ctx sel env fe in
        for k = 0 to len - 1 do
          let i = Array.unsafe_get sel k in
          if not (Array.unsafe_get mask i) then
            Array.unsafe_set out i (Value.Float (Array.unsafe_get buf i))
        done
      end
      else begin
        let fenv = fenv_of env in
        if fdiv then begin
          let dmask = Array.make ctx.n false in
          let buf = feval_nm ctx sel fenv dmask fe in
          for k = 0 to len - 1 do
            let i = Array.unsafe_get sel k in
            if not (Array.unsafe_get dmask i) then
              Array.unsafe_set out i (Value.Float (Array.unsafe_get buf i))
          done
        end
        else begin
          let buf = feval_nm ctx sel fenv [||] fe in
          for k = 0 to len - 1 do
            let i = Array.unsafe_get sel k in
            Array.unsafe_set out i (Value.Float (Array.unsafe_get buf i))
          done
        end
      end;
      out

and fused_cmp op fa fb generic : kernel =
  let cols_idx = fexpr_cols (fexpr_cols [] fa) fb in
  let generic = generic () in
  let fnull = has_fnull fa || has_fnull fb in
  let fdiv = has_fdiv fa || has_fdiv fb in
  let cmpf = float_cmp op in
  fun ctx sel ->
    match unbox_cols ctx cols_idx with
    | None -> generic ctx sel
    | Some env ->
      let out = Array.make ctx.n Value.Null in
      let len = Array.length sel in
      if fnull || env_has_null env then begin
        let va, ma = feval ctx sel env fa in
        let vb, mb = feval ctx sel env fb in
        for k = 0 to len - 1 do
          let i = Array.unsafe_get sel k in
          if not (ma.(i) || mb.(i)) then
            Array.unsafe_set out i (vbool (cmpf va.(i) vb.(i)))
        done
      end
      else begin
        let fenv = fenv_of env in
        if fdiv then begin
          let dmask = Array.make ctx.n false in
          let va = feval_nm ctx sel fenv dmask fa in
          let vb = feval_nm ctx sel fenv dmask fb in
          for k = 0 to len - 1 do
            let i = Array.unsafe_get sel k in
            if not (Array.unsafe_get dmask i) then
              Array.unsafe_set out i
                (vbool (cmpf (Array.unsafe_get va i) (Array.unsafe_get vb i)))
          done
        end
        else begin
          let va = feval_nm ctx sel fenv [||] fa in
          let vb = feval_nm ctx sel fenv [||] fb in
          for k = 0 to len - 1 do
            let i = Array.unsafe_get sel k in
            Array.unsafe_set out i
              (vbool (cmpf (Array.unsafe_get va i) (Array.unsafe_get vb i)))
          done
        end
      end;
      out

(* ------------------------------------------------------------------ *)
(* Selection transformers (filter fast path)                           *)
(* ------------------------------------------------------------------ *)

(* A filter doesn't need its predicate as a column. Compile it to a
   *selection transformer* returning the TRUE and NULL row sets
   (ascending): AND narrows the selection before its right side runs,
   OR evaluates its right side only over rows the left didn't already
   accept — the short-circuiting a row-at-a-time loop performs, but
   batched — and comparison leaves over NULL-free float columns run as
   tight unboxed loops that never box a single Bool. Error parity with
   the row path holds node by node: the right side is evaluated over
   exactly the rows whose left side came out TRUE/NULL (AND) or
   FALSE/NULL (OR), rows short-circuited away never observe right-side
   errors, erred rows drop out of every set, and [check] raises the
   lowest erroring row. *)

(* Merge two disjoint ascending index arrays. *)
let merge_asc a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 in
    for k = 0 to la + lb - 1 do
      if !i < la && (!j >= lb || a.(!i) < b.(!j)) then begin
        out.(k) <- a.(!i);
        incr i
      end
      else begin
        out.(k) <- b.(!j);
        incr j
      end
    done;
    out
  end

type selfn = ctx -> int array -> int array * int array

(* Direct per-row access for leaf operands that need no kernel. *)
let fetcher cols (e : S.t) : (ctx -> int -> Value.t) option =
  match e with
  | S.Const v -> Some (fun _ _ -> v)
  | S.Col id ->
    let c = Compile.column_index cols id in
    Some (fun ctx i -> (Array.unsafe_get ctx.rows i).(c))
  | _ -> None

(* [cmp_fn] on the ordering [cmp_sql] produces; shared by the mono-typed
   fast arms below so they agree with the generic path bit for bit
   ([Stdlib.compare] semantics, including NaN). *)
let ord_cmp : S.cmp_op -> int -> bool = function
  | S.Eq -> fun c -> c = 0
  | S.Ne -> fun c -> c <> 0
  | S.Lt -> fun c -> c < 0
  | S.Le -> fun c -> c <= 0
  | S.Gt -> fun c -> c > 0
  | S.Ge -> fun c -> c >= 0

let sel_partition op cmp geta getb : selfn =
  let oc = ord_cmp op in
  fun ctx sel ->
    let len = Array.length sel in
    let t = Ivec.create len and nl = Ivec.create len in
    for k = 0 to len - 1 do
      let i = Array.unsafe_get sel k in
      if ok ctx i then (
        match (geta ctx i, getb ctx i) with
        | Value.Int x, Value.Int y ->
          if oc (Stdlib.compare (x : int) y) then Ivec.push t i
        | Value.Float x, Value.Float y ->
          if oc (Float.compare x y) then Ivec.push t i
        | va, vb -> (
          match cmp va vb with
          | Some true -> Ivec.push t i
          | Some false -> ()
          | None -> Ivec.push nl i
          | exception e -> set_err ctx i e))
    done;
    (Ivec.to_array t, Ivec.to_array nl)

(* Any boolean-valued expression as a selector: evaluate the column,
   partition. The [ok] guard matters — rows erred during kernel
   evaluation hold garbage in the column. *)
let sel_of_kernel (k : kernel) : selfn =
 fun ctx sel ->
  let col = k ctx sel in
  let len = Array.length sel in
  let t = Ivec.create len and nl = Ivec.create len in
  for j = 0 to len - 1 do
    let i = Array.unsafe_get sel j in
    if ok ctx i then
      match Array.unsafe_get col i with
      | Value.Bool true -> Ivec.push t i
      | Value.Bool false -> ()
      | Value.Null -> Ivec.push nl i
      | v -> set_err ctx i (bad_bool_exn v)
  done;
  (Ivec.to_array t, Ivec.to_array nl)

let sel_cmp_fused op fa fb (fallback : selfn) : selfn =
  let cols_idx = fexpr_cols (fexpr_cols [] fa) fb in
  let fnull = has_fnull fa || has_fnull fb in
  let fdiv = has_fdiv fa || has_fdiv fb in
  let cmpf = float_cmp op in
  fun ctx sel ->
    match unbox_cols ctx cols_idx with
    | None -> fallback ctx sel
    | Some env ->
      let len = Array.length sel in
      let t = Ivec.create len in
      if fnull || env_has_null env then begin
        let va, ma = feval ctx sel env fa in
        let vb, mb = feval ctx sel env fb in
        let nl = Ivec.create len in
        for k = 0 to len - 1 do
          let i = Array.unsafe_get sel k in
          if ma.(i) || mb.(i) then Ivec.push nl i
          else if cmpf va.(i) vb.(i) then Ivec.push t i
        done;
        (Ivec.to_array t, Ivec.to_array nl)
      end
      else begin
        let fenv = fenv_of env in
        if fdiv then begin
          let dmask = Array.make ctx.n false in
          let va = feval_nm ctx sel fenv dmask fa in
          let vb = feval_nm ctx sel fenv dmask fb in
          let nl = Ivec.create len in
          for k = 0 to len - 1 do
            let i = Array.unsafe_get sel k in
            if Array.unsafe_get dmask i then Ivec.push nl i
            else if cmpf (Array.unsafe_get va i) (Array.unsafe_get vb i) then
              Ivec.push t i
          done;
          (Ivec.to_array t, Ivec.to_array nl)
        end
        else begin
          let va = feval_nm ctx sel fenv [||] fa in
          let vb = feval_nm ctx sel fenv [||] fb in
          for k = 0 to len - 1 do
            let i = Array.unsafe_get sel k in
            if cmpf (Array.unsafe_get va i) (Array.unsafe_get vb i) then
              Ivec.push t i
          done;
          (Ivec.to_array t, [||])
        end
      end

let rec selector (cols : Ident.t array) (e : S.t) : selfn =
  match e with
  | S.And (a, b) ->
    let sa = selector cols a and sb = selector cols b in
    fun ctx sel ->
      let ta, na = sa ctx sel in
      (* The right side runs over a's TRUE ∪ NULL rows: FALSE rows are
         short-circuited, NULL rows still observe b's errors (the row
         path evaluates b to tell NULL from FALSE). *)
      let dom = merge_asc ta na in
      let tb, nb = sb ctx dom in
      if Array.length na = 0 && Array.length nb = 0 then (tb, [||])
      else begin
        let am = Bytes.make ctx.n '\000' in
        Array.iter (fun i -> Bytes.unsafe_set am i '\001') ta;
        let bm = Bytes.make ctx.n '\000' in
        Array.iter (fun i -> Bytes.unsafe_set bm i '\001') tb;
        Array.iter (fun i -> Bytes.unsafe_set bm i '\002') nb;
        let ld = Array.length dom in
        let t = Ivec.create ld and nl = Ivec.create ld in
        Array.iter
          (fun i ->
            match Bytes.unsafe_get bm i with
            | '\001' ->
              if Bytes.unsafe_get am i = '\001' then Ivec.push t i
              else Ivec.push nl i
            | '\002' -> Ivec.push nl i
            | _ -> ())
          dom;
        (Ivec.to_array t, Ivec.to_array nl)
      end
  | S.Or (a, b) ->
    let sa = selector cols a and sb = selector cols b in
    fun ctx sel ->
      let ta, na = sa ctx sel in
      (* The right side runs over a's FALSE ∪ NULL rows — everything in
         [sel] the left didn't accept, minus erred rows. [ta] ascends
         inside [sel], so a two-pointer subtraction needs no mark
         array. *)
      let len = Array.length sel in
      let lta = Array.length ta in
      let fd = Ivec.create (len - lta) in
      let p = ref 0 in
      for k = 0 to len - 1 do
        let i = Array.unsafe_get sel k in
        if !p < lta && Array.unsafe_get ta !p = i then incr p
        else if ok ctx i then Ivec.push fd i
      done;
      let dom = Ivec.to_array fd in
      let tb, nb = sb ctx dom in
      let t = merge_asc ta tb in
      if Array.length na = 0 && Array.length nb = 0 then (t, [||])
      else begin
        let am = Bytes.make ctx.n '\000' in
        Array.iter (fun i -> Bytes.unsafe_set am i '\001') na;
        let bm = Bytes.make ctx.n '\000' in
        Array.iter (fun i -> Bytes.unsafe_set bm i '\001') tb;
        Array.iter (fun i -> Bytes.unsafe_set bm i '\002') nb;
        let nl = Ivec.create (Array.length dom) in
        Array.iter
          (fun i ->
            if Bytes.unsafe_get am i = '\001' then begin
              (* a NULL: b FALSE or NULL → NULL (b TRUE → already kept) *)
              if Bytes.unsafe_get bm i <> '\001' && ok ctx i then
                Ivec.push nl i
            end
            else if Bytes.unsafe_get bm i = '\002' then Ivec.push nl i)
          dom;
        (t, Ivec.to_array nl)
      end
  | S.Cmp (op, a, b) -> (
    let cmp = cmp_fn op in
    let gen_leaf =
      match (fetcher cols a, fetcher cols b) with
      | Some ga, Some gb -> sel_partition op cmp ga gb
      | _ ->
        let ka = scalar cols a and kb = scalar cols b in
        fun ctx sel ->
          let ca = ka ctx sel in
          let cb = kb ctx sel in
          sel_partition op cmp
            (fun _ i -> Array.unsafe_get ca i)
            (fun _ i -> Array.unsafe_get cb i)
            ctx sel
    in
    match (float_plan cols a, float_plan cols b) with
    | Some fa, Some fb -> sel_cmp_fused op fa fb gen_leaf
    | _ -> gen_leaf)
  | S.IsNull a when fetcher cols a <> None -> (
    match fetcher cols a with
    | Some g ->
      fun ctx sel ->
        let len = Array.length sel in
        let t = Ivec.create len in
        for k = 0 to len - 1 do
          let i = Array.unsafe_get sel k in
          if ok ctx i && Value.is_null (g ctx i) then Ivec.push t i
        done;
        (Ivec.to_array t, [||])
    | None -> assert false)
  | S.IsNotNull a when fetcher cols a <> None -> (
    match fetcher cols a with
    | Some g ->
      fun ctx sel ->
        let len = Array.length sel in
        let t = Ivec.create len in
        for k = 0 to len - 1 do
          let i = Array.unsafe_get sel k in
          if ok ctx i && not (Value.is_null (g ctx i)) then Ivec.push t i
        done;
        (Ivec.to_array t, [||])
    | None -> assert false)
  | _ -> sel_of_kernel (scalar cols e)

(* Evaluate a kernel over one whole morsel and materialize: the column,
   or the first row's error. *)
let eval_column (k : kernel) rows =
  let ctx = make_ctx rows in
  let col = k ctx (full_sel ctx.n) in
  check ctx;
  col

(* ------------------------------------------------------------------ *)
(* Batch aggregates                                                    *)
(* ------------------------------------------------------------------ *)

(* One group's members arrive as a single batch; the argument column is
   materialized (raising the first member's error, as the row path's
   eager [non_null] list build does), then folded. SUM/AVG over all-
   float (or all-int) columns fold unboxed accumulators — same
   operations in the same order as the generic fold, so results are
   bit-identical, just without a boxed list per group. *)

let agg_fail fmt = Relops.fail fmt

let fold_sum col =
  let n = Array.length col in
  (* Unboxed fast paths: bail to the generic fold on the first value
     that breaks the mono-typed assumption. *)
  let rec fsum i acc seen =
    if i = n then if seen then Some (Value.Float acc) else Some Value.Null
    else
      match col.(i) with
      | Value.Null -> fsum (i + 1) acc seen
      | Value.Float x -> fsum (i + 1) (if seen then acc +. x else x) true
      | _ -> None
  in
  let rec isum i acc seen =
    if i = n then if seen then Some (Value.Int acc) else Some Value.Null
    else
      match col.(i) with
      | Value.Null -> isum (i + 1) acc seen
      | Value.Int x -> isum (i + 1) (acc + x) true
      | _ -> None
  in
  let fast =
    (* Dispatch on the first non-null value's type. *)
    let rec first i =
      if i = n then Some Value.Null
      else
        match col.(i) with
        | Value.Null -> first (i + 1)
        | Value.Float _ -> fsum i 0.0 false
        | Value.Int _ -> isum i 0 false
        | _ -> None
    in
    first 0
  in
  match fast with
  | Some v -> v
  | None ->
    let acc = ref Value.Null and seen = ref false in
    Array.iter
      (fun v ->
        if not (Value.is_null v) then
          if !seen then acc := Value.add !acc v
          else begin
            acc := v;
            seen := true
          end)
      col;
    !acc

let make_agg (cols : Ident.t array) (agg : A.t) :
    Value.t array array -> Value.t =
  let arg e = scalar cols e in
  match agg with
  | A.CountStar -> fun rows -> Value.Int (Array.length rows)
  | A.Count e ->
    let k = arg e in
    fun rows ->
      let col = eval_column k rows in
      let c = ref 0 in
      Array.iter (fun v -> if not (Value.is_null v) then incr c) col;
      Value.Int !c
  | A.Sum e ->
    let k = arg e in
    fun rows -> fold_sum (eval_column k rows)
  | A.Min e ->
    let k = arg e in
    fun rows ->
      let acc = ref Value.Null and seen = ref false in
      Array.iter
        (fun v ->
          if not (Value.is_null v) then
            if not !seen then begin
              acc := v;
              seen := true
            end
            else if Value.compare_total v !acc < 0 then acc := v)
        (eval_column k rows);
      !acc
  | A.Max e ->
    let k = arg e in
    fun rows ->
      let acc = ref Value.Null and seen = ref false in
      Array.iter
        (fun v ->
          if not (Value.is_null v) then
            if not !seen then begin
              acc := v;
              seen := true
            end
            else if Value.compare_total v !acc > 0 then acc := v)
        (eval_column k rows);
      !acc
  | A.Avg e ->
    let k = arg e in
    fun rows ->
      let col = eval_column k rows in
      let total = ref 0.0 and count = ref 0 in
      Array.iter
        (fun v ->
          match v with
          | Value.Null -> ()
          | Value.Int x ->
            total := !total +. float_of_int x;
            incr count
          | Value.Float x ->
            total := !total +. x;
            incr count
          | _ -> agg_fail "AVG over non-numeric value")
        col;
      if !count = 0 then Value.Null
      else Value.Float (!total /. float_of_int !count)

(* ------------------------------------------------------------------ *)
(* Plan compilation: morsel-scheduled operators                        *)
(* ------------------------------------------------------------------ *)

let default_morsel_rows = 1024

type cfg = { pool : Par.Pool.t; morsel_rows : int }

type node = { cols : Ident.t array; gen : unit -> Value.t array array }

let op_label : P.t -> string = function
  | P.TableScan _ -> "TableScan"
  | P.FilterOp _ -> "Filter"
  | P.ComputeScalar _ -> "ComputeScalar"
  | P.NestedLoopsJoin _ -> "NestedLoopsJoin"
  | P.HashJoin _ -> "HashJoin"
  | P.MergeJoin _ -> "MergeJoin"
  | P.HashAggregate _ -> "HashAggregate"
  | P.StreamAggregate _ -> "StreamAggregate"
  | P.SortOp _ -> "Sort"
  | P.Concat _ -> "Concat"
  | P.HashUnion _ -> "HashUnion"
  | P.HashIntersect _ -> "HashIntersect"
  | P.HashExcept _ -> "HashExcept"
  | P.HashDistinct _ -> "HashDistinct"
  | P.LimitOp _ -> "Limit"

let check_arity a b =
  if Array.length a.cols <> Array.length b.cols then
    Relops.fail "set operation arity mismatch: %d vs %d" (Array.length a.cols)
      (Array.length b.cols)

(* One filter morsel: run the selection transformer, keep TRUE rows,
   raise the lowest erroring row. *)
let filter_chunk (sf : selfn) chunk =
  let ctx = make_ctx chunk in
  let kept, _nulls = sf ctx (full_sel ctx.n) in
  check ctx;
  Array.map (fun i -> Array.unsafe_get chunk i) kept

(* One projection morsel: all expression columns share the error slots
   (per row, the leftmost failing expression wins — the row path
   evaluates expressions left-to-right within a row). *)
let compute_chunk (kernels : kernel array) chunk =
  let ctx = make_ctx chunk in
  let sel = full_sel ctx.n in
  let columns = Array.map (fun k -> k ctx sel) kernels in
  check ctx;
  let m = Array.length columns in
  let out = Array.make ctx.n [||] in
  for i = 0 to ctx.n - 1 do
    let r = Array.make m Value.Null in
    for j = 0 to m - 1 do
      Array.unsafe_set r j (Array.unsafe_get (Array.unsafe_get columns j) i)
    done;
    Array.unsafe_set out i r
  done;
  out

(* Nested-loops probe, one left morsel: each left row batches the whole
   right side as one combined-row morsel. *)
let nl_chunk (k : kernel) (rarr : Value.t array array) chunk =
  Array.map
    (fun lrow ->
      let combined = Array.map (fun rrow -> Array.append lrow rrow) rarr in
      let ctx = make_ctx combined in
      let col = k ctx (full_sel ctx.n) in
      let ms = ref [] in
      for ri = ctx.n - 1 downto 0 do
        if ok ctx ri then
          match col.(ri) with
          | Value.Bool true -> ms := ri :: !ms
          | Value.Bool false | Value.Null -> ()
          | v -> set_err ctx ri (bad_bool_exn v)
      done;
      check ctx;
      !ms)
    chunk

let residual_pred cols r =
  if S.equal r S.true_ then None else Some (Compile.pred cols r)

let rec node cfg catalog (p : P.t) : node =
  let sub = node cfg catalog in
  let compiled =
    match p with
    | P.TableScan { table; alias } -> (
      match Catalog.find catalog table with
      | None ->
        raise (Compile.Compile_error (Printf.sprintf "unknown table %s" table))
      | Some tb ->
        let cols =
          Array.of_list
            (List.map
               (fun c -> Ident.make alias c.Schema.col_name)
               tb.schema.columns)
        in
        let rows = tb.rows in
        { cols; gen = (fun () -> rows) })
    | P.FilterOp { pred = pr; child } ->
      let c = sub child in
      let k = selector c.cols pr in
      { cols = c.cols;
        gen =
          (fun () ->
            Relops.map_morsels cfg.pool ~rows:cfg.morsel_rows (filter_chunk k)
              (c.gen ())) }
    | P.ComputeScalar { cols; child } ->
      let c = sub child in
      let out_cols = Array.of_list (List.map fst cols) in
      let kernels =
        Array.of_list (List.map (fun (_, e) -> scalar c.cols e) cols)
      in
      { cols = out_cols;
        gen =
          (fun () ->
            Relops.map_morsels cfg.pool ~rows:cfg.morsel_rows
              (compute_chunk kernels) (c.gen ())) }
    | P.NestedLoopsJoin { kind; pred = pr; left; right } ->
      let l = sub left and r = sub right in
      let k = scalar (Array.append l.cols r.cols) pr in
      let la = Array.length l.cols and ra = Array.length r.cols in
      { cols = Relops.join_cols kind l.cols r.cols;
        gen =
          (fun () ->
            let larr = l.gen () and rarr = r.gen () in
            Relops.join_rows kind ~left_arity:la ~right_arity:ra larr rarr
              (Relops.map_morsels cfg.pool ~rows:cfg.morsel_rows
                 (nl_chunk k rarr) larr)) }
    | P.HashJoin { kind; left_keys; right_keys; residual; left; right } ->
      let l = sub left and r = sub right in
      let lidx = Compile.key_indices l.cols left_keys in
      let ridx = Compile.key_indices r.cols right_keys in
      let res = residual_pred (Array.append l.cols r.cols) residual in
      let la = Array.length l.cols and ra = Array.length r.cols in
      { cols = Relops.join_cols kind l.cols r.cols;
        gen =
          (fun () ->
            let larr = l.gen () and rarr = r.gen () in
            (* Build once on the scheduling domain, probe morsel-wise —
               probes are pure per left row. *)
            let table = Relops.hash_build ~ridx rarr in
            Relops.join_rows kind ~left_arity:la ~right_arity:ra larr rarr
              (Relops.map_morsels cfg.pool ~rows:cfg.morsel_rows
                 (Array.map
                    (Relops.hash_probe_row table ~lidx ~residual:res rarr))
                 larr)) }
    | P.MergeJoin { left_keys; right_keys; residual; left; right } ->
      let l = sub left and r = sub right in
      let lidx = Compile.key_indices l.cols left_keys in
      let ridx = Compile.key_indices r.cols right_keys in
      let res = residual_pred (Array.append l.cols r.cols) residual in
      let la = Array.length l.cols and ra = Array.length r.cols in
      { cols = Relops.join_cols L.Inner l.cols r.cols;
        gen =
          (fun () ->
            let larr = l.gen () and rarr = r.gen () in
            Relops.join_rows L.Inner ~left_arity:la ~right_arity:ra larr rarr
              (Relops.merge_matches ~lidx ~ridx ~residual:res larr rarr)) }
    | P.HashAggregate { keys; aggs; child } ->
      node_agg cfg (sub child) keys aggs Relops.hash_groups
    | P.StreamAggregate { keys; aggs; child } ->
      node_agg cfg (sub child) keys aggs Relops.stream_groups
    | P.SortOp { keys; child } ->
      let c = sub child in
      let kidx = Compile.key_indices c.cols (List.map fst keys) in
      let dirs = Array.of_list (List.map snd keys) in
      let cmp = Relops.sort_compare kidx dirs in
      { cols = c.cols;
        gen =
          (fun () ->
            let rows = Array.copy (c.gen ()) in
            Array.stable_sort cmp rows;
            rows) }
    | P.Concat (a, b) ->
      let ca = sub a and cb = sub b in
      check_arity ca cb;
      { cols = ca.cols; gen = (fun () -> Array.append (ca.gen ()) (cb.gen ())) }
    | P.HashUnion (a, b) ->
      let ca = sub a and cb = sub b in
      check_arity ca cb;
      { cols = ca.cols;
        gen =
          (fun () ->
            Relops.distinct_rows (Array.append (ca.gen ()) (cb.gen ()))) }
    | P.HashIntersect (a, b) ->
      let ca = sub a and cb = sub b in
      check_arity ca cb;
      { cols = ca.cols;
        gen =
          (fun () ->
            let in_b = Relops.row_set (cb.gen ()) in
            Relops.distinct_rows
              (Relops.filter_rows (Relops.RowTbl.mem in_b) (ca.gen ()))) }
    | P.HashExcept (a, b) ->
      let ca = sub a and cb = sub b in
      check_arity ca cb;
      { cols = ca.cols;
        gen =
          (fun () ->
            let in_b = Relops.row_set (cb.gen ()) in
            Relops.distinct_rows
              (Relops.filter_rows
                 (fun r -> not (Relops.RowTbl.mem in_b r))
                 (ca.gen ()))) }
    | P.HashDistinct child ->
      let c = sub child in
      { cols = c.cols; gen = (fun () -> Relops.distinct_rows (c.gen ())) }
    | P.LimitOp { count; child } ->
      let c = sub child in
      { cols = c.cols; gen = (fun () -> Relops.take_rows count (c.gen ())) }
  in
  let rows_c = Obs.Metrics.counter ~label:(op_label p) "exec.rows" in
  let ops_c = Obs.Metrics.counter ~label:(op_label p) "exec.operators" in
  { compiled with
    gen =
      (fun () ->
        let rows = compiled.gen () in
        if Obs.Metrics.enabled () then begin
          Obs.Metrics.add rows_c (Array.length rows);
          Obs.Metrics.incr ops_c
        end;
        rows) }

(* Aggregation: grouping is a sequential pipeline breaker (hash table /
   run detection), but per-group aggregate evaluation is pure, so groups
   are aggregated morsel-wise. *)
and node_agg cfg c keys aggs group =
  let kidx = Compile.key_indices c.cols keys in
  let agg_fns =
    Array.of_list (List.map (fun (_, a) -> make_agg c.cols a) aggs)
  in
  let out_cols = Array.of_list (keys @ List.map fst aggs) in
  { cols = out_cols;
    gen =
      (fun () ->
        let rows = c.gen () in
        let groups =
          (* With no keys, exactly one (possibly empty-input) global
             group exists. *)
          if keys = [] then [| ([||], rows) |] else group kidx rows
        in
        Relops.map_morsels cfg.pool ~rows:cfg.morsel_rows
          (Relops.grouped_rows agg_fns) groups) }

let plan ?(pool = Par.Pool.sequential) ?(morsel_rows = default_morsel_rows)
    catalog p : Compile.t =
  if morsel_rows < 1 then invalid_arg "Batch.plan: morsel_rows < 1";
  let n = node { pool; morsel_rows } catalog p in
  Compile.v n.cols n.gen
