lib/relalg/sql_print.mli: Logical Storage
