(** A minimal JSON tree: enough to emit trace events and machine-readable
    reports, and to parse them back in tests. No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
(** Compact (single-line) rendering. Non-finite floats become [null],
    keeping every emitted document strictly RFC 8259. *)

val of_string : string -> (t, string) result
(** Strict parser for complete documents; trailing garbage is an error.
    Numbers with a fraction or exponent parse as [Float], others as
    [Int]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] elsewhere. *)

val to_float : t -> float option
(** Numeric projection ([Int] widens). *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
(** Constructor projections; [None] on any other constructor. Used by the
    readers of persisted documents (bench trajectories, triage corpus
    metadata). *)
