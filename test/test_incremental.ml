(* Incremental maintenance: rule-content fingerprints, the suite
   manifest, and the delta regeneration/recompression layer. The load-
   bearing property throughout: an incremental rebuild after any rule
   edit is byte-identical to a cold rebuild with the same registry, at
   any pool size. *)
module F = Core.Framework
module Su = Core.Suite
module C = Core.Compress
module I = Core.Incr
module M = Storage.Manifest
module R = Optimizer.Rule

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let cat = Storage.Datagen.tpch ~scale:0.001 ()
let options = { Optimizer.Engine.default_options with max_trees = 400 }

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qtr-test-incr-%d-%d" (Unix.getpid ()) !n)

(* ---------------- fingerprints ---------------- *)

let test_fingerprints_distinct () =
  let fps = Optimizer.Rules.fingerprints () in
  check int_t "every rule fingerprinted" Optimizer.Rules.count (List.length fps);
  check int_t "fingerprints distinct" (List.length fps)
    (List.length (List.sort_uniq compare (List.map snd fps)));
  List.iter
    (fun (_, fp) -> check int_t "digest-sized" 32 (String.length fp))
    fps

let test_dsl_fingerprint_is_term_digest () =
  (* DSL-backed rules digest their Rdsl term, so the fingerprint is a
     pure function of the declarative source. *)
  match Optimizer.Rules.dsl_rules with
  | [] -> Alcotest.fail "no DSL rules registered"
  | (name, rdsl) :: _ ->
    let r = Option.get (Optimizer.Rules.find name) in
    check string_t "term digest" (Dsl.Rdsl.fingerprint rdsl) r.R.fingerprint

let test_simulate_edit () =
  let orig = Option.get (Optimizer.Rules.find "JoinCommute") in
  let edited = Optimizer.Rules.simulate_edit "JoinCommute" in
  check int_t "same registry size" Optimizer.Rules.count (List.length edited);
  let e = List.find (fun (r : R.t) -> r.name = "JoinCommute") edited in
  check bool_t "fingerprint changed" true (e.R.fingerprint <> orig.R.fingerprint);
  check string_t "pattern fingerprint unchanged" orig.R.pattern_fp e.R.pattern_fp;
  Alcotest.check_raises "unknown rule"
    (Invalid_argument "Rules.simulate_edit: unknown rule Nope") (fun () ->
      ignore (Optimizer.Rules.simulate_edit "Nope"))

let test_collect_matched () =
  let fw = F.create ~options (Storage.Datagen.micro ()) in
  let q =
    Relalg.Logical.Join
      { kind = Relalg.Logical.Inner;
        pred =
          Relalg.Scalar.eq
            (Relalg.Scalar.col (Relalg.Ident.make "x" "a"))
            (Relalg.Scalar.col (Relalg.Ident.make "y" "d"));
        left = Relalg.Logical.Get { table = "t1"; alias = "x" };
        right = Relalg.Logical.Get { table = "t2"; alias = "y" } }
  in
  let (), matched = F.with_matched (fun () -> ignore (F.ruleset fw q)) in
  check bool_t "JoinCommute matched" true (List.mem "JoinCommute" matched);
  check bool_t "sorted" true (List.sort String.compare matched = matched);
  let (), empty = F.with_matched (fun () -> ()) in
  check int_t "no work, no deps" 0 (List.length empty)

(* ---------------- manifest ---------------- *)

let ri name fp pfp = { M.name; fingerprint = fp; pattern_fp = pfp; source = "closure" }

let test_manifest_roundtrip () =
  let dc = Storage.Diskcache.create ~dir:(tmp_dir ()) () in
  let m = M.make ~config:"cfg-a" ~rules:[ ri "A" "f1" "p1"; ri "B" "f2" "p2" ] in
  let m = M.set_section m "suite" "payload-1" in
  check bool_t "save" true (M.save dc ~key:"k1" m);
  (match M.load dc ~key:"k1" with
  | None -> Alcotest.fail "manifest did not round-trip"
  | Some m' ->
    check string_t "config" "cfg-a" m'.M.config;
    check int_t "rules" 2 (List.length m'.M.rules);
    check (Alcotest.option string_t) "section" (Some "payload-1")
      (M.section m' "suite");
    check (Alcotest.option string_t) "absent section" None (M.section m' "matrix"));
  check bool_t "unknown key misses" true (M.load dc ~key:"nope" = None)

let test_manifest_index_ordering () =
  let dc = Storage.Diskcache.create ~dir:(tmp_dir ()) () in
  let m c = M.make ~config:c ~rules:[] in
  ignore (M.save dc ~key:"k1" (m "c1"));
  ignore (M.save dc ~key:"k2" (m "c2"));
  check (Alcotest.list (Alcotest.pair string_t string_t)) "two entries, in order"
    [ ("k1", "c1"); ("k2", "c2") ] (M.index dc);
  (* re-saving moves the key to the most-recent position *)
  ignore (M.save dc ~key:"k1" (m "c1"));
  check (Alcotest.list (Alcotest.pair string_t string_t)) "k1 now latest"
    [ ("k2", "c2"); ("k1", "c1") ] (M.index dc)

let test_manifest_diff () =
  let old =
    M.make ~config:""
      ~rules:[ ri "A" "f1" "p1"; ri "B" "f2" "p2"; ri "C" "f3" "p3"; ri "E" "f5" "p5" ]
  in
  let live =
    [ ri "A" "f1x" "p1" (* body edited *); ri "B" "f2y" "p2y" (* pattern changed *);
      ri "D" "f4" "p4" (* added; C removed *); ri "E" "f5" "p5" (* untouched *) ]
  in
  check
    (Alcotest.list (Alcotest.pair string_t string_t))
    "classified diff"
    [ ("A", "body-changed"); ("B", "pattern-changed"); ("C", "removed");
      ("D", "added") ]
    (List.map (fun (n, c) -> (n, M.change_to_string c)) (M.diff old ~rules:live))

(* ---------------- the pipeline, incremental vs cold ---------------- *)

(* Small fixed configuration: 8-rule registry, the first 4 as targets.
   Edit operations touch any of the 8; removals only the non-targeted
   half, so every target stays generatable. *)
let base_rules = List.filteri (fun i _ -> i < 8) Optimizer.Rules.all
let base_names = List.map (fun (r : R.t) -> r.name) base_rules
let targets =
  List.map (fun r -> Su.Single r) (List.filteri (fun i _ -> i < 4) base_names)
let k = 2
let seed = 11

type outcome = {
  o_entries : (Relalg.Logical.t * float) list;
  o_per_target : (Su.target * int list) list;
  o_assignment : (Su.target * (int * float) list) list;
  o_cost : float;
  o_invocations : int;
}

let outcome_of (suite : Su.t) (sol : C.solution) =
  { o_entries =
      Array.to_list (Array.map (fun (e : Su.entry) -> (e.query, e.cost)) suite.entries);
    o_per_target = suite.per_target;
    o_assignment = sol.assignment;
    o_cost = sol.total_cost;
    o_invocations = sol.invocations }

let run_cold ~pool rules =
  let fw = F.create ~options ~rules cat in
  let g = Storage.Prng.create seed in
  let suite = Su.generate ~pool fw g ~targets ~k in
  let ec = C.edge_costs fw suite in
  let sol = C.topk ~pool ~ec fw suite in
  outcome_of suite sol

let run_incremental ~pool ~dir rules =
  let fw = F.create ~options ~rules cat in
  let dc = Storage.Diskcache.create ~dir () in
  let sess = I.start ~dc ~desc:"test-incr" fw in
  let g = Storage.Prng.create seed in
  let suite = I.generate ~pool sess g ~targets ~k in
  let ec = C.edge_costs ~warm_edges:(I.warm_edges sess) fw suite in
  let sol = C.topk ~pool ~ec fw suite in
  I.note_matrix sess ec;
  check bool_t "manifest written" true (I.finish sess);
  (outcome_of suite sol, I.result sess)

let check_equal name (cold : outcome) (incr : outcome) =
  check bool_t (name ^ ": entries") true (cold.o_entries = incr.o_entries);
  check bool_t (name ^ ": per-target") true (cold.o_per_target = incr.o_per_target);
  check bool_t (name ^ ": assignment") true (cold.o_assignment = incr.o_assignment);
  check bool_t (name ^ ": total cost") true (cold.o_cost = incr.o_cost);
  check int_t (name ^ ": invocations") cold.o_invocations incr.o_invocations

let test_incremental_noop_reuses_everything () =
  let pool = Par.Pool.create ~jobs:2 () in
  let dir = tmp_dir () in
  let cold, r0 = run_incremental ~pool ~dir base_rules in
  check bool_t "first run is cold" true r0.I.full_rebuild;
  let warm, r = run_incremental ~pool ~dir base_rules in
  check_equal "noop rerun" cold warm;
  check int_t "all targets reused" (List.length targets) r.I.targets_reusable;
  check int_t "no edges recomputed" 0 r.I.edges_recomputed;
  check bool_t "edges served warm" true (r.I.edges_reusable > 0)

let test_incremental_edit_matches_cold () =
  let pool = Par.Pool.create ~jobs:2 () in
  let dir = tmp_dir () in
  ignore (run_incremental ~pool ~dir base_rules);
  (* a behavior-preserving edit of a targeted rule: everything that
     depends on it recomputes and must reproduce the same bytes *)
  let edited = Optimizer.Rules.simulate_edit ~rules:base_rules (List.nth base_names 0) in
  let cold = run_cold ~pool edited in
  let warm, r = run_incremental ~pool ~dir edited in
  check_equal "edited rule" cold warm;
  check bool_t "not a full rebuild" true (not r.I.full_rebuild);
  check bool_t "something was reused" true (r.I.edges_reusable > 0);
  check bool_t "something was recomputed" true (r.I.edges_recomputed > 0)

let test_incremental_jobs_invariant () =
  let dir1 = tmp_dir () and dir4 = tmp_dir () in
  let p1 = Par.Pool.create ~jobs:1 () and p4 = Par.Pool.create ~jobs:4 () in
  let c1, _ = run_incremental ~pool:p1 ~dir:dir1 base_rules in
  let c4, _ = run_incremental ~pool:p4 ~dir:dir4 base_rules in
  check_equal "cold jobs 1 vs 4" c1 c4;
  let edited = Optimizer.Rules.simulate_edit ~rules:base_rules (List.nth base_names 1) in
  (* warm rebuilds cross-wise: jobs 4 over the jobs-1 manifest and vice
     versa — manifests must be interchangeable *)
  let w4, _ = run_incremental ~pool:p4 ~dir:dir1 edited in
  let w1, _ = run_incremental ~pool:p1 ~dir:dir4 edited in
  check_equal "warm jobs 1 vs 4" w4 w1

(* An inert body is a behavior-CHANGING edit (the rule stops firing):
   suite, ruleset and costs all shift. Ground truth stays the same —
   a cold rebuild with the same edited registry. *)
let inert name rules =
  List.map
    (fun (r : R.t) ->
      if r.name = name then R.make ~version:"inert" r.name r.pattern (fun _ _ -> [])
      else r)
    rules

let test_incremental_behavior_change_matches_cold () =
  let pool = Par.Pool.create ~jobs:2 () in
  let dir = tmp_dir () in
  ignore (run_incremental ~pool ~dir base_rules);
  (* a non-targeted rule goes inert: targets stay generatable, but any
     column that consulted the rule must recompute *)
  let edited = inert (List.nth base_names 5) base_rules in
  let cold = run_cold ~pool edited in
  let warm, _ = run_incremental ~pool ~dir edited in
  check_equal "inert edit" cold warm

let test_incremental_removal_matches_cold () =
  let pool = Par.Pool.create ~jobs:2 () in
  let dir = tmp_dir () in
  ignore (run_incremental ~pool ~dir base_rules);
  let removed = List.nth base_names 6 in
  let rules = List.filter (fun (r : R.t) -> r.name <> removed) base_rules in
  let cold = run_cold ~pool rules in
  let warm, _ = run_incremental ~pool ~dir rules in
  check_equal "removed rule" cold warm

let test_incremental_addition_forces_full_rebuild () =
  let pool = Par.Pool.create ~jobs:2 () in
  let dir = tmp_dir () in
  ignore (run_incremental ~pool ~dir base_rules);
  let extra =
    R.make ~version:"test-extra" "ZZZ_TestExtra"
      (Option.get (Optimizer.Rules.find "JoinCommute")).R.pattern (fun _ _ -> [])
  in
  let rules = base_rules @ [ extra ] in
  let cold = run_cold ~pool rules in
  let warm, r = run_incremental ~pool ~dir rules in
  check bool_t "addition forces full rebuild" true r.I.full_rebuild;
  check int_t "nothing served warm" 0 r.I.edges_reusable;
  check_equal "added rule" cold warm

(* ---------------- the property ---------------- *)

(* Random maintenance histories: a sequence of edits / inert edits /
   removals / additions applied cumulatively, an incremental rebuild
   against the evolving manifest after each step, each compared against
   a cold rebuild with the same registry. *)
type op = Edit of int | Inert of int | Remove of int | Add of int

let op_print = function
  | Edit i -> Printf.sprintf "Edit %d" i
  | Inert i -> Printf.sprintf "Inert %d" i
  | Remove i -> Printf.sprintf "Remove %d" i
  | Add i -> Printf.sprintf "Add %d" i

let op_gen =
  QCheck.Gen.(
    oneof
      [ map (fun i -> Edit i) (int_bound 7);
        map (fun i -> Inert i) (int_bound 7);
        (* removals spare the targeted first half *)
        map (fun i -> Remove (4 + i)) (int_bound 3);
        map (fun i -> Add i) (int_bound 99) ])

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 1 3) op_gen)

let apply_op rules op =
  let bump version name =
    List.map
      (fun (r : R.t) ->
        if r.name = name then R.make ~version r.name r.pattern r.apply else r)
      rules
  in
  match op with
  | Edit i -> bump "prop-edit" (List.nth base_names i)
  | Inert i -> inert (List.nth base_names i) rules
  | Remove i ->
    let name = List.nth base_names i in
    List.filter (fun (r : R.t) -> r.name <> name) rules
  | Add i ->
    let name = Printf.sprintf "ZZZ_PropExtra%d" i in
    if List.exists (fun (r : R.t) -> r.name = name) rules then rules
    else
      rules
      @ [ R.make ~version:"prop-add" name
            (Option.get (Optimizer.Rules.find "JoinCommute")).R.pattern
            (fun _ _ -> []) ]

let prop_incremental_equals_cold =
  QCheck.Test.make ~name:"random edit history: incremental = cold rebuild" ~count:6
    ops_arb (fun ops ->
      let pool = Par.Pool.create ~jobs:2 () in
      let dir = tmp_dir () in
      ignore (run_incremental ~pool ~dir base_rules);
      let rules = ref base_rules in
      List.for_all
        (fun op ->
          rules := apply_op !rules op;
          let cold = run_cold ~pool !rules in
          let warm, _ = run_incremental ~pool ~dir !rules in
          cold.o_entries = warm.o_entries
          && cold.o_per_target = warm.o_per_target
          && cold.o_assignment = warm.o_assignment
          && cold.o_cost = warm.o_cost
          && cold.o_invocations = warm.o_invocations
          || QCheck.Test.fail_reportf "divergence after [%s]"
               (String.concat "; " (List.map op_print ops)))
        ops)

let to_alco = QCheck_alcotest.to_alcotest

let suite =
  [ ( "incr.fingerprints",
      [ Alcotest.test_case "distinct per rule" `Quick test_fingerprints_distinct;
        Alcotest.test_case "dsl = term digest" `Quick test_dsl_fingerprint_is_term_digest;
        Alcotest.test_case "simulate_edit" `Quick test_simulate_edit;
        Alcotest.test_case "collect_matched" `Quick test_collect_matched ] );
    ( "incr.manifest",
      [ Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
        Alcotest.test_case "index ordering" `Quick test_manifest_index_ordering;
        Alcotest.test_case "diff classification" `Quick test_manifest_diff ] );
    ( "incr.pipeline",
      [ Alcotest.test_case "noop reuses everything" `Slow
          test_incremental_noop_reuses_everything;
        Alcotest.test_case "edit matches cold" `Slow test_incremental_edit_matches_cold;
        Alcotest.test_case "jobs invariant" `Slow test_incremental_jobs_invariant;
        Alcotest.test_case "behavior change matches cold" `Slow
          test_incremental_behavior_change_matches_cold;
        Alcotest.test_case "removal matches cold" `Slow
          test_incremental_removal_matches_cold;
        Alcotest.test_case "addition forces full rebuild" `Slow
          test_incremental_addition_forces_full_rebuild ] );
    ("incr.property", [ to_alco prop_incremental_equals_cold ]) ]
