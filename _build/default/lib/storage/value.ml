type t = Null | Int of int | Float of float | Str of string | Bool of bool | Date of int

let type_of = function
  | Null -> None
  | Int _ -> Some Datatype.TInt
  | Float _ -> Some Datatype.TFloat
  | Str _ -> Some Datatype.TString
  | Bool _ -> Some Datatype.TBool
  | Date _ -> Some Datatype.TDate

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ | Date _ -> false

let equal (a : t) (b : t) =
  match a, b with
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | _ -> a = b

(* Rank used to order values of different types in the total order. *)
let type_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3
  | Date _ -> 4

let compare_total a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | _ -> Stdlib.compare (type_rank a) (type_rank b)

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash x
  | Float x -> if Float.is_integer x then Hashtbl.hash (int_of_float x) else Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b
  | Date d -> Hashtbl.hash (d + 997)

let cmp_sql a b =
  match a, b with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (Stdlib.compare x y)
  | Float x, Float y -> Some (Stdlib.compare x y)
  | Int x, Float y -> Some (Stdlib.compare (float_of_int x) y)
  | Float x, Int y -> Some (Stdlib.compare x (float_of_int y))
  | Str x, Str y -> Some (Stdlib.compare x y)
  | Bool x, Bool y -> Some (Stdlib.compare x y)
  | Date x, Date y -> Some (Stdlib.compare x y)
  | (Int _ | Float _ | Str _ | Bool _ | Date _), _ ->
    invalid_arg "Value.cmp_sql: incomparable types"

let eq_sql a b = Option.map (fun c -> c = 0) (cmp_sql a b)
let lt_sql a b = Option.map (fun c -> c < 0) (cmp_sql a b)
let le_sql a b = Option.map (fun c -> c <= 0) (cmp_sql a b)

let arith name fi ff a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> fi x y
  | Float x, Float y -> ff x y
  | Int x, Float y -> ff (float_of_int x) y
  | Float x, Int y -> ff x (float_of_int y)
  | _ -> invalid_arg ("Value." ^ name ^ ": non-numeric operand")

let add = arith "add" (fun x y -> Int (x + y)) (fun x y -> Float (x +. y))
let sub = arith "sub" (fun x y -> Int (x - y)) (fun x y -> Float (x -. y))
let mul = arith "mul" (fun x y -> Int (x * y)) (fun x y -> Float (x *. y))

let div =
  arith "div"
    (fun x y -> if y = 0 then Null else Int (x / y))
    (fun x y -> if y = 0.0 then Null else Float (x /. y))

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | Str _ | Bool _ | Date _ -> invalid_arg "Value.neg: non-numeric operand"

(* Civil-calendar conversions (proleptic Gregorian), after Hinnant. *)
let date_of_ymd y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (m + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + d - 1 in
  let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy in
  era * 146097 + doe - 719468

let ymd_of_date z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - era * 146097 in
  let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365 in
  let y = yoe + era * 400 in
  let doy = doe - (365 * yoe + yoe / 4 - yoe / 100) in
  let mp = (5 * doy + 2) / 153 in
  let d = doy - (153 * mp + 2) / 5 + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let date_to_string z =
  let y, m, d = ymd_of_date z in
  Printf.sprintf "%04d-%02d-%02d" y m d

let escape_sql_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_sql = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x ->
    (* Keep a decimal point so the parser re-reads it as a float. *)
    let s = Printf.sprintf "%.6g" x in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  | Str s -> "'" ^ escape_sql_string s ^ "'"
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Date d -> "DATE '" ^ date_to_string d ^ "'"

let pp fmt v = Format.pp_print_string fmt (to_sql v)
