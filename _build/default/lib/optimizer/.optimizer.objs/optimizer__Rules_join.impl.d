lib/optimizer/rules_join.ml: Ident Logical Pattern Props Relalg Rule Scalar
