lib/relalg/logical.mli: Aggregate Format Ident Scalar
