module L = Relalg.Logical
module S = Relalg.Scalar
module V = Storage.Value

(* ------------------------------------------------------------------ *)
(* Candidate generation                                                *)
(* ------------------------------------------------------------------ *)

let shrink_const (v : V.t) : V.t list =
  match v with
  | V.Int n when n <> 0 -> V.Int 0 :: (if abs n > 1 then [ V.Int (n / 2) ] else [])
  | V.Float f when f <> 0.0 -> [ V.Float 0.0 ]
  | V.Str s when String.length s > 0 ->
    V.Str ""
    :: (if String.length s > 1 then [ V.Str (String.sub s 0 (String.length s / 2)) ]
        else [])
  | V.Date d when d <> 0 -> [ V.Date 0 ]
  | _ -> []

(* One-step shrinks of a scalar expression. Replacements are type-shaped:
   boolean positions are only replaced by boolean subterms, numeric
   operands by numeric subterms — and the oracle re-validates anyway. *)
let rec shrink_scalar (e : S.t) : S.t list =
  let unary rebuild a = List.map rebuild (shrink_scalar a) in
  let binary rebuild a b =
    List.map (fun a' -> rebuild a' b) (shrink_scalar a)
    @ List.map (fun b' -> rebuild a b') (shrink_scalar b)
  in
  match e with
  | S.Const v -> List.map (fun v -> S.Const v) (shrink_const v)
  | S.Col _ -> []
  | S.And (a, b) -> [ a; b ] @ binary (fun x y -> S.And (x, y)) a b
  | S.Or (a, b) -> [ a; b ] @ binary (fun x y -> S.Or (x, y)) a b
  | S.Not a -> [ a ] @ unary (fun x -> S.Not x) a
  | S.Cmp (op, a, b) -> binary (fun x y -> S.Cmp (op, x, y)) a b
  | S.Arith (op, a, b) -> [ a; b ] @ binary (fun x y -> S.Arith (op, x, y)) a b
  | S.Neg a -> [ a ] @ unary (fun x -> S.Neg x) a
  | S.IsNull a -> unary (fun x -> S.IsNull x) a
  | S.IsNotNull a -> unary (fun x -> S.IsNotNull x) a

let remove_each xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

(* Root edits of one node: child hoisting (delete the operator), payload
   simplification (predicates, projections, keys, aggregates), constant
   shrinking. Child hoisting may change the output schema — legal, since
   the oracle compares Plan(q) against Plan(q, ¬R) for the *same* q. *)
let local_edits (t : L.t) : L.t list =
  let hoist = L.children t in
  let payload =
    match t with
    | L.Get _ -> []
    | L.Filter f ->
      List.map (fun p -> L.Filter { f with pred = p }) (shrink_scalar f.pred)
    | L.Project p ->
      (if List.length p.cols > 1 then
         List.map (fun cols -> L.Project { p with cols }) (remove_each p.cols)
       else [])
      @ List.concat_map
          (fun (id, e) ->
            List.map
              (fun e' ->
                L.Project
                  { p with
                    cols =
                      List.map
                        (fun (id', e0) ->
                          if Relalg.Ident.equal id id' then (id', e') else (id', e0))
                        p.cols })
              (shrink_scalar e))
          p.cols
    | L.Join j ->
      List.map (fun pred -> L.Join { j with pred }) (shrink_scalar j.pred)
    | L.GroupBy g ->
      (if List.length g.aggs > 0 then
         List.map (fun aggs -> L.GroupBy { g with aggs }) (remove_each g.aggs)
       else [])
      @
      if List.length g.keys > 0 then
        List.map (fun keys -> L.GroupBy { g with keys }) (remove_each g.keys)
      else []
    | L.Sort s ->
      if List.length s.keys > 1 then
        List.map (fun keys -> L.Sort { s with keys }) (remove_each s.keys)
      else []
    | L.Limit l -> if l.count > 1 then [ L.Limit { l with count = l.count / 2 } ] else []
    | L.UnionAll _ | L.Union _ | L.Intersect _ | L.Except _ | L.Distinct _ -> []
  in
  hoist @ payload

let set_nth xs i x = List.mapi (fun j y -> if j = i then x else y) xs

(* Every tree obtainable from [t] by one edit at one position. *)
let rec candidates (t : L.t) : L.t list =
  let kids = L.children t in
  local_edits t
  @ List.concat
      (List.mapi
         (fun i c ->
           List.map (fun c' -> L.with_children t (set_nth kids i c')) (candidates c))
         kids)

(* ------------------------------------------------------------------ *)
(* Greedy reduction loop                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  steps : int;
  checks : int;
  original_size : int;
  reduced_size : int;
  budget_exhausted : bool;
}

let steps_c = Obs.Metrics.counter "triage.reduce.steps"
let shrunk_c = Obs.Metrics.counter "triage.reduce.nodes_removed"

let run ?(max_checks = 400) (oracle : Oracle.t) (q0 : L.t) =
  let checks_at_start = Oracle.checks oracle in
  match Oracle.check oracle q0 with
  | (Agrees | Rule_not_fired | Invalid _) as v ->
    Error
      (match v with
      | Oracle.Invalid e -> "original query rejected: " ^ e
      | Oracle.Rule_not_fired -> "original query no longer fires the target rule"
      | _ -> "original query does not diverge")
  | Diverges d0 ->
    (* Verdict cache: candidates recur across passes (shrinking one branch
       leaves the others' candidates unchanged), and every cached hit
       saves two optimizer invocations. *)
    let seen : Oracle.verdict L.Tbl.t = L.Tbl.create 64 in
    let budget_exhausted = ref false in
    let spent () = Oracle.checks oracle - checks_at_start in
    let cached_check q =
      match L.Tbl.find_opt seen q with
      | Some v -> v
      | None ->
        if spent () >= max_checks then begin
          budget_exhausted := true;
          Oracle.Agrees (* treated as "not accepted"; never cached *)
        end
        else begin
          let v = Oracle.check oracle q in
          L.Tbl.replace seen q v;
          v
        end
    in
    let rec loop current div steps =
      if !budget_exhausted then (current, div, steps)
      else
        (* Biggest shrink first: candidates sorted by ascending size. *)
        let cands =
          List.stable_sort
            (fun a b -> compare (L.size a) (L.size b))
            (candidates current)
        in
        let rec first_accepted = function
          | [] -> None
          | c :: rest -> (
            match cached_check c with
            | Oracle.Diverges d -> Some (c, d)
            | _ -> first_accepted rest)
        in
        match first_accepted cands with
        | Some (c, d) ->
          Obs.Metrics.incr steps_c;
          loop c d (steps + 1)
        | None -> (current, div, steps)
    in
    let reduced, div, steps = loop q0 d0 0 in
    Obs.Metrics.add shrunk_c (L.size q0 - L.size reduced);
    Ok
      ( reduced,
        div,
        { steps;
          checks = spent ();
          original_size = L.size q0;
          reduced_size = L.size reduced;
          budget_exhausted = !budget_exhausted } )
