(* Incremental maintenance of the generate→compress pipeline.

   A session wraps one pipeline run against a cache directory. On start
   it loads the manifest a previous run persisted for the same
   configuration, diffs the live registry's rule-content fingerprints
   against it, and classifies every drift (body-only edit / pattern
   change / added / removed). During the run it serves whatever the diff
   proves unaffected:

   - suite targets whose recorded dependency set (rules whose patterns
     matched during generation) avoids every changed rule are replayed
     from their stored accepted entries instead of regenerated;
   - edge-cost matrix cells whose column dependency set avoids every
     changed rule — except the rules the cell's own target disables,
     which its cost never consults — are injected as warm edges.

   Byte-identity with a cold rebuild is structural, not aspirational:
   reused targets still consume their PRNG substream slot and the
   cross-target merge replays in target order (Suite.generate_tracked),
   and warm cells ride the same warm tier a spilled matrix uses, which
   counts them into the solution's invocation accounting exactly like
   computed edges. A pattern change or an added rule can match trees the
   recorded artifacts never explored, so those force a cold rebuild;
   body edits and removals invalidate only the slices that depend on
   them. No manifest (or a corrupt one) degrades to a cold rebuild that
   writes a fresh manifest. *)

module M = Storage.Manifest
module L = Relalg.Logical

type suite_section = {
  ss_targets : (string * int * string list * Suite.entry list) list;
      (* target name, target index, deps, task-local accepted entries *)
}

type matrix_section = {
  ms_entries : L.t array;  (* the suite's distinct queries, by entry index *)
  ms_columns : (int * string list) list;  (* query index -> column deps *)
  ms_cells : ((string * int) * float) list;  (* (target name, query index) *)
}

type t = {
  dc : Storage.Diskcache.t;
  key : string;
  config : string;
  fw : Framework.t;
  old : M.t option;
  changes : (string * M.change) list;
  full_rebuild : bool;
  changed_rules : string list;  (* body-changed + removed: the reusable diff *)
  mutable suite : Suite.t option;
  mutable records : Suite.gen_record list;
  mutable entries_reused : int;
  mutable targets_reused : int;
  mutable columns : (int * string list) list;  (* new indices, post-solve *)
  mutable cells : ((int * int) * float) list;  (* new indices, post-solve *)
  mutable edges_offered : int;
  mutable edges_recomputed : int;
  mutable edges_reused : int;
}

let rules_changed_c = Obs.Metrics.counter "delta.rules_changed"
let entries_reused_c = Obs.Metrics.counter "delta.entries_reused"
let edges_recomputed_c = Obs.Metrics.counter "delta.edges_recomputed"

let rules_info fw =
  List.map
    (fun (r : Optimizer.Rule.t) ->
      { M.name = r.name;
        fingerprint = r.fingerprint;
        pattern_fp = r.pattern_fp;
        source = Optimizer.Rules.source_of r.name })
    (Framework.rules fw)

let config_key fw ~desc =
  Printf.sprintf "incr-%s"
    (Digest.to_hex
       (Digest.string
          (Printf.sprintf "%d|%s"
             (Storage.Catalog.content_hash (Framework.catalog fw))
             desc)))

let start ~dc ~desc fw =
  let key = config_key fw ~desc in
  let old = M.load dc ~key in
  let changes =
    match old with Some m -> M.diff m ~rules:(rules_info fw) | None -> []
  in
  let full_rebuild =
    old = None
    || List.exists
         (fun (_, c) -> match c with M.Added | M.Pattern_changed -> true | _ -> false)
         changes
  in
  let changed_rules =
    List.filter_map
      (fun (n, c) ->
        match c with M.Body_changed | M.Removed -> Some n | _ -> None)
      changes
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.add rules_changed_c (List.length changes);
  { dc;
    key;
    config = desc;
    fw;
    old;
    changes;
    full_rebuild;
    changed_rules;
    suite = None;
    records = [];
    entries_reused = 0;
    targets_reused = 0;
    columns = [];
    cells = [];
    edges_offered = 0;
    edges_recomputed = 0;
    edges_reused = 0 }

let changes t = t.changes
let cold t = t.full_rebuild && t.old = None

let load_section : type a. t -> string -> a option =
 fun t name ->
  match t.old with
  | None -> None
  | Some m -> (
    match M.section m name with
    | None -> None
    | Some payload -> (
      match (Marshal.from_string payload 0 : a) with
      | v -> Some v
      | exception _ -> None))

(* A stored target is replayable when it sits at the same index (same
   PRNG substream, same fresh-alias range) and no changed rule appears
   in its recorded dependency set — generation would take exactly the
   recorded path, so we skip it and serve the recorded result. *)
let suite_reuse t =
  if t.full_rebuild then None
  else
    match (load_section t "suite" : suite_section option) with
    | None -> None
    | Some ss ->
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (name, idx, deps, accepted) ->
          Hashtbl.replace tbl name (idx, deps, accepted))
        ss.ss_targets;
      Some
        (fun ti target ->
          match Hashtbl.find_opt tbl (Suite.target_name target) with
          | Some (idx, deps, accepted)
            when idx = ti
                 && not (List.exists (fun c -> List.mem c deps) t.changed_rules)
            -> Some (accepted, deps)
          | _ -> None)

let generate ?gen ?extra_ops ?max_trials ~pool t g ~targets ~k =
  let reuse = suite_reuse t in
  let suite, records =
    Suite.generate_tracked ?gen ?extra_ops ?max_trials ?reuse ~pool t.fw g
      ~targets ~k
  in
  t.suite <- Some suite;
  t.records <- records;
  List.iter
    (fun (r : Suite.gen_record) ->
      if r.gr_reused then begin
        t.targets_reused <- t.targets_reused + 1;
        t.entries_reused <- t.entries_reused + List.length r.gr_accepted
      end)
    records;
  if Obs.Metrics.enabled () then
    Obs.Metrics.add entries_reused_c t.entries_reused;
  suite

(* Surviving matrix cells, re-indexed to the new suite. Cell
   ((target, q), cost) survives when every changed rule is either
   disabled by the cell's target (Cost(q, ¬R) never consults a disabled
   rule's body) or absent from q's column dependency set. Queries are
   matched by content, so cells survive even when entry indices shift
   because an earlier target regenerated. *)
let warm_edges t =
  match (t.suite, load_section t "matrix" : _ * matrix_section option) with
  | None, _ -> invalid_arg "Incr.warm_edges: generate first"
  | _, None -> []
  | Some suite, Some ms ->
    if t.full_rebuild then []
    else begin
      let qmap : int L.Tbl.t = L.Tbl.create 256 in
      Array.iteri
        (fun i (e : Suite.entry) -> L.Tbl.replace qmap e.query i)
        suite.entries;
      let tmap = Hashtbl.create 64 in
      List.iteri
        (fun ti target -> Hashtbl.replace tmap (Suite.target_name target) (ti, target))
        suite.targets;
      let coldeps = Hashtbl.create 256 in
      List.iter (fun (q, deps) -> Hashtbl.replace coldeps q deps) ms.ms_columns;
      let edges =
        List.filter_map
          (fun ((tname, qold), cost) ->
            match
              ( Hashtbl.find_opt tmap tname,
                (if qold >= 0 && qold < Array.length ms.ms_entries then
                   L.Tbl.find_opt qmap ms.ms_entries.(qold)
                 else None),
                Hashtbl.find_opt coldeps qold )
            with
            | Some (ti, target), Some qnew, Some deps ->
              let disabled = Suite.rules_of target in
              if
                List.for_all
                  (fun c -> List.mem c disabled || not (List.mem c deps))
                  t.changed_rules
              then Some ((ti, qnew), cost)
              else None
            | _ -> None)
          ms.ms_cells
      in
      t.edges_offered <- List.length edges;
      edges
    end

(* Fold a solved service into the session: its snapshot becomes the next
   manifest's cell set, and its computed column deps are unioned with
   the deps carried over for columns served entirely warm (whose rules
   never ran this time, so their recorded sets are still the truth). *)
let note_matrix t ec =
  match t.suite with
  | None -> invalid_arg "Incr.note_matrix: generate first"
  | Some suite ->
    t.cells <- Compress.snapshot ec;
    t.edges_recomputed <- Compress.computed_edges ec;
    t.edges_reused <- Compress.warm_served_edges ec;
    if Obs.Metrics.enabled () then
      Obs.Metrics.add edges_recomputed_c t.edges_recomputed;
    let cols = Hashtbl.create 256 in
    (match (load_section t "matrix" : matrix_section option) with
    | Some ms when not t.full_rebuild ->
      let qmap : int L.Tbl.t = L.Tbl.create 256 in
      Array.iteri
        (fun i (e : Suite.entry) -> L.Tbl.replace qmap e.query i)
        suite.entries;
      List.iter
        (fun (qold, deps) ->
          if qold >= 0 && qold < Array.length ms.ms_entries then
            match L.Tbl.find_opt qmap ms.ms_entries.(qold) with
            | Some qnew -> Hashtbl.replace cols qnew deps
            | None -> ())
        ms.ms_columns
    | _ -> ());
    List.iter
      (fun (q, deps) ->
        match Hashtbl.find_opt cols q with
        | None -> Hashtbl.replace cols q deps
        | Some prev ->
          Hashtbl.replace cols q
            (List.sort_uniq String.compare (List.rev_append deps prev)))
      (Compress.column_deps ec);
    t.columns <- List.sort compare (List.of_seq (Hashtbl.to_seq cols))

let finish t =
  match t.suite with
  | None -> invalid_arg "Incr.finish: generate first"
  | Some suite ->
    let ss =
      { ss_targets =
          List.map
            (fun (r : Suite.gen_record) ->
              ( Suite.target_name r.gr_target,
                r.gr_index,
                r.gr_deps,
                r.gr_accepted ))
            t.records }
    in
    let tnames = Array.of_list (List.map Suite.target_name suite.targets) in
    let ms =
      { ms_entries = Array.map (fun (e : Suite.entry) -> e.query) suite.entries;
        ms_columns = t.columns;
        ms_cells =
          List.filter_map
            (fun ((ti, qi), cost) ->
              if ti >= 0 && ti < Array.length tnames then
                Some ((tnames.(ti), qi), cost)
              else None)
            t.cells }
    in
    let m = M.make ~config:t.config ~rules:(rules_info t.fw) in
    let m = M.set_section m "suite" (Marshal.to_string ss []) in
    let m = M.set_section m "matrix" (Marshal.to_string ms []) in
    M.save t.dc ~key:t.key m

(* Everything a delta report needs, computable with and without having
   run the pipeline: the classified rule diff plus reuse tallies. Before
   [generate], the tallies preview what the manifest alone proves
   reusable; after a run they are the actual counts. *)
type report = {
  manifest_found : bool;
  rules_total : int;
  rules_changed : (string * string) list;  (* name, change kind *)
  full_rebuild : bool;
  targets_reusable : int;
  targets_total : int;
  entries_reused : int;
  edges_reusable : int;
  edges_total : int;
  edges_recomputed : int;
}

let preview t =
  let stored_targets =
    match (load_section t "suite" : suite_section option) with
    | Some ss -> ss.ss_targets
    | None -> []
  in
  let reusable_target (_, _, deps, _) =
    (not t.full_rebuild)
    && not (List.exists (fun c -> List.mem c deps) t.changed_rules)
  in
  let stored_cells, reusable_cells =
    match (load_section t "matrix" : matrix_section option) with
    | None -> (0, 0)
    | Some ms ->
      let coldeps = Hashtbl.create 256 in
      List.iter (fun (q, d) -> Hashtbl.replace coldeps q d) ms.ms_columns;
      let reusable =
        if t.full_rebuild then 0
        else
          List.length
            (List.filter
               (fun ((tname, qold), _) ->
                 match Hashtbl.find_opt coldeps qold with
                 | None -> false
                 | Some deps ->
                   (* Without the live target list we conservatively
                      parse the disabled set out of the stored name. *)
                   let disabled = String.split_on_char '+' tname in
                   List.for_all
                     (fun c ->
                       List.mem c disabled || not (List.mem c deps))
                     t.changed_rules)
               ms.ms_cells)
      in
      (List.length ms.ms_cells, reusable)
  in
  { manifest_found = t.old <> None;
    rules_total = List.length (Framework.rules t.fw);
    rules_changed =
      List.map (fun (n, c) -> (n, M.change_to_string c)) t.changes;
    full_rebuild = t.full_rebuild;
    targets_reusable = List.length (List.filter reusable_target stored_targets);
    targets_total = List.length stored_targets;
    entries_reused = t.entries_reused;
    edges_reusable = reusable_cells;
    edges_total = stored_cells;
    edges_recomputed = t.edges_recomputed }

let result t =
  let p = preview t in
  { p with
    targets_reusable = t.targets_reused;
    targets_total = List.length t.records;
    entries_reused = t.entries_reused;
    edges_reusable = t.edges_reused;
    edges_total = t.edges_recomputed + t.edges_reused;
    edges_recomputed = t.edges_recomputed }
