(* Transformation-rule tests.

   1. Precondition unit tests: rules must fire exactly when their
      (beyond-the-pattern) preconditions hold — the paper's central
      observation about patterns being necessary but not sufficient.
   2. Every rule's substitutes are valid trees with the same output schema.
   3. Whole-registry soundness via the framework's own methodology:
      generate a query exercising each rule, execute Plan(q) and
      Plan(q, not r), compare result bags. *)

open Relalg
module S = Scalar
module L = Logical
module R = Optimizer.Rule

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let micro = Storage.Datagen.micro ()
let id = Ident.make
let get1 = L.Get { table = "t1"; alias = "x" }
let get2 = L.Get { table = "t2"; alias = "y" }
let get3 = L.Get { table = "t3"; alias = "z" }
let a = id "x" "a"
let b = id "x" "b"
let cc = id "x" "c"
let d = id "y" "d"
let e = id "y" "e"
let f = id "z" "f"

let apply name tree = (Optimizer.Rules.find_exn name).apply micro tree
let fires name tree = apply name tree <> []

(* ---------------- precondition unit tests ---------------- *)

let test_join_commute_shape () =
  let join = L.Join { kind = L.Inner; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 } in
  match apply "JoinCommute" join with
  | [ L.Project { cols; child = L.Join { left = l; right = r; _ } } ] ->
    check bool_t "children swapped" true (L.equal l get2 && L.equal r get1);
    check int_t "projection restores width" 5 (List.length cols)
  | _ -> Alcotest.fail "expected a single project-wrapped commuted join"

let test_simplify_loj_precondition () =
  let loj p =
    L.Filter
      { pred = p;
        child =
          L.Join { kind = L.LeftOuter; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 } }
  in
  check bool_t "null-rejecting filter fires" true
    (fires "SimplifyLeftOuterJoin" (loj (S.Cmp (S.Gt, S.col e, S.int 0))));
  check bool_t "IS NULL filter must not fire" false
    (fires "SimplifyLeftOuterJoin" (loj (S.IsNull (S.col e))));
  check bool_t "left-side-only filter must not fire" false
    (fires "SimplifyLeftOuterJoin" (loj (S.Cmp (S.Gt, S.col a, S.int 0))))

let test_push_select_below_loj_sides () =
  let tree =
    L.Filter
      { pred = S.And (S.Cmp (S.Gt, S.col a, S.int 0), S.IsNull (S.col e));
        child =
          L.Join { kind = L.LeftOuter; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 } }
  in
  match apply "PushSelectBelowLeftOuterJoin" tree with
  | [ L.Filter { pred; child = L.Join { left = L.Filter { pred = pl; _ }; right; _ } } ] ->
    (* Only the left conjunct moves below; the right-side IS NULL stays. *)
    check bool_t "left conjunct pushed" true (S.equal pl (S.Cmp (S.Gt, S.col a, S.int 0)));
    check bool_t "right side untouched" true (L.equal right get2);
    check bool_t "right conjunct kept above" true (S.equal pred (S.IsNull (S.col e)))
  | _ -> Alcotest.fail "expected push to left side only"

let test_semi_to_inner_precondition () =
  let semi pred = L.Join { kind = L.Semi; pred; left = get1; right = get2 } in
  check bool_t "fires on right PK" true
    (fires "SemiJoinToInnerJoin" (semi (S.eq (S.col a) (S.col d))));
  check bool_t "must not fire on non-key column" false
    (fires "SemiJoinToInnerJoin" (semi (S.eq (S.col a) (S.col e))))

let test_gbagg_pull_preconditions () =
  let gb =
    L.GroupBy { keys = [ b ]; aggs = [ (id "g" "s", Aggregate.Sum (S.col a)) ]; child = get1 }
  in
  let join pred = L.Join { kind = L.Inner; pred; left = gb; right = get2 } in
  check bool_t "fires when pred uses keys" true
    (fires "GbAggPullAboveJoin" (join (S.eq (S.col b) (S.col d))));
  check bool_t "must not fire when pred uses aggregate output" false
    (fires "GbAggPullAboveJoin" (join (S.eq (S.col (id "g" "s")) (S.col d))));
  (* t3 has no candidate key: pulling above a join with it may duplicate. *)
  let join3 = L.Join { kind = L.Inner; pred = S.eq (S.col b) (S.col f); left = gb; right = get3 } in
  check bool_t "must not fire without key on other side" false
    (fires "GbAggPullAboveJoin" join3)

let test_gbagg_push_preconditions () =
  let join = L.Join { kind = L.Inner; pred = S.eq (S.col b) (S.col d); left = get1; right = get2 } in
  let gb keys aggs = L.GroupBy { keys; aggs; child = join } in
  let sum = (id "g" "s", Aggregate.Sum (S.col a)) in
  check bool_t "fires with keys covering pred and right key" true
    (fires "GbAggPushBelowJoin" (gb [ b; d ] [ sum ]));
  check bool_t "must not fire when aggregate reads right side" false
    (fires "GbAggPushBelowJoin" (gb [ b; d ] [ (id "g" "s", Aggregate.Sum (S.col e)) ]));
  check bool_t "must not fire when pred column not grouped" false
    (fires "GbAggPushBelowJoin" (gb [ cc; d ] [ sum ]));
  check bool_t "must not fire without right-side key in keys" false
    (fires "GbAggPushBelowJoin" (gb [ b; e ] [ sum ]))

let test_gbagg_eliminate_preconditions () =
  let gb aggs keys = L.GroupBy { keys; aggs; child = get1 } in
  let sum = (id "g" "s", Aggregate.Sum (S.col b)) in
  check bool_t "fires when grouping on key" true
    (fires "GbAggEliminateOnKey" (gb [ sum ] [ a ]));
  check bool_t "must not fire on non-key" false
    (fires "GbAggEliminateOnKey" (gb [ sum ] [ cc ]));
  check bool_t "must not fire with COUNT(col)" false
    (fires "GbAggEliminateOnKey" (gb [ (id "g" "c", Aggregate.Count (S.col b)) ] [ a ]));
  match apply "GbAggEliminateOnKey" (gb [ (id "g" "n", Aggregate.CountStar) ] [ a ]) with
  | [ L.Project { cols; _ } ] ->
    check bool_t "count star becomes literal 1" true
      (List.exists (fun (_, e) -> S.equal e (S.int 1)) cols)
  | _ -> Alcotest.fail "expected projection"

let test_distinct_elim_precondition () =
  check bool_t "fires over keyed input" true (fires "DistinctElimOnKey" (L.Distinct get1));
  check bool_t "must not fire over keyless input" false
    (fires "DistinctElimOnKey" (L.Distinct get3))

let test_join_loj_assoc_precondition () =
  let loj = L.Join { kind = L.LeftOuter; pred = S.eq (S.col d) (S.col f); left = get2; right = get3 } in
  let join pred = L.Join { kind = L.Inner; pred; left = get1; right = loj } in
  check bool_t "fires when pred avoids T" true
    (fires "JoinLeftOuterJoinAssoc" (join (S.eq (S.col a) (S.col d))));
  check bool_t "must not fire when pred touches T" false
    (fires "JoinLeftOuterJoinAssoc" (join (S.eq (S.col a) (S.col f))))

let test_select_split_merge () =
  let p1 = S.Cmp (S.Gt, S.col a, S.int 1) and p2 = S.IsNull (S.col b) in
  let stacked = L.Filter { pred = p1; child = L.Filter { pred = p2; child = get1 } } in
  (match apply "SelectMerge" stacked with
  | [ L.Filter { pred; child } ] ->
    check bool_t "merged pred" true (S.equal pred (S.And (p1, p2)));
    check bool_t "child" true (L.equal child get1)
  | _ -> Alcotest.fail "merge");
  let merged = L.Filter { pred = S.And (p1, p2); child = get1 } in
  (match apply "SelectSplit" merged with
  | [ L.Filter { pred = q1; child = L.Filter { pred = q2; child } } ] ->
    check bool_t "split parts" true (S.equal q1 p1 && S.equal q2 p2 && L.equal child get1)
  | _ -> Alcotest.fail "split");
  check bool_t "single conjunct does not split" false
    (fires "SelectSplit" (L.Filter { pred = p1; child = get1 }))

let test_trivial_and_identity_removal () =
  check bool_t "true filter removed" true
    (apply "RemoveTrivialSelect" (L.Filter { pred = S.true_; child = get1 }) = [ get1 ]);
  check bool_t "non-trivial kept" false
    (fires "RemoveTrivialSelect" (L.Filter { pred = S.IsNull (S.col b); child = get1 }));
  let identity =
    L.Project { cols = [ (a, S.col a); (b, S.col b); (cc, S.col cc) ]; child = get1 }
  in
  check bool_t "identity project removed" true
    (apply "RemoveIdentityProject" identity = [ get1 ]);
  let reordered =
    L.Project { cols = [ (b, S.col b); (a, S.col a); (cc, S.col cc) ]; child = get1 }
  in
  check bool_t "reordered is not identity" false (fires "RemoveIdentityProject" reordered)

let test_union_rules () =
  let other = L.Get { table = "t1"; alias = "w" } in
  let ua = L.UnionAll (get1, other) in
  (match apply "UnionAllCommute" ua with
  | [ L.Project { cols; child = L.UnionAll (l, r) } ] ->
    check bool_t "branches swapped" true (L.equal l other && L.equal r get1);
    check bool_t "renames to left idents" true
      (List.exists (fun (out, _) -> Ident.equal out a) cols)
  | _ -> Alcotest.fail "union all commute");
  check bool_t "union to unionall+distinct" true
    (match apply "UnionToUnionAllDistinct" (L.Union (get1, other)) with
    | [ L.Distinct (L.UnionAll _) ] -> true
    | _ -> false)

let test_intersect_except_to_semi () =
  let other = L.Get { table = "t1"; alias = "w" } in
  (match apply "IntersectToSemiJoin" (L.Intersect (get1, other)) with
  | [ L.Distinct (L.Join { kind = L.Semi; pred; _ }) ] ->
    check int_t "null-safe pred per column" 3 (List.length (S.conjuncts pred))
  | _ -> Alcotest.fail "intersect");
  match apply "ExceptToAntiSemiJoin" (L.Except (get1, other)) with
  | [ L.Distinct (L.Join { kind = L.AntiSemi; _ }) ] -> ()
  | _ -> Alcotest.fail "except"

(* ---------------- schema preservation ---------------- *)

(* Every substitute of every rule must be valid and export exactly the
   same output columns in the same order. *)
let test_rules_preserve_schema () =
  let g = Storage.Prng.create 314 in
  let ctx = { Core.Arggen.g; cat = micro } in
  let checked = ref 0 in
  for _ = 1 to 120 do
    let tree = Core.Random_gen.generate ~max_ops:7 ctx in
    let original = Props.schema_exn micro tree in
    List.iter
      (fun (r : R.t) ->
        List.iter
          (fun tree' ->
            incr checked;
            match Props.schema micro tree' with
            | Error msg ->
              Alcotest.failf "%s produced invalid tree: %s\nfrom:\n%s\nto:\n%s" r.name
                msg (L.to_string tree) (L.to_string tree')
            | Ok cols' ->
              if
                not
                  (List.length cols' = List.length original
                  && List.for_all2
                       (fun (x : Props.col_info) (y : Props.col_info) ->
                         Ident.equal x.id y.id && Storage.Datatype.equal x.ty y.ty)
                       cols' original)
              then
                Alcotest.failf "%s changed the output schema\nfrom:\n%s\nto:\n%s" r.name
                  (L.to_string tree) (L.to_string tree'))
          (r.apply micro tree))
      Optimizer.Rules.all
  done;
  check bool_t "exercised a meaningful number of substitutions" true (!checked > 50)

(* ---------------- whole-registry soundness ---------------- *)

let tpch = Storage.Datagen.tpch ~scale:0.001 ()

let soundness_case rule_name () =
  let fw = Core.Framework.create tpch in
  let g = Storage.Prng.create (Hashtbl.hash rule_name) in
  match Core.Query_gen.for_rule ~max_trials:80 fw g rule_name with
  | None -> Alcotest.failf "could not generate a query exercising %s" rule_name
  | Some { query; _ } -> (
    match (Core.Framework.optimize fw query, Core.Framework.optimize fw ~disabled:[ rule_name ] query) with
    | Ok on, Ok off ->
      check bool_t "cost monotone" true (off.cost >= on.cost -. 1e-6);
      check bool_t "rule not exercised when disabled" false
        (Core.Framework.SSet.mem rule_name off.exercised);
      let cat = Core.Framework.catalog fw in
      (match (Executor.Exec.run cat on.plan, Executor.Exec.run cat off.plan) with
      | Ok r1, Ok r2 ->
        if not (Executor.Resultset.equal_bag r1 r2) then
          Alcotest.failf "results differ with %s disabled\n%s" rule_name
            (L.to_string query)
      | Error e, _ | _, Error e -> Alcotest.failf "execution failed: %s" e)
    | Error e, _ | _, Error e -> Alcotest.failf "optimize failed: %s" e)

let soundness_cases =
  List.map
    (fun name -> Alcotest.test_case name `Slow (soundness_case name))
    Optimizer.Rules.names

let suite =
  [ ( "optimizer.rules.preconditions",
      [ Alcotest.test_case "join commute shape" `Quick test_join_commute_shape;
        Alcotest.test_case "simplify LOJ" `Quick test_simplify_loj_precondition;
        Alcotest.test_case "push select below LOJ" `Quick test_push_select_below_loj_sides;
        Alcotest.test_case "semi-join to inner" `Quick test_semi_to_inner_precondition;
        Alcotest.test_case "group-by pull-above" `Quick test_gbagg_pull_preconditions;
        Alcotest.test_case "group-by push-below" `Quick test_gbagg_push_preconditions;
        Alcotest.test_case "group-by eliminate" `Quick test_gbagg_eliminate_preconditions;
        Alcotest.test_case "distinct eliminate" `Quick test_distinct_elim_precondition;
        Alcotest.test_case "join/LOJ associativity" `Quick test_join_loj_assoc_precondition;
        Alcotest.test_case "select split/merge" `Quick test_select_split_merge;
        Alcotest.test_case "trivial/identity removal" `Quick test_trivial_and_identity_removal;
        Alcotest.test_case "union rules" `Quick test_union_rules;
        Alcotest.test_case "intersect/except rewrites" `Quick test_intersect_except_to_semi ] );
    ( "optimizer.rules.schema",
      [ Alcotest.test_case "substitutes preserve output schema" `Quick
          test_rules_preserve_schema ] );
    ("optimizer.rules.soundness", soundness_cases) ]
