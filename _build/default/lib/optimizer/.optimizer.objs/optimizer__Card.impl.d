lib/optimizer/card.ml: Catalog Float Hashtbl Ident List Logical Relalg Scalar Stats Storage Table Value
