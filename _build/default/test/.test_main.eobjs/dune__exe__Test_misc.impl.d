test/test_misc.ml: Alcotest Datagen List Optimizer Relalg Result Storage String Value
