(** Deliberately broken transformation rules, for demonstrating and
    testing the correctness-validation pipeline: with a fault injected,
    comparing [Plan(q)] against [Plan(q, ¬{r})] must surface a result
    mismatch (a "correctness bug", §2.3). Each fault keeps its victim's
    registry name, exactly like a buggy implementation shipped under the
    real rule's identity. *)

val names : string list
(** Names of rules for which a buggy variant exists. *)

val inject : string -> Optimizer.Rule.t list
(** [inject victim] is {!Optimizer.Rules.all} with [victim]'s substitution
    replaced by the broken one. Raises [Invalid_argument] for unknown
    names. *)

val describe : string -> string
(** What the injected bug does wrong. *)
