module L = Relalg.Logical
module S = Relalg.Scalar
module I = Relalg.Ident
module H = Relalg.Hashcons

type pred = Pvar of int | Pand of int * int

type node =
  | Rel of int
  | Filter of pred * node
  | Join of int * node * node
  | Distinct of node
  | UnionAll of node * node
  | Union of node * node
  | Intersect of node * node
  | Except of node * node

type candidate = { lhs : node; rhs : node }
type alphabet = Basic | Setops | Full

let alphabet_of_string = function
  | "basic" -> Ok Basic
  | "setops" -> Ok Setops
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown alphabet %S (basic|setops|full)" s)

let alphabet_name = function Basic -> "basic" | Setops -> "setops" | Full -> "full"

let rec ops = function
  | Rel _ -> 0
  | Filter (_, c) | Distinct c -> 1 + ops c
  | Join (_, a, b) | UnionAll (a, b) | Union (a, b) | Intersect (a, b)
  | Except (a, b) ->
    1 + ops a + ops b

let equal (a : candidate) (b : candidate) = a = b

(* Variables referenced by a side, as a sorted tagged list: predicate
   variables ('p'), join variables ('j'). Relation variables are excluded
   on purpose — orientation cares about which side *invents* predicates,
   and both sides of an enumerated pair share one relation-variable set. *)
let vset n =
  let rec go acc = function
    | Rel _ -> acc
    | Filter (Pvar i, c) -> go (('p', i) :: acc) c
    | Filter (Pand (i, j), c) -> go (('p', i) :: ('p', j) :: acc) c
    | Join (v, a, b) -> go (go (('j', v) :: acc) a) b
    | Distinct c -> go acc c
    | UnionAll (a, b) | Union (a, b) | Intersect (a, b) | Except (a, b) ->
      go (go acc a) b
  in
  List.sort_uniq compare (go [] n)

let subset a b = List.for_all (fun x -> List.mem x b) a

(* Renumber every variable class by first occurrence over the
   lhs-then-rhs preorder walk. Constructor arguments are evaluated
   right-to-left in OCaml, so the traversal order is made explicit with
   [let] bindings — first-occurrence numbering must follow the walk. *)
let canon_pair (l, r) =
  let rels = ref [] and preds = ref [] and joins = ref [] in
  let map tbl v =
    match List.assoc_opt v !tbl with
    | Some i -> i
    | None ->
      let i = List.length !tbl in
      tbl := !tbl @ [ (v, i) ];
      i
  in
  let map_pred = function
    | Pvar i -> Pvar (map preds i)
    | Pand (i, j) ->
      let i' = map preds i in
      let j' = map preds j in
      if i' <= j' then Pand (i', j') else Pand (j', i')
  in
  let rec go = function
    | Rel i -> Rel (map rels i)
    | Filter (p, c) ->
      let p' = map_pred p in
      let c' = go c in
      Filter (p', c')
    | Join (v, a, b) ->
      let v' = map joins v in
      let a' = go a in
      let b' = go b in
      Join (v', a', b')
    | Distinct c -> Distinct (go c)
    | UnionAll (a, b) ->
      let a' = go a in
      let b' = go b in
      UnionAll (a', b')
    | Union (a, b) ->
      let a' = go a in
      let b' = go b in
      Union (a', b')
    | Intersect (a, b) ->
      let a' = go a in
      let b' = go b in
      Intersect (a', b')
    | Except (a, b) ->
      let a' = go a in
      let b' = go b in
      Except (a', b')
  in
  let l' = go l in
  let r' = go r in
  (l', r')

let standardize { lhs; rhs } =
  let vl = vset lhs and vr = vset rhs in
  let strict_sup a b = subset b a && not (subset a b) in
  let oriented =
    if strict_sup vl vr then (lhs, rhs)
    else if strict_sup vr vl then (rhs, lhs)
    else if ops lhs > ops rhs then (lhs, rhs)
    else if ops rhs > ops lhs then (rhs, lhs)
    else
      let a = canon_pair (lhs, rhs) and b = canon_pair (rhs, lhs) in
      if compare a b <= 0 then (lhs, rhs) else (rhs, lhs)
  in
  let l, r = canon_pair oriented in
  { lhs = l; rhs = r }

(* Encoding into the Logical algebra, so dedup goes through the existing
   hashcons layer: metavariables become placeholder tables/columns.
   Injective on templates by construction. *)
let pcol i = S.Col (I.make ("p" ^ string_of_int i) "v")

let encode_pred = function
  | Pvar i -> pcol i
  | Pand (i, j) -> S.And (pcol i, pcol j)

let rec encode = function
  | Rel i -> L.Get { table = "T"; alias = "m" ^ string_of_int i }
  | Filter (p, c) -> L.Filter { pred = encode_pred p; child = encode c }
  | Join (v, a, b) ->
    L.Join
      { kind = L.Inner;
        pred = S.Col (I.make ("j" ^ string_of_int v) "v");
        left = encode a;
        right = encode b }
  | Distinct c -> L.Distinct (encode c)
  | UnionAll (a, b) -> L.UnionAll (encode a, encode b)
  | Union (a, b) -> L.Union (encode a, encode b)
  | Intersect (a, b) -> L.Intersect (encode a, encode b)
  | Except (a, b) -> L.Except (encode a, encode b)

let normal_ids c =
  let c = standardize c in
  (H.id (H.intern (encode c.lhs)), H.id (H.intern (encode c.rhs)))

let pred_str = function
  | Pvar i -> Printf.sprintf "p%d" i
  | Pand (i, j) -> Printf.sprintf "p%d&p%d" i j

let rec node_str = function
  | Rel i -> Printf.sprintf "R%d" i
  | Filter (p, c) -> Printf.sprintf "F[%s](%s)" (pred_str p) (node_str c)
  | Join (v, a, b) -> Printf.sprintf "J[j%d](%s,%s)" v (node_str a) (node_str b)
  | Distinct c -> Printf.sprintf "D(%s)" (node_str c)
  | UnionAll (a, b) -> Printf.sprintf "UA(%s,%s)" (node_str a) (node_str b)
  | Union (a, b) -> Printf.sprintf "U(%s,%s)" (node_str a) (node_str b)
  | Intersect (a, b) -> Printf.sprintf "I(%s,%s)" (node_str a) (node_str b)
  | Except (a, b) -> Printf.sprintf "E(%s,%s)" (node_str a) (node_str b)

let display c = node_str c.lhs ^ " -> " ^ node_str c.rhs

let name_of c =
  let s = display (standardize c) in
  (* Two independently seeded string hashes, mixed: [Hashtbl.hash] alone
     is 30 bits, too narrow for collision-free names over large
     enumerations. Deterministic across processes (both hashes are). *)
  let h = S.hash_combine (Hashtbl.hash s) (Hashtbl.seeded_hash 7 s) in
  Printf.sprintf "Disc%08x" (h land 0xffffffff)

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)

let filter_preds = [ Pvar 0; Pvar 1; Pand (0, 1) ]

let binaries_of = function
  | Basic -> []
  | Setops -> [ (fun a b -> UnionAll (a, b)); (fun a b -> Union (a, b)) ]
  | Full ->
    [ (fun a b -> UnionAll (a, b));
      (fun a b -> Union (a, b));
      (fun a b -> Intersect (a, b));
      (fun a b -> Except (a, b)) ]

(* All trees using exactly the relation variables [rels] (once each), with
   at most [budget] operators. Every tree is produced exactly once: a tree
   is its top constructor over smaller trees. *)
let rec gen alpha rels budget =
  let out = ref [] in
  (match rels with [ r ] -> out := [ Rel r ] | _ -> ());
  if budget >= 1 then begin
    let subs = gen alpha rels (budget - 1) in
    List.iter
      (fun t ->
        List.iter (fun p -> out := Filter (p, t) :: !out) filter_preds;
        out := Distinct t :: !out)
      subs;
    (match rels with
    | [ r0; r1 ] ->
      let parts = [ ([ r0 ], [ r1 ]); ([ r1 ], [ r0 ]) ] in
      List.iter
        (fun (lr, rr) ->
          let ls = gen alpha lr (budget - 1) and rs = gen alpha rr (budget - 1) in
          List.iter
            (fun l ->
              List.iter
                (fun r ->
                  if ops l + ops r <= budget - 1 then begin
                    out := Join (0, l, r) :: !out;
                    List.iter (fun mk -> out := mk l r :: !out) (binaries_of alpha)
                  end)
                rs)
            ls)
        parts
    | _ -> ())
  end;
  List.rev !out

(* Symbolic output signature: which relation variables feed the visible
   columns. Set operations export their left branch's columns. *)
let rec out_vars = function
  | Rel i -> [ i ]
  | Filter (_, c) | Distinct c -> out_vars c
  | Join (_, a, b) -> List.sort_uniq compare (out_vars a @ out_vars b)
  | UnionAll (a, _) | Union (a, _) | Intersect (a, _) | Except (a, _) ->
    out_vars a

let rec has_setop = function
  | Rel _ -> false
  | Filter (_, c) | Distinct c -> has_setop c
  | Join (_, a, b) -> has_setop a || has_setop b
  | UnionAll _ | Union _ | Intersect _ | Except _ -> true

let rel_vars n =
  let rec go acc = function
    | Rel i -> i :: acc
    | Filter (_, c) | Distinct c -> go acc c
    | Join (_, a, b) | UnionAll (a, b) | Union (a, b) | Intersect (a, b)
    | Except (a, b) ->
      go (go acc a) b
  in
  List.sort_uniq compare (go [] n)

(* A pair is worth validating when (a) the sides differ, (b) one side's
   predicate/join-variable set contains the other's (otherwise one side
   references predicates the other cannot supply — the bridged rule could
   never instantiate them), and (c) the outputs are statically
   compatible: same relation variables feeding the columns, or — for
   set-operation candidates, which are instantiated over one table so
   all branches share a width — the same column-source count. *)
let viable l r =
  l <> r
  && (let vl = vset l and vr = vset r in
      subset vl vr || subset vr vl)
  &&
  let ol = out_vars l and or_ = out_vars r in
  ol = or_ || ((has_setop l || has_setop r) && List.length ol = List.length or_)

let rel_sets = [ [ 0 ]; [ 0; 1 ] ]

let in_alphabet alpha n =
  let rec bad = function
    | Rel _ -> false
    | Filter (_, c) | Distinct c -> bad c
    | Join (_, a, b) -> bad a || bad b
    | UnionAll (a, b) | Union (a, b) -> alpha = Basic || bad a || bad b
    | Intersect (a, b) | Except (a, b) -> alpha <> Full || bad a || bad b
  in
  not (bad n)

let mk l r = standardize { lhs = l; rhs = r }

let known_sound =
  List.map
    (fun (n, c) -> (n, standardize c))
    [ ("SelectMerge",
       { lhs = Filter (Pvar 0, Filter (Pvar 1, Rel 0));
         rhs = Filter (Pand (0, 1), Rel 0) });
      ("SelectCommute",
       { lhs = Filter (Pvar 0, Filter (Pvar 1, Rel 0));
         rhs = Filter (Pvar 1, Filter (Pvar 0, Rel 0)) });
      ("JoinCommute",
       { lhs = Join (0, Rel 0, Rel 1); rhs = Join (0, Rel 1, Rel 0) });
      ("DistinctIdempotent",
       { lhs = Distinct (Distinct (Rel 0)); rhs = Distinct (Rel 0) });
      ("SelectBelowDistinct",
       { lhs = Filter (Pvar 0, Distinct (Rel 0));
         rhs = Distinct (Filter (Pvar 0, Rel 0)) });
      ("UnionAllCommute",
       { lhs = UnionAll (Rel 0, Rel 1); rhs = UnionAll (Rel 1, Rel 0) });
      ("UnionCommute", { lhs = Union (Rel 0, Rel 1); rhs = Union (Rel 1, Rel 0) });
      ("DistinctUnionAllToUnion",
       { lhs = Distinct (UnionAll (Rel 0, Rel 1)); rhs = Union (Rel 0, Rel 1) });
      ("DistinctUnionToUnion",
       { lhs = Distinct (Union (Rel 0, Rel 1)); rhs = Union (Rel 0, Rel 1) });
      ("IntersectCommute",
       { lhs = Intersect (Rel 0, Rel 1); rhs = Intersect (Rel 1, Rel 0) }) ]

let seeded_unsound =
  List.map
    (fun (n, c) -> (n, standardize c))
    [ ("DropFilter", { lhs = Filter (Pvar 0, Rel 0); rhs = Rel 0 });
      ("BuggySelectMerge",
       { lhs = Filter (Pvar 0, Filter (Pvar 1, Rel 0));
         rhs = Filter (Pvar 0, Rel 0) });
      ("DropDistinct", { lhs = Distinct (Rel 0); rhs = Rel 0 });
      ("UnionAllAsUnion",
       { lhs = UnionAll (Rel 0, Rel 1); rhs = Union (Rel 0, Rel 1) }) ]

let lookup table c =
  let c = standardize c in
  List.find_map (fun (n, k) -> if equal k c then Some n else None) table

let rediscovered_name c = lookup known_sound c
let seeded_name c = lookup seeded_unsound c

let enumerate_counted ?(pool = Par.Pool.sequential) alpha ~max_nodes =
  let pairs =
    List.concat_map
      (fun rels ->
        let sides = Array.of_list (gen alpha rels max_nodes) in
        (* Fan the quadratic filter+standardize pass out over the pool;
           the merge is in task order, so the result is pool-independent. *)
        let per_lhs =
          Par.Pool.map_array pool
            (fun l ->
              Array.to_list sides
              |> List.filter_map (fun r ->
                     if viable l r then Some (mk l r) else None))
            sides
        in
        List.concat (Array.to_list per_lhs))
      rel_sets
  in
  let seeded =
    List.filter_map
      (fun (_, c) -> if in_alphabet alpha c.lhs && in_alphabet alpha c.rhs then Some c else None)
      seeded_unsound
  in
  (* Dedup through the hashcons layer: one interned id per side of the
     standardized pair. First occurrence wins, order is enumeration
     order, so the output is deterministic. *)
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  List.iter
    (fun c ->
      let key = normal_ids c in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := c :: !out
      end)
    (pairs @ seeded);
  (List.rev !out, List.length pairs + List.length seeded)

let enumerate ?pool alpha ~max_nodes =
  fst (enumerate_counted ?pool alpha ~max_nodes)

(* ------------------------------------------------------------------ *)
(* Bridge to optimizer rules                                           *)

let rec to_pattern_node = function
  | Rel _ -> Optimizer.Pattern.Any
  | Filter (_, c) -> Optimizer.Pattern.Op (L.KFilter, [ to_pattern_node c ])
  | Join (_, a, b) ->
    Optimizer.Pattern.Op (L.KJoin L.Inner, [ to_pattern_node a; to_pattern_node b ])
  | Distinct c -> Optimizer.Pattern.Op (L.KDistinct, [ to_pattern_node c ])
  | UnionAll (a, b) ->
    Optimizer.Pattern.Op (L.KUnionAll, [ to_pattern_node a; to_pattern_node b ])
  | Union (a, b) ->
    Optimizer.Pattern.Op (L.KUnion, [ to_pattern_node a; to_pattern_node b ])
  | Intersect (a, b) ->
    Optimizer.Pattern.Op (L.KIntersect, [ to_pattern_node a; to_pattern_node b ])
  | Except (a, b) ->
    Optimizer.Pattern.Op (L.KExcept, [ to_pattern_node a; to_pattern_node b ])

let to_pattern c = to_pattern_node (standardize c).lhs

(* Wrap [built] so its output schema matches the tree the rule fired on
   — the same alignment the differential oracle applies, so a validated
   candidate is promotable by construction. *)
let align cat matched built =
  match Triage.Differential.align cat ~reference:matched built with
  | Ok t -> [ t ]
  | Error _ -> []

(* Bridge into the rewrite DSL, for the symbolic oracle. Join-predicate
   variables land in a predicate-variable namespace disjoint from the
   filter predicates'. Candidates using Intersect/Except fall outside the
   DSL fragment and map to [None]; [qtr verify-rules] reports them as
   unverified. *)
let join_pv v = 1000 + v

let to_rdsl ?name c =
  let c = standardize c in
  let module R = Dsl.Rdsl in
  let pexp = function
    | Pvar i -> R.Pvar i
    | Pand (i, j) -> R.Pand (R.Pvar i, R.Pvar j)
  in
  let rec go = function
    | Rel i -> Some (R.Var i)
    | Filter (p, ct) -> Option.map (fun t -> R.Filter (pexp p, t)) (go ct)
    | Join (v, a, b) -> (
      match (go a, go b) with
      | Some a, Some b -> Some (R.Join (L.Inner, R.Pvar (join_pv v), a, b))
      | _ -> None)
    | Distinct ct -> Option.map (fun t -> R.Distinct t) (go ct)
    | UnionAll (a, b) -> (
      match (go a, go b) with
      | Some a, Some b -> Some (R.UnionAll (a, b))
      | _ -> None)
    | Union (a, b) -> (
      match (go a, go b) with
      | Some a, Some b -> Some (R.Union (a, b))
      | _ -> None)
    | Intersect _ | Except _ -> None
  in
  match (go c.lhs, go c.rhs) with
  | Some lhs, Some rhs ->
    let name = match name with Some n -> n | None -> name_of c in
    Some { R.name; lhs; rhs; sides = [] }
  | _ -> None

let to_rule ?name c =
  let c = standardize c in
  let name = match name with Some n -> n | None -> name_of c in
  let pattern = to_pattern c in
  let apply cat tree =
    let rels : (int, L.t) Hashtbl.t = Hashtbl.create 4 in
    let preds : (int, S.t) Hashtbl.t = Hashtbl.create 4 in
    let joins : (int, S.t) Hashtbl.t = Hashtbl.create 4 in
    let bind tbl eq k v =
      match Hashtbl.find_opt tbl k with
      | Some v' -> eq v v'
      | None ->
        Hashtbl.add tbl k v;
        true
    in
    let rec mtch t q =
      match (t, q) with
      | Rel i, _ -> bind rels L.equal i q
      | Filter (Pvar i, ct), L.Filter { pred; child } ->
        bind preds S.equal i pred && mtch ct child
      | Filter (Pand (i, j), ct), L.Filter { pred; child } -> (
        match S.conjuncts pred with
        | a :: (_ :: _ as rest) ->
          bind preds S.equal i a
          && bind preds S.equal j (S.conj rest)
          && mtch ct child
        | _ -> false)
      | Join (v, lt, rt), L.Join { kind = L.Inner; pred; left; right } ->
        bind joins S.equal v pred && mtch lt left && mtch rt right
      | Distinct ct, L.Distinct cq -> mtch ct cq
      | UnionAll (a, b), L.UnionAll (x, y) -> mtch a x && mtch b y
      | Union (a, b), L.Union (x, y) -> mtch a x && mtch b y
      | Intersect (a, b), L.Intersect (x, y) -> mtch a x && mtch b y
      | Except (a, b), L.Except (x, y) -> mtch a x && mtch b y
      | _ -> false
    in
    if not (mtch c.lhs tree) then []
    else
      let pred_of = function
        | Pvar i -> Hashtbl.find preds i
        | Pand (i, j) -> S.And (Hashtbl.find preds i, Hashtbl.find preds j)
      in
      let rec build = function
        | Rel i -> Hashtbl.find rels i
        | Filter (p, ct) -> L.Filter { pred = pred_of p; child = build ct }
        | Join (v, a, b) ->
          L.Join
            { kind = L.Inner;
              pred = Hashtbl.find joins v;
              left = build a;
              right = build b }
        | Distinct ct -> L.Distinct (build ct)
        | UnionAll (a, b) -> L.UnionAll (build a, build b)
        | Union (a, b) -> L.Union (build a, build b)
        | Intersect (a, b) -> L.Intersect (build a, build b)
        | Except (a, b) -> L.Except (build a, build b)
      in
      match build c.rhs with
      | exception Not_found -> []
      | built -> align cat tree built
  in
  Optimizer.Rule.make name pattern apply
