test/test_arggen.ml: Alcotest Catalog Core Datagen Executor Ident List Logical Printf Prng Props Relalg Result Scalar Storage
