(** SQL generation from logical query trees — the paper's "Generate SQL"
    module (§2.3, after Elhemali & Giakoumakis [9]).

    Every operator is emitted as a derived-table SELECT, so any tree in the
    algebra maps to a single executable SQL statement. Column identifiers
    are spelled [rel_name] (see {!Ident.to_sql}); base-table columns are
    exported under their global names ([SELECT r0.c AS r0_c ... FROM t AS
    r0]), which requires the catalog. The companion {!Sql_parser} reads the
    emitted dialect back into the algebra. *)

val to_sql : Storage.Catalog.t -> Logical.t -> string
(** Single-line SQL statement. Raises [Invalid_argument] when a [Get]
    references a table absent from the catalog. *)

val to_sql_pretty : Storage.Catalog.t -> Logical.t -> string
(** Indented multi-line rendering of the same statement. *)
