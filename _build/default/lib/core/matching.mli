(** The §7 variant of test-suite compression: no sharing of queries across
    rules — each query maps to at most one rule, each rule gets [k]
    distinct queries, minimize total cost. The paper notes this reduces to
    bipartite matching and "can be solved efficiently"; we solve it
    exactly as a min-cost flow (successive shortest augmenting paths). *)

type result = {
  assignment : (Suite.target * (int * float) list) list;
      (** per target, the assigned (query, edge cost) pairs; queries are
          pairwise distinct across the whole assignment *)
  total_cost : float;
      (** Σ assigned (Cost(q) + Cost(q, ¬R)) *)
  complete : bool;
      (** false when some target could not receive k distinct queries *)
}

val solve : Framework.t -> Suite.t -> result
(** Optimal no-sharing assignment. Edge costs are computed for every
    (target, covering query) pair — this variant is about execution cost,
    not graph-construction cost. *)
