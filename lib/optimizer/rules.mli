(** The rule registry: all exploration (logical) transformation rules in a
    canonical order, plus the pattern-export API the paper adds to the
    DBMS (§3.1: "we have extended the database server with an API through
    which it returns the rule pattern tree for a rule in a XML format"). *)

val all : Rule.t list
(** All exploration rules; the order is stable and experiments index rules
    by position in this list. *)

val names : string list
val count : int
val find : string -> Rule.t option
val find_exn : string -> Rule.t

val nth : int -> Rule.t
(** Raises [Invalid_argument] when out of range. *)

val pattern_xml : string -> string option
(** The XML rule-pattern export for a rule name. *)

val all_patterns_xml : unit -> string
(** One [<rules>...</rules>] document with every rule's pattern. *)

val dsl_rules : (string * Dsl.Rdsl.rule) list
(** The DSL source of each DSL-backed registered rule (the join and select
    families), keyed by rule name, in registry order. *)

val rdsl_of : string -> Dsl.Rdsl.rule option
