lib/optimizer/rules.ml: List Option Pattern Printf Rule Rules_agg Rules_extra Rules_join Rules_select String
