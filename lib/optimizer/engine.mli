(** The optimizer's search engine.

    A Volcano-style exhaustive transformation closure: starting from the
    input logical tree, every enabled exploration rule is applied at every
    node of every (deduplicated) tree until fixpoint or budget; every
    explored tree is then costed through the implementation rules, with
    planning memoized per logical subtree. The engine provides the two
    extensions the paper requires of the DBMS (§2.3):

    - tracking which rules are exercised during an optimization
      ([RuleSet(q)], the [exercised] field), and
    - optimizing with a given set of rules disabled
      ([Plan(q, ¬R)], the [disabled] option).

    Because disabling a rule only removes trees from the closure (and
    plans from the implementation alternatives), the engine is
    "well-behaved" in the paper's §5.2 sense: [Cost(q) <= Cost(q, ¬R)]
    whenever the closure completes within budget. *)

module SSet : Set.S with type elt = string

type options = {
  disabled : SSet.t;  (** rule names (logical or implementation) to turn off *)
  max_trees : int;  (** exploration budget; default 1200 *)
  max_growth : int;  (** max extra operators over the input size; default 6 *)
}

val default_options : options

type result = {
  best_logical : Relalg.Logical.t;
  plan : Physical.t;
  cost : float;
  exercised : SSet.t;  (** logical (exploration) rules exercised *)
  impl_exercised : SSet.t;  (** implementation rules exercised *)
  trees_explored : int;
  budget_exhausted : bool;
      (** the [max_trees] budget truncated the closure: some rewrites
          were discovered but never explored, so [exercised] (and the
          chosen plan) may under-report what an unbounded search would
          find. Callers doing coverage analysis should surface this. *)
}

val optimize :
  ?options:options ->
  ?rules:Rule.t list ->
  Storage.Catalog.t ->
  Relalg.Logical.t ->
  (result, string) Stdlib.result
(** Full optimization: explore, then cost. Fails when the input tree is
    invalid, or no physical plan exists (e.g. all implementation rules for
    some operator are disabled). [rules] overrides the exploration-rule
    registry (default {!Rules.all}) — used to inject deliberately broken
    rules in correctness-testing demonstrations. *)

val ruleset :
  ?options:options ->
  ?rules:Rule.t list ->
  Storage.Catalog.t ->
  Relalg.Logical.t ->
  (SSet.t, string) Stdlib.result
(** [RuleSet(q)]: the logical rules exercised when optimizing [q] —
    exploration only, skipping the costing phase (used by the coverage
    experiments, which never execute queries). *)

val implementation_rule_names : string list
(** Names of the implementation rules (disjoint from {!Rules.names}). *)

(** {2 Telemetry}

    When [Obs.Metrics] collection is enabled the engine feeds:

    - ["optimizer.rule.attempts"{rule}] — rule application attempts
      (one per rule per node of every explored tree);
    - ["optimizer.rule.rewrites"{rule}] — rewrites those attempts
      produced (so [rewrites/attempts] is the rule's match rate);
    - ["optimizer.rule.match_ns"{rule}] — latency histogram of one
      application attempt, in nanoseconds;
    - ["optimizer.explore.trees"], ["optimizer.explore.queue_depth"],
      ["optimizer.explore.budget_exhausted"] — closure statistics;
    - ["optimizer.memo.hits"/"optimizer.memo.misses"] — the planner's
      per-subtree memo table.

    With a trace sink installed, [optimize] wraps exploration and
    costing in ["engine.explore"]/["engine.cost"] spans and emits an
    ["explore.budget_exhausted"] instant event on truncation. *)
