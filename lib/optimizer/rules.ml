let all : Rule.t list =
  Rules_join.rules @ Rules_select.rules @ Rules_agg.rules @ Rules_extra.rules

(* The DSL source of each DSL-backed registered rule (the join and select
   families; the agg and extra families remain closure rules). *)
let dsl_rules : (string * Dsl.Rdsl.rule) list =
  List.map (fun (r : Dsl.Rdsl.rule) -> (r.name, r)) (Rules_join.dsl @ Rules_select.dsl)

let rdsl_of name = List.assoc_opt name dsl_rules

let () =
  (* The registry is the unit of identity for the whole framework; duplicate
     names would corrupt rule tracking. *)
  let names = List.map (fun (r : Rule.t) -> r.name) all in
  let sorted = List.sort_uniq String.compare names in
  assert (List.length sorted = List.length names)

let names = List.map (fun (r : Rule.t) -> r.name) all
let count = List.length all
let find name = List.find_opt (fun (r : Rule.t) -> String.equal r.name name) all

let find_exn name =
  match find name with
  | Some r -> r
  | None -> invalid_arg ("Rules.find_exn: unknown rule " ^ name)

let nth i =
  match List.nth_opt all i with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Rules.nth: index %d out of range" i)

(* Content identity of the registry: per-rule fingerprints (DSL rules
   digest their term via [Rdsl.compile]; closure rules digest
   name+pattern+version). The incremental-maintenance manifest and the
   warm-start matrix key both hang off these. *)
let fingerprints () =
  List.map (fun (r : Rule.t) -> (r.name, r.fingerprint)) all

let source_of name = if List.mem_assoc name dsl_rules then "dsl" else "closure"

(* A reproducible single-rule body edit: the named rule keeps its name,
   pattern and behavior, but its content fingerprint changes — a
   behavior-preserving refactor of the rule's implementation, the
   commonest edit incremental maintenance exists for. The maintenance
   layer cannot know the edit preserved behavior, so it must recompute
   every artifact depending on the rule's body (and nothing else); since
   behavior is in fact unchanged, the recomputed results must equal the
   pre-edit ones byte for byte, which is what the CI warm-edit job and
   the bench `incremental` experiment check. Tests that need a
   behavior-*changing* edit build one directly with [Rule.make]. *)
let simulate_edit ?(rules = all) name =
  let found = ref false in
  let edited =
    List.map
      (fun (r : Rule.t) ->
        if String.equal r.name name then begin
          found := true;
          (* [r.apply] is already pattern-guarded; the extra guard the
             wrapper adds is idempotent (same match condition, same
             collector entry). *)
          Rule.make ~version:"simulated-edit" r.name r.pattern r.apply
        end
        else r)
      rules
  in
  if not !found then invalid_arg ("Rules.simulate_edit: unknown rule " ^ name);
  edited

let pattern_xml name =
  Option.map (fun (r : Rule.t) -> Pattern.to_xml r.pattern) (find name)

let all_patterns_xml () =
  let entry (r : Rule.t) =
    Printf.sprintf "<rule name=\"%s\">%s</rule>" r.name (Pattern.to_xml r.pattern)
  in
  "<rules>" ^ String.concat "" (List.map entry all) ^ "</rules>"
