(* Test-suite compression (paper §4-5): build the bipartite rule/query
   graph for a set of rules, run BASELINE / SMC / TOPK, inspect the chosen
   query-to-rule mapping, and quantify the monotonicity optimization.

     dune exec examples/suite_compression.exe *)

open Storage
module Su = Core.Suite
module C = Core.Compress

let () =
  let cat = Datagen.tpch ~scale:0.002 () in
  let fw =
    Core.Framework.create
      ~options:{ Optimizer.Engine.default_options with max_trees = 400 }
      cat
  in
  let g = Prng.create 9 in
  let rules =
    [ "JoinCommute"; "PushSelectBelowJoin"; "SelectMerge"; "MergeSelectIntoJoin";
      "JoinAssocLeft"; "SimplifyLeftOuterJoin"; "GbAggPullAboveJoin";
      "DistinctElimOnKey" ]
  in
  let k = 4 in
  Printf.printf "generating test suite: %d rules x k=%d...\n%!" (List.length rules) k;
  let suite =
    Su.generate ~extra_ops:3 fw g ~targets:(List.map (fun r -> Su.Single r) rules) ~k
  in
  Printf.printf "%d distinct queries generated\n\n" (Array.length suite.entries);

  (* The bipartite graph: which queries cover which rules (paper Fig. 4). *)
  print_endline "bipartite coverage (rule -> covering query ids):";
  List.iter
    (fun target ->
      let cov = Su.covering suite target in
      Printf.printf "  %-28s %s\n" (Su.target_name target)
        (String.concat " " (List.map string_of_int cov)))
    suite.targets;

  let show name (sol : C.solution) =
    Printf.printf "\n%s: total cost %.1f (%d optimizer invocations while building)\n"
      name sol.total_cost sol.invocations;
    List.iter
      (fun (target, picks) ->
        Printf.printf "  %-28s <- queries [%s]\n" (Su.target_name target)
          (String.concat "; "
             (List.map (fun (q, c) -> Printf.sprintf "%d (edge %.0f)" q c) picks)))
      sol.assignment
  in
  show "BASELINE (no sharing)" (C.baseline fw suite);
  show "SMC (greedy set-multicover)" (C.smc fw suite);
  let naive = C.topk fw suite in
  show "TOPK (k cheapest edges per rule)" naive;
  let mono = C.topk ~exploit_monotonicity:true fw suite in
  Printf.printf
    "\nmonotonicity: naive computed %d edge costs, pruned scan computed %d (%.1fx fewer), cost delta %+.2f%%\n"
    naive.invocations mono.invocations
    (float_of_int naive.invocations /. float_of_int (max 1 mono.invocations))
    (100.0 *. (mono.total_cost -. naive.total_cost) /. naive.total_cost);

  (* The exact no-sharing variant from §7. *)
  let m = Core.Matching.solve fw suite in
  Printf.printf "\nexact no-sharing assignment (min-cost matching): %.1f (complete=%b)\n"
    m.total_cost m.complete;

  (* Finally: actually execute the compressed suite. *)
  let report = Core.Correctness.run fw suite mono in
  Format.printf "\nexecuting the TOPK suite: %a@." Core.Correctness.pp_report report
