lib/storage/catalog.mli: Format Schema Table
