(* In-process span profiler: a Trace consumer that aggregates the
   B/E span stream into self/total-time statistics instead of (or in
   addition to) writing it to disk.

   All mutable state is per-domain: each domain that emits spans gets
   its own stack + aggregation tables (events are dispatched
   synchronously on the emitting domain, so no locks are needed on the
   hot path). A global registry of per-domain states, guarded by a
   mutex, exists only so snapshots can merge across domains; snapshots
   are meant to be taken at quiescence (Par.Pool joins all helpers
   before returning, so any point between parallel phases qualifies). *)

let n_buckets = 64

type agg = {
  mutable count : int;
  mutable total_ns : float;
  mutable self_ns : float;
  mutable min_ns : float;
  mutable max_ns : float;
  buckets : int array;  (* power-of-two duration buckets, like Metrics *)
}

let fresh_agg () =
  { count = 0;
    total_ns = 0.0;
    self_ns = 0.0;
    min_ns = Float.infinity;
    max_ns = Float.neg_infinity;
    buckets = Array.make n_buckets 0 }

type frame = {
  fname : string;
  start_ns : int64;
  path : string;  (* "root;child;grandchild" — folded-stacks key *)
  mutable child_ns : float;
}

type dstate = {
  dom : int;
  mutable stack : frame list;
  by_name : (string, agg) Hashtbl.t;
  folded_tbl : (string, float ref) Hashtbl.t;  (* path -> self ns *)
  mutable unmatched : int;  (* E events with no open B (consumer installed mid-span) *)
}

let states : dstate list ref = ref []
let states_lock = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let s =
        { dom = (Domain.self () :> int) + 1;
          stack = [];
          by_name = Hashtbl.create 64;
          folded_tbl = Hashtbl.create 64;
          unmatched = 0 }
      in
      Mutex.protect states_lock (fun () -> states := s :: !states);
      s)

let bucket_of v =
  if v < 1.0 then 0
  else begin
    let b = 1 + int_of_float (Float.log2 v) in
    if b >= n_buckets then n_buckets - 1 else b
  end

let agg_for tbl name =
  match Hashtbl.find_opt tbl name with
  | Some a -> a
  | None ->
    let a = fresh_agg () in
    Hashtbl.replace tbl name a;
    a

let record_close st (fr : frame) ~ts_ns =
  let dur = Clock.ns_between fr.start_ns ts_ns in
  let self = Float.max 0.0 (dur -. fr.child_ns) in
  (match st.stack with
  | parent :: _ -> parent.child_ns <- parent.child_ns +. dur
  | [] -> ());
  let a = agg_for st.by_name fr.fname in
  a.count <- a.count + 1;
  a.total_ns <- a.total_ns +. dur;
  a.self_ns <- a.self_ns +. self;
  if dur < a.min_ns then a.min_ns <- dur;
  if dur > a.max_ns then a.max_ns <- dur;
  a.buckets.(bucket_of dur) <- a.buckets.(bucket_of dur) + 1;
  match Hashtbl.find_opt st.folded_tbl fr.path with
  | Some r -> r := !r +. self
  | None -> Hashtbl.replace st.folded_tbl fr.path (ref self)

let handle ~ts_ns ~tid:_ (ev : Trace.event) =
  let st = Domain.DLS.get dls_key in
  match ev with
  | Trace.Begin { name; _ } ->
    let path =
      match st.stack with [] -> name | p :: _ -> p.path ^ ";" ^ name
    in
    st.stack <- { fname = name; start_ns = ts_ns; path; child_ns = 0.0 } :: st.stack
  | Trace.End { name } -> (
    match st.stack with
    | fr :: rest when fr.fname = name ->
      st.stack <- rest;
      record_close st fr ~ts_ns
    | _ ->
      (* An E whose B predates this consumer, or an interleaving bug
         upstream; drop it rather than corrupting the stack. *)
      st.unmatched <- st.unmatched + 1)
  | Trace.Instant _ | Trace.Counter _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let consumer_name = "profile"

let reset () =
  Mutex.protect states_lock @@ fun () ->
  List.iter
    (fun s ->
      s.stack <- [];
      Hashtbl.reset s.by_name;
      Hashtbl.reset s.folded_tbl;
      s.unmatched <- 0)
    !states

let enable () =
  reset ();
  Trace.add_consumer
    { Trace.cname = consumer_name; handle; flush = ignore; close = ignore }

let disable () = Trace.remove_consumer consumer_name
let enabled () = Trace.consumer_installed consumer_name

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type row = {
  name : string;
  count : int;
  total_ns : float;
  self_ns : float;
  min_ns : float;
  max_ns : float;
  p50_ns : float;
  p95_ns : float;
}

let quantile (a : agg) q =
  if a.count = 0 then 0.0
  else begin
    let rank = q *. float_of_int a.count in
    let cum = ref 0 in
    let result = ref a.max_ns in
    (try
       for b = 0 to n_buckets - 1 do
         cum := !cum + a.buckets.(b);
         if float_of_int !cum >= rank then begin
           let mid = if b = 0 then 0.5 else Float.pow 2.0 (float_of_int b -. 0.5) in
           result := Float.min a.max_ns (Float.max a.min_ns mid);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let row_of_agg name (a : agg) =
  { name;
    count = a.count;
    total_ns = a.total_ns;
    self_ns = a.self_ns;
    min_ns = (if a.count = 0 then 0.0 else a.min_ns);
    max_ns = (if a.count = 0 then 0.0 else a.max_ns);
    p50_ns = quantile a 0.5;
    p95_ns = quantile a 0.95 }

let sort_rows rows =
  List.sort (fun a b -> compare (b.self_ns, b.name) (a.self_ns, a.name)) rows

let merge_into acc (name, (a : agg)) =
  let m =
    match Hashtbl.find_opt acc name with
    | Some m -> m
    | None ->
      let m = fresh_agg () in
      Hashtbl.replace acc name m;
      m
  in
  m.count <- m.count + a.count;
  m.total_ns <- m.total_ns +. a.total_ns;
  m.self_ns <- m.self_ns +. a.self_ns;
  if a.count > 0 then begin
    if a.min_ns < m.min_ns then m.min_ns <- a.min_ns;
    if a.max_ns > m.max_ns then m.max_ns <- a.max_ns
  end;
  Array.iteri (fun i n -> m.buckets.(i) <- m.buckets.(i) + n) a.buckets

let with_states f = Mutex.protect states_lock (fun () -> f !states)

let rows () =
  with_states @@ fun states ->
  let acc = Hashtbl.create 64 in
  List.iter
    (fun s -> Hashtbl.iter (fun name a -> merge_into acc (name, a)) s.by_name)
    states;
  sort_rows (Hashtbl.fold (fun name a l -> row_of_agg name a :: l) acc [])

let rows_by_domain () =
  with_states @@ fun states ->
  List.filter_map
    (fun s ->
      if Hashtbl.length s.by_name = 0 then None
      else
        Some
          ( s.dom,
            sort_rows
              (Hashtbl.fold (fun name a l -> row_of_agg name a :: l) s.by_name []) ))
    states
  |> List.sort compare

let folded () =
  let acc = Hashtbl.create 64 in
  with_states (fun states ->
      List.iter
        (fun s ->
          Hashtbl.iter
            (fun path self ->
              match Hashtbl.find_opt acc path with
              | Some r -> r := !r +. !self
              | None -> Hashtbl.replace acc path (ref !self))
            s.folded_tbl)
        states);
  Hashtbl.fold (fun path r l -> (path, !r) :: l) acc [] |> List.sort compare

let unmatched () = with_states (List.fold_left (fun n s -> n + s.unmatched) 0)

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)
(* ------------------------------------------------------------------ *)

let write_folded oc =
  (* flamegraph.pl wants integer sample counts; emit microseconds of
     self time so stack widths remain proportional to time. *)
  List.iter
    (fun (path, self_ns) ->
      Printf.fprintf oc "%s %.0f\n" path (Clock.ns_to_us self_ns))
    (folded ())

let row_json r =
  Json.Obj
    [ ("name", Json.String r.name);
      ("count", Json.Int r.count);
      ("total_ns", Json.Float r.total_ns);
      ("self_ns", Json.Float r.self_ns);
      ("min_ns", Json.Float r.min_ns);
      ("max_ns", Json.Float r.max_ns);
      ("p50_ns", Json.Float r.p50_ns);
      ("p95_ns", Json.Float r.p95_ns) ]

let to_json () =
  Json.Obj
    [ ("spans", Json.List (List.map row_json (rows ())));
      ( "by_domain",
        Json.List
          (List.map
             (fun (dom, rows) ->
               Json.Obj
                 [ ("domain", Json.Int dom);
                   ("spans", Json.List (List.map row_json rows)) ])
             (rows_by_domain ())) );
      ( "folded",
        Json.Obj (List.map (fun (p, ns) -> (p, Json.Float ns)) (folded ())) );
      ("unmatched", Json.Int (unmatched ())) ]

let pp fmt () =
  let rows = rows () in
  if rows = [] then Format.fprintf fmt "(no spans recorded)@."
  else begin
    let total_self = List.fold_left (fun a r -> a +. r.self_ns) 0.0 rows in
    Format.fprintf fmt "%-28s %8s %10s %10s %6s %9s %9s@." "span" "count"
      "self_ms" "total_ms" "self%" "p50_us" "p95_us";
    List.iter
      (fun r ->
        Format.fprintf fmt "%-28s %8d %10.2f %10.2f %5.1f%% %9.1f %9.1f@."
          r.name r.count
          (Clock.ns_to_ms r.self_ns)
          (Clock.ns_to_ms r.total_ns)
          (if total_self = 0.0 then 0.0 else 100.0 *. r.self_ns /. total_self)
          (Clock.ns_to_us r.p50_ns)
          (Clock.ns_to_us r.p95_ns))
      rows
  end
