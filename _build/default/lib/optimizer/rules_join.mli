(** Exploration rules over joins: commutativity, associativity,
    select-pushdown, outer-join simplification and commutation,
    join/outer-join associativity (the paper's §3 example), semi-join to
    inner join. *)

val rules : Rule.t list
