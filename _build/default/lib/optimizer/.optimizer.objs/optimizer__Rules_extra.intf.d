lib/optimizer/rules_extra.mli: Rule
