lib/relalg/aggregate.mli: Format Ident Scalar Storage
