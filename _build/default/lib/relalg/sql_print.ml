(* Each operator becomes one SELECT over derived tables. Derived-table
   aliases (d0, d1, ...) are syntactic only: column names are globally
   unique (Ident), so references never need qualification. *)

type ctx = { mutable next : int; catalog : Storage.Catalog.t }

let fresh ctx =
  let n = ctx.next in
  ctx.next <- n + 1;
  "d" ^ string_of_int n

let sort_dir_to_sql = function Logical.Asc -> "ASC" | Logical.Desc -> "DESC"

let rec select ctx (t : Logical.t) : string =
  match t with
  | Get { table; alias } ->
    (* Export every column under its global name. *)
    let tb =
      match Storage.Catalog.find ctx.catalog table with
      | Some tb -> tb
      | None -> invalid_arg ("Sql_print: unknown table " ^ table)
    in
    let item name = Printf.sprintf "%s.%s AS %s_%s" alias name alias name in
    Printf.sprintf "SELECT %s FROM %s AS %s"
      (String.concat ", " (List.map item (Storage.Schema.column_names tb.schema)))
      table alias
  | Filter { pred; child } ->
    Printf.sprintf "SELECT * FROM (%s) AS %s WHERE %s" (select ctx child)
      (fresh ctx) (Scalar.to_sql pred)
  | Project { cols; child } ->
    let item (id, e) = Printf.sprintf "%s AS %s" (Scalar.to_sql e) (Ident.to_sql id) in
    Printf.sprintf "SELECT %s FROM (%s) AS %s"
      (String.concat ", " (List.map item cols))
      (select ctx child) (fresh ctx)
  | Join { kind = Semi; pred; left; right } ->
    Printf.sprintf "SELECT * FROM (%s) AS %s WHERE EXISTS (SELECT 1 FROM (%s) AS %s WHERE %s)"
      (select ctx left) (fresh ctx) (select ctx right) (fresh ctx)
      (Scalar.to_sql pred)
  | Join { kind = AntiSemi; pred; left; right } ->
    Printf.sprintf
      "SELECT * FROM (%s) AS %s WHERE NOT EXISTS (SELECT 1 FROM (%s) AS %s WHERE %s)"
      (select ctx left) (fresh ctx) (select ctx right) (fresh ctx)
      (Scalar.to_sql pred)
  | Join { kind = Cross; pred = _; left; right } ->
    Printf.sprintf "SELECT * FROM (%s) AS %s CROSS JOIN (%s) AS %s"
      (select ctx left) (fresh ctx) (select ctx right) (fresh ctx)
  | Join { kind; pred; left; right } ->
    let kw =
      match kind with
      | Logical.Inner -> "INNER JOIN"
      | Logical.LeftOuter -> "LEFT OUTER JOIN"
      | Logical.RightOuter -> "RIGHT OUTER JOIN"
      | Logical.FullOuter -> "FULL OUTER JOIN"
      | Logical.Cross | Logical.Semi | Logical.AntiSemi -> assert false
    in
    Printf.sprintf "SELECT * FROM (%s) AS %s %s (%s) AS %s ON %s"
      (select ctx left) (fresh ctx) kw (select ctx right) (fresh ctx)
      (Scalar.to_sql pred)
  | GroupBy { keys; aggs; child } ->
    let key_items = List.map Ident.to_sql keys in
    let agg_items =
      List.map
        (fun (id, a) -> Printf.sprintf "%s AS %s" (Aggregate.to_sql a) (Ident.to_sql id))
        aggs
    in
    let group_clause =
      if keys = [] then ""
      else " GROUP BY " ^ String.concat ", " key_items
    in
    Printf.sprintf "SELECT %s FROM (%s) AS %s%s"
      (String.concat ", " (key_items @ agg_items))
      (select ctx child) (fresh ctx) group_clause
  | UnionAll (a, b) -> setop ctx "UNION ALL" a b
  | Union (a, b) -> setop ctx "UNION" a b
  | Intersect (a, b) -> setop ctx "INTERSECT" a b
  | Except (a, b) -> setop ctx "EXCEPT" a b
  | Distinct child ->
    Printf.sprintf "SELECT DISTINCT * FROM (%s) AS %s" (select ctx child) (fresh ctx)
  | Sort { keys; child } ->
    let key (id, dir) = Ident.to_sql id ^ " " ^ sort_dir_to_sql dir in
    Printf.sprintf "SELECT * FROM (%s) AS %s ORDER BY %s" (select ctx child)
      (fresh ctx)
      (String.concat ", " (List.map key keys))
  | Limit { count; child } ->
    Printf.sprintf "SELECT * FROM (%s) AS %s LIMIT %d" (select ctx child)
      (fresh ctx) count

and setop ctx kw a b =
  Printf.sprintf "SELECT * FROM ((%s) %s (%s)) AS %s" (select ctx a) kw
    (select ctx b) (fresh ctx)

let to_sql catalog t = select { next = 0; catalog } t

(* Pretty renderer: re-indent the flat SQL at parenthesis depth. Keeps the
   two renderings trivially token-equivalent. *)
let to_sql_pretty catalog t =
  let s = to_sql catalog t in
  let buf = Buffer.create (String.length s * 2) in
  let depth = ref 0 in
  let newline () =
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (2 * !depth) ' ')
  in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c;
        newline ()
      | ')' ->
        decr depth;
        newline ();
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
