(* SQL printer/parser: exact round trips for every operator, plus
   property-based semantic round trips on random generated queries. *)
open Relalg
module S = Scalar
module L = Logical
module V = Storage.Value

let check = Alcotest.check
let bool_t = Alcotest.bool

let cat = Storage.Datagen.micro ()
let id = Ident.make
let get1 = L.Get { table = "t1"; alias = "x" }
let get2 = L.Get { table = "t2"; alias = "y" }
let a = id "x" "a"
let b = id "x" "b"
let cc = id "x" "c"
let d = id "y" "d"
let e = id "y" "e"

let roundtrip name tree =
  let sql = Sql_print.to_sql cat tree in
  match Sql_parser.parse cat sql with
  | Error msg -> Alcotest.failf "%s: parse failed: %s\nSQL: %s" name msg sql
  | Ok tree' ->
    if not (L.equal tree tree') then
      Alcotest.failf "%s: round trip mismatch\nSQL: %s\ngot:\n%s\nwant:\n%s" name sql
        (L.to_string tree') (L.to_string tree)

let test_get () = roundtrip "get" get1

let test_filter () =
  roundtrip "filter"
    (L.Filter { pred = S.And (S.eq (S.col a) (S.int 3), S.IsNull (S.col b)); child = get1 });
  roundtrip "filter with or/not"
    (L.Filter
       { pred = S.Or (S.Not (S.eq (S.col cc) (S.Const (V.Str "it's"))), S.IsNotNull (S.col b));
         child = get1 });
  roundtrip "filter comparisons"
    (L.Filter
       { pred =
           S.And
             ( S.Cmp (S.Lt, S.col a, S.int 5),
               S.And
                 ( S.Cmp (S.Ge, S.col b, S.Neg (S.int 2)),
                   S.Cmp (S.Ne, S.col a, S.Arith (S.Mul, S.col b, S.int 2)) ) );
         child = get1 })

let test_project () =
  roundtrip "project"
    (L.Project
       { cols = [ (id "p" "k", S.col a); (id "p" "s", S.Arith (S.Add, S.col b, S.int 1)) ];
         child = get1 })

let test_joins () =
  let pred = S.eq (S.col a) (S.col d) in
  List.iter
    (fun kind ->
      roundtrip
        (L.kind_name (L.KJoin kind))
        (L.Join { kind; pred; left = get1; right = get2 }))
    [ L.Inner; L.LeftOuter; L.RightOuter; L.FullOuter; L.Semi; L.AntiSemi ];
  roundtrip "cross" (L.Join { kind = L.Cross; pred = S.true_; left = get1; right = get2 })

let test_groupby () =
  roundtrip "groupby"
    (L.GroupBy
       { keys = [ cc ];
         aggs =
           [ (id "g" "n", Aggregate.CountStar);
             (id "g" "s", Aggregate.Sum (S.col a));
             (id "g" "m", Aggregate.Min (S.col b)) ];
         child = get1 });
  roundtrip "global agg"
    (L.GroupBy
       { keys = []; aggs = [ (id "g" "avg", Aggregate.Avg (S.col a)) ]; child = get1 });
  roundtrip "count expr"
    (L.GroupBy
       { keys = [ a ]; aggs = [ (id "g" "c", Aggregate.Count (S.col b)) ]; child = get1 })

let test_setops () =
  let other = L.Get { table = "t1"; alias = "w" } in
  roundtrip "union all" (L.UnionAll (get1, other));
  roundtrip "union" (L.Union (get1, other));
  roundtrip "intersect" (L.Intersect (get1, other));
  roundtrip "except" (L.Except (get1, other));
  roundtrip "nested setop" (L.UnionAll (L.UnionAll (get1, other), L.Get { table = "t1"; alias = "v" }))

let test_distinct_sort_limit () =
  roundtrip "distinct" (L.Distinct get1);
  roundtrip "sort" (L.Sort { keys = [ (a, L.Desc); (cc, L.Asc) ]; child = get1 });
  roundtrip "limit" (L.Limit { count = 7; child = get1 });
  roundtrip "stack"
    (L.Limit
       { count = 3;
         child = L.Sort { keys = [ (a, L.Asc) ]; child = L.Distinct get1 } })

let test_nested () =
  let pred = S.eq (S.col a) (S.col d) in
  let projected = L.Project { cols = [ (a, S.col a); (cc, S.col cc) ]; child = get1 } in
  let filtered = L.Filter { pred = S.IsNotNull (S.col cc); child = projected } in
  let joined = L.Join { kind = L.Inner; pred; left = filtered; right = get2 } in
  let grouped =
    L.GroupBy { keys = [ cc ]; aggs = [ (id "g" "n", Aggregate.CountStar) ]; child = joined }
  in
  roundtrip "filter over join over groupby"
    (L.Filter { pred = S.Cmp (S.Gt, S.col (id "g" "n"), S.int 1); child = grouped })

let test_semi_in_subtree () =
  let semi =
    L.Join { kind = L.Semi; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 }
  in
  roundtrip "filter over semi"
    (L.Filter { pred = S.Cmp (S.Gt, S.col a, S.int 0); child = semi });
  roundtrip "anti under sort"
    (L.Sort
       { keys = [ (a, L.Asc) ];
         child =
           L.Join
             { kind = L.AntiSemi; pred = S.eq (S.col b) (S.col e); left = get1; right = get2 } })

let test_parse_errors () =
  let bad sql =
    check bool_t ("rejects: " ^ sql) true (Result.is_error (Sql_parser.parse cat sql))
  in
  bad "";
  bad "SELECT";
  bad "SELECT * FROM nosuchtable AS x";
  bad "SELECT * FROM t1 AS x WHERE";
  bad "SELECT * FROM t1 AS x WHERE x.a = ";
  bad "SELECT * FROM (SELECT * FROM t1 AS x) AS d0 LIMIT banana";
  bad "SELECT * FROM t1 AS x trailing garbage"

let test_date_literals () =
  roundtrip "date filter"
    (L.Filter
       { pred = S.Cmp (S.Le, S.Const (V.Date (V.date_of_ymd 1997 3 14)), S.Const (V.Date 0));
         child = get1 })

let test_pretty_tokens_equal () =
  let tree = L.Filter { pred = S.eq (S.col a) (S.int 1); child = get1 } in
  match Sql_parser.parse cat (Sql_print.to_sql_pretty cat tree) with
  | Ok tree' -> check bool_t "pretty parses to same tree" true (L.equal tree tree')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

(* Property: every randomly generated query prints to SQL that parses, and
   the parsed tree produces identical results. *)
let qcheck_semantic_roundtrip =
  QCheck.Test.make ~name:"sql print/parse preserves semantics" ~count:25
    (QCheck.make (QCheck.Gen.int_bound 100000))
    (fun seed ->
      let g = Storage.Prng.create seed in
      let ctx = { Core.Arggen.g; cat } in
      let tree = Core.Random_gen.generate ~max_ops:6 ctx in
      let sql = Sql_print.to_sql cat tree in
      match Sql_parser.parse cat sql with
      | Error msg -> QCheck.Test.fail_reportf "parse failed: %s\n%s" msg sql
      | Ok tree' -> (
        match
          (Executor.Exec.run_logical cat tree, Executor.Exec.run_logical cat tree')
        with
        | Ok r1, Ok r2 ->
          if Executor.Resultset.equal_bag r1 r2 then true
          else QCheck.Test.fail_reportf "results differ for:\n%s" sql
        | Error e, _ | _, Error e -> QCheck.Test.fail_reportf "execution failed: %s" e))

let suite =
  [ ( "relalg.sql",
      [ Alcotest.test_case "get" `Quick test_get;
        Alcotest.test_case "filter" `Quick test_filter;
        Alcotest.test_case "project" `Quick test_project;
        Alcotest.test_case "joins" `Quick test_joins;
        Alcotest.test_case "groupby" `Quick test_groupby;
        Alcotest.test_case "set operations" `Quick test_setops;
        Alcotest.test_case "distinct/sort/limit" `Quick test_distinct_sort_limit;
        Alcotest.test_case "nested operators" `Quick test_nested;
        Alcotest.test_case "semi joins in subtrees" `Quick test_semi_in_subtree;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "date literals" `Quick test_date_literals;
        Alcotest.test_case "pretty form" `Quick test_pretty_tokens_equal;
        QCheck_alcotest.to_alcotest qcheck_semantic_roundtrip ] ) ]
