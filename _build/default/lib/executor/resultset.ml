open Storage

type t = { cols : Relalg.Ident.t array; rows : Value.t array list }

let row_count t = List.length t.rows

let compare_rows (a : Value.t array) (b : Value.t array) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Stdlib.compare (Array.length a) (Array.length b)
    else
      match Value.compare_total a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let normalize t = { t with rows = List.sort compare_rows t.rows }

let same_cols a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2 Relalg.Ident.equal a.cols b.cols

let equal_bag a b =
  same_cols a b
  &&
  let ra = List.sort compare_rows a.rows and rb = List.sort compare_rows b.rows in
  List.length ra = List.length rb
  && List.for_all2 (fun x y -> compare_rows x y = 0) ra rb

let first_difference a b =
  if not (same_cols a b) then Some (None, None)
  else
    let ra = List.sort compare_rows a.rows and rb = List.sort compare_rows b.rows in
    let rec go = function
      | [], [] -> None
      | x :: _, [] -> Some (Some x, None)
      | [], y :: _ -> Some (None, Some y)
      | x :: xs, y :: ys ->
        if compare_rows x y = 0 then go (xs, ys) else Some (Some x, Some y)
    in
    go (ra, rb)

let pp fmt t =
  Format.fprintf fmt "@[<v>%s  (%d rows)"
    (String.concat ", "
       (Array.to_list (Array.map Relalg.Ident.to_sql t.cols)))
    (row_count t);
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: take (n - 1) xs
  in
  List.iter
    (fun row ->
      Format.fprintf fmt "@,(%s)"
        (String.concat ", " (Array.to_list (Array.map Value.to_sql row))))
    (take 20 t.rows);
  if row_count t > 20 then Format.fprintf fmt "@,...";
  Format.fprintf fmt "@]"
