(* The select/project family, stated in the rewrite DSL (lib/dsl/rdsl.ml)
   and compiled to engine rules. The original closure implementations are
   kept below as [closure_rules]: test_dsl.ml checks rule-by-rule that the
   compiled DSL rules produce identical substitutes on random trees, and
   the registry would fall back to them if a rule ever outgrew the DSL. *)

open Relalg
module L = Logical
module S = Scalar
module R = Dsl.Rdsl

(* Metavariable conventions: relations A=0, B=1; predicates p0 (outermost
   binder first), p1; projection definitions d0 (outermost first), d1. *)
let a = R.Var 0
let b = R.Var 1
let p0 = R.Pvar 0
let p1 = R.Pvar 1

let dsl : R.rule list =
  [ { name = "SelectMerge";
      lhs = R.Filter (p0, R.Filter (p1, a));
      rhs = R.Filter (R.Pand (p0, p1), a);
      sides = [] };
    { name = "SelectSplit";
      lhs = R.Filter (p0, a);
      rhs = R.Filter (R.Pfirst 0, R.Filter (R.Prest 0, a));
      sides = [ R.Splittable 0 ] };
    { name = "SelectOverProject";
      lhs = R.Filter (p0, R.Proj (R.Dvar 0, a));
      rhs = R.Proj (R.Dvar 0, R.Filter (R.Psubst (0, p0), a));
      sides = [] };
    { name = "SelectBelowGbAgg";
      (* conjuncts over the grouping keys commute with aggregation *)
      lhs = R.Filter (p0, R.GroupBy a);
      rhs =
        R.Filter_nontrivial
          (R.Presid (p0, R.Keys), R.GroupBy (R.Filter (R.Ppart (p0, R.Keys), a)));
      sides = [ R.Some_pushed [ (p0, R.Keys) ] ] };
    { name = "SelectBelowUnionAll";
      lhs = R.Filter (p0, R.UnionAll (a, b));
      rhs = R.UnionAll (R.Filter (p0, a), R.Filter (R.Prename (p0, 0, 1), b));
      sides = [] };
    { name = "SelectBelowUnion";
      lhs = R.Filter (p0, R.Union (a, b));
      rhs = R.Union (R.Filter (p0, a), R.Filter (R.Prename (p0, 0, 1), b));
      sides = [] };
    { name = "SelectBelowDistinct";
      lhs = R.Filter (p0, R.Distinct a);
      rhs = R.Distinct (R.Filter (p0, a));
      sides = [] };
    { name = "RemoveTrivialSelect";
      lhs = R.Filter (p0, a);
      rhs = a;
      sides = [ R.Trivial 0 ] };
    { name = "ProjectMerge";
      lhs = R.Proj (R.Dvar 0, R.Proj (R.Dvar 1, a));
      rhs = R.Proj (R.Dcompose (0, 1), a);
      sides = [] };
    { name = "RemoveIdentityProject";
      lhs = R.Proj (R.Dvar 0, a);
      rhs = a;
      sides = [ R.Identity_proj (0, 0) ] } ]

let rules = List.map R.compile dsl

(* ------------------------------------------------------------------ *)
(* The original closure implementations (parity reference / fallback). *)
(* ------------------------------------------------------------------ *)

let ( let* ) o f = match o with Ok v -> f v | Error _ -> []

let select_merge =
  Rule.make "SelectMerge"
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KFilter, [ Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred = p1; child = L.Filter { pred = p2; child } } ->
        [ L.Filter { pred = S.And (p1, p2); child } ]
      | _ -> [])

let select_split =
  Rule.make "SelectSplit"
    (Pattern.Op (L.KFilter, [ Pattern.Any ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child } -> (
        match S.conjuncts pred with
        | first :: (_ :: _ as rest) ->
          [ L.Filter { pred = first; child = L.Filter { pred = S.conj rest; child } } ]
        | _ -> [])
      | _ -> [])

(* Filter(p, Project(items, X)) -> Project(items, Filter(p[items], X)):
   substitute each projected output column by its defining expression. *)
let select_over_project =
  Rule.make "SelectOverProject"
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KProject, [ Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child = L.Project { cols; child } } ->
        let lookup id =
          List.find_map
            (fun (out, e) -> if Ident.equal out id then Some e else None)
            cols
        in
        [ L.Project { cols; child = L.Filter { pred = Rule.subst lookup pred; child } } ]
      | _ -> [])

(* Conjuncts over the grouping keys commute with aggregation. *)
let select_below_groupby =
  Rule.make "SelectBelowGbAgg"
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KGroupBy, [ Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child = L.GroupBy ({ keys; _ } as g) } ->
        let pk, rest = Rule.split_by_scope pred (Ident.Set.of_list keys) in
        if S.equal pk S.true_ then []
        else
          let pushed = L.GroupBy { g with child = L.Filter { pred = pk; child = g.child } } in
          [ (if S.equal rest S.true_ then pushed else L.Filter { pred = rest; child = pushed }) ]
      | _ -> [])

(* Filter distributes over both branches of a set operation; on the right
   branch column references are renamed positionally. *)
let select_below_setop inner_kind name rebuild =
  Rule.make name
    (Pattern.Op (L.KFilter, [ Pattern.Op (inner_kind, [ Pattern.Any; Pattern.Any ]) ]))
    (fun cat t ->
      match t with
      | L.Filter { pred; child } when L.kind child = inner_kind -> (
        match L.children child with
        | [ a; b ] ->
          let* ac = Props.schema cat a in
          let* bc = Props.schema cat b in
          let rename = Rule.positional_rename ac bc in
          let pred_b = S.rename rename pred in
          [ rebuild (L.Filter { pred; child = a }) (L.Filter { pred = pred_b; child = b }) ]
        | _ -> [])
      | _ -> [])

let select_below_unionall =
  select_below_setop L.KUnionAll "SelectBelowUnionAll" (fun a b -> L.UnionAll (a, b))

let select_below_union =
  select_below_setop L.KUnion "SelectBelowUnion" (fun a b -> L.Union (a, b))

let select_below_distinct =
  Rule.make "SelectBelowDistinct"
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KDistinct, [ Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child = L.Distinct inner } ->
        [ L.Distinct (L.Filter { pred; child = inner }) ]
      | _ -> [])

let remove_trivial_select =
  Rule.make "RemoveTrivialSelect"
    (Pattern.Op (L.KFilter, [ Pattern.Any ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child } when S.equal pred S.true_ -> [ child ]
      | _ -> [])

let project_merge =
  Rule.make "ProjectMerge"
    (Pattern.Op (L.KProject, [ Pattern.Op (L.KProject, [ Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Project { cols = outer; child = L.Project { cols = inner; child } } ->
        let lookup id =
          List.find_map
            (fun (out, e) -> if Ident.equal out id then Some e else None)
            inner
        in
        let merged = List.map (fun (out, e) -> (out, Rule.subst lookup e)) outer in
        [ L.Project { cols = merged; child } ]
      | _ -> [])

let remove_identity_project =
  Rule.make "RemoveIdentityProject"
    (Pattern.Op (L.KProject, [ Pattern.Any ]))
    (fun cat t ->
      match t with
      | L.Project { cols; child } ->
        let* child_cols = Props.schema cat child in
        let identity =
          List.length cols = List.length child_cols
          && List.for_all2
               (fun (id, e) (ci : Props.col_info) ->
                 Ident.equal id ci.id
                 && match e with S.Col c -> Ident.equal c ci.id | _ -> false)
               cols child_cols
        in
        if identity then [ child ] else []
      | _ -> [])

let closure_rules =
  [ select_merge; select_split; select_over_project; select_below_groupby;
    select_below_unionall; select_below_union; select_below_distinct;
    remove_trivial_select; project_merge; remove_identity_project ]
