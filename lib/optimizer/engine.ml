open Relalg
module L = Logical
module H = Hashcons
module S = Scalar
module SSet = Set.Make (String)

type options = {
  disabled : SSet.t;
  max_trees : int;
  max_growth : int;
  memoize : bool;
}

let default_options =
  { disabled = SSet.empty; max_trees = 1200; max_growth = 6; memoize = true }

type result = {
  best_logical : L.t;
  plan : Physical.t;
  cost : float;
  exercised : SSet.t;
  impl_exercised : SSet.t;
  trees_explored : int;
  budget_truncated : bool;
}

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-rule instruments, resolved once per [explore] so the hot loop
   never touches the metrics registry. When collection is disabled every
   event reduces to the single branch inside [Obs.Metrics]/the [enabled]
   guard here. *)
type instrumented_rule = {
  rule : Rule.t;
  attempts : Obs.Metrics.counter;  (** application attempts, per node *)
  rewritten : Obs.Metrics.counter;  (** rewrites produced *)
  match_ns : Obs.Metrics.histogram;  (** latency of one application *)
}

let instrument_rule (r : Rule.t) =
  { rule = r;
    attempts = Obs.Metrics.counter ~label:r.name "optimizer.rule.attempts";
    rewritten = Obs.Metrics.counter ~label:r.name "optimizer.rule.rewrites";
    match_ns = Obs.Metrics.histogram ~label:r.name "optimizer.rule.match_ns" }

(* Firing counters: one per rule name, bumped when a rewrite is admitted
   as a {e novel} tree (attempts and rewrites count applications; fired
   counts rewrites that actually grew the closure — the signal the
   discovery ranker consumes). The memo keeps registry lookups out of
   the admission loop, resolved per explore call like the rest. *)
let fired_counters () =
  let memo : (string, Obs.Metrics.counter) Hashtbl.t = Hashtbl.create 16 in
  fun name ->
    match Hashtbl.find_opt memo name with
    | Some c -> c
    | None ->
      let c = Obs.Metrics.counter ~label:name "optimizer.rule.fired" in
      Hashtbl.add memo name c;
      c

let apply_rule catalog (ir : instrumented_rule) t =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr ir.attempts;
    let t0 = Obs.Clock.now_ns () in
    let out = ir.rule.apply catalog t in
    Obs.Metrics.observe ir.match_ns (Obs.Clock.ns_between t0 (Obs.Clock.now_ns ()));
    (match out with [] -> () | l -> Obs.Metrics.add ir.rewritten (List.length l));
    out
  end
  else ir.rule.apply catalog t

(* Logical children have arity <= 2. *)
let replace_child kids i kid' =
  match (kids, i) with
  | [ _ ], 0 -> [ kid' ]
  | [ _; b ], 0 -> [ kid'; b ]
  | [ a; _ ], 1 -> [ a; kid' ]
  | _ -> invalid_arg "Engine.replace_child"

(* All (rule name, rewritten whole tree) pairs obtained by applying a
   rule at any node of [t], recomputed from scratch for every containing
   tree — the seed engine's behaviour, kept behind [memoize = false] as
   the reference implementation for equivalence tests and before/after
   benchmarks. Accumulator-based: one reversed push per rewrite and a
   single [List.rev], instead of the previous [List.mapi] replacement and
   repeated [@] of growing lists. Enumeration order (root rewrites in
   registry order, then children left to right) is part of the engine's
   observable behaviour under a tree budget and must match
   [node_rewrites] below. *)
let rewrites_unmemoized catalog rules (t : L.t) : (string * L.t) list =
  let acc = ref [] in
  let rec go wrap t =
    List.iter
      (fun ir ->
        List.iter
          (fun t' -> acc := (ir.rule.name, wrap t') :: !acc)
          (apply_rule catalog ir t))
      rules;
    let kids = L.children t in
    List.iteri
      (fun i kid ->
        go (fun kid' -> wrap (L.with_children t (replace_child kids i kid'))) kid)
      kids
  in
  go Fun.id t;
  List.rev !acc

(* The rewrite service of one exploration: rewrites of each distinct
   hash-consed subtree are computed once and replayed for every
   containing tree (Cascades-memo behaviour). A whole-tree rewrite list
   is assembled from the child's memoized list with [H.rebuild] — O(1)
   per rewrite instead of a fresh rule sweep of the subtree. *)
type rewriter = {
  rw_catalog : Storage.Catalog.t;
  rw_rules : instrumented_rule list;
  rw_memoize : bool;
  rw_memo : (int, (string * H.node) list) Hashtbl.t;
  rw_hits : Obs.Metrics.counter;
  rw_misses : Obs.Metrics.counter;
}

let make_rewriter catalog options rules =
  let rules =
    List.filter (fun (r : Rule.t) -> not (SSet.mem r.name options.disabled)) rules
  in
  { rw_catalog = catalog;
    rw_rules = List.map instrument_rule rules;
    rw_memoize = options.memoize;
    rw_memo = Hashtbl.create 1024;
    rw_hits = Obs.Metrics.counter "optimizer.rewrite_memo.hits";
    rw_misses = Obs.Metrics.counter "optimizer.rewrite_memo.misses" }

let rec node_rewrites rw (n : H.node) : (string * H.node) list =
  match Hashtbl.find_opt rw.rw_memo n.H.id with
  | Some r ->
    Obs.Metrics.incr rw.rw_hits;
    r
  | None ->
    Obs.Metrics.incr rw.rw_misses;
    let acc = ref [] in
    List.iter
      (fun ir ->
        List.iter
          (fun t' -> acc := (ir.rule.name, H.intern t') :: !acc)
          (apply_rule rw.rw_catalog ir n.H.repr))
      rw.rw_rules;
    Array.iteri
      (fun i kid ->
        List.iter
          (fun (name, kid') -> acc := (name, H.rebuild n i kid') :: !acc)
          (node_rewrites rw kid))
      n.H.kids;
    let r = List.rev !acc in
    Hashtbl.replace rw.rw_memo n.H.id r;
    r

let tree_rewrites rw (n : H.node) : (string * H.node) list =
  if rw.rw_memoize then node_rewrites rw n
  else
    List.map
      (fun (name, t') -> (name, H.intern t'))
      (rewrites_unmemoized rw.rw_catalog rw.rw_rules n.H.repr)

type exploration = {
  nodes : H.node list;  (** insertion order; head is the input tree *)
  logical_exercised : SSet.t;
  count : int;
  truncated : bool;  (** the tree budget cut the closure short *)
}

let explore ~options ~rules catalog t0 : exploration =
  (* Resolved once per call, not per rewrite: registry lookups stay out
     of the closure loop, and a [Metrics.clear] between calls cannot
     leave us holding instruments the registry no longer knows about. *)
  let queue_depth_gauge = Obs.Metrics.gauge "optimizer.explore.queue_depth" in
  let explored_counter = Obs.Metrics.counter "optimizer.explore.trees" in
  let exhausted_counter = Obs.Metrics.counter "optimizer.explore.budget_exhausted" in
  let hashcons_gauge = Obs.Metrics.gauge "optimizer.hashcons.nodes" in
  let rw = make_rewriter catalog options rules in
  let fired = fired_counters () in
  let n0 = H.intern t0 in
  let max_size = n0.H.nsize + options.max_growth in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [ n0 ] in
  let queue = Queue.create () in
  Hashtbl.replace seen n0.H.id ();
  Queue.add n0 queue;
  let count = ref 1 in
  let exercised = ref SSet.empty in
  let truncated = ref false in
  while (not (Queue.is_empty queue)) && !count < options.max_trees do
    let n = Queue.pop queue in
    List.iter
      (fun (name, n') ->
        exercised := SSet.add name !exercised;
        if n'.H.nsize <= max_size && not (Hashtbl.mem seen n'.H.id) then begin
          if !count < options.max_trees then begin
            Hashtbl.replace seen n'.H.id ();
            order := n' :: !order;
            Queue.add n' queue;
            Obs.Metrics.incr (fired name);
            Obs.Metrics.gauge_max queue_depth_gauge
              (float_of_int (Queue.length queue));
            incr count
          end
          else
            (* A novel tree was dropped on the floor: the closure is
               truncated, whatever the queue looks like afterwards. *)
            truncated := true
        end)
      (tree_rewrites rw n)
  done;
  let truncated = !truncated || not (Queue.is_empty queue) in
  Obs.Metrics.add explored_counter !count;
  Obs.Metrics.gauge_set hashcons_gauge (float_of_int (H.live_nodes ()));
  if Obs.Metrics.enabled () then begin
    (* Occupancy gauges: table *shape*, sampled once per explore (both
       snapshots scan buckets, so keep them off the rewrite loop). *)
    let occ = H.occupancy () in
    Obs.Metrics.gauge_set
      (Obs.Metrics.gauge "relalg.hashcons.load_factor")
      occ.H.load_factor;
    Obs.Metrics.gauge_max
      (Obs.Metrics.gauge "relalg.hashcons.longest_chain")
      (float_of_int occ.H.longest_chain);
    Obs.Metrics.gauge_max
      (Obs.Metrics.gauge "optimizer.rewrite_memo.entries")
      (float_of_int (Hashtbl.length rw.rw_memo));
    let ms = Hashtbl.stats rw.rw_memo in
    Obs.Metrics.gauge_max
      (Obs.Metrics.gauge "optimizer.rewrite_memo.longest_chain")
      (float_of_int ms.Hashtbl.max_bucket_length)
  end;
  if truncated then begin
    Obs.Metrics.incr exhausted_counter;
    Obs.Trace.instant "explore.budget_exhausted"
      ~args:[ ("max_trees", Obs.Json.Int options.max_trees) ]
  end;
  { nodes = List.rev !order; logical_exercised = !exercised; count = !count; truncated }

(* ------------------------------------------------------------------ *)
(* Implementation (costing)                                            *)
(* ------------------------------------------------------------------ *)

let implementation_rule_names =
  [ "GetToTableScan"; "SelectToFilter"; "ProjectToComputeScalar";
    "JoinToNestedLoops"; "JoinToHashJoin"; "JoinToMergeJoin";
    "GbAggToHashAggregate"; "GbAggToStreamAggregate"; "SortToSort";
    "DistinctToHashDistinct"; "UnionAllToConcat"; "UnionToHashUnion";
    "IntersectToHashIntersect"; "ExceptToHashExcept"; "LimitToLimit" ]

let implementation_rule_set = SSet.of_list implementation_rule_names

type planner = {
  catalog : Storage.Catalog.t;
  est : Card.t;
  cache : (int, (Physical.t * float) option) Hashtbl.t;
      (* hashcons id -> best plan *)
  oid_cache : (int, Ident.Set.t) Hashtbl.t;  (* hashcons id -> output idents *)
  impl_disabled : SSet.t;
  mutable impl_exercised : SSet.t;
  memo_hits : Obs.Metrics.counter;
  memo_misses : Obs.Metrics.counter;
}

let log2 x = Float.max 1.0 (Float.log (x +. 2.0) /. Float.log 2.0)

let output_idents p (n : H.node) =
  match Hashtbl.find_opt p.oid_cache n.H.id with
  | Some s -> s
  | None ->
    let s = Props.output_idents p.catalog n.H.repr in
    Hashtbl.replace p.oid_cache n.H.id s;
    s

(* Paired equi-join keys and the residual predicate. *)
let equi_keys p pred left right =
  let lids = output_idents p left in
  let rids = output_idents p right in
  let keys, residual =
    List.fold_left
      (fun (keys, residual) conjunct ->
        match conjunct with
        | S.Cmp (S.Eq, S.Col a, S.Col b)
          when Ident.Set.mem a lids && Ident.Set.mem b rids ->
          ((a, b) :: keys, residual)
        | S.Cmp (S.Eq, S.Col a, S.Col b)
          when Ident.Set.mem b lids && Ident.Set.mem a rids ->
          ((b, a) :: keys, residual)
        | c -> (keys, c :: residual))
      ([], []) (S.conjuncts pred)
  in
  (List.rev keys, S.conj (List.rev residual))

let rec plan p (n : H.node) : (Physical.t * float) option =
  match Hashtbl.find_opt p.cache n.H.id with
  | Some r ->
    Obs.Metrics.incr p.memo_hits;
    r
  | None ->
    Obs.Metrics.incr p.memo_misses;
    (* Seed the cache to guard against cycles (none expected). *)
    Hashtbl.replace p.cache n.H.id None;
    let r = plan_uncached p n in
    Hashtbl.replace p.cache n.H.id r;
    r

and alternative p name (mk : unit -> (Physical.t * float) option) =
  if SSet.mem name p.impl_disabled then None
  else
    match mk () with
    | Some _ as r ->
      p.impl_exercised <- SSet.add name p.impl_exercised;
      r
    | None -> None

and plan_uncached p (n : H.node) : (Physical.t * float) option =
  let rows m = Card.rows_node p.est m in
  let kid i = n.H.kids.(i) in
  let alts : (Physical.t * float) option list =
    match n.H.repr with
    | L.Get { table; alias } ->
      [ alternative p "GetToTableScan" (fun () ->
            Some (Physical.TableScan { table; alias }, rows n)) ]
    | L.Filter { pred; _ } ->
      let child = kid 0 in
      [ alternative p "SelectToFilter" (fun () ->
            Option.map
              (fun (c, cost) ->
                (Physical.FilterOp { pred; child = c }, cost +. (0.2 *. rows child)))
              (plan p child)) ]
    | L.Project { cols; _ } ->
      let child = kid 0 in
      [ alternative p "ProjectToComputeScalar" (fun () ->
            Option.map
              (fun (c, cost) ->
                (Physical.ComputeScalar { cols; child = c }, cost +. (0.2 *. rows child)))
              (plan p child)) ]
    | L.Join { kind; pred; _ } ->
      let left = kid 0 and right = kid 1 in
      let nl = rows left and nr = rows right and nout = rows n in
      let keys, residual = equi_keys p pred left right in
      let nested =
        alternative p "JoinToNestedLoops" (fun () ->
            match (plan p left, plan p right) with
            | Some (pl, cl), Some (pr, cr) ->
              Some
                ( Physical.NestedLoopsJoin { kind; pred; left = pl; right = pr },
                  cl +. (nl *. cr) +. (0.05 *. nl *. nr) +. (0.1 *. nout) )
            | _ -> None)
      in
      let hash =
        if keys = [] then None
        else
          alternative p "JoinToHashJoin" (fun () ->
              match (plan p left, plan p right) with
              | Some (pl, cl), Some (pr, cr) ->
                Some
                  ( Physical.HashJoin
                      { kind;
                        left_keys = List.map fst keys;
                        right_keys = List.map snd keys;
                        residual;
                        left = pl;
                        right = pr },
                    cl +. cr +. (1.5 *. (nl +. nr)) +. (0.1 *. nout) )
              | _ -> None)
      in
      let merge =
        if keys = [] || kind <> L.Inner then None
        else
          alternative p "JoinToMergeJoin" (fun () ->
              match (plan p left, plan p right) with
              | Some (pl, cl), Some (pr, cr) ->
                let sort_keys ids = List.map (fun id -> (id, L.Asc)) ids in
                let sorted_l =
                  Physical.SortOp { keys = sort_keys (List.map fst keys); child = pl }
                in
                let sorted_r =
                  Physical.SortOp { keys = sort_keys (List.map snd keys); child = pr }
                in
                Some
                  ( Physical.MergeJoin
                      { left_keys = List.map fst keys;
                        right_keys = List.map snd keys;
                        residual;
                        left = sorted_l;
                        right = sorted_r },
                    cl +. cr
                    +. (nl *. log2 nl)
                    +. (nr *. log2 nr)
                    +. nl +. nr +. (0.1 *. nout) )
              | _ -> None)
      in
      [ nested; hash; merge ]
    | L.GroupBy { keys; aggs; _ } ->
      let child = kid 0 in
      let nc = rows child in
      let hash =
        alternative p "GbAggToHashAggregate" (fun () ->
            Option.map
              (fun (c, cost) ->
                (Physical.HashAggregate { keys; aggs; child = c }, cost +. (1.5 *. nc)))
              (plan p child))
      in
      let stream =
        if keys = [] then None
        else
          alternative p "GbAggToStreamAggregate" (fun () ->
              Option.map
                (fun (c, cost) ->
                  let sorted =
                    Physical.SortOp
                      { keys = List.map (fun k -> (k, L.Asc)) keys; child = c }
                  in
                  ( Physical.StreamAggregate { keys; aggs; child = sorted },
                    cost +. (nc *. log2 nc) +. nc ))
                (plan p child))
      in
      [ hash; stream ]
    | L.UnionAll _ ->
      [ alternative p "UnionAllToConcat" (fun () ->
            match (plan p (kid 0), plan p (kid 1)) with
            | Some (pa, ca), Some (pb, cb) -> Some (Physical.Concat (pa, pb), ca +. cb)
            | _ -> None) ]
    | L.Union _ ->
      [ alternative p "UnionToHashUnion" (fun () ->
            match (plan p (kid 0), plan p (kid 1)) with
            | Some (pa, ca), Some (pb, cb) ->
              Some
                ( Physical.HashUnion (pa, pb),
                  ca +. cb +. (1.5 *. (rows (kid 0) +. rows (kid 1))) )
            | _ -> None) ]
    | L.Intersect _ ->
      [ alternative p "IntersectToHashIntersect" (fun () ->
            match (plan p (kid 0), plan p (kid 1)) with
            | Some (pa, ca), Some (pb, cb) ->
              Some
                ( Physical.HashIntersect (pa, pb),
                  ca +. cb +. (1.5 *. (rows (kid 0) +. rows (kid 1))) )
            | _ -> None) ]
    | L.Except _ ->
      [ alternative p "ExceptToHashExcept" (fun () ->
            match (plan p (kid 0), plan p (kid 1)) with
            | Some (pa, ca), Some (pb, cb) ->
              Some
                ( Physical.HashExcept (pa, pb),
                  ca +. cb +. (1.5 *. (rows (kid 0) +. rows (kid 1))) )
            | _ -> None) ]
    | L.Distinct _ ->
      let child = kid 0 in
      [ alternative p "DistinctToHashDistinct" (fun () ->
            Option.map
              (fun (c, cost) -> (Physical.HashDistinct c, cost +. (1.5 *. rows child)))
              (plan p child)) ]
    | L.Sort { keys; _ } ->
      let child = kid 0 in
      [ alternative p "SortToSort" (fun () ->
            Option.map
              (fun (c, cost) ->
                let nc = rows child in
                (Physical.SortOp { keys; child = c }, cost +. (nc *. log2 nc)))
              (plan p child)) ]
    | L.Limit { count; _ } ->
      let child = kid 0 in
      [ alternative p "LimitToLimit" (fun () ->
            Option.map
              (fun (c, cost) ->
                (Physical.LimitOp { count; child = c }, cost +. float_of_int count))
              (plan p child)) ]
  in
  List.fold_left
    (fun best alt ->
      match (best, alt) with
      | None, x | x, None -> x
      | (Some (_, cb) as b), (Some (_, ca) as a) -> if ca < cb then a else b)
    None alts

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let make_planner catalog options =
  { catalog;
    est = Card.create catalog;
    cache = Hashtbl.create 1024;
    oid_cache = Hashtbl.create 1024;
    impl_disabled = options.disabled;
    impl_exercised = SSet.empty;
    memo_hits = Obs.Metrics.counter "optimizer.memo.hits";
    memo_misses = Obs.Metrics.counter "optimizer.memo.misses" }

let optimize ?(options = default_options) ?(rules = Rules.all) catalog t0 =
  match Props.validate catalog t0 with
  | Error e -> Error ("invalid input tree: " ^ e)
  | Ok () ->
    let exploration =
      Obs.Trace.with_span "engine.explore"
        ~args:[ ("max_trees", Obs.Json.Int options.max_trees) ]
        (fun () -> explore ~options ~rules catalog t0)
    in
    let planner = make_planner catalog options in
    let best =
      Obs.Trace.with_span "engine.cost"
        ~args:[ ("trees", Obs.Json.Int exploration.count) ]
        (fun () ->
          List.fold_left
            (fun best node ->
              match plan planner node with
              | None -> best
              | Some (phys, cost) -> (
                match best with
                | Some (_, _, best_cost) when best_cost <= cost -> best
                | _ -> Some (node, phys, cost)))
            None exploration.nodes)
    in
    (match best with
    | None -> Error "no physical plan (are implementation rules disabled?)"
    | Some (best_node, plan, cost) ->
      Ok
        { best_logical = best_node.H.repr;
          plan;
          cost;
          exercised = exploration.logical_exercised;
          impl_exercised = planner.impl_exercised;
          trees_explored = exploration.count;
          budget_truncated = exploration.truncated })

let ruleset ?(options = default_options) ?(rules = Rules.all) catalog t0 =
  match Props.validate catalog t0 with
  | Error e -> Error ("invalid input tree: " ^ e)
  | Ok () ->
    let exploration =
      Obs.Trace.with_span "engine.explore"
        ~args:[ ("max_trees", Obs.Json.Int options.max_trees) ]
        (fun () -> explore ~options ~rules catalog t0)
    in
    Ok exploration.logical_exercised

(* ------------------------------------------------------------------ *)
(* Shared exploration (monotonicity at the engine level, paper §5)      *)
(* ------------------------------------------------------------------ *)

(* A tree of the closure is tagged with the *minimal* sets of rule names
   used along its known derivation paths (an antichain under inclusion:
   supersets are pruned, and subsets subsume). [Cost(q, ¬R)] then only
   needs the trees with at least one tag set disjoint from R — no
   re-exploration. The antichain is capped; dropping an incomparable tag
   set is conservative (a tree may be *excluded* from some ¬R closure it
   belongs to, never wrongly included), which errs exactly in the
   direction the paper's well-behavedness property (§5.2) already
   allows. *)
let max_tagsets = 16

(* Merge [s] into the minimal antichain [sets]; true iff it changed. *)
let merge_tagset sets s =
  if List.exists (fun s0 -> SSet.subset s0 s) !sets then false
  else begin
    let remaining = List.filter (fun s0 -> not (SSet.subset s s0)) !sets in
    if List.length remaining >= max_tagsets then false
    else begin
      sets := s :: remaining;
      true
    end
  end

type shared = {
  sh_catalog : Storage.Catalog.t;
  sh_options : options;
  sh_nodes : (H.node * SSet.t list) array;  (* insertion order; head = input *)
  sh_truncated : bool;
  sh_exercised : SSet.t;
  sh_planners : (string, planner) Hashtbl.t;
      (* one planner per distinct implementation-disabled subset; for the
         compression workload (logical targets only) all [shared_cost]
         calls share a single planner and therefore a single plan memo *)
}

let explore_shared ?(options = default_options) ?(rules = Rules.all) catalog t0 =
  match Props.validate catalog t0 with
  | Error e -> Error ("invalid input tree: " ^ e)
  | Ok () ->
    Obs.Metrics.incr (Obs.Metrics.counter "optimizer.shared.explorations");
    Obs.Trace.with_span "engine.explore_shared"
      ~args:[ ("max_trees", Obs.Json.Int options.max_trees) ]
    @@ fun () ->
    let rw = make_rewriter catalog options rules in
    let fired = fired_counters () in
    let n0 = H.intern t0 in
    let max_size = n0.H.nsize + options.max_growth in
    let tags : (int, SSet.t list ref) Hashtbl.t = Hashtbl.create 256 in
    let order = ref [ n0 ] in
    let queue = Queue.create () in
    Hashtbl.replace tags n0.H.id (ref [ SSet.empty ]);
    Queue.add n0 queue;
    let count = ref 1 in
    let exercised = ref SSet.empty in
    let truncated = ref false in
    (* Unlike [explore], the loop drains the queue even after the tree
       budget is hit: re-enqueued trees propagate tag refinements (a
       cheaper derivation path discovered later), and processing them is
       a memo replay, not new rule work. Novel trees are still rejected
       once [max_trees] is reached, so the closure itself matches
       [explore]'s exactly. *)
    while not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      let my_tags = !(Hashtbl.find tags n.H.id) in
      List.iter
        (fun (name, n') ->
          exercised := SSet.add name !exercised;
          if n'.H.nsize <= max_size then begin
            match Hashtbl.find_opt tags n'.H.id with
            | None ->
              if !count < options.max_trees then begin
                let sets = ref [] in
                List.iter
                  (fun s -> ignore (merge_tagset sets (SSet.add name s)))
                  my_tags;
                Hashtbl.replace tags n'.H.id sets;
                order := n' :: !order;
                Queue.add n' queue;
                Obs.Metrics.incr (fired name);
                incr count
              end
              else truncated := true
            | Some existing ->
              let changed =
                List.fold_left
                  (fun ch s -> merge_tagset existing (SSet.add name s) || ch)
                  false my_tags
              in
              (* Tag refinement: successors must see the new, smaller
                 derivation sets. Terminates — the family of derivable
                 tag sets only ever grows downward in the subset order. *)
              if changed then Queue.add n' queue
          end)
        (tree_rewrites rw n)
    done;
    let nodes =
      Array.of_list
        (List.rev_map (fun n -> (n, !(Hashtbl.find tags n.H.id))) !order)
    in
    Ok
      { sh_catalog = catalog;
        sh_options = options;
        sh_nodes = nodes;
        sh_truncated = !truncated;
        sh_exercised = !exercised;
        sh_planners = Hashtbl.create 4 }

let shared_planner sh disabled =
  let impl_dis = SSet.inter disabled implementation_rule_set in
  let key = String.concat "\x00" (SSet.elements impl_dis) in
  match Hashtbl.find_opt sh.sh_planners key with
  | Some p -> p
  | None ->
    let p = make_planner sh.sh_catalog { sh.sh_options with disabled = impl_dis } in
    Hashtbl.replace sh.sh_planners key p;
    p

let shared_cost sh ~disabled =
  Obs.Metrics.incr (Obs.Metrics.counter "optimizer.shared.cost_passes");
  let planner = shared_planner sh disabled in
  let best =
    Array.fold_left
      (fun best (n, tag_sets) ->
        if List.exists (fun s -> SSet.disjoint s disabled) tag_sets then
          match plan planner n with
          | None -> best
          | Some (_, c) -> (
            match best with Some b when b <= c -> best | _ -> Some c)
        else best)
      None sh.sh_nodes
  in
  match best with
  | Some c -> Ok c
  | None -> Error "no physical plan (are implementation rules disabled?)"

let shared_truncated sh = sh.sh_truncated
let shared_exercised sh = sh.sh_exercised
let shared_trees sh = Array.length sh.sh_nodes
