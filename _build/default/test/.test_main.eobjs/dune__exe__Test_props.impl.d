test/test_props.ml: Aggregate Alcotest Ident List Logical Props Relalg Result Scalar Storage
