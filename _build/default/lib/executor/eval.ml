open Storage
module S = Relalg.Scalar

type env = Relalg.Ident.t -> Value.t

let of_bool3 = function None -> Value.Null | Some b -> Value.Bool b
let bad_bool v = invalid_arg ("Eval: expected boolean, got " ^ Value.to_sql v)

let as_bool3 = function
  | (Value.Bool _ | Value.Null) as v -> v
  | v -> bad_bool v

let rec scalar env (e : S.t) : Value.t =
  match e with
  | S.Const v -> v
  | S.Col id -> env id
  | S.Neg a -> Value.neg (scalar env a)
  | S.Arith (op, a, b) ->
    let f =
      match op with
      | S.Add -> Value.add
      | S.Sub -> Value.sub
      | S.Mul -> Value.mul
      | S.Div -> Value.div
    in
    f (scalar env a) (scalar env b)
  | S.Cmp (op, a, b) ->
    let va = scalar env a and vb = scalar env b in
    of_bool3
      (match op with
      | S.Eq -> Value.eq_sql va vb
      | S.Ne -> Option.map not (Value.eq_sql va vb)
      | S.Lt -> Value.lt_sql va vb
      | S.Le -> Value.le_sql va vb
      | S.Gt -> Value.lt_sql vb va
      | S.Ge -> Value.le_sql vb va)
  | S.And (a, b) -> (
    (* Kleene logic: false dominates NULL. *)
    match scalar env a with
    | Value.Bool false -> Value.Bool false
    | Value.Bool true -> as_bool3 (scalar env b)
    | Value.Null -> (
      match scalar env b with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true | Value.Null -> Value.Null
      | v -> bad_bool v)
    | v -> bad_bool v)
  | S.Or (a, b) -> (
    match scalar env a with
    | Value.Bool true -> Value.Bool true
    | Value.Bool false -> as_bool3 (scalar env b)
    | Value.Null -> (
      match scalar env b with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false | Value.Null -> Value.Null
      | v -> bad_bool v)
    | v -> bad_bool v)
  | S.Not a -> (
    match scalar env a with
    | Value.Bool b -> Value.Bool (not b)
    | Value.Null -> Value.Null
    | v -> bad_bool v)
  | S.IsNull a -> Value.Bool (Value.is_null (scalar env a))
  | S.IsNotNull a -> Value.Bool (not (Value.is_null (scalar env a)))

let pred_true env p =
  match scalar env p with
  | Value.Bool true -> true
  | Value.Bool false | Value.Null -> false
  | v -> bad_bool v
