(** Runtime values with SQL semantics.

    [Null] is a first-class value; SQL comparisons on values return
    ['a option] where [None] encodes the SQL three-valued-logic UNKNOWN.
    A separate {e total} order ([compare_total], NULL sorts first) is used
    for sorting and result comparison. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)

val type_of : t -> Datatype.t option
(** [None] for [Null]. *)

val is_null : t -> bool

val equal : t -> t -> bool
(** Structural equality ([Null] equals [Null]); used for plan/test
    bookkeeping, not for SQL predicate evaluation. *)

val compare_total : t -> t -> int
(** Total order for ORDER BY and result normalization: NULL first, then by
    type, then by value. [Int] and [Float] compare numerically. *)

val hash : t -> int

val cmp_sql : t -> t -> int option
(** SQL comparison: [None] if either side is NULL, otherwise
    [Some (-1|0|1)]. Numeric types are promoted. Raises [Invalid_argument]
    on incomparable types (e.g. string vs int) — the binder prevents this. *)

val eq_sql : t -> t -> bool option
val lt_sql : t -> t -> bool option
val le_sql : t -> t -> bool option

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Arithmetic with NULL propagation and int/float promotion. Integer
    division by zero and float division by zero yield [Null] (the substrate
    never aborts query execution on data). *)

val neg : t -> t

val to_sql : t -> string
(** SQL literal spelling (strings quoted and escaped, dates as
    [DATE 'YYYY-MM-DD'], NULL as [NULL]). *)

val pp : Format.formatter -> t -> unit

(** Calendar helpers for [Date]. *)

val date_of_ymd : int -> int -> int -> int
(** [date_of_ymd y m d] is days since epoch (proleptic Gregorian). *)

val ymd_of_date : int -> int * int * int
val date_to_string : int -> string
(** ISO "YYYY-MM-DD". *)
