lib/core/faults.mli: Optimizer
