type t = { n_jobs : int }

let create ?jobs () =
  let n_jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  if n_jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  { n_jobs }

let sequential = { n_jobs = 1 }
let jobs t = t.n_jobs

let tasks_c = lazy (Obs.Metrics.counter "par.tasks")
let spawns_c = lazy (Obs.Metrics.counter "par.domains_spawned")

(* ------------------------------------------------------------------ *)
(* Attribution                                                         *)
(* ------------------------------------------------------------------ *)

(* Each worker's share of a map's wall time decomposes into named
   buckets: [busy] (running tasks), [steal] (claiming task indices from
   the shared cursor), [merge_wait] (the caller joining helpers), and
   [idle] (the residual: spawn latency, waiting for the slowest worker,
   scheduler gaps). Per worker busy + steal + idle (+ merge_wait) equals
   the map's wall clock by construction, so the buckets always account
   for 100% of jobs x wall — the point is how the non-busy share splits.

   One record per worker, written only by that worker before its domain
   is joined and read only after — same plain-write discipline as the
   result slots. *)
type worker_stats = {
  mutable busy_ns : float;
  mutable steal_ns : float;
  mutable tasks : int;
}

let worker_label w = "w" ^ string_of_int w

let record_attribution stats ~t_start ~t_end ~merge_wait_ns =
  let wall = Obs.Clock.ns_between t_start t_end in
  Array.iteri
    (fun w (st : worker_stats) ->
      let merge = if w = 0 then merge_wait_ns else 0.0 in
      let idle = Float.max 0.0 (wall -. st.busy_ns -. st.steal_ns -. merge) in
      if Obs.Metrics.enabled () then begin
        let c name = Obs.Metrics.counter ~label:(worker_label w) name in
        Obs.Metrics.add (c "par.pool.busy_ns") (int_of_float st.busy_ns);
        Obs.Metrics.add (c "par.pool.steal_ns") (int_of_float st.steal_ns);
        Obs.Metrics.add (c "par.pool.idle_ns") (int_of_float idle);
        Obs.Metrics.add (c "par.pool.merge_wait_ns") (int_of_float merge);
        Obs.Metrics.add (c "par.pool.wall_ns") (int_of_float wall);
        Obs.Metrics.add (c "par.pool.tasks") st.tasks
      end;
      Obs.Trace.instant "par.worker"
        ~args:
          [ ("w", Obs.Json.Int w);
            ("tasks", Obs.Json.Int st.tasks);
            ("busy_ns", Obs.Json.Float st.busy_ns);
            ("steal_ns", Obs.Json.Float st.steal_ns);
            ("idle_ns", Obs.Json.Float idle);
            ("merge_wait_ns", Obs.Json.Float merge) ])
    stats

(* One slot per task; each slot is written by exactly one domain (the
   atomic cursor hands out indices uniquely) and read only after every
   domain has been joined, so plain (word-sized) writes suffice. *)
let map_array pool f arr =
  let n = Array.length arr in
  if pool.n_jobs = 1 || n <= 1 then Array.map f arr
  else
    Obs.Trace.with_span "par.map"
      ~args:[ ("jobs", Obs.Json.Int pool.n_jobs); ("tasks", Obs.Json.Int n) ]
    @@ fun () ->
    Obs.Metrics.add (Lazy.force tasks_c) n;
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let helpers = min (pool.n_jobs - 1) (n - 1) in
    let stats =
      Array.init (helpers + 1) (fun _ ->
          { busy_ns = 0.0; steal_ns = 0.0; tasks = 0 })
    in
    let t_start = Obs.Clock.now_ns () in
    let run_tasks w () =
      let st = stats.(w) in
      let rec loop () =
        let t0 = Obs.Clock.now_ns () in
        let i = Atomic.fetch_and_add cursor 1 in
        let t1 = Obs.Clock.now_ns () in
        st.steal_ns <- st.steal_ns +. Obs.Clock.ns_between t0 t1;
        if i < n then begin
          Obs.Trace.counter "par.queue_depth"
            [ ("pending", float_of_int (max 0 (n - i - 1))) ];
          let r =
            match f arr.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          st.busy_ns <- st.busy_ns +. Obs.Clock.ns_between t1 (Obs.Clock.now_ns ());
          st.tasks <- st.tasks + 1;
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    Obs.Metrics.add (Lazy.force spawns_c) helpers;
    let domains = Array.init helpers (fun h -> Domain.spawn (run_tasks (h + 1))) in
    run_tasks 0 ();
    let t_join = Obs.Clock.now_ns () in
    Array.iter Domain.join domains;
    let t_end = Obs.Clock.now_ns () in
    record_attribution stats ~t_start ~t_end
      ~merge_wait_ns:(Obs.Clock.ns_between t_join t_end);
    (* Merge in task order; a failure surfaces as the lowest-index
       exception, independent of which domain hit it first. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results

let map_list pool f xs = Array.to_list (map_array pool f (Array.of_list xs))
let init pool n f = map_array pool f (Array.init n Fun.id)
