(** Bug signatures: target rule(s) × divergence kind × structural shape of
    the minimized reproducer.

    The shape component is {!Relalg.Logical.shape_hash}, so two bugs whose
    minimized trees differ only in literal constants, aliases or column
    identity — the axes delta reduction cannot always canonicalize — share
    a signature and dedup together. *)

type t = { target : string; kind : Divergence.kind; shape : int }

val make : Core.Suite.target -> Divergence.kind -> Relalg.Logical.t -> t
(** [make target kind reduced]: signature of a minimized reproducer. *)

val key : t -> string
(** Stable filename-safe spelling ["<target>-<kind>-<shape hex>"]; the
    dedup key and the corpus case id. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
