open Storage

(* Rows are an array; [norm] memoizes the sorted-by-[compare_rows] copy so
   a result that takes part in several bag comparisons (baseline vs many
   rule-off variants, reduction candidates, ...) is sorted exactly once.
   The rows array itself is never mutated: [normalized] sorts a copy, and
   a TableScan may hand the catalog's own row array to [make]. *)
type t = {
  cols : Relalg.Ident.t array;
  rows : Value.t array array;
  mutable norm : Value.t array array option;
}

let make cols rows = { cols; rows; norm = None }

let cols t = t.cols
let rows t = t.rows
let row_count t = Array.length t.rows

let compare_rows (a : Value.t array) (b : Value.t array) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Stdlib.compare (Array.length a) (Array.length b)
    else
      match Value.compare_total a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let normalized t =
  match t.norm with
  | Some sorted -> sorted
  | None ->
    let sorted = Array.copy t.rows in
    Array.sort compare_rows sorted;
    t.norm <- Some sorted;
    sorted

let same_cols a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2 Relalg.Ident.equal a.cols b.cols

let equal_bag a b =
  same_cols a b
  && Array.length a.rows = Array.length b.rows
  &&
  let ra = normalized a and rb = normalized b in
  let n = Array.length ra in
  let rec go i = i = n || (compare_rows ra.(i) rb.(i) = 0 && go (i + 1)) in
  go 0

type diff = {
  missing_count : int;
  extra_count : int;
  missing_sample : Value.t array list;
  extra_sample : Value.t array list;
}

let no_diff =
  { missing_count = 0; extra_count = 0; missing_sample = []; extra_sample = [] }

(* Multiset difference by sorted merge over the cached normal forms: a row
   appearing m times in [expected] and n times in [actual] contributes
   max(0, m-n) to missing and max(0, n-m) to extra. *)
let bag_diff ?(samples = 3) expected actual =
  let ra = normalized expected and rb = normalized actual in
  let na = Array.length ra and nb = Array.length rb in
  let mc = ref 0 and ec = ref 0 in
  let ms = ref [] and es = ref [] in
  let take_sample sample row =
    if List.length !sample < samples then sample := row :: !sample
  in
  let i = ref 0 and j = ref 0 in
  while !i < na || !j < nb do
    if !i >= na then (
      incr ec;
      take_sample es rb.(!j);
      incr j)
    else if !j >= nb then (
      incr mc;
      take_sample ms ra.(!i);
      incr i)
    else
      let c = compare_rows ra.(!i) rb.(!j) in
      if c = 0 then (incr i; incr j)
      else if c < 0 then (
        incr mc;
        take_sample ms ra.(!i);
        incr i)
      else (
        incr ec;
        take_sample es rb.(!j);
        incr j)
  done;
  { missing_count = !mc;
    extra_count = !ec;
    missing_sample = List.rev !ms;
    extra_sample = List.rev !es }

(* One normalized pass serving both the equality check and the diff —
   callers previously paid [equal_bag] and then [bag_diff], each of which
   re-sorted both row lists from scratch. *)
let diverges ?samples expected actual =
  if not (same_cols expected actual) then Some (bag_diff ?samples expected actual)
  else
    let d = bag_diff ?samples expected actual in
    if d.missing_count = 0 && d.extra_count = 0 then None else Some d

let row_to_sql row =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_sql row)) ^ ")"

let diff_summary d =
  if d.missing_count = 0 && d.extra_count = 0 then "results identical"
  else
    let side count sample what =
      if count = 0 then []
      else
        [ Printf.sprintf "%d row(s) %s%s" count what
            (match sample with
            | [] -> ""
            | rows -> ", e.g. " ^ String.concat " " (List.map row_to_sql rows)) ]
    in
    String.concat "; "
      (side d.missing_count d.missing_sample "only with rule on"
      @ side d.extra_count d.extra_sample "only with rule off")

let first_difference a b =
  if not (same_cols a b) then Some (None, None)
  else
    let ra = normalized a and rb = normalized b in
    let na = Array.length ra and nb = Array.length rb in
    let rec go i =
      if i >= na && i >= nb then None
      else if i >= nb then Some (Some ra.(i), None)
      else if i >= na then Some (None, Some rb.(i))
      else if compare_rows ra.(i) rb.(i) = 0 then go (i + 1)
      else Some (Some ra.(i), Some rb.(i))
    in
    go 0

let pp fmt t =
  Format.fprintf fmt "@[<v>%s  (%d rows)"
    (String.concat ", "
       (Array.to_list (Array.map Relalg.Ident.to_sql t.cols)))
    (row_count t);
  let shown = min 20 (Array.length t.rows) in
  for i = 0 to shown - 1 do
    Format.fprintf fmt "@,(%s)"
      (String.concat ", "
         (Array.to_list (Array.map Value.to_sql t.rows.(i))))
  done;
  if row_count t > 20 then Format.fprintf fmt "@,...";
  Format.fprintf fmt "@]"
