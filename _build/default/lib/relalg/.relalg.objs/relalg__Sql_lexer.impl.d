lib/relalg/sql_lexer.ml: Buffer List Printf String
