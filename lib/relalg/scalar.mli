(** Scalar expressions (including boolean predicates).

    Predicates are boolean-typed scalars; SQL three-valued logic is applied
    at evaluation time (in the executor), not here. *)

type arith_op = Add | Sub | Mul | Div
type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Storage.Value.t
  | Col of Ident.t
  | Neg of t
  | Arith of arith_op * t * t
  | Cmp of cmp_op * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | IsNull of t
  | IsNotNull of t

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Full-depth structural hash, consistent with {!equal}. Unlike
    [Hashtbl.hash] it never truncates, so deep expressions differing only
    near the leaves hash differently. *)

val hash_combine : int -> int -> int
(** The hash-mixing step used by the structural hashes of this library
    (shared so composite hashes stay consistent). *)

val shape_hash : t -> int
(** Hash of the expression's constructor skeleton only: constants
    contribute their type (not their value) and column references a fixed
    tag. Expressions that differ only in literals or column identity share
    a shape — the granularity of triage bug signatures. *)

val true_ : t
val col : Ident.t -> t
val int : int -> t
val eq : t -> t -> t
val conj : t list -> t
(** Conjunction of a possibly-empty list ([true_] for []). *)

val conjuncts : t -> t list
(** Flattens nested [And]s. [conjuncts true_ = []]. *)

val columns : t -> Ident.Set.t
(** All column identifiers referenced. *)

val rename : (Ident.t -> Ident.t) -> t -> t
(** Applies a column substitution. *)

val is_null_rejecting : t -> Ident.Set.t -> bool
(** [is_null_rejecting p cols] is [true] when [p] is guaranteed to evaluate
    to false-or-unknown whenever every column of [cols] that [p] references
    is NULL, and [p] references at least one column of [cols]. This is a
    conservative syntactic check used by outer-join simplification. *)

type env = Ident.t -> Storage.Datatype.t option
(** Typing environment: type of each in-scope column. *)

val type_of : env -> t -> (Storage.Datatype.t, string) result
(** Type checker. Comparisons require comparable operand types; arithmetic
    requires numeric operands; logical connectives require booleans. [Const
    Null] takes the type of its context, reported here as the other
    operand's type (a bare NULL literal with no context types as TBool). *)

val cmp_op_to_sql : cmp_op -> string
val pp : Format.formatter -> t -> unit
val to_sql : t -> string
