lib/optimizer/rule.mli: Pattern Relalg Storage
