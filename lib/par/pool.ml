type t = { n_jobs : int }

let create ?jobs () =
  let n_jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  if n_jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
  { n_jobs }

let sequential = { n_jobs = 1 }
let jobs t = t.n_jobs

let tasks_c = lazy (Obs.Metrics.counter "par.tasks")
let spawns_c = lazy (Obs.Metrics.counter "par.domains_spawned")

(* One slot per task; each slot is written by exactly one domain (the
   atomic cursor hands out indices uniquely) and read only after every
   domain has been joined, so plain (word-sized) writes suffice. *)
let map_array pool f arr =
  let n = Array.length arr in
  if pool.n_jobs = 1 || n <= 1 then Array.map f arr
  else
    Obs.Trace.with_span "par.map"
      ~args:[ ("jobs", Obs.Json.Int pool.n_jobs); ("tasks", Obs.Json.Int n) ]
    @@ fun () ->
    Obs.Metrics.add (Lazy.force tasks_c) n;
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let run_tasks () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let r =
            match f arr.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (pool.n_jobs - 1) (n - 1) in
    Obs.Metrics.add (Lazy.force spawns_c) helpers;
    let domains = Array.init helpers (fun _ -> Domain.spawn run_tasks) in
    run_tasks ();
    Array.iter Domain.join domains;
    (* Merge in task order; a failure surfaces as the lowest-index
       exception, independent of which domain hit it first. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results

let map_list pool f xs = Array.to_list (map_array pool f (Array.of_list xs))
let init pool n f = map_array pool f (Array.init n Fun.id)
