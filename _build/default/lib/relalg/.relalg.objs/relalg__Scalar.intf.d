lib/relalg/scalar.mli: Format Ident Storage
