lib/storage/catalog.ml: Format List Map Option Schema String Table
