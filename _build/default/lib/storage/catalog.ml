module SMap = Map.Make (String)

type t = Table.t SMap.t

let empty = SMap.empty
let add t (table : Table.t) = SMap.add table.schema.name table t
let of_tables tables = List.fold_left add empty tables
let find t name = SMap.find_opt name t
let find_exn t name = SMap.find name t
let mem t name = SMap.mem name t
let table_names t = SMap.bindings t |> List.map fst
let tables t = SMap.bindings t |> List.map snd
let schemas t = tables t |> List.map (fun (tb : Table.t) -> tb.schema)

let referenced_key t (fk : Schema.foreign_key) =
  Option.map (fun (tb : Table.t) -> tb.schema) (find t fk.fk_table)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  SMap.iter
    (fun _ (tb : Table.t) ->
      Format.fprintf fmt "%a  -- %d rows@," Schema.pp tb.schema (Table.row_count tb))
    t;
  Format.fprintf fmt "@]"
