(** Test-suite execution for correctness validation (§2.3):

    for each (target, query) in a compression solution, execute [Plan(q)]
    (once per distinct query) and [Plan(q, ¬R)], and compare result bags.
    When the two plans are identical the execution is skipped — the
    results are guaranteed equal (the paper's footnote 1). *)

type bug = {
  target : Suite.target;
  query_index : int;
  query : Relalg.Logical.t;
  expected_rows : int;
  actual_rows : int;
  diff : Executor.Resultset.diff;
      (** bag-diff summary: missing/extra row counts and up to 3 sample
          rows per side, enough for triage to classify the divergence as
          row-count vs row-content *)
  detail : string;  (** {!Executor.Resultset.diff_summary} of [diff] *)
}

type report = {
  pairs_checked : int;  (** (target, query) validations performed *)
  executions : int;  (** plans actually executed *)
  skipped_identical : int;  (** validations skipped because plans matched *)
  bugs : bug list;
  errors : (string * string) list;  (** (context, message) *)
}

val run :
  ?pool:Par.Pool.t -> Framework.t -> Suite.t -> Compress.solution -> report
(** Executes the solution against the framework's catalog (with the
    framework's rule registry — inject faults via
    [Framework.create ~rules:(Faults.inject ...)] to see bugs surface).
    [pool] parallelizes the baseline executions and the per-target
    variant validations; the report (bug order, counters, everything) is
    identical for any pool size — [Par.Pool.sequential] is the
    default and the reference. *)

val pp_report : Format.formatter -> report -> unit
