lib/storage/table.mli: Format Schema Stats Value
