let on = ref false
let set_enabled b = on := b
let enabled () = !on

type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Power-of-two buckets: bucket [i] counts samples in [2^(i-1), 2^i).
   64 buckets cover anything from sub-nanosecond to ~9e18, so latencies
   in nanoseconds never clip in practice. *)
let n_buckets = 64

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  buckets : int array;
}

type instrument =
  | C of counter
  | G of gauge
  | H of histogram

let registry : (string * string option, instrument) Hashtbl.t = Hashtbl.create 64

let register key mk extract =
  match Hashtbl.find_opt registry key with
  | Some i -> extract i
  | None ->
    let v = mk () in
    Hashtbl.replace registry key v;
    extract v

let wrong_kind (name, _) = invalid_arg ("metric registered with another kind: " ^ name)

let counter ?label name =
  let key = (name, label) in
  register key
    (fun () -> C { c = 0 })
    (function C c -> c | _ -> wrong_kind key)

let gauge ?label name =
  let key = (name, label) in
  register key
    (fun () -> G { g = 0.0 })
    (function G g -> g | _ -> wrong_kind key)

let fresh_hist () =
  { count = 0;
    sum = 0.0;
    lo = Float.infinity;
    hi = Float.neg_infinity;
    buckets = Array.make n_buckets 0 }

let histogram ?label name =
  let key = (name, label) in
  register key
    (fun () -> H (fresh_hist ()))
    (function H h -> h | _ -> wrong_kind key)

(* ------------------------------------------------------------------ *)
(* Hot path                                                            *)
(* ------------------------------------------------------------------ *)

let incr c = if !on then c.c <- c.c + 1
let add c n = if !on then c.c <- c.c + n
let gauge_set g v = if !on then g.g <- v
let gauge_max g v = if !on && v > g.g then g.g <- v

let bucket_of v =
  if v < 1.0 then 0
  else
    let b = 1 + int_of_float (Float.log2 v) in
    if b >= n_buckets then n_buckets - 1 else b

let observe h v =
  if !on then begin
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1
  end

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let counter_value c = c.c
let gauge_value g = g.g

type hist_snapshot = { count : int; sum : float; min : float; max : float }

let hist_snapshot (h : histogram) =
  { count = h.count; sum = h.sum; min = h.lo; max = h.hi }

let hist_mean (h : histogram) =
  if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let hist_quantile (h : histogram) q =
  if h.count = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.count in
    let cum = ref 0 in
    let result = ref h.hi in
    (try
       for b = 0 to n_buckets - 1 do
         cum := !cum + h.buckets.(b);
         if float_of_int !cum >= rank then begin
           (* Geometric midpoint of [2^(b-1), 2^b), clamped to samples. *)
           let mid = if b = 0 then 0.5 else Float.pow 2.0 (float_of_int b -. 0.5) in
           result := Float.min h.hi (Float.max h.lo mid);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

let snapshot () =
  Hashtbl.fold
    (fun (name, label) i acc ->
      let v =
        match i with
        | C c -> Counter c.c
        | G g -> Gauge g.g
        | H h -> Histogram (hist_snapshot h)
      in
      (name, label, v) :: acc)
    registry []
  |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))

let reset () =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.0
      | H h ->
        h.count <- 0;
        h.sum <- 0.0;
        h.lo <- Float.infinity;
        h.hi <- Float.neg_infinity;
        Array.fill h.buckets 0 n_buckets 0)
    registry

let clear () = Hashtbl.reset registry
