lib/core/framework.ml: Executor List Optimizer Result Storage String
