let all : Rule.t list =
  Rules_join.rules @ Rules_select.rules @ Rules_agg.rules @ Rules_extra.rules

(* The DSL source of each DSL-backed registered rule (the join and select
   families; the agg and extra families remain closure rules). *)
let dsl_rules : (string * Dsl.Rdsl.rule) list =
  List.map (fun (r : Dsl.Rdsl.rule) -> (r.name, r)) (Rules_join.dsl @ Rules_select.dsl)

let rdsl_of name = List.assoc_opt name dsl_rules

let () =
  (* The registry is the unit of identity for the whole framework; duplicate
     names would corrupt rule tracking. *)
  let names = List.map (fun (r : Rule.t) -> r.name) all in
  let sorted = List.sort_uniq String.compare names in
  assert (List.length sorted = List.length names)

let names = List.map (fun (r : Rule.t) -> r.name) all
let count = List.length all
let find name = List.find_opt (fun (r : Rule.t) -> String.equal r.name name) all

let find_exn name =
  match find name with
  | Some r -> r
  | None -> invalid_arg ("Rules.find_exn: unknown rule " ^ name)

let nth i =
  match List.nth_opt all i with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Rules.nth: index %d out of range" i)

let pattern_xml name =
  Option.map (fun (r : Rule.t) -> Pattern.to_xml r.pattern) (find name)

let all_patterns_xml () =
  let entry (r : Rule.t) =
    Printf.sprintf "<rule name=\"%s\">%s</rule>" r.name (Pattern.to_xml r.pattern)
  in
  "<rules>" ^ String.concat "" (List.map entry all) ^ "</rules>"
