module J = Obs.Json

type catalog_spec = Micro | Tpch of float

let catalog_of_spec = function
  | Micro -> Storage.Datagen.micro ()
  | Tpch scale -> Storage.Datagen.tpch ~scale ()

let spec_name = function Micro -> "micro" | Tpch _ -> "tpch"

type meta = {
  id : string;
  target : string;
  kind : Divergence.kind;
  shape : int;
  fault : string option;
  catalog : catalog_spec;
  budget : int;
  original_nodes : int;
  reduced_nodes : int;
  steps : int;
  checks : int;
  expected_rows : int;
  actual_rows : int;
  rhs_sql : string option;
}

type case = { meta : meta; sql : string }

let target_of_name name =
  match String.split_on_char '+' name with
  | [ r ] -> Ok (Core.Suite.Single r)
  | [ a; b ] -> Ok (Core.Suite.Pair (a, b))
  | _ -> Error ("corpus: unparsable target name " ^ name)

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let meta_json m =
  J.Obj
    [ ("id", J.String m.id);
      ("target", J.String m.target);
      ("kind", J.String (Divergence.kind_name m.kind));
      ("shape", J.Int m.shape);
      ("fault", match m.fault with Some f -> J.String f | None -> J.Null);
      ("catalog", J.String (spec_name m.catalog));
      ("scale", match m.catalog with Tpch s -> J.Float s | Micro -> J.Null);
      ("budget", J.Int m.budget);
      ("original_nodes", J.Int m.original_nodes);
      ("reduced_nodes", J.Int m.reduced_nodes);
      ("steps", J.Int m.steps);
      ("checks", J.Int m.checks);
      ("expected_rows", J.Int m.expected_rows);
      ("actual_rows", J.Int m.actual_rows);
      ("rhs_sql", match m.rhs_sql with Some s -> J.String s | None -> J.Null) ]

let meta_of_json doc =
  let ( let* ) = Option.bind in
  let field name proj = Option.bind (J.member name doc) proj in
  let require err = function Some x -> Ok x | None -> Error err in
  let result =
    let* id = field "id" J.to_str in
    let* target = field "target" J.to_str in
    let* kind = Option.bind (field "kind" J.to_str) Divergence.kind_of_name in
    let* shape = field "shape" J.to_int in
    let fault = field "fault" J.to_str in
    let* catalog =
      match field "catalog" J.to_str with
      | Some "micro" -> Some Micro
      | Some "tpch" -> Option.map (fun s -> Tpch s) (field "scale" J.to_float)
      | _ -> None
    in
    let* budget = field "budget" J.to_int in
    let* original_nodes = field "original_nodes" J.to_int in
    let* reduced_nodes = field "reduced_nodes" J.to_int in
    let* steps = field "steps" J.to_int in
    let* checks = field "checks" J.to_int in
    let* expected_rows = field "expected_rows" J.to_int in
    let* actual_rows = field "actual_rows" J.to_int in
    (* Absent in corpora written before discovery existed. *)
    let rhs_sql = field "rhs_sql" J.to_str in
    Some
      { id; target; kind; shape; fault; catalog; budget; original_nodes;
        reduced_nodes; steps; checks; expected_rows; actual_rows; rhs_sql }
  in
  require "corpus: missing or ill-typed metadata field" result

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let sql_path ~dir id = Filename.concat dir (id ^ ".sql")
let json_path ~dir id = Filename.concat dir (id ^ ".json")

let save ~dir cat meta reduced =
  try
    mkdir_p dir;
    let sql = Relalg.Sql_print.to_sql cat reduced in
    write_file (sql_path ~dir meta.id) (sql ^ "\n");
    write_file (json_path ~dir meta.id) (J.to_string (meta_json meta) ^ "\n");
    Ok (json_path ~dir meta.id)
  with Sys_error e | Invalid_argument e -> Error ("corpus save: " ^ e)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error ("corpus: no such directory " ^ dir)
  else
    let entries = Array.to_list (Sys.readdir dir) in
    let metas =
      List.sort compare
        (List.filter (fun f -> Filename.check_suffix f ".json") entries)
    in
    let ( let* ) = Result.bind in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest ->
        let path = Filename.concat dir f in
        let* doc =
          Result.map_error (fun e -> path ^ ": " ^ e) (J.of_string (read_file path))
        in
        let* meta = Result.map_error (fun e -> path ^ ": " ^ e) (meta_of_json doc) in
        let sqlfile = sql_path ~dir meta.id in
        if not (Sys.file_exists sqlfile) then
          Error ("corpus: missing reproducer " ^ sqlfile)
        else go ({ meta; sql = String.trim (read_file sqlfile) } :: acc) rest
    in
    go [] metas
