lib/core/compress.mli: Framework Suite
