(** Column data types of the relational substrate. *)

type t =
  | TInt
  | TFloat
  | TString
  | TBool
  | TDate  (** stored as days since 1970-01-01 *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** SQL-ish spelling: INTEGER, DOUBLE, VARCHAR, BOOLEAN, DATE. *)

val of_string : string -> t option
(** Inverse of {!to_string} (case-insensitive). *)

val is_numeric : t -> bool
(** [true] for [TInt] and [TFloat]. *)

val pp : Format.formatter -> t -> unit
