examples/quickstart.mli:
