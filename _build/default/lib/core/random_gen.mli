(** RAGS-style stochastic query generation — the state-of-the-art baseline
    the paper compares against (§3, RANDOM): generate random valid queries
    until one happens to exercise the target rule(s). *)

val generate : ?min_ops:int -> ?max_ops:int -> Arggen.ctx -> Relalg.Logical.t
(** A random valid logical query tree with between [min_ops] (default 2)
    and [max_ops] (default 10) operators. All trees returned satisfy
    {!Relalg.Props.validate}. *)
