lib/core/suite.mli: Framework Relalg Storage
