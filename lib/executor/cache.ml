module PTbl = Optimizer.Physical.Tbl

(* Execution results keyed by the structural fingerprint of the physical
   plan. The store is per-domain (Domain.DLS), matching the [lib/par]
   discipline: no locks on the hot path, no cross-domain sharing of the
   mutable table, and — because hits and misses never leak into any
   reported count — [--jobs N] output stays byte-identical to [--jobs 1]
   even though each domain warms its own cache. Callers that report
   execution totals must count *logical* executions (increment whether
   or not the run was served from cache).

   Plans from different catalogs may collide structurally, so the store
   remembers which catalog filled it and resets on (physical) catalog
   change; tests and multi-catalog tools get isolation for free. *)

type store = {
  mutable catalog : Storage.Catalog.t option;
  tbl : (Resultset.t, string) result PTbl.t;
}

let key =
  Domain.DLS.new_key (fun () -> { catalog = None; tbl = PTbl.create 256 })

let hits_c = Obs.Metrics.counter "executor.result_cache.hits"
let miss_c = Obs.Metrics.counter "executor.result_cache.misses"

(* Per-site attribution: the same totals, additionally keyed by which
   caller asked (validate vs triage-oracle vs replay ...), so `qtr
   stats`/`qtr report` can say who benefits from the cache and who only
   fills it. Sites are a small closed set of short strings, so the
   labeled-counter registry stays tiny. *)
let site_hit site = Obs.Metrics.counter ~label:site "executor.result_cache.hits"
let site_miss site = Obs.Metrics.counter ~label:site "executor.result_cache.misses"

(* Safety valve against unbounded growth in very long sessions; far
   above what a validate or reduce run touches. *)
let max_entries = 8192

let run ?(site = "adhoc") catalog plan =
  let s = Domain.DLS.get key in
  (match s.catalog with
  | Some c when c == catalog -> ()
  | _ ->
    PTbl.reset s.tbl;
    s.catalog <- Some catalog);
  match PTbl.find_opt s.tbl plan with
  | Some r ->
    Obs.Metrics.incr hits_c;
    Obs.Metrics.incr (site_hit site);
    r
  | None ->
    Obs.Metrics.incr miss_c;
    Obs.Metrics.incr (site_miss site);
    let r = Exec.run catalog plan in
    (* Pre-sort on the owning domain so a cached result handed to later
       bag comparisons is already normalized (and never mutated by a
       reader on another domain). *)
    (match r with
    | Ok rs -> ignore (Resultset.normalized rs)
    | Error _ -> ());
    if PTbl.length s.tbl >= max_entries then PTbl.reset s.tbl;
    PTbl.add s.tbl plan r;
    r

let clear () =
  let s = Domain.DLS.get key in
  PTbl.reset s.tbl;
  s.catalog <- None
