(** The reduction oracle: is a candidate query still a true reproducer of
    the bug it was derived from?

    A query [q] passes for a target [R] iff it is well-formed, [RuleSet(q)]
    still exercises every rule of the target, [Plan(q)] and [Plan(q, ¬R)]
    differ, and executing the two plans yields diverging result bags (or
    the disabled-rule plan fails to execute). This is exactly the predicate
    {!Core.Correctness.run} applies to suite entries, packaged as a
    reusable check so delta reduction can re-verify every shrinking step. *)

type verdict =
  | Diverges of Divergence.t  (** still a reproducer *)
  | Agrees  (** plans identical or result bags equal *)
  | Rule_not_fired  (** the target rule(s) no longer fire on the query *)
  | Invalid of string  (** ill-formed tree, or optimization/baseline failed *)

type t

val create : ?site:string -> Core.Framework.t -> Core.Suite.target -> t
(** The framework carries the rule registry under test (inject faults via
    [Framework.create ~rules:(Faults.inject ...)]). [site] labels this
    oracle's result-cache traffic for attribution (default
    ["triage-oracle"]; replay passes ["replay"]). *)

val check : t -> Relalg.Logical.t -> verdict
(** One oracle evaluation: up to two optimizer invocations and two plan
    executions. Counted by {!checks}/{!executions} and the
    ["triage.oracle.*"] metrics. *)

val target : t -> Core.Suite.target
val checks : t -> int
val executions : t -> int
(** Plan executions spent (two per divergence-checked candidate). *)
