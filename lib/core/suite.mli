(** Test-suite generation (§2.3): for each target (a singleton rule or a
    rule pair), [k] distinct queries each exercising the target. *)

type target = Single of string | Pair of string * string

val target_name : target -> string
val rules_of : target -> string list
(** The rule names to disable when validating this target. *)

val all_pairs : string list -> target list
(** All nC2 unordered pairs, in lexicographic index order. *)

type entry = {
  query : Relalg.Logical.t;
  ruleset : Framework.SSet.t;  (** RuleSet(query) *)
  cost : float;  (** Cost(query), all rules enabled *)
}

type t = {
  k : int;
  targets : target list;
  entries : entry array;  (** distinct queries of the overall suite TS *)
  per_target : (target * int list) list;
      (** the k entry indices generated for each target (the paper's TS_i);
          an index can appear under several targets only via deduplication *)
}

type gen_method = Pattern_based | Random_based

val generate :
  ?gen:gen_method ->
  ?extra_ops:int ->
  ?max_trials:int ->
  ?pool:Par.Pool.t ->
  Framework.t ->
  Storage.Prng.t ->
  targets:target list ->
  k:int ->
  t
(** Generates TS_i for every target and the deduplicated overall suite.
    Queries whose generation fails within [max_trials] are simply absent —
    a target may end with fewer than [k] queries (reported by
    {!shortfall}). [extra_ops] (default 3) pads queries with random extra
    operators so suite costs vary, as with the paper's complex stochastic
    queries.

    Without [pool], one PRNG stream is threaded through every target in
    order (the historical sequential behavior, byte-stable for a given
    seed). With [pool], each target becomes one task with its own PRNG
    substream (split from [g] in target order) and its own fresh-alias
    range, and results are merged in target order — the suite is
    identical for any [Par.Pool.jobs] count, including 1, but differs
    from the no-pool stream (different, equally valid, random draws). *)

type gen_record = {
  gr_target : target;
  gr_index : int;  (** position in [targets] — fixes the PRNG substream *)
  gr_deps : string list;
      (** sorted names of every rule whose pattern matched during this
          target's generation and acceptance checking: the target's
          dependency set. A rule absent from this list contributed
          nothing, so a body-only edit to it cannot change what this
          target generated. Empty for reused targets whose stored deps
          were served by [reuse] (the callback returns the stored set). *)
  gr_accepted : entry list;  (** task-local accepted entries, pre-merge *)
  gr_reused : bool;  (** served by the [reuse] callback, not regenerated *)
}

val generate_tracked :
  ?gen:gen_method ->
  ?extra_ops:int ->
  ?max_trials:int ->
  ?reuse:(int -> target -> (entry list * string list) option) ->
  pool:Par.Pool.t ->
  Framework.t ->
  Storage.Prng.t ->
  targets:target list ->
  k:int ->
  t * gen_record list
(** The pooled generation path of {!generate} with provenance: returns
    the per-target generation records (dependency sets + pre-merge
    accepted entries) a manifest persists, and accepts a [reuse]
    callback serving a target's stored (accepted entries, deps) from a
    prior run. Reused targets skip generation but still consume their
    PRNG substream slot, and the cross-target merge replays in target
    order, so the suite is byte-identical to a full rebuild whenever the
    reused records match what regeneration would produce — which the
    incremental layer guarantees by only reusing targets whose
    dependency sets avoid every changed rule. [generate ~pool] is
    exactly [generate_tracked] without [reuse], minus the records. *)

val covering : t -> target -> int list
(** Entry indices whose RuleSet exercises the target — the bipartite
    graph's edge lists (§4.1). *)

val shortfall : t -> (target * int) list
(** Targets that got fewer than [k] distinct queries, with the deficit. *)
