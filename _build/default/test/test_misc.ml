(* Additional unit coverage: the SQL lexer, the cardinality estimator, and
   physical-plan utilities. *)
open Storage
module Lex = Relalg.Sql_lexer
module L = Relalg.Logical
module S = Relalg.Scalar
module Ident = Relalg.Ident

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- lexer ---------------- *)

let toks s = Result.get_ok (Lex.tokenize s)

let test_lexer_basic () =
  check int_t "select star" 4 (List.length (toks "SELECT * ,"));
  (match toks "a1_b2 <> 'x''y' 3.5 <= 42" with
  | [ Lex.IDENT "a1_b2"; Lex.NE; Lex.STRING "x'y"; Lex.FLOAT 3.5; Lex.LE;
      Lex.INT 42; Lex.EOF ] ->
    ()
  | other ->
    Alcotest.failf "unexpected tokens: %s"
      (String.concat " " (List.map Lex.token_to_string other)));
  check bool_t "keywords case-insensitive" true
    (toks "select" = [ Lex.KW "SELECT"; Lex.EOF ]);
  check bool_t "idents keep case" true
    (toks "Foo" = [ Lex.IDENT "Foo"; Lex.EOF ])

let test_lexer_numbers () =
  check bool_t "exponent float" true
    (match toks "1.5e3" with [ Lex.FLOAT f; Lex.EOF ] -> f = 1500.0 | _ -> false);
  check bool_t "int then dot-ident is not float" true
    (match toks "1 . x" with
    | [ Lex.INT 1; Lex.DOT; Lex.IDENT "x"; Lex.EOF ] -> true
    | _ -> false)

let test_lexer_errors () =
  check bool_t "unterminated string" true (Result.is_error (Lex.tokenize "'abc"));
  check bool_t "bad char" true (Result.is_error (Lex.tokenize "a ; b"))

(* ---------------- cardinality estimation ---------------- *)

let cat = Datagen.tpch ~scale:0.002 ()
let est () = Optimizer.Card.create cat
let nation = L.Get { table = "nation"; alias = "n" }
let orders = L.Get { table = "orders"; alias = "o" }
let n_key = Ident.make "n" "n_nationkey"
let o_ck = Ident.make "o" "o_custkey"

let test_card_base () =
  let e = est () in
  check bool_t "nation = 25" true (Optimizer.Card.rows e nation = 25.0);
  check bool_t "orders positive" true (Optimizer.Card.rows e orders > 0.0)

let test_card_filter_selectivity () =
  let e = est () in
  let eq_pred = S.eq (S.Col n_key) (S.int 3) in
  let filtered = L.Filter { pred = eq_pred; child = nation } in
  let r = Optimizer.Card.rows e filtered in
  (* 25 rows, 25 distinct keys: equality should estimate ~1 row. *)
  check bool_t "pk equality ~1" true (r >= 0.5 && r <= 2.0);
  let range = L.Filter { pred = S.Cmp (S.Lt, S.Col n_key, S.int 100); child = nation } in
  check bool_t "range below filter input" true
    (Optimizer.Card.rows e range <= 25.0)

let test_card_join_shapes () =
  let e = est () in
  let inner =
    L.Join
      { kind = L.Inner; pred = S.eq (S.Col n_key) (S.Col o_ck); left = nation;
        right = orders }
  in
  let cross = L.Join { kind = L.Cross; pred = S.true_; left = nation; right = orders } in
  let ri = Optimizer.Card.rows e inner and rc = Optimizer.Card.rows e cross in
  check bool_t "join below cross" true (ri < rc);
  let loj = L.Join { kind = L.LeftOuter; pred = S.eq (S.Col n_key) (S.Col o_ck); left = nation; right = orders } in
  check bool_t "loj at least left side" true (Optimizer.Card.rows e loj >= 25.0)

let test_card_agg_and_setops () =
  let e = est () in
  let global = L.GroupBy { keys = []; aggs = [ (Ident.make "g" "c", Relalg.Aggregate.CountStar) ]; child = orders } in
  check bool_t "global agg = 1" true (Optimizer.Card.rows e global = 1.0);
  let grouped = L.GroupBy { keys = [ o_ck ]; aggs = []; child = orders } in
  check bool_t "groups below input" true
    (Optimizer.Card.rows e grouped <= Optimizer.Card.rows e orders);
  let ua = L.UnionAll (nation, L.Get { table = "nation"; alias = "m" }) in
  check bool_t "union all adds" true (Optimizer.Card.rows e ua = 50.0);
  let lim = L.Limit { count = 3; child = orders } in
  check bool_t "limit caps" true (Optimizer.Card.rows e lim = 3.0)

let test_selectivity_bounds () =
  let e = est () in
  let preds =
    [ S.true_; S.Const (Value.Bool false); S.IsNull (S.Col n_key);
      S.Not (S.eq (S.Col n_key) (S.int 1));
      S.Or (S.eq (S.Col n_key) (S.int 1), S.eq (S.Col n_key) (S.int 2)) ]
  in
  List.iter
    (fun p ->
      let s = Optimizer.Card.selectivity e [ nation ] p in
      check bool_t ("bounded: " ^ S.to_sql p) true (s >= 1e-4 && s <= 1.0))
    preds

(* ---------------- physical utilities ---------------- *)

let test_physical_utils () =
  let open Optimizer.Physical in
  let scan = TableScan { table = "nation"; alias = "n" } in
  let plan =
    FilterOp { pred = S.true_; child = SortOp { keys = [ (n_key, L.Asc) ]; child = scan } }
  in
  check int_t "size" 3 (size plan);
  check int_t "children" 1 (List.length (children plan));
  check bool_t "op names" true
    (op_name plan = "Filter" && op_name scan = "TableScan");
  let s = to_string plan in
  check bool_t "pp mentions sort" true
    (let rec find i =
       i + 4 <= String.length s && (String.sub s i 4 = "Sort" || find (i + 1))
     in
     find 0)

let suite =
  [ ( "relalg.lexer",
      [ Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
        Alcotest.test_case "numbers" `Quick test_lexer_numbers;
        Alcotest.test_case "errors" `Quick test_lexer_errors ] );
    ( "optimizer.card",
      [ Alcotest.test_case "base tables" `Quick test_card_base;
        Alcotest.test_case "filter selectivity" `Quick test_card_filter_selectivity;
        Alcotest.test_case "join shapes" `Quick test_card_join_shapes;
        Alcotest.test_case "aggregates and set ops" `Quick test_card_agg_and_setops;
        Alcotest.test_case "selectivity bounds" `Quick test_selectivity_bounds ] );
    ( "optimizer.physical",
      [ Alcotest.test_case "utilities" `Quick test_physical_utils ] ) ]
