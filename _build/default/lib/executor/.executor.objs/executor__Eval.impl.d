lib/executor/eval.ml: Option Relalg Storage Value
