(* Hash-consed logical trees.

   Interning assigns every structurally distinct tree a unique integer
   id; the returned node caches the full structural hash and the size,
   and canonicalizes the tree so equal subtrees are physically shared.
   On top of it, equality is [==], hashing is one int read, and every
   tree-keyed table in the optimizer can key on [id] instead of deep
   structural hashing (which, with [Hashtbl.hash]'s bounded traversal,
   degenerated to linear collision scans on realistic query sizes).

   The table is global and grows monotonically; ids stay valid for the
   lifetime of the process ([clear] drops the table for test isolation
   but never reuses ids, so stale id-keyed caches can miss, never lie). *)

module L = Logical

type node = {
  repr : L.t;  (** canonical tree: children are canonical reprs *)
  id : int;
  hkey : int;  (** = [Logical.hash repr], cached *)
  nsize : int;  (** = [Logical.size repr], cached *)
  kids : node array;
}

(* Shallow interning key: the node's payload plus the ids of its already
   canonical children. Two trees are structurally equal iff their
   payloads are equal and their children intern to the same ids. *)
type key = { payload : L.t; kid_ids : int array }

module Tbl = Hashtbl.Make (struct
  type t = key

  let equal a b =
    Array.length a.kid_ids = Array.length b.kid_ids
    && (let n = Array.length a.kid_ids in
        let rec same i = i >= n || (a.kid_ids.(i) = b.kid_ids.(i) && same (i + 1)) in
        same 0)
    && L.payload_equal a.payload b.payload

  let hash k =
    Array.fold_left Scalar.hash_combine (L.payload_hash k.payload) k.kid_ids
end)

let table : node Tbl.t = Tbl.create 4096
let next_id = ref 0
let hit_count = ref 0
let miss_count = ref 0

let node_of (payload : L.t) (kids : node array) : node =
  let key = { payload; kid_ids = Array.map (fun k -> k.id) kids } in
  match Tbl.find_opt table key with
  | Some n ->
    incr hit_count;
    n
  | None ->
    incr miss_count;
    let canonical_kids = Array.to_list (Array.map (fun k -> k.repr) kids) in
    let repr =
      (* Avoid reallocating when the payload's children are already the
         canonical ones (always true for trees built from reprs). *)
      if List.for_all2 ( == ) (L.children payload) canonical_kids then payload
      else L.with_children payload canonical_kids
    in
    let hkey =
      Array.fold_left
        (fun h k -> Scalar.hash_combine h k.hkey)
        (L.payload_hash payload) kids
    in
    let nsize = Array.fold_left (fun s k -> s + k.nsize) 1 kids in
    let id = !next_id in
    incr next_id;
    let n = { repr; id; hkey; nsize; kids } in
    Tbl.replace table key n;
    n

let rec intern (t : L.t) : node =
  match L.children t with
  | [] -> node_of t [||]
  | kids -> node_of t (Array.of_list (List.map intern kids))

let rebuild (n : node) i (kid : node) : node =
  if i < 0 || i >= Array.length n.kids then
    invalid_arg "Hashcons.rebuild: child index out of range";
  if n.kids.(i) == kid then n
  else begin
    let kids = Array.copy n.kids in
    kids.(i) <- kid;
    node_of n.repr kids
  end

let repr n = n.repr
let id n = n.id
let hash n = n.hkey
let size n = n.nsize
let equal (a : node) (b : node) = a == b
let live_nodes () = Tbl.length table
let hits () = !hit_count
let misses () = !miss_count

let clear () =
  Tbl.reset table;
  hit_count := 0;
  miss_count := 0
