(* Unit tests for the storage substrate: PRNG, values, schemas, stats,
   tables, catalog, and the TPC-H data generator. *)
open Storage

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check int_t "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  check bool_t "different seeds differ" true (xs <> ys)

let test_prng_ranges () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    check bool_t "int in range" true (x >= 0 && x < 10);
    let y = Prng.int_in g 5 8 in
    check bool_t "int_in in range" true (y >= 5 && y <= 8);
    let f = Prng.float g 2.0 in
    check bool_t "float in range" true (f >= 0.0 && f < 2.0)
  done

let test_prng_invalid () =
  let g = Prng.create 3 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0));
  Alcotest.check_raises "pick []" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick g ([] : int list)))

let test_prng_shuffle_permutes () =
  let g = Prng.create 9 in
  let xs = List.init 30 Fun.id in
  let ys = Prng.shuffle g xs in
  check (Alcotest.list int_t) "same elements" xs (List.sort compare ys)

let test_prng_sample () =
  let g = Prng.create 11 in
  let xs = List.init 10 Fun.id in
  let s = Prng.sample g 4 xs in
  check int_t "sample size" 4 (List.length s);
  check int_t "distinct" 4 (List.length (List.sort_uniq compare s));
  check int_t "oversample clamps" 10 (List.length (Prng.sample g 50 xs))

let test_prng_split_independent () =
  let g = Prng.create 5 in
  let h = Prng.split g in
  let a = List.init 10 (fun _ -> Prng.int g 1000) in
  let b = List.init 10 (fun _ -> Prng.int h 1000) in
  check bool_t "split streams differ" true (a <> b)

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_sql_comparisons () =
  check bool_t "null cmp is unknown" true (Value.eq_sql Value.Null (Value.Int 1) = None);
  check bool_t "int/float promote" true
    (Value.eq_sql (Value.Int 2) (Value.Float 2.0) = Some true);
  check bool_t "lt" true (Value.lt_sql (Value.Int 1) (Value.Int 2) = Some true);
  check bool_t "le eq" true (Value.le_sql (Value.Str "a") (Value.Str "a") = Some true);
  Alcotest.check_raises "incomparable"
    (Invalid_argument "Value.cmp_sql: incomparable types") (fun () ->
      ignore (Value.cmp_sql (Value.Int 1) (Value.Str "x")))

let test_value_total_order () =
  check bool_t "null first" true (Value.compare_total Value.Null (Value.Int 0) < 0);
  check int_t "int=float" 0 (Value.compare_total (Value.Int 3) (Value.Float 3.0));
  check bool_t "strings ordered" true
    (Value.compare_total (Value.Str "a") (Value.Str "b") < 0)

let test_value_arith () =
  check bool_t "add ints" true (Value.equal (Value.add (Value.Int 2) (Value.Int 3)) (Value.Int 5));
  check bool_t "promote" true
    (Value.equal (Value.mul (Value.Int 2) (Value.Float 1.5)) (Value.Float 3.0));
  check bool_t "null propagates" true (Value.is_null (Value.add Value.Null (Value.Int 1)));
  check bool_t "div by zero is null" true
    (Value.is_null (Value.div (Value.Int 1) (Value.Int 0)));
  check bool_t "neg" true (Value.equal (Value.neg (Value.Int 4)) (Value.Int (-4)))

let test_value_dates () =
  check int_t "epoch" 0 (Value.date_of_ymd 1970 1 1);
  check string_t "iso" "1992-01-01" (Value.date_to_string (Value.date_of_ymd 1992 1 1));
  for _ = 1 to 50 do
    let d = Random.int 30000 - 5000 in
    let y, m, dd = Value.ymd_of_date d in
    check int_t "round trip" d (Value.date_of_ymd y m dd)
  done

let test_value_to_sql () =
  check string_t "string escaping" "'it''s'" (Value.to_sql (Value.Str "it's"));
  check string_t "null" "NULL" (Value.to_sql Value.Null);
  check string_t "date literal" "DATE '1995-06-01'"
    (Value.to_sql (Value.Date (Value.date_of_ymd 1995 6 1)));
  check string_t "float keeps point" "2.0" (Value.to_sql (Value.Float 2.0))

let test_value_hash_consistent () =
  (* Grouping relies on hash-compatibility of Int n and Float n. *)
  check int_t "int/float hash" (Value.hash (Value.Int 7)) (Value.hash (Value.Float 7.0))

(* ------------------------------------------------------------------ *)
(* Schema / Table / Stats / Catalog                                    *)
(* ------------------------------------------------------------------ *)

let sample_schema =
  Schema.make "t" ~primary_key:[ "a" ]
    [ Schema.column "a" Datatype.TInt;
      Schema.column ~nullable:true "b" Datatype.TInt;
      Schema.column "c" Datatype.TString ]

let test_schema_accessors () =
  check int_t "arity" 3 (Schema.arity sample_schema);
  check (Alcotest.list string_t) "names" [ "a"; "b"; "c" ] (Schema.column_names sample_schema);
  check bool_t "find" true (Schema.find_column sample_schema "b" <> None);
  check bool_t "find missing" true (Schema.find_column sample_schema "z" = None);
  check bool_t "index" true (Schema.column_index sample_schema "c" = Some 2);
  check int_t "keys" 1 (List.length (Schema.keys sample_schema))

let test_schema_validation () =
  let col = Schema.column in
  let dup () = ignore (Schema.make "x" [ col "a" Datatype.TInt; col "a" Datatype.TInt ]) in
  (try
     dup ();
     Alcotest.fail "expected duplicate column failure"
   with Invalid_argument _ -> ());
  (try
     ignore (Schema.make "x" ~primary_key:[ "nope" ] [ col "a" Datatype.TInt ]);
     Alcotest.fail "expected bad key failure"
   with Invalid_argument _ -> ());
  try
    ignore (Schema.make "x" []);
    Alcotest.fail "expected empty-columns failure"
  with Invalid_argument _ -> ()

let test_table_type_checking () =
  let ok = Table.create sample_schema [| [| Value.Int 1; Value.Null; Value.Str "x" |] |] in
  check int_t "row count" 1 (Table.row_count ok);
  (try
     ignore (Table.create sample_schema [| [| Value.Int 1; Value.Int 2 |] |]);
     Alcotest.fail "expected arity failure"
   with Invalid_argument _ -> ());
  (try
     ignore (Table.create sample_schema [| [| Value.Null; Value.Null; Value.Str "x" |] |]);
     Alcotest.fail "expected NOT NULL failure"
   with Invalid_argument _ -> ());
  try
    ignore (Table.create sample_schema [| [| Value.Str "no"; Value.Null; Value.Str "x" |] |]);
    Alcotest.fail "expected type failure"
  with Invalid_argument _ -> ()

let test_stats () =
  let tb =
    Table.create sample_schema
      [| [| Value.Int 1; Value.Int 5; Value.Str "x" |];
         [| Value.Int 2; Value.Null; Value.Str "x" |];
         [| Value.Int 3; Value.Int 5; Value.Str "y" |] |]
  in
  let st = tb.stats in
  check int_t "rows" 3 st.row_count;
  let a = Option.get (Stats.col st "a") in
  check int_t "ndv a" 3 a.ndv;
  check bool_t "min a" true (Value.equal a.min_value (Value.Int 1));
  check bool_t "max a" true (Value.equal a.max_value (Value.Int 3));
  let b = Option.get (Stats.col st "b") in
  check int_t "ndv b" 1 b.ndv;
  check int_t "nulls b" 1 b.null_count;
  let c = Option.get (Stats.col st "c") in
  check int_t "ndv c" 2 c.ndv

let test_catalog () =
  let tb = Table.create sample_schema [||] in
  let cat = Catalog.of_tables [ tb ] in
  check bool_t "mem" true (Catalog.mem cat "t");
  check bool_t "find" true (Catalog.find cat "t" <> None);
  check bool_t "missing" true (Catalog.find cat "nope" = None);
  check (Alcotest.list string_t) "names" [ "t" ] (Catalog.table_names cat);
  let replaced = Catalog.add cat (Table.create sample_schema [||]) in
  check int_t "replace keeps one" 1 (List.length (Catalog.tables replaced))

(* ------------------------------------------------------------------ *)
(* Datagen                                                             *)
(* ------------------------------------------------------------------ *)

let tpch = Datagen.tpch ~scale:0.001 ()

let test_tpch_shape () =
  check int_t "eight tables" 8 (List.length (Catalog.table_names tpch));
  check int_t "regions" 5 (Table.row_count (Catalog.find_exn tpch "region"));
  check int_t "nations" 25 (Table.row_count (Catalog.find_exn tpch "nation"));
  List.iter
    (fun name ->
      check bool_t (name ^ " non-empty") true
        (Table.row_count (Catalog.find_exn tpch name) > 0))
    (Catalog.table_names tpch)

let test_tpch_determinism () =
  let a = Datagen.tpch ~scale:0.001 () and b = Datagen.tpch ~scale:0.001 () in
  let rows c = (Catalog.find_exn c "orders").Table.rows in
  check bool_t "same data for same seed" true (rows a = rows b);
  let c = Datagen.tpch ~seed:1 ~scale:0.001 () in
  check bool_t "different seed differs" true (rows a <> rows c)

let test_tpch_pk_unique () =
  List.iter
    (fun name ->
      let tb = Catalog.find_exn tpch name in
      match tb.schema.primary_key with
      | [] -> ()
      | pk ->
        let idx = List.map (fun c -> Option.get (Schema.column_index tb.schema c)) pk in
        let keys =
          Array.to_list (Array.map (fun row -> List.map (fun i -> row.(i)) idx) tb.rows)
        in
        check int_t (name ^ " pk unique") (List.length keys)
          (List.length (List.sort_uniq compare keys)))
    (Catalog.table_names tpch)

let test_tpch_fk_integrity () =
  List.iter
    (fun name ->
      let tb = Catalog.find_exn tpch name in
      List.iter
        (fun (fk : Schema.foreign_key) ->
          let target = Catalog.find_exn tpch fk.fk_table in
          let tgt_idx =
            List.map (fun c -> Option.get (Schema.column_index target.schema c)) fk.fk_ref_columns
          in
          let valid =
            Array.to_list (Array.map (fun row -> List.map (fun i -> row.(i)) tgt_idx) target.rows)
          in
          let src_idx =
            List.map (fun c -> Option.get (Schema.column_index tb.schema c)) fk.fk_columns
          in
          Array.iter
            (fun row ->
              let key = List.map (fun i -> row.(i)) src_idx in
              if not (List.exists (fun v -> Value.is_null v) key) then
                check bool_t
                  (Printf.sprintf "%s fk to %s" name fk.fk_table)
                  true (List.mem key valid))
            tb.rows)
        tb.schema.foreign_keys)
    (Catalog.table_names tpch)

let test_micro () =
  let cat = Datagen.micro () in
  check int_t "three tables" 3 (List.length (Catalog.table_names cat));
  check bool_t "t1 has rows" true (Table.row_count (Catalog.find_exn cat "t1") > 0)

(* ------------------------------------------------------------------ *)
(* Diskcache                                                           *)
(* ------------------------------------------------------------------ *)

let fresh_cache_dir tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "qtr-test-dc-%s-%d" tag (Unix.getpid ()))

let test_diskcache_roundtrip () =
  let dc = Diskcache.create ~dir:(fresh_cache_dir "rt") () in
  check bool_t "store" true (Diskcache.store dc ~ns:"t" ~key:"k1" [ 1; 2; 3 ]);
  check bool_t "load back" true
    (Diskcache.load dc ~ns:"t" ~key:"k1" = Some [ 1; 2; 3 ]);
  check bool_t "missing key" true
    (Diskcache.load dc ~ns:"t" ~key:"absent" = (None : int list option));
  check bool_t "missing namespace" true
    (Diskcache.load dc ~ns:"other" ~key:"k1" = (None : int list option));
  check int_t "one entry" 1 (Diskcache.entries dc ~ns:"t");
  (* Overwrite wins; long/hostile keys are hashed into safe filenames. *)
  check bool_t "overwrite" true (Diskcache.store dc ~ns:"t" ~key:"k1" [ 9 ]);
  check bool_t "overwritten value" true
    (Diskcache.load dc ~ns:"t" ~key:"k1" = Some [ 9 ]);
  let wild = String.concat "/" (List.init 40 (fun _ -> "..")) in
  check bool_t "hostile key stores" true (Diskcache.store dc ~ns:"t" ~key:wild 7);
  check bool_t "hostile key loads" true
    (Diskcache.load dc ~ns:"t" ~key:wild = Some 7)

(* Every corruption mode must load as a miss, never as an error or —
   worse — a wrong value: the MD5 is verified before Marshal sees a
   single byte. *)
let test_diskcache_corruption () =
  let dc = Diskcache.create ~dir:(fresh_cache_dir "corrupt") () in
  let store () = Diskcache.store dc ~ns:"n" ~key:"k" "payload" |> ignore in
  let path = Diskcache.path dc ~ns:"n" ~key:"k" in
  let rewrite f =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let b = Bytes.create len in
    really_input ic b 0 len;
    close_in ic;
    let b = f b in
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  in
  let load () : string option = Diskcache.load dc ~ns:"n" ~key:"k" in
  store ();
  check bool_t "intact" true (load () = Some "payload");
  (* bit flip in the payload (last byte is past every header field) *)
  rewrite (fun b ->
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      b);
  check bool_t "bit flip" true (load () = None);
  store ();
  (* truncation *)
  rewrite (fun b -> Bytes.sub b 0 (Bytes.length b / 2));
  check bool_t "truncated" true (load () = None);
  store ();
  (* clobbered magic *)
  rewrite (fun b ->
      Bytes.set b 0 'X';
      b);
  check bool_t "bad magic" true (load () = None);
  (* unreadable garbage *)
  let oc = open_out_bin path in
  output_string oc "not a cache entry";
  close_out oc;
  check bool_t "garbage file" true (load () = None);
  (* and a corrupt entry is recoverable by storing again *)
  store ();
  check bool_t "restored" true (load () = Some "payload")

let test_diskcache_version_mismatch () =
  let dir = fresh_cache_dir "ver" in
  let v1 = Diskcache.create ~version:"a" ~dir () in
  check bool_t "store under a" true (Diskcache.store v1 ~ns:"n" ~key:"k" 42);
  let v2 = Diskcache.create ~version:"b" ~dir () in
  check bool_t "other salt misses" true
    (Diskcache.load v2 ~ns:"n" ~key:"k" = (None : int option));
  let v1' = Diskcache.create ~version:"a" ~dir () in
  check bool_t "same salt hits" true
    (Diskcache.load v1' ~ns:"n" ~key:"k" = Some 42)

let suite =
  [ ( "storage.prng",
      [ Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "ranges" `Quick test_prng_ranges;
        Alcotest.test_case "invalid arguments" `Quick test_prng_invalid;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        Alcotest.test_case "sample" `Quick test_prng_sample;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent ] );
    ( "storage.value",
      [ Alcotest.test_case "sql comparisons" `Quick test_value_sql_comparisons;
        Alcotest.test_case "total order" `Quick test_value_total_order;
        Alcotest.test_case "arithmetic" `Quick test_value_arith;
        Alcotest.test_case "dates" `Quick test_value_dates;
        Alcotest.test_case "sql literals" `Quick test_value_to_sql;
        Alcotest.test_case "hash int/float" `Quick test_value_hash_consistent ] );
    ( "storage.schema",
      [ Alcotest.test_case "accessors" `Quick test_schema_accessors;
        Alcotest.test_case "validation" `Quick test_schema_validation;
        Alcotest.test_case "table type checks" `Quick test_table_type_checking;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "catalog" `Quick test_catalog ] );
    ( "storage.datagen",
      [ Alcotest.test_case "tpch shape" `Quick test_tpch_shape;
        Alcotest.test_case "determinism" `Quick test_tpch_determinism;
        Alcotest.test_case "primary keys unique" `Quick test_tpch_pk_unique;
        Alcotest.test_case "foreign keys valid" `Quick test_tpch_fk_integrity;
        Alcotest.test_case "micro catalog" `Quick test_micro ] );
    ( "storage.diskcache",
      [ Alcotest.test_case "round trip" `Quick test_diskcache_roundtrip;
        Alcotest.test_case "corruption is a miss" `Quick
          test_diskcache_corruption;
        Alcotest.test_case "version mismatch is a miss" `Quick
          test_diskcache_version_mismatch ] ) ]
