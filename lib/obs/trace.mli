(** Span-based tracing in the Chrome trace-event format, one JSON object
    per line (JSONL).

    Each span becomes a ["B"]/["E"] duration-event pair; one-off
    occurrences become ["i"] instant events. Timestamps are microseconds
    on the monotonic clock, relative to {!start}. The stream loads in
    [chrome://tracing] / Perfetto after wrapping the lines in a JSON
    array (['jq -s . t.jsonl']), and every individual line is a complete
    JSON document, so the file doubles as a machine-readable log.

    With no sink installed (the default) every entry point is one branch
    and returns immediately. The sink is global, like the metrics
    registry, and domain-safe: each line is written under a mutex (no
    mid-line interleaving) and carries the emitting domain's id as
    [tid], so parallel workers show up as separate tracks in trace
    viewers. *)

val start : string -> unit
(** Open [path] (truncating) and start emitting. Replaces any previous
    sink. *)

val start_buffer : Buffer.t -> unit
(** Emit into a buffer instead of a file — used by tests. *)

val stop : unit -> unit
(** Flush and close the sink; subsequent events are dropped. Safe to
    call twice. Also registered via [at_exit], so a trace is not lost
    when the process exits mid-stream. *)

val enabled : unit -> bool

val with_span : ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a [name] span. The end event is
    emitted even when [f] raises. [args] lands on the begin event. *)

val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit

val depth : unit -> int
(** Number of currently open spans (0 at top level) — exposed so tests
    can assert balanced nesting. *)
