lib/core/matching.mli: Framework Suite
