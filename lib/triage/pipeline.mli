(** End-to-end bug triage: delta-reduce every validation bug, dedup by
    signature, persist the survivors, and replay a persisted corpus. *)

type case = {
  target : Core.Suite.target;
  signature : Signature.t;
  original : Relalg.Logical.t;  (** the bug's query as validation found it *)
  reduced : Relalg.Logical.t;  (** the minimized reproducer *)
  divergence : Divergence.t;  (** observed on the reduced query *)
  stats : Reduce.stats;
  dup_count : int;  (** raw bugs that collapsed onto this signature *)
}

type report = {
  cases : case list;  (** one per distinct signature, discovery order *)
  duplicates : int;
  irreducible : (Core.Correctness.bug * string) list;
      (** bugs whose original query failed oracle re-verification *)
  checks : int;  (** oracle evaluations across all reductions *)
  executions : int;  (** plan executions across all reductions *)
}

val triage :
  ?max_checks:int ->
  ?pool:Par.Pool.t ->
  Core.Framework.t ->
  Core.Correctness.report ->
  report
(** Reduce every bug of a {!Core.Correctness.run} report against the same
    framework (same rule registry, including any injected fault) and dedup
    by {!Signature.key}, keeping the smallest reproducer per signature.
    [max_checks] bounds oracle evaluations {e per bug} (see
    {!Reduce.run}). [pool] fans the per-bug reductions out across
    domains; dedup runs afterwards in bug order, so the report is
    identical for any pool size. *)

val save_corpus :
  dir:string ->
  catalog:Corpus.catalog_spec ->
  budget:int ->
  ?fault:string ->
  Storage.Catalog.t ->
  report ->
  (string list, string) result
(** Persist every case; returns the metadata paths written. [catalog],
    [budget] and [fault] describe the environment the bugs were found in,
    so {!replay} can reconstruct it from disk. *)

type outcome =
  | Reproduced of Divergence.t  (** the divergence resurfaced *)
  | Clean  (** plans agree or results match — the bug is gone *)
  | Not_fired  (** the target rule no longer fires on the reproducer *)
  | Failed of string  (** parse/optimize/catalog error *)

type replayed = { case : Corpus.case; outcome : outcome }

val replay :
  ?reinject:bool -> ?budget:int -> ?pool:Par.Pool.t -> dir:string -> unit ->
  (replayed list, string) result
(** Re-execute every stored case against a freshly regenerated catalog
    ([pool] replays cases in parallel; outcomes are merged in case
    order).
    With [reinject] (default false) the fault recorded in each case's
    metadata is injected first — the corpus self-check, where every case
    must come back [Reproduced]. Without it the current (sound) registry
    is used — the regression gate, where any [Reproduced] is a
    resurfaced bug. [budget] overrides the per-case recorded exploration
    budget. *)

val report_json : report -> Obs.Json.t
val replay_json : replayed list -> Obs.Json.t
val pp_report : Format.formatter -> report -> unit
val pp_replayed : Format.formatter -> replayed -> unit
