lib/executor/resultset.ml: Array Format List Relalg Stdlib Storage String Value
