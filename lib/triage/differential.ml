module L = Relalg.Logical
module S = Relalg.Scalar
module I = Relalg.Ident
module P = Relalg.Props
module RS = Executor.Resultset

let checks_c = Obs.Metrics.counter "triage.differential.checks"
let exec_c = Obs.Metrics.counter "triage.differential.executions"

let align cat ~reference t =
  match (P.schema cat reference, P.schema cat t) with
  | Error e, _ -> Error ("lhs schema: " ^ e)
  | _, Error e -> Error ("rhs schema: " ^ e)
  | Ok ls, Ok rs ->
    let ids cols = List.map (fun (c : P.col_info) -> c.id) cols in
    let lid = ids ls and rid = ids rs in
    if List.equal I.equal lid rid then Ok t
    else if I.Set.equal (I.Set.of_list lid) (I.Set.of_list rid) then
      Ok (Optimizer.Rule.identity_project ls t)
    else if
      List.length ls = List.length rs
      && List.for_all2
           (fun (a : P.col_info) (b : P.col_info) -> a.ty = b.ty)
           ls rs
    then
      Ok (L.Project
            { cols = List.map2 (fun (lc : P.col_info) (rc : P.col_info) ->
                  (lc.id, S.Col rc.id)) ls rs;
              child = t })
    else Error "incomparable output schemas"

let plan ?(budget = 1) cat t =
  let options = { Optimizer.Engine.default_options with max_trees = budget } in
  match Optimizer.Engine.optimize ~options ~rules:[] cat t with
  | Error e -> Error e
  | Ok r -> Ok r.plan

let check ?(site = "differential") ?(budget = 1) cat lhs rhs =
  let ( let* ) = Result.bind in
  Obs.Metrics.incr checks_c;
  let* () = Result.map_error (fun e -> "lhs validate: " ^ e) (P.validate cat lhs) in
  let* () = Result.map_error (fun e -> "rhs validate: " ^ e) (P.validate cat rhs) in
  let* rhs = align cat ~reference:lhs rhs in
  let* lplan = Result.map_error (fun e -> "lhs plan: " ^ e) (plan ~budget cat lhs) in
  let* rplan = Result.map_error (fun e -> "rhs plan: " ^ e) (plan ~budget cat rhs) in
  (* Logical executions: counted whether or not the result cache serves
     the run, so reported totals match across [--jobs] settings. *)
  Obs.Metrics.add exec_c 2;
  let* expected =
    Result.map_error (fun e -> "lhs exec: " ^ e) (Executor.Cache.run ~site cat lplan)
  in
  match Executor.Cache.run ~site cat rplan with
  | Error e ->
    Ok (Some (Divergence.exec_error ~expected_rows:(RS.row_count expected) e))
  | Ok actual -> (
    match RS.diverges expected actual with
    | None -> Ok None
    | Some diff -> Ok (Some (Divergence.of_diff ~expected ~actual diff)))
