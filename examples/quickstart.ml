(* Quickstart: build a TPC-H test database, write a logical query, optimize
   it, inspect the exercised transformation rules (RuleSet), emit SQL,
   execute the plan, and re-optimize with a rule disabled.

     dune exec examples/quickstart.exe *)

open Storage
open Relalg
module L = Logical
module S = Scalar

let () =
  (* 1. A deterministic TPC-H database (the framework's fixed test DB). *)
  let cat = Datagen.tpch ~scale:0.002 () in
  let fw = Core.Framework.create cat in

  (* 2. A logical query tree: revenue per customer for recent orders.
        Columns are globally named (alias_column), so transformation rules
        can rearrange operators freely. *)
  let customer = L.Get { table = "customer"; alias = "c" } in
  let orders = L.Get { table = "orders"; alias = "o" } in
  let c_custkey = Ident.make "c" "c_custkey" in
  let c_name = Ident.make "c" "c_name" in
  let o_custkey = Ident.make "o" "o_custkey" in
  let o_totalprice = Ident.make "o" "o_totalprice" in
  let o_orderdate = Ident.make "o" "o_orderdate" in
  let revenue = Ident.make "g" "revenue" in
  let query =
    L.GroupBy
      { keys = [ c_custkey; c_name ];
        aggs = [ (revenue, Aggregate.Sum (S.Col o_totalprice)) ];
        child =
          L.Filter
            { pred =
                S.Cmp
                  ( S.Ge,
                    S.Col o_orderdate,
                    S.Const (Value.Date (Value.date_of_ymd 1997 1 1)) );
              child =
                L.Join
                  { kind = L.Inner;
                    pred = S.eq (S.Col c_custkey) (S.Col o_custkey);
                    left = customer;
                    right = orders } } }
  in
  Format.printf "Logical query tree:@.%a@.@." L.pp query;

  (* 3. The SQL test case the framework would emit for this tree. *)
  Format.printf "Generated SQL:@.%s@.@." (Sql_print.to_sql_pretty cat query);

  (* 4. Optimize: plan, cost, and RuleSet(q). *)
  (match Core.Framework.optimize fw query with
  | Error e -> Format.printf "optimize failed: %s@." e
  | Ok r ->
    Format.printf "Chosen physical plan (estimated cost %.1f):@.%a@.@." r.cost
      Optimizer.Physical.pp r.plan;
    Format.printf "RuleSet(q) — %d rules exercised:@.  %s@.@."
      (Core.Framework.SSet.cardinal r.exercised)
      (String.concat ", " (Core.Framework.SSet.elements r.exercised));

    (* 5. Execute the plan. *)
    (match Executor.Exec.run cat r.plan with
    | Ok res ->
      let first_five =
        Executor.Resultset.make
          (Executor.Resultset.cols res)
          (Array.sub (Executor.Resultset.rows res) 0
             (min 5 (Executor.Resultset.row_count res)))
      in
      Format.printf "Result: %d rows. First rows:@.%a@.@."
        (Executor.Resultset.row_count res) Executor.Resultset.pp first_five
    | Error e -> Format.printf "execution failed: %s@." e);

    (* 6. Plan(q, ¬{r}): turn off the group-by pull-up and compare cost. *)
    let rule = "PushSelectBelowJoin" in
    match Core.Framework.optimize fw ~disabled:[ rule ] query with
    | Ok off ->
      Format.printf "Cost with %s disabled: %.1f (vs %.1f) — disabling never helps.@."
        rule off.cost r.cost
    | Error e -> Format.printf "optimize failed: %s@." e);

  (* 7. The rule-pattern export API (paper §3.1). *)
  Format.printf "@.Rule pattern for GbAggPullAboveJoin (XML export):@.%s@."
    (Option.get (Optimizer.Rules.pattern_xml "GbAggPullAboveJoin"))
