type sink = { write : string -> unit; close : unit -> unit }

let sink : sink option ref = ref None
let t0 : int64 ref = ref 0L
let open_spans = Atomic.make 0

(* Serializes whole JSONL lines: spans emitted from parallel workers
   interleave per line, never mid-line. The per-domain [tid] field keeps
   them separable in trace viewers. *)
let write_lock = Mutex.create ()

let enabled () = !sink <> None
let depth () = Atomic.get open_spans

let stop () =
  match !sink with
  | None -> ()
  | Some s ->
    sink := None;
    Atomic.set open_spans 0;
    s.close ()

let () = at_exit stop

let install s =
  stop ();
  t0 := Clock.now_ns ();
  sink := Some s

let start path =
  let oc = open_out path in
  install { write = (fun line -> output_string oc line); close = (fun () -> close_out oc) }

let start_buffer buf =
  install { write = Buffer.add_string buf; close = ignore }

let ts_us () = Clock.ns_to_us (Clock.ns_between !t0 (Clock.now_ns ()))

let emit s ~ph ~name ~cat ~args =
  let fields =
    [ ("name", Json.String name);
      ("cat", Json.String (Option.value cat ~default:"qtr"));
      ("ph", Json.String ph);
      ("ts", Json.Float (ts_us ()));
      ("pid", Json.Int 1);
      ("tid", Json.Int ((Domain.self () :> int) + 1)) ]
  in
  let fields = match args with [] -> fields | _ -> fields @ [ ("args", Json.Obj args) ] in
  let buf = Buffer.create 128 in
  Json.to_buffer buf (Json.Obj fields);
  Buffer.add_char buf '\n';
  Mutex.protect write_lock (fun () -> s.write (Buffer.contents buf))

let with_span ?cat ?(args = []) name f =
  match !sink with
  | None -> f ()
  | Some s ->
    emit s ~ph:"B" ~name ~cat ~args;
    Atomic.incr open_spans;
    Fun.protect
      ~finally:(fun () ->
        Atomic.decr open_spans;
        (* The sink may have been stopped while the span was open. *)
        match !sink with
        | Some s -> emit s ~ph:"E" ~name ~cat ~args:[]
        | None -> ())
      f

let instant ?cat ?(args = []) name =
  match !sink with
  | None -> ()
  | Some s -> emit s ~ph:"i" ~name ~cat ~args
