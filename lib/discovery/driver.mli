(** The discovery pipeline: enumerate → validate → rank → promote.

    One [run] mines candidate rewrites over the catalog
    ({!Template.enumerate}), refutes the unsound ones differentially
    ({!Validate.run}) — persisting minimized counterexamples into a
    discovery corpus — then ranks the survivors by how much they would
    matter as optimizer rules and promotes the top-K through the
    framework's own §3–§5 pipeline (suite generation → SMC compression →
    correctness validation). A promoted candidate that surfaces bugs in
    that final gauntlet is demoted again: the framework tests the rules
    it discovers.

    Determinism: the report is byte-identical for any [pool] size (seeded
    PRNG substreams, task-order merges, no wall times or hashcons ids in
    the report). With [disk], the ranking phase warm-starts from the
    spilled edge-cost matrix: scores are unchanged but
    [scoring_optimizer_runs] drops to 0. *)

type config = {
  alphabet : Template.alphabet;
  max_nodes : int;  (** per-side operator budget for enumeration *)
  params : Validate.params;
  suite_k : int;  (** queries per target in the ranking/promotion suites *)
  top_k : int;  (** candidates promoted into optimizer rules *)
  max_saved : int;
      (** non-seeded counterexamples persisted per run (seeded-unsound
          refutations are always persisted) *)
  rank_budget : int;
      (** exploration budget ([max_trees]) for the ranking/promotion
          frameworks, whose registries carry every survivor *)
  corpus_dir : string option;
      (** where minimized counterexamples are saved; [None] skips the
          minimize-and-save stage *)
  catalog : Triage.Corpus.catalog_spec;
}

val default_config : config
(** [Setops]/2 over tpch 0.002, six trials, [suite_k = 2], [top_k = 5],
    [max_saved = 4], no corpus directory. *)

type scored = {
  rule_name : string;
  display : string;
  saving : float;
      (** Σ max(0, Cost(q, ¬R) − Cost(q)) over the target's suite queries
          — the plan-cost regression when the candidate is disabled *)
  fired : int;
      (** exploration firing-count delta over suite generation
          ([optimizer.rule.fired] counters) *)
  shrink : int;  (** lhs minus rhs operator count of the template *)
  clean_instances : int;  (** from validation *)
  rediscovered : string option;  (** known-sound rule this candidate equals *)
  score : float;
}

type saved_case = {
  case_id : string;
  case_rule : string;
  case_display : string;
  kind : string;  (** divergence kind *)
  seeded : string option;  (** seeded-unsound name when applicable *)
  nodes_before : int;  (** lhs+rhs instance nodes before minimization *)
  nodes_after : int;
  path : string option;  (** metadata path, when persisted *)
}

type promotion = {
  attempted : string list;  (** top-K rule names, rank order *)
  promoted : string list;  (** attempted minus demoted *)
  demoted : (string * int) list;  (** rule name, bugs surfaced *)
  pairs_checked : int;
  plan_executions : int;
  promo_suite_queries : int;
}

type report = {
  alphabet : string;
  max_nodes : int;
  raw_candidates : int;  (** pairs generated before dedup *)
  candidates : int;  (** after hashcons dedup — the validated set *)
  survived : int;
  refuted : int;
  inconclusive : int;
  checks : int;  (** differential checks spent validating *)
  rediscovered : (string * string) list;
      (** (candidate rule name, known-sound rule name) for survivors *)
  seeded_refuted : string list;
  seeded_survived : string list;  (** must be empty; CI asserts it *)
  saved : saved_case list;
  ranked : scored list;  (** every survivor, best first *)
  promotion : promotion;
  suite_queries : int;  (** distinct queries in the ranking suite *)
  scoring_optimizer_runs : int;
      (** full optimizer invocations spent filling the ranking cost
          matrix — 0 on a warm [disk] cache *)
}

val run :
  ?pool:Par.Pool.t -> ?disk:Storage.Diskcache.t -> config -> report

val report_json : report -> Obs.Json.t
(** Jobs-invariant by construction: every field above is identical for
    any pool size. *)

val pp_report : Format.formatter -> report -> unit
