(* Executor tests: handcrafted physical plans over a tiny catalog with
   known contents, covering NULL semantics of every join and set
   operation, aggregates, sorting, and the equivalence of the three join
   implementations. *)
open Storage
module P = Optimizer.Physical
module L = Relalg.Logical
module S = Relalg.Scalar
module A = Relalg.Aggregate
module RS = Executor.Resultset
module Ident = Relalg.Ident

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* l(k int nullable, v string): (1,a) (2,b) (NULL,c) (2,d)
   r(k int nullable, w string): (2,x) (3,y) (NULL,z) *)
let cat =
  let open Schema in
  let lt =
    make "l" [ column ~nullable:true "k" Datatype.TInt; column "v" Datatype.TString ]
  in
  let rt =
    make "r" [ column ~nullable:true "k" Datatype.TInt; column "w" Datatype.TString ]
  in
  Catalog.of_tables
    [ Table.create lt
        [| [| Value.Int 1; Value.Str "a" |];
           [| Value.Int 2; Value.Str "b" |];
           [| Value.Null; Value.Str "c" |];
           [| Value.Int 2; Value.Str "d" |] |];
      Table.create rt
        [| [| Value.Int 2; Value.Str "x" |];
           [| Value.Int 3; Value.Str "y" |];
           [| Value.Null; Value.Str "z" |] |] ]

let scan_l = P.TableScan { table = "l"; alias = "l" }
let scan_r = P.TableScan { table = "r"; alias = "r" }
let lk = Ident.make "l" "k"
let lv = Ident.make "l" "v"
let rk = Ident.make "r" "k"
let run plan = Result.get_ok (Executor.Exec.run cat plan)
let rows plan = RS.row_count (run plan)
let join_pred = S.eq (S.col lk) (S.col rk)

let nlj kind = P.NestedLoopsJoin { kind; pred = join_pred; left = scan_l; right = scan_r }

let hj kind =
  P.HashJoin
    { kind; left_keys = [ lk ]; right_keys = [ rk ]; residual = S.true_;
      left = scan_l; right = scan_r }

(* Expected with SQL NULL semantics (NULL keys never match):
   inner: l(2,b),(2,d) x r(2,x) -> 2 rows
   left outer: 2 matches + unmatched (1,a),(NULL,c) -> 4
   right outer: 2 + unmatched (3,y),(NULL,z) -> 4
   full outer: 2 + 2 + 2 -> 6
   semi: (2,b),(2,d) -> 2 ; anti: (1,a),(NULL,c) -> 2 *)
let expected = [ (L.Inner, 2); (L.LeftOuter, 4); (L.RightOuter, 4); (L.FullOuter, 6); (L.Semi, 2); (L.AntiSemi, 2) ]

let test_nlj_kinds () =
  List.iter
    (fun (kind, n) ->
      check int_t (L.kind_name (L.KJoin kind) ^ " rows") n (rows (nlj kind)))
    expected

let test_hash_kinds () =
  List.iter
    (fun (kind, n) ->
      check int_t ("hash " ^ L.kind_name (L.KJoin kind)) n (rows (hj kind)))
    expected

let test_hash_equals_nlj () =
  List.iter
    (fun (kind, _) ->
      check bool_t ("hash = nlj for " ^ L.kind_name (L.KJoin kind)) true
        (RS.equal_bag (run (nlj kind)) (run (hj kind))))
    expected

let test_merge_join () =
  let sorted keys child = P.SortOp { keys = List.map (fun k -> (k, L.Asc)) keys; child } in
  let mj =
    P.MergeJoin
      { left_keys = [ lk ]; right_keys = [ rk ]; residual = S.true_;
        left = sorted [ lk ] scan_l; right = sorted [ rk ] scan_r }
  in
  check bool_t "merge = nlj inner" true (RS.equal_bag (run mj) (run (nlj L.Inner)))

let test_cross_join () =
  let cross = P.NestedLoopsJoin { kind = L.Cross; pred = S.true_; left = scan_l; right = scan_r } in
  check int_t "cross product" 12 (rows cross)

let test_outer_join_padding () =
  let res = run (nlj L.LeftOuter) in
  let padded =
    Array.to_list (RS.rows res)
    |> List.filter (fun row -> Value.is_null row.(2) && Value.is_null row.(3))
  in
  check int_t "two padded rows" 2 (List.length padded)

let test_residual () =
  let hjr =
    P.HashJoin
      { kind = L.Inner; left_keys = [ lk ]; right_keys = [ rk ];
        residual = S.eq (S.col lv) (S.Const (Value.Str "b"));
        left = scan_l; right = scan_r }
  in
  check int_t "residual filters matches" 1 (rows hjr)

let test_filter_3vl () =
  (* k > 1 keeps (2,b),(2,d); NULL row is UNKNOWN, not kept. *)
  let plan = P.FilterOp { pred = S.Cmp (S.Gt, S.col lk, S.int 1); child = scan_l } in
  check int_t "unknown rows dropped" 2 (rows plan);
  let nn = P.FilterOp { pred = S.IsNull (S.col lk); child = scan_l } in
  check int_t "is null" 1 (rows nn);
  let nn2 = P.FilterOp { pred = S.Not (S.Cmp (S.Gt, S.col lk, S.int 1)); child = scan_l } in
  check int_t "NOT of unknown stays unknown" 1 (rows nn2)

let test_compute () =
  let out = Ident.make "p" "twice" in
  let plan =
    P.ComputeScalar { cols = [ (out, S.Arith (S.Mul, S.col lk, S.int 2)) ]; child = scan_l }
  in
  let res = run plan in
  check int_t "rows preserved" 4 (RS.row_count res);
  check bool_t "null propagates" true
    (Array.exists (fun row -> Value.is_null row.(0)) (RS.rows res));
  check bool_t "doubled" true
    (Array.exists (fun row -> Value.equal row.(0) (Value.Int 4)) (RS.rows res))

let gid = Ident.make "g" "out"

let test_aggregates () =
  let agg a = P.HashAggregate { keys = []; aggs = [ (gid, a) ]; child = scan_l } in
  let single plan = (RS.rows (run plan)).(0) in
  check bool_t "count star" true (Value.equal (single (agg A.CountStar)).(0) (Value.Int 4));
  check bool_t "count skips null" true
    (Value.equal (single (agg (A.Count (S.col lk)))).(0) (Value.Int 3));
  check bool_t "sum skips null" true
    (Value.equal (single (agg (A.Sum (S.col lk)))).(0) (Value.Int 5));
  check bool_t "min" true (Value.equal (single (agg (A.Min (S.col lk)))).(0) (Value.Int 1));
  check bool_t "max" true (Value.equal (single (agg (A.Max (S.col lk)))).(0) (Value.Int 2));
  check bool_t "avg" true
    (Value.equal (single (agg (A.Avg (S.col lk)))).(0) (Value.Float (5.0 /. 3.0)))

let test_group_by_keys () =
  let plan = P.HashAggregate { keys = [ lk ]; aggs = [ (gid, A.CountStar) ]; child = scan_l } in
  let res = run plan in
  (* groups: 1, 2, NULL -> NULLs group together *)
  check int_t "three groups" 3 (RS.row_count res);
  check bool_t "null group counted" true
    (Array.exists
       (fun row -> Value.is_null row.(0) && Value.equal row.(1) (Value.Int 1))
       (RS.rows res));
  check bool_t "group of two" true
    (Array.exists
       (fun row -> Value.equal row.(0) (Value.Int 2) && Value.equal row.(1) (Value.Int 2))
       (RS.rows res))

let test_global_agg_on_empty () =
  let empty = P.FilterOp { pred = S.Const (Value.Bool false); child = scan_l } in
  let plan =
    P.HashAggregate
      { keys = []; aggs = [ (gid, A.CountStar); (Ident.make "g" "s", A.Sum (S.col lk)) ];
        child = empty }
  in
  let res = run plan in
  check int_t "one fabricated row" 1 (RS.row_count res);
  let row = (RS.rows res).(0) in
  check bool_t "count 0" true (Value.equal row.(0) (Value.Int 0));
  check bool_t "sum NULL" true (Value.is_null row.(1));
  (* ...but grouped aggregation over empty input is empty. *)
  let grouped = P.HashAggregate { keys = [ lk ]; aggs = [ (gid, A.CountStar) ]; child = empty } in
  check int_t "no groups" 0 (rows grouped)

let test_stream_equals_hash_agg () =
  let keys = [ lk ] in
  let hash = P.HashAggregate { keys; aggs = [ (gid, A.CountStar) ]; child = scan_l } in
  let stream =
    P.StreamAggregate
      { keys; aggs = [ (gid, A.CountStar) ];
        child = P.SortOp { keys = [ (lk, L.Asc) ]; child = scan_l } }
  in
  check bool_t "stream = hash" true (RS.equal_bag (run hash) (run stream))

let test_sort_and_limit () =
  let sorted = P.SortOp { keys = [ (lk, L.Asc) ]; child = scan_l } in
  let res = run sorted in
  check bool_t "nulls first ascending" true (Value.is_null (RS.rows res).(0).(0));
  let desc = P.SortOp { keys = [ (lk, L.Desc) ]; child = scan_l } in
  check bool_t "desc starts at 2" true
    (Value.equal (RS.rows (run desc)).(0).(0) (Value.Int 2));
  check int_t "limit" 2 (rows (P.LimitOp { count = 2; child = sorted }));
  check int_t "limit beyond size" 4 (rows (P.LimitOp { count = 99; child = scan_l }))

(* Set operations: project both sides to the nullable int column. *)
let proj_k scan col = P.ComputeScalar { cols = [ (Ident.make "s" "k", S.col col) ]; child = scan }
let left_k = proj_k scan_l lk
let right_k = proj_k scan_r rk

let test_set_operations () =
  (* l.k = {1,2,NULL,2}; r.k = {2,3,NULL} *)
  check int_t "concat" 7 (rows (P.Concat (left_k, right_k)));
  check int_t "union distinct null-safe" 4 (rows (P.HashUnion (left_k, right_k)));
  check int_t "intersect {2, NULL}" 2 (rows (P.HashIntersect (left_k, right_k)));
  check int_t "except {1}" 1 (rows (P.HashExcept (left_k, right_k)));
  check int_t "distinct" 3 (rows (P.HashDistinct left_k))

let test_exec_errors () =
  check bool_t "unknown table" true
    (Result.is_error (Executor.Exec.run cat (P.TableScan { table = "zzz"; alias = "q" })));
  check bool_t "unknown column" true
    (Result.is_error
       (Executor.Exec.run cat
          (P.FilterOp { pred = S.IsNull (S.col (Ident.make "q" "zzz")); child = scan_l })))

let test_resultset_diff () =
  let r1 = run scan_l and r2 = run (P.LimitOp { count = 3; child = scan_l }) in
  check bool_t "bag equality reflexive" true (RS.equal_bag r1 r1);
  check bool_t "different sizes differ" false (RS.equal_bag r1 r2);
  check bool_t "first difference found" true (RS.first_difference r1 r2 <> None);
  check bool_t "no diff for equal" true (RS.first_difference r1 r1 = None);
  check bool_t "diverges None iff equal" true (RS.diverges r1 r1 = None);
  (match RS.diverges r1 r2 with
  | None -> Alcotest.fail "expected a diff"
  | Some d ->
    check int_t "missing rows" 1 d.missing_count;
    check int_t "extra rows" 0 d.extra_count)

(* Every operator family once: the compiled path must agree with the
   interpreter row-for-row (as bags). *)
let agreement_plans =
  List.map (fun (k, _) -> nlj k) expected
  @ List.map (fun (k, _) -> hj k) expected
  @ [ P.FilterOp { pred = S.Cmp (S.Gt, S.col lk, S.int 1); child = scan_l };
      P.ComputeScalar
        { cols = [ (Ident.make "p" "t", S.Arith (S.Mul, S.col lk, S.int 2)) ];
          child = scan_l };
      P.HashAggregate
        { keys = [ lk ];
          aggs = [ (gid, A.Sum (S.col lk)); (Ident.make "g" "a", A.Avg (S.col lk)) ];
          child = scan_l };
      P.HashAggregate { keys = []; aggs = [ (gid, A.CountStar) ]; child = scan_l };
      P.StreamAggregate
        { keys = [ lk ]; aggs = [ (gid, A.CountStar) ];
          child = P.SortOp { keys = [ (lk, L.Asc) ]; child = scan_l } };
      P.SortOp { keys = [ (lk, L.Desc); (lv, L.Asc) ]; child = scan_l };
      P.Concat (left_k, right_k);
      P.HashUnion (left_k, right_k);
      P.HashIntersect (left_k, right_k);
      P.HashExcept (left_k, right_k);
      P.HashDistinct left_k;
      P.LimitOp { count = 2; child = P.SortOp { keys = [ (lk, L.Asc) ]; child = scan_l } }
    ]

let test_compiled_equals_interpreted () =
  List.iteri
    (fun i plan ->
      let compiled = Result.get_ok (Executor.Exec.run cat plan) in
      let interpreted = Result.get_ok (Executor.Exec.run_interpreted cat plan) in
      check bool_t (Printf.sprintf "plan %d agrees" i) true
        (RS.equal_bag compiled interpreted))
    agreement_plans

(* Unknown columns are a compile-time error: the compiled path reports
   them before producing a single row, even when the input is empty and
   the interpreter would therefore never notice. *)
let test_compile_time_unknown_column () =
  let empty = P.FilterOp { pred = S.Const (Value.Bool false); child = scan_l } in
  let bad =
    P.FilterOp { pred = S.IsNull (S.col (Ident.make "q" "zzz")); child = empty }
  in
  check bool_t "interpreter never evaluates the bad column" true
    (Result.is_ok (Executor.Exec.run_interpreted cat bad));
  check bool_t "compiled path rejects the plan" true
    (Result.is_error (Executor.Exec.run cat bad));
  (* And the error is raised by Compile.plan itself, before any row. *)
  check bool_t "raised at Compile.plan" true
    (match Executor.Compile.plan cat bad with
    | exception Executor.Compile.Compile_error _ -> true
    | _ -> false)

let test_fingerprint () =
  let fp = P.fingerprint in
  check bool_t "equal plans, equal fingerprints" true
    (fp (nlj L.Inner) = fp (nlj L.Inner));
  check bool_t "join kind distinguishes" true
    (fp (nlj L.Inner) <> fp (nlj L.LeftOuter));
  check bool_t "deep scalar change distinguishes" true
    (fp (P.FilterOp { pred = S.Cmp (S.Gt, S.col lk, S.int 1); child = scan_l })
    <> fp (P.FilterOp { pred = S.Cmp (S.Gt, S.col lk, S.int 2); child = scan_l }));
  check bool_t "non-negative" true (fp (hj L.FullOuter) >= 0)

(* Morsel scheduling must be invisible: for every operator family the
   batch path must reproduce the row-compiled results whatever the
   morsel boundaries — a one-row morsel, a size that straddles the
   4-row tables, one larger than any input — and whatever the pool
   size. "Identical" here is ordered, not bag: byte-for-byte output is
   the [--jobs N] contract. *)
let rows_identical a b =
  RS.same_cols a b
  && RS.row_count a = RS.row_count b
  && Array.for_all2
       (fun x y -> RS.compare_rows x y = 0)
       (RS.rows a) (RS.rows b)

let test_batch_morsel_boundaries () =
  List.iteri
    (fun i plan ->
      let want = Result.get_ok (Executor.Exec.run_rowwise cat plan) in
      List.iter
        (fun mr ->
          let got = Result.get_ok (Executor.Exec.run ~morsel_rows:mr cat plan) in
          check bool_t (Printf.sprintf "plan %d @ morsel_rows %d" i mr) true
            (rows_identical want got))
        [ 1; 3; 9999 ])
    agreement_plans

let test_batch_pool_identical () =
  let pool = Par.Pool.create ~jobs:2 () in
  List.iteri
    (fun i plan ->
      let seq = Result.get_ok (Executor.Exec.run cat plan) in
      let par =
        Result.get_ok (Executor.Exec.run ~pool ~morsel_rows:2 cat plan)
      in
      check bool_t (Printf.sprintf "plan %d pooled = sequential" i) true
        (rows_identical seq par))
    agreement_plans

let test_batch_empty_input () =
  let empty = P.FilterOp { pred = S.Const (Value.Bool false); child = scan_l } in
  let plans =
    [ P.FilterOp { pred = S.IsNull (S.col lk); child = empty };
      P.ComputeScalar
        { cols = [ (Ident.make "p" "t", S.Arith (S.Mul, S.col lk, S.int 2)) ];
          child = empty };
      P.SortOp { keys = [ (lk, L.Asc) ]; child = empty };
      P.HashDistinct empty;
      P.LimitOp { count = 5; child = empty };
      P.HashJoin
        { kind = L.Inner; left_keys = [ lk ]; right_keys = [ rk ];
          residual = S.true_; left = empty; right = scan_r } ]
  in
  List.iteri
    (fun i plan ->
      List.iter
        (fun mr ->
          check int_t (Printf.sprintf "empty plan %d @ %d" i mr) 0
            (RS.row_count
               (Result.get_ok (Executor.Exec.run ~morsel_rows:mr cat plan))))
        [ 1; 1024 ])
    plans;
  (* Global aggregate over empty input still fabricates its one row. *)
  let agg =
    P.HashAggregate { keys = []; aggs = [ (gid, A.CountStar) ]; child = empty }
  in
  check int_t "empty global agg" 1
    (RS.row_count (Result.get_ok (Executor.Exec.run ~morsel_rows:1 cat agg)))

(* Batch kernels must fail like a sequential row scan: same message,
   and the *lowest* erroring row's message, independent of morsel size.
   [l.v + 1] errors on every row; guarding it behind [l.k = 2] errors
   only on rows 1 and 3 (0-based), so the reported error must be row
   1's — even when each row is its own morsel. *)
let test_batch_error_agreement () =
  let bad_all =
    P.FilterOp
      { pred = S.Cmp (S.Gt, S.Arith (S.Add, S.col lv, S.int 1), S.int 0);
        child = scan_l }
  in
  let bad_some =
    P.FilterOp
      { pred =
          S.And
            ( S.Cmp (S.Eq, S.col lk, S.int 2),
              S.Cmp (S.Gt, S.Arith (S.Add, S.col lv, S.int 1), S.int 0) );
        child = scan_l }
  in
  List.iteri
    (fun i plan ->
      match Executor.Exec.run_rowwise cat plan with
      | Ok _ -> Alcotest.fail "rowwise unexpectedly succeeded"
      | Error want ->
        List.iter
          (fun mr ->
            match Executor.Exec.run ~morsel_rows:mr cat plan with
            | Ok _ -> Alcotest.fail "batch unexpectedly succeeded"
            | Error got ->
              check Alcotest.string
                (Printf.sprintf "error %d @ morsel_rows %d" i mr) want got)
          [ 1; 2; 1024 ])
    [ bad_all; bad_some ]

(* The disk tier behind the fingerprint result cache: a store on miss,
   a bag-identical serve once the memory tier is gone. *)
let test_result_cache_disk () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qtr-test-rcache-%d" (Unix.getpid ()))
  in
  let dc = Storage.Diskcache.create ~dir () in
  Executor.Cache.clear ();
  Executor.Cache.set_disk (Some (dc, "testcat"));
  Fun.protect
    ~finally:(fun () ->
      Executor.Cache.set_disk None;
      Executor.Cache.clear ())
    (fun () ->
      let plan = nlj L.Inner in
      let r1 = Result.get_ok (Executor.Cache.run cat plan) in
      check bool_t "stored on disk" true
        (Storage.Diskcache.entries dc ~ns:"results" > 0);
      Executor.Cache.clear ();
      (* memory tier gone *)
      let r2 = Result.get_ok (Executor.Cache.run cat plan) in
      check bool_t "disk hit bag-identical" true (RS.equal_bag r1 r2);
      let cold = Result.get_ok (Executor.Exec.run cat plan) in
      check bool_t "disk hit matches cold run" true (RS.equal_bag r2 cold))

let test_result_cache () =
  Executor.Cache.clear ();
  let plan = nlj L.Inner in
  let r1 = Result.get_ok (Executor.Cache.run cat plan) in
  let r2 = Result.get_ok (Executor.Cache.run cat plan) in
  check bool_t "hit returns the memoized result" true (r1 == r2);
  let cold = Result.get_ok (Executor.Exec.run cat plan) in
  check bool_t "hit is bag-identical to a cold run" true (RS.equal_bag r2 cold);
  (* A different catalog invalidates: same structural plan, other data. *)
  let cat2 =
    let open Schema in
    let lt =
      make "l" [ column ~nullable:true "k" Datatype.TInt; column "v" Datatype.TString ]
    in
    let rt =
      make "r" [ column ~nullable:true "k" Datatype.TInt; column "w" Datatype.TString ]
    in
    Catalog.of_tables
      [ Table.create lt [| [| Value.Int 7; Value.Str "q" |] |];
        Table.create rt [| [| Value.Int 7; Value.Str "r" |] |] ]
  in
  let other = Result.get_ok (Executor.Cache.run cat2 plan) in
  check bool_t "catalog change misses" true (not (RS.equal_bag other r2));
  check int_t "fresh catalog result" 1 (RS.row_count other);
  Executor.Cache.clear ()

let suite =
  [ ( "executor.joins",
      [ Alcotest.test_case "nested loops kinds" `Quick test_nlj_kinds;
        Alcotest.test_case "hash join kinds" `Quick test_hash_kinds;
        Alcotest.test_case "hash = nested loops" `Quick test_hash_equals_nlj;
        Alcotest.test_case "merge join" `Quick test_merge_join;
        Alcotest.test_case "cross join" `Quick test_cross_join;
        Alcotest.test_case "outer padding" `Quick test_outer_join_padding;
        Alcotest.test_case "residual predicate" `Quick test_residual ] );
    ( "executor.scalar",
      [ Alcotest.test_case "three-valued filters" `Quick test_filter_3vl;
        Alcotest.test_case "compute scalar" `Quick test_compute ] );
    ( "executor.aggregate",
      [ Alcotest.test_case "aggregate functions" `Quick test_aggregates;
        Alcotest.test_case "group by keys" `Quick test_group_by_keys;
        Alcotest.test_case "global aggregate over empty" `Quick test_global_agg_on_empty;
        Alcotest.test_case "stream = hash" `Quick test_stream_equals_hash_agg ] );
    ( "executor.misc",
      [ Alcotest.test_case "sort and limit" `Quick test_sort_and_limit;
        Alcotest.test_case "set operations" `Quick test_set_operations;
        Alcotest.test_case "errors" `Quick test_exec_errors;
        Alcotest.test_case "result comparison" `Quick test_resultset_diff ] );
    ( "executor.compile",
      [ Alcotest.test_case "compiled = interpreted" `Quick
          test_compiled_equals_interpreted;
        Alcotest.test_case "unknown column at compile time" `Quick
          test_compile_time_unknown_column;
        Alcotest.test_case "plan fingerprint" `Quick test_fingerprint;
        Alcotest.test_case "result cache" `Quick test_result_cache;
        Alcotest.test_case "result cache disk tier" `Quick
          test_result_cache_disk ] );
    ( "executor.batch",
      [ Alcotest.test_case "morsel boundaries" `Quick
          test_batch_morsel_boundaries;
        Alcotest.test_case "pool output identical" `Quick
          test_batch_pool_identical;
        Alcotest.test_case "empty input" `Quick test_batch_empty_input;
        Alcotest.test_case "error agreement" `Quick
          test_batch_error_agreement ] ) ]
