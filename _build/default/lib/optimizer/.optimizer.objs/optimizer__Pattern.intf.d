lib/optimizer/pattern.mli: Format Relalg
