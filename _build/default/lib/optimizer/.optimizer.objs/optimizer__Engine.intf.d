lib/optimizer/engine.mli: Physical Relalg Rule Set Stdlib Storage
