lib/optimizer/physical.mli: Format Relalg
