open Relalg
module L = Logical
module S = Scalar

let ( let* ) o f = match o with Ok v -> f v | Error _ -> []

(* Filtering commutes with sorting (result comparison is bag-based; the
   executor's sort is stable either way). *)
let select_below_sort =
  Rule.make "PushSelectBelowSort"
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KSort, [ Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child = L.Sort { keys; child } } ->
        [ L.Sort { keys; child = L.Filter { pred; child } } ]
      | _ -> [])

(* Filter distributes into both branches of INTERSECT: positionally equal
   rows give the predicate the same value on either side. *)
let select_below_intersect =
  Rule.make "PushSelectBelowIntersect"
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KIntersect, [ Pattern.Any; Pattern.Any ]) ]))
    (fun cat t ->
      match t with
      | L.Filter { pred; child = L.Intersect (a, b) } ->
        let* ac = Props.schema cat a in
        let* bc = Props.schema cat b in
        let rename = Rule.positional_rename ac bc in
        [ L.Intersect
            ( L.Filter { pred; child = a },
              L.Filter { pred = S.rename rename pred; child = b } ) ]
      | _ -> [])

(* For EXCEPT only the left branch may be filtered:
   {x in a : x not in b and p(x)} = filter(a) EXCEPT b. *)
let select_below_except =
  Rule.make "PushSelectBelowExcept"
    (Pattern.Op (L.KFilter, [ Pattern.Op (L.KExcept, [ Pattern.Any; Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child = L.Except (a, b) } ->
        [ L.Except (L.Filter { pred; child = a }, b) ]
      | _ -> [])

(* The inverse of UnionToUnionAllDistinct. *)
let distinct_unionall_to_union =
  Rule.make "DistinctUnionAllToUnion"
    (Pattern.Op (L.KDistinct, [ Pattern.Op (L.KUnionAll, [ Pattern.Any; Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Distinct (L.UnionAll (a, b)) -> [ L.Union (a, b) ]
      | _ -> [])

(* Deduplicating early on both branches cannot change the deduplicated
   union (local duplicates are removed by the outer Distinct anyway). *)
let distinct_below_unionall =
  Rule.make "PushDistinctBelowUnionAll"
    (Pattern.Op (L.KDistinct, [ Pattern.Op (L.KUnionAll, [ Pattern.Any; Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Distinct (L.UnionAll (a, b)) ->
        [ L.Distinct (L.UnionAll (L.Distinct a, L.Distinct b)) ]
      | _ -> [])

let cross_commute =
  Rule.make "CrossJoinCommute"
    (Pattern.Op (L.KJoin L.Cross, [ Pattern.Any; Pattern.Any ]))
    (fun cat t ->
      match t with
      | L.Join ({ kind = L.Cross; left; right; _ } as j) ->
        let* cols = Props.schema cat t in
        [ Rule.identity_project cols (L.Join { j with left = right; right = left }) ]
      | _ -> [])

let rules =
  [ select_below_sort; select_below_intersect; select_below_except;
    distinct_unionall_to_union; distinct_below_unionall; cross_commute ]
