lib/storage/datagen.mli: Catalog Schema
