open Storage
module P = Optimizer.Physical
module S = Relalg.Scalar
module L = Relalg.Logical
module Ident = Relalg.Ident

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Scalar compilation                                                  *)
(* ------------------------------------------------------------------ *)

(* Same error text as [Eval], so the two paths are indistinguishable to
   callers on row-time type errors. *)
let of_bool3 = function None -> Value.Null | Some b -> Value.Bool b
let bad_bool v = invalid_arg ("Eval: expected boolean, got " ^ Value.to_sql v)

let as_bool3 = function
  | (Value.Bool _ | Value.Null) as v -> v
  | v -> bad_bool v

let index_of (cols : Ident.t array) id =
  let n = Array.length cols in
  let rec go i =
    if i = n then fail "unknown column %s" (Ident.to_sql id)
    else if Ident.equal cols.(i) id then i
    else go (i + 1)
  in
  go 0

let key_indices cols keys = Array.of_list (List.map (index_of cols) keys)

(* Column references become array offsets and every operator/connective
   is dispatched here, once — the returned closure does no hashtable
   lookups and no AST matching per row. *)
let rec scalar (cols : Ident.t array) (e : S.t) : Value.t array -> Value.t =
  match e with
  | S.Const v -> fun _ -> v
  | S.Col id ->
    let i = index_of cols id in
    fun row -> row.(i)
  | S.Neg a ->
    let fa = scalar cols a in
    fun row -> Value.neg (fa row)
  | S.Arith (op, a, b) ->
    let fa = scalar cols a and fb = scalar cols b in
    let f =
      match op with
      | S.Add -> Value.add
      | S.Sub -> Value.sub
      | S.Mul -> Value.mul
      | S.Div -> Value.div
    in
    fun row -> f (fa row) (fb row)
  | S.Cmp (op, a, b) ->
    (* Operands bound left-to-right, exactly as [Eval.scalar] does — the
       two paths must surface the same error when both operands fail. *)
    let fa = scalar cols a and fb = scalar cols b in
    let cmp =
      match op with
      | S.Eq -> Value.eq_sql
      | S.Ne -> fun va vb -> Option.map not (Value.eq_sql va vb)
      | S.Lt -> Value.lt_sql
      | S.Le -> Value.le_sql
      | S.Gt -> fun va vb -> Value.lt_sql vb va
      | S.Ge -> fun va vb -> Value.le_sql vb va
    in
    fun row ->
      let va = fa row in
      let vb = fb row in
      of_bool3 (cmp va vb)
  | S.And (a, b) -> (
    (* Kleene logic: false dominates NULL. *)
    let fa = scalar cols a and fb = scalar cols b in
    fun row ->
      match fa row with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true -> as_bool3 (fb row)
      | Value.Null -> (
        match fb row with
        | Value.Bool false -> Value.Bool false
        | Value.Bool true | Value.Null -> Value.Null
        | v -> bad_bool v)
      | v -> bad_bool v)
  | S.Or (a, b) -> (
    let fa = scalar cols a and fb = scalar cols b in
    fun row ->
      match fa row with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false -> as_bool3 (fb row)
      | Value.Null -> (
        match fb row with
        | Value.Bool true -> Value.Bool true
        | Value.Bool false | Value.Null -> Value.Null
        | v -> bad_bool v)
      | v -> bad_bool v)
  | S.Not a -> (
    let fa = scalar cols a in
    fun row ->
      match fa row with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Null
      | v -> bad_bool v)
  | S.IsNull a ->
    let fa = scalar cols a in
    fun row -> Value.Bool (Value.is_null (fa row))
  | S.IsNotNull a ->
    let fa = scalar cols a in
    fun row -> Value.Bool (not (Value.is_null (fa row)))

let pred cols p =
  let f = scalar cols p in
  fun row ->
    match f row with
    | Value.Bool true -> true
    | Value.Bool false | Value.Null -> false
    | v -> bad_bool v

(* A non-trivial residual compiles to a predicate closure; the trivial
   TRUE residual is elided entirely. *)
let residual_pred cols r =
  if S.equal r S.true_ then None else Some (pred cols r)

(* ------------------------------------------------------------------ *)
(* Plan compilation                                                    *)
(* ------------------------------------------------------------------ *)

type t = { cols : Ident.t array; gen : unit -> Value.t array array }

let cols t = t.cols

let op_label : P.t -> string = function
  | P.TableScan _ -> "TableScan"
  | P.FilterOp _ -> "Filter"
  | P.ComputeScalar _ -> "ComputeScalar"
  | P.NestedLoopsJoin _ -> "NestedLoopsJoin"
  | P.HashJoin _ -> "HashJoin"
  | P.MergeJoin _ -> "MergeJoin"
  | P.HashAggregate _ -> "HashAggregate"
  | P.StreamAggregate _ -> "StreamAggregate"
  | P.SortOp _ -> "Sort"
  | P.Concat _ -> "Concat"
  | P.HashUnion _ -> "HashUnion"
  | P.HashIntersect _ -> "HashIntersect"
  | P.HashExcept _ -> "HashExcept"
  | P.HashDistinct _ -> "HashDistinct"
  | P.LimitOp _ -> "Limit"

let check_arity a b =
  if Array.length a.cols <> Array.length b.cols then
    fail "set operation arity mismatch: %d vs %d" (Array.length a.cols)
      (Array.length b.cols)

let rec node catalog (p : P.t) : t =
  let compiled =
    match p with
    | P.TableScan { table; alias } -> (
      match Catalog.find catalog table with
      | None -> fail "unknown table %s" table
      | Some tb ->
        let cols =
          Array.of_list
            (List.map
               (fun c -> Ident.make alias c.Schema.col_name)
               tb.schema.columns)
        in
        let rows = tb.rows in
        { cols; gen = (fun () -> rows) })
    | P.FilterOp { pred = pr; child } ->
      let c = node catalog child in
      let f = pred c.cols pr in
      { cols = c.cols; gen = (fun () -> Relops.filter_rows f (c.gen ())) }
    | P.ComputeScalar { cols; child } ->
      let c = node catalog child in
      let out_cols = Array.of_list (List.map fst cols) in
      let fns = Array.of_list (List.map (fun (_, e) -> scalar c.cols e) cols) in
      { cols = out_cols;
        gen =
          (fun () ->
            Array.map (fun row -> Array.map (fun f -> f row) fns) (c.gen ()))
      }
    | P.NestedLoopsJoin { kind; pred = pr; left; right } ->
      let l = node catalog left and r = node catalog right in
      let f = pred (Array.append l.cols r.cols) pr in
      let la = Array.length l.cols and ra = Array.length r.cols in
      { cols = Relops.join_cols kind l.cols r.cols;
        gen =
          (fun () ->
            let larr = l.gen () and rarr = r.gen () in
            Relops.join_rows kind ~left_arity:la ~right_arity:ra larr rarr
              (Relops.nested_loops_matches f larr rarr)) }
    | P.HashJoin { kind; left_keys; right_keys; residual; left; right } ->
      let l = node catalog left and r = node catalog right in
      let lidx = key_indices l.cols left_keys in
      let ridx = key_indices r.cols right_keys in
      let res = residual_pred (Array.append l.cols r.cols) residual in
      let la = Array.length l.cols and ra = Array.length r.cols in
      { cols = Relops.join_cols kind l.cols r.cols;
        gen =
          (fun () ->
            let larr = l.gen () and rarr = r.gen () in
            Relops.join_rows kind ~left_arity:la ~right_arity:ra larr rarr
              (Relops.hash_matches ~lidx ~ridx ~residual:res larr rarr)) }
    | P.MergeJoin { left_keys; right_keys; residual; left; right } ->
      let l = node catalog left and r = node catalog right in
      let lidx = key_indices l.cols left_keys in
      let ridx = key_indices r.cols right_keys in
      let res = residual_pred (Array.append l.cols r.cols) residual in
      let la = Array.length l.cols and ra = Array.length r.cols in
      { cols = Relops.join_cols L.Inner l.cols r.cols;
        gen =
          (fun () ->
            let larr = l.gen () and rarr = r.gen () in
            Relops.join_rows L.Inner ~left_arity:la ~right_arity:ra larr rarr
              (Relops.merge_matches ~lidx ~ridx ~residual:res larr rarr)) }
    | P.HashAggregate { keys; aggs; child } ->
      let c = node catalog child in
      let kidx = key_indices c.cols keys in
      let agg_fns =
        Array.of_list
          (List.map (fun (_, a) -> Relops.make_agg (scalar c.cols) a) aggs)
      in
      let out_cols = Array.of_list (keys @ List.map fst aggs) in
      { cols = out_cols;
        gen =
          (fun () ->
            let rows = c.gen () in
            let groups =
              (* With no keys, exactly one (possibly empty-input) global
                 group exists. *)
              if keys = [] then [| ([||], rows) |]
              else Relops.hash_groups kidx rows
            in
            Relops.grouped_rows agg_fns groups) }
    | P.StreamAggregate { keys; aggs; child } ->
      let c = node catalog child in
      let kidx = key_indices c.cols keys in
      let agg_fns =
        Array.of_list
          (List.map (fun (_, a) -> Relops.make_agg (scalar c.cols) a) aggs)
      in
      let out_cols = Array.of_list (keys @ List.map fst aggs) in
      { cols = out_cols;
        gen =
          (fun () ->
            let rows = c.gen () in
            let groups =
              if keys = [] then [| ([||], rows) |]
              else Relops.stream_groups kidx rows
            in
            Relops.grouped_rows agg_fns groups) }
    | P.SortOp { keys; child } ->
      let c = node catalog child in
      let kidx = key_indices c.cols (List.map fst keys) in
      let dirs = Array.of_list (List.map snd keys) in
      let cmp = Relops.sort_compare kidx dirs in
      { cols = c.cols;
        gen =
          (fun () ->
            let rows = Array.copy (c.gen ()) in
            Array.stable_sort cmp rows;
            rows) }
    | P.Concat (a, b) ->
      let ca = node catalog a and cb = node catalog b in
      check_arity ca cb;
      { cols = ca.cols; gen = (fun () -> Array.append (ca.gen ()) (cb.gen ())) }
    | P.HashUnion (a, b) ->
      let ca = node catalog a and cb = node catalog b in
      check_arity ca cb;
      { cols = ca.cols;
        gen =
          (fun () ->
            Relops.distinct_rows (Array.append (ca.gen ()) (cb.gen ()))) }
    | P.HashIntersect (a, b) ->
      let ca = node catalog a and cb = node catalog b in
      check_arity ca cb;
      { cols = ca.cols;
        gen =
          (fun () ->
            let in_b = Relops.row_set (cb.gen ()) in
            Relops.distinct_rows
              (Relops.filter_rows (Relops.RowTbl.mem in_b) (ca.gen ()))) }
    | P.HashExcept (a, b) ->
      let ca = node catalog a and cb = node catalog b in
      check_arity ca cb;
      { cols = ca.cols;
        gen =
          (fun () ->
            let in_b = Relops.row_set (cb.gen ()) in
            Relops.distinct_rows
              (Relops.filter_rows
                 (fun r -> not (Relops.RowTbl.mem in_b r))
                 (ca.gen ()))) }
    | P.HashDistinct child ->
      let c = node catalog child in
      { cols = c.cols; gen = (fun () -> Relops.distinct_rows (c.gen ())) }
    | P.LimitOp { count; child } ->
      let c = node catalog child in
      { cols = c.cols; gen = (fun () -> Relops.take_rows count (c.gen ())) }
  in
  (* Per-operator row/invocation counters, matching the interpreter's
     labels; instruments are interned at compile time so the per-run
     cost is one branch when metrics are off. *)
  let rows_c = Obs.Metrics.counter ~label:(op_label p) "exec.rows" in
  let ops_c = Obs.Metrics.counter ~label:(op_label p) "exec.operators" in
  { compiled with
    gen =
      (fun () ->
        let rows = compiled.gen () in
        if Obs.Metrics.enabled () then begin
          Obs.Metrics.add rows_c (Array.length rows);
          Obs.Metrics.incr ops_c
        end;
        rows) }

let plan catalog p = node catalog p
let execute t = Resultset.make t.cols (t.gen ())

(* Constructor for alternate compilation strategies ({!Batch}) that
   produce the same executable shape. *)
let v cols gen = { cols; gen }
let column_index = index_of
