test/test_engine.ml: Alcotest Ident List Logical Optimizer Relalg Result Scalar Storage
