(* Engine tests: RuleSet tracking, rule disabling, cost monotonicity,
   determinism, budgets, implementation-rule behaviour. *)
open Relalg
module S = Scalar
module L = Logical
module E = Optimizer.Engine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let cat = Storage.Datagen.micro ()
let id = Ident.make
let get1 = L.Get { table = "t1"; alias = "x" }
let get2 = L.Get { table = "t2"; alias = "y" }
let a = id "x" "a"
let d = id "y" "d"

let join =
  L.Join { kind = L.Inner; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 }

let filtered =
  L.Filter { pred = S.Cmp (S.Gt, S.col a, S.int 3); child = join }

let disabled_options names =
  { E.default_options with
    disabled = List.fold_left (fun s n -> E.SSet.add n s) E.SSet.empty names }

let test_ruleset_tracking () =
  let rs = Result.get_ok (E.ruleset cat filtered) in
  check bool_t "join commute exercised" true (E.SSet.mem "JoinCommute" rs);
  check bool_t "select pushdown exercised" true (E.SSet.mem "PushSelectBelowJoin" rs);
  check bool_t "merge select into join" true (E.SSet.mem "MergeSelectIntoJoin" rs);
  check bool_t "group-by rules not exercised" false (E.SSet.mem "GbAggPullAboveJoin" rs)

let test_ruleset_deterministic () =
  let rs1 = Result.get_ok (E.ruleset cat filtered) in
  let rs2 = Result.get_ok (E.ruleset cat filtered) in
  check bool_t "same set" true (E.SSet.equal rs1 rs2)

let test_disabled_not_exercised () =
  let options = disabled_options [ "JoinCommute" ] in
  let rs = Result.get_ok (E.ruleset ~options cat filtered) in
  check bool_t "disabled rule absent" false (E.SSet.mem "JoinCommute" rs)

let test_optimize_result () =
  let r = Result.get_ok (E.optimize cat filtered) in
  check bool_t "cost positive" true (r.cost > 0.0);
  check bool_t "explored several trees" true (r.trees_explored > 1);
  check bool_t "plan uses a scan" true
    (let rec has_scan p =
       match p with
       | Optimizer.Physical.TableScan _ -> true
       | _ -> List.exists has_scan (Optimizer.Physical.children p)
     in
     has_scan r.plan);
  check bool_t "impl rules tracked" true
    (E.SSet.mem "GetToTableScan" r.impl_exercised)

let test_cost_monotone_under_disable () =
  let base = Result.get_ok (E.optimize cat filtered) in
  E.SSet.iter
    (fun rule ->
      let r = Result.get_ok (E.optimize ~options:(disabled_options [ rule ]) cat filtered) in
      check bool_t ("cost(off " ^ rule ^ ") >= cost") true (r.cost >= base.cost -. 1e-9))
    base.exercised

let test_invalid_tree_rejected () =
  let bad = L.Filter { pred = S.col a; child = get1 } in
  check bool_t "rejects non-boolean" true (Result.is_error (E.optimize cat bad));
  let unknown = L.Get { table = "zzz"; alias = "q" } in
  check bool_t "rejects unknown table" true (Result.is_error (E.optimize cat unknown))

let test_no_plan_when_impl_disabled () =
  let r = E.optimize ~options:(disabled_options [ "GetToTableScan" ]) cat filtered in
  check bool_t "no plan without scans" true (Result.is_error r)

let test_join_impl_alternatives () =
  (* Disabling hash join must leave a working (more expensive or equal)
     nested-loops plan. *)
  let base = Result.get_ok (E.optimize cat join) in
  let no_hash =
    Result.get_ok (E.optimize ~options:(disabled_options [ "JoinToHashJoin" ]) cat join)
  in
  check bool_t "still plans" true (no_hash.cost >= base.cost);
  let rec uses_hash p =
    match p with
    | Optimizer.Physical.HashJoin _ -> true
    | _ -> List.exists uses_hash (Optimizer.Physical.children p)
  in
  check bool_t "no hash join in plan" false (uses_hash no_hash.plan)

let test_budget_respected () =
  let options = { E.default_options with max_trees = 10 } in
  let r = Result.get_ok (E.optimize ~options cat filtered) in
  check bool_t "at most 10 trees" true (r.trees_explored <= 10)

let test_growth_cap () =
  let options = { E.default_options with max_growth = 0 } in
  let r = Result.get_ok (E.optimize ~options cat filtered) in
  (* With zero growth the engine still works; it just explores less. *)
  check bool_t "still optimizes" true (r.cost > 0.0)

let test_exploration_finds_cheaper_plan () =
  (* Pushing the selective filter below the join should beat the naive
     plan of filtering after the join. *)
  let all_off = disabled_options Optimizer.Rules.names in
  let naive = Result.get_ok (E.optimize ~options:all_off cat filtered) in
  let smart = Result.get_ok (E.optimize cat filtered) in
  check bool_t "exploration helps" true (smart.cost <= naive.cost)

let test_custom_rules_param () =
  (* With an empty exploration registry, only the input tree is planned. *)
  let r = Result.get_ok (E.optimize ~rules:[] cat filtered) in
  check int_t "single tree" 1 r.trees_explored;
  check bool_t "nothing exercised" true (E.SSet.is_empty r.exercised)

let suite =
  [ ( "optimizer.engine",
      [ Alcotest.test_case "ruleset tracking" `Quick test_ruleset_tracking;
        Alcotest.test_case "ruleset deterministic" `Quick test_ruleset_deterministic;
        Alcotest.test_case "disabled rules" `Quick test_disabled_not_exercised;
        Alcotest.test_case "optimize result" `Quick test_optimize_result;
        Alcotest.test_case "cost monotone under disabling" `Quick
          test_cost_monotone_under_disable;
        Alcotest.test_case "invalid trees rejected" `Quick test_invalid_tree_rejected;
        Alcotest.test_case "no plan when scans disabled" `Quick
          test_no_plan_when_impl_disabled;
        Alcotest.test_case "join implementation alternatives" `Quick
          test_join_impl_alternatives;
        Alcotest.test_case "tree budget" `Quick test_budget_respected;
        Alcotest.test_case "growth cap" `Quick test_growth_cap;
        Alcotest.test_case "exploration finds cheaper plans" `Quick
          test_exploration_finds_cheaper_plan;
        Alcotest.test_case "custom rule registry" `Quick test_custom_rules_param ] ) ]
