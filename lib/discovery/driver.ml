module T = Template
module V = Validate
module L = Relalg.Logical
module F = Core.Framework
module Suite = Core.Suite
module J = Obs.Json

type config = {
  alphabet : T.alphabet;
  max_nodes : int;
  params : V.params;
  suite_k : int;
  top_k : int;
  max_saved : int;
  rank_budget : int;
  corpus_dir : string option;
  catalog : Triage.Corpus.catalog_spec;
}

(* Exploration options for the ranking/promotion frameworks. The
   registry holds every survivor on top of the stock rules, so the
   default 1200-tree budget would make each suite-generation probe
   enormous; candidate patterns sit at the root of generated queries and
   fire within a few expansions, so a small closure is enough. *)
let rank_options config =
  { Optimizer.Engine.default_options with
    max_trees = config.rank_budget;
    max_growth = 4 }

let default_config =
  { alphabet = T.Setops;
    max_nodes = 2;
    params = V.default_params;
    suite_k = 2;
    top_k = 5;
    max_saved = 4;
    rank_budget = 128;
    corpus_dir = None;
    catalog = Triage.Corpus.Tpch 0.002 }

type scored = {
  rule_name : string;
  display : string;
  saving : float;
  fired : int;
  shrink : int;
  clean_instances : int;
  rediscovered : string option;
  score : float;
}

type saved_case = {
  case_id : string;
  case_rule : string;
  case_display : string;
  kind : string;
  seeded : string option;
  nodes_before : int;
  nodes_after : int;
  path : string option;
}

type promotion = {
  attempted : string list;
  promoted : string list;
  demoted : (string * int) list;
  pairs_checked : int;
  plan_executions : int;
  promo_suite_queries : int;
}

type report = {
  alphabet : string;
  max_nodes : int;
  raw_candidates : int;
  candidates : int;
  survived : int;
  refuted : int;
  inconclusive : int;
  checks : int;
  rediscovered : (string * string) list;
  seeded_refuted : string list;
  seeded_survived : string list;
  saved : saved_case list;
  ranked : scored list;
  promotion : promotion;
  suite_queries : int;
  scoring_optimizer_runs : int;
}

(* ------------------------------------------------------------------ *)
(* Naming                                                              *)
(* ------------------------------------------------------------------ *)

(* [name_of] is a 32-bit hash; on a collision the later candidate (in
   enumeration order, which is deterministic) gets a numeric suffix so
   rule names stay unique within the run and stable across runs. *)
let name_candidates cands =
  let used = Hashtbl.create 256 in
  List.map
    (fun c ->
      let base = T.name_of c in
      let name =
        if not (Hashtbl.mem used base) then base
        else
          let rec go i =
            let n = Printf.sprintf "%s-%d" base i in
            if Hashtbl.mem used n then go (i + 1) else n
          in
          go 2
      in
      Hashtbl.add used name ();
      (name, c))
    cands

(* ------------------------------------------------------------------ *)
(* Counterexample persistence                                          *)
(* ------------------------------------------------------------------ *)

(* Seeded-unsound refutations are always kept (CI replays them); other
   refutations are deduplicated by divergence kind — the first few
   distinct failure modes in enumeration order tell the story, five
   hundred conjunct-drop variants do not. *)
let select_refutations max_saved results =
  let refuted =
    List.filter_map
      (fun (r : V.result) ->
        match r.verdict with V.Refuted ref -> Some (r, ref) | _ -> None)
      results
  in
  let seeded, rest =
    List.partition (fun ((r : V.result), _) -> T.seeded_name r.cand <> None) refuted
  in
  let kinds = Hashtbl.create 4 in
  let picked =
    List.filter
      (fun ((_ : V.result), (ref : V.refutation)) ->
        let k = Triage.Divergence.kind_name ref.divergence.kind in
        if Hashtbl.mem kinds k || Hashtbl.length kinds >= max_saved then false
        else begin
          Hashtbl.add kinds k ();
          true
        end)
      rest
  in
  seeded @ picked

let save_refutation ~dir (config : config) cat ((r : V.result), (ref : V.refutation)) =
  let m = V.minimize config.params cat r.cand ref in
  let ref' = m.V.refutation in
  let d = ref'.divergence in
  let meta : Triage.Corpus.meta =
    { id = "disc-" ^ r.name;
      target = r.name;
      kind = d.kind;
      shape = L.size ref'.lhs_instance;
      fault = None;
      catalog = config.catalog;
      budget = config.params.budget;
      original_nodes = m.nodes_before;
      reduced_nodes = m.nodes_after;
      steps = m.steps;
      checks = m.min_checks;
      expected_rows = d.expected_rows;
      actual_rows = d.actual_rows;
      rhs_sql = Some (Relalg.Sql_print.to_sql cat ref'.rhs_instance) }
  in
  let path =
    match dir with
    | None -> None
    | Some dir -> (
      match Triage.Corpus.save ~dir cat meta ref'.lhs_instance with
      | Ok p -> Some p
      | Error e ->
        Fmt.epr "discovery: corpus save %s failed: %s@." meta.id e;
        None)
  in
  { case_id = meta.id;
    case_rule = r.name;
    case_display = T.display r.cand;
    kind = Triage.Divergence.kind_name d.kind;
    seeded = T.seeded_name r.cand;
    nodes_before = m.nodes_before;
    nodes_after = m.nodes_after;
    path }

(* ------------------------------------------------------------------ *)
(* Ranking                                                             *)
(* ------------------------------------------------------------------ *)

let fired_total name = Obs.Metrics.counter_total ~label:name "optimizer.rule.fired"

(* Rank survivors by what they would be worth as optimizer rules: the
   plan-cost regression when disabled (the same Cost(q, ¬R) − Cost(q)
   edge the compression matrix is made of — warm-startable from [disk]),
   how often exploration actually fires them, and how much the rewrite
   shrinks the tree. *)
let rank ?(pool = Par.Pool.sequential) ?disk (config : config) cat survivors =
  let rules =
    Optimizer.Rules.all
    @ List.map (fun ((name, c), _) -> T.to_rule ~name c) survivors
  in
  let fw = F.create ~options:(rank_options config) ~rules cat in
  let names = List.map (fun ((name, _), _) -> name) survivors in
  let fired0 = List.map fired_total names in
  let targets = List.map (fun n -> Suite.Single n) names in
  let g = Storage.Prng.create (config.params.seed + 17) in
  let suite = Suite.generate ~max_trials:12 ~pool fw g ~targets ~k:config.suite_k in
  let fired =
    List.map2 (fun n before -> fired_total n - before) names fired0
  in
  F.reset_invocations fw;
  let ec = Core.Compress.edge_costs ~share_exploration:true ?disk fw suite in
  let pairs =
    List.concat
      (List.mapi
         (fun ti (_, qs) -> List.map (fun qi -> (ti, qi)) qs)
         suite.per_target)
  in
  Core.Compress.prefetch ~pool ec pairs;
  Core.Compress.save_matrix ec;
  let scoring_runs = F.invocations fw in
  let scored =
    List.mapi
      (fun ti (((name, c), clean), fired) ->
        let _, qs = List.nth suite.per_target ti in
        let saving =
          List.fold_left
            (fun acc qi ->
              let e = Core.Compress.edge_cost ec ~target_idx:ti ~query_idx:qi in
              if Float.is_finite e then
                acc +. Float.max 0. (e -. suite.entries.(qi).cost)
              else acc)
            0. qs
        in
        let shrink = T.ops c.T.lhs - T.ops c.T.rhs in
        let score =
          log (1. +. saving) +. log (1. +. float_of_int fired)
          +. (0.25 *. float_of_int shrink)
        in
        { rule_name = name;
          display = T.display c;
          saving;
          fired;
          shrink;
          clean_instances = clean;
          rediscovered = T.rediscovered_name c;
          score })
      (List.combine survivors fired)
  in
  let ranked =
    List.sort
      (fun a b ->
        match Float.compare b.score a.score with
        | 0 -> String.compare a.rule_name b.rule_name
        | c -> c)
      scored
  in
  (ranked, Array.length suite.entries, scoring_runs)

(* ------------------------------------------------------------------ *)
(* Promotion                                                           *)
(* ------------------------------------------------------------------ *)

(* The promoted rules face the framework's own pipeline: a fresh suite
   targeting them, SMC compression, and full correctness validation. A
   candidate whose rule surfaces bugs is demoted — discovery feeds the
   tester and the tester has the last word. *)
let promote ?(pool = Par.Pool.sequential) ?disk (config : config) cat by_name ranked =
  let attempted =
    List.filteri (fun i _ -> i < config.top_k) ranked
    |> List.map (fun s -> s.rule_name)
  in
  if attempted = [] then
    { attempted = [];
      promoted = [];
      demoted = [];
      pairs_checked = 0;
      plan_executions = 0;
      promo_suite_queries = 0 }
  else begin
    let rules =
      Optimizer.Rules.all
      @ List.map (fun n -> T.to_rule ~name:n (Hashtbl.find by_name n)) attempted
    in
    let fw = F.create ~options:(rank_options config) ~rules cat in
    let g = Storage.Prng.create (config.params.seed + 29) in
    let targets = List.map (fun n -> Suite.Single n) attempted in
    let suite = Suite.generate ~max_trials:12 ~pool fw g ~targets ~k:config.suite_k in
    let sol = Core.Compress.smc ~pool ?disk fw suite in
    let creport = Core.Correctness.run ~pool fw suite sol in
    let bug_counts = Hashtbl.create 4 in
    List.iter
      (fun (b : Core.Correctness.bug) ->
        let n = Suite.target_name b.target in
        Hashtbl.replace bug_counts n (1 + Option.value ~default:0 (Hashtbl.find_opt bug_counts n)))
      creport.bugs;
    let demoted =
      List.filter_map
        (fun n -> Option.map (fun c -> (n, c)) (Hashtbl.find_opt bug_counts n))
        attempted
    in
    { attempted;
      promoted = List.filter (fun n -> not (Hashtbl.mem bug_counts n)) attempted;
      demoted;
      pairs_checked = creport.pairs_checked;
      plan_executions = creport.executions;
      promo_suite_queries = Array.length suite.entries }
  end

(* ------------------------------------------------------------------ *)
(* The pipeline                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(pool = Par.Pool.sequential) ?disk (config : config) =
  Obs.Trace.with_span "discovery.run"
    ~args:[ ("alphabet", J.String (T.alphabet_name config.alphabet)) ]
  @@ fun () ->
  let cat = Triage.Corpus.catalog_of_spec config.catalog in
  let cands, raw_candidates =
    Obs.Trace.with_span "discovery.enumerate" @@ fun () ->
    T.enumerate_counted ~pool config.alphabet ~max_nodes:config.max_nodes
  in
  let named = name_candidates cands in
  let results =
    Obs.Trace.with_span "discovery.validate" @@ fun () ->
    V.run ~pool config.params cat named
  in
  let survivors =
    List.filter_map
      (fun (r : V.result) ->
        match r.verdict with
        | V.Survived clean -> Some ((r.name, r.cand), clean)
        | _ -> None)
      results
  in
  let count p = List.length (List.filter p results) in
  let refuted = count (fun r -> match r.V.verdict with V.Refuted _ -> true | _ -> false) in
  let inconclusive =
    count (fun r -> match r.V.verdict with V.Inconclusive _ -> true | _ -> false)
  in
  let saved =
    Obs.Trace.with_span "discovery.minimize" @@ fun () ->
    List.map
      (save_refutation ~dir:config.corpus_dir config cat)
      (select_refutations config.max_saved results)
  in
  let ranked, suite_queries, scoring_runs =
    if survivors = [] then ([], 0, 0)
    else
      Obs.Trace.with_span "discovery.rank" @@ fun () ->
      rank ~pool ?disk config cat survivors
  in
  let by_name = Hashtbl.create 64 in
  List.iter (fun ((name, c), _) -> Hashtbl.replace by_name name c) survivors;
  let promotion =
    Obs.Trace.with_span "discovery.promote" @@ fun () ->
    promote ~pool ?disk config cat by_name ranked
  in
  { alphabet = T.alphabet_name config.alphabet;
    max_nodes = config.max_nodes;
    raw_candidates;
    candidates = List.length cands;
    survived = List.length survivors;
    refuted;
    inconclusive;
    checks = List.fold_left (fun n (r : V.result) -> n + r.checks) 0 results;
    rediscovered =
      List.filter_map
        (fun ((name, c), _) ->
          Option.map (fun known -> (name, known)) (T.rediscovered_name c))
        survivors;
    seeded_refuted =
      List.filter_map
        (fun (r : V.result) ->
          match (r.verdict, T.seeded_name r.cand) with
          | V.Refuted _, Some s -> Some s
          | _ -> None)
        results;
    seeded_survived =
      List.filter_map
        (fun (r : V.result) ->
          match (r.verdict, T.seeded_name r.cand) with
          | V.Survived _, Some s -> Some s
          | _ -> None)
        results;
    saved;
    ranked;
    promotion;
    suite_queries;
    scoring_optimizer_runs = scoring_runs }

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let scored_json s =
  J.Obj
    [ ("rule", J.String s.rule_name);
      ("candidate", J.String s.display);
      ("saving", J.Float s.saving);
      ("fired", J.Int s.fired);
      ("shrink", J.Int s.shrink);
      ("clean_instances", J.Int s.clean_instances);
      ( "rediscovered",
        match s.rediscovered with Some n -> J.String n | None -> J.Null );
      ("score", J.Float s.score) ]

let saved_json (s : saved_case) =
  J.Obj
    [ ("id", J.String s.case_id);
      ("rule", J.String s.case_rule);
      ("candidate", J.String s.case_display);
      ("kind", J.String s.kind);
      ("seeded", match s.seeded with Some n -> J.String n | None -> J.Null);
      ("nodes_before", J.Int s.nodes_before);
      ("nodes_after", J.Int s.nodes_after) ]

let report_json r =
  J.Obj
    [ ("alphabet", J.String r.alphabet);
      ("max_nodes", J.Int r.max_nodes);
      ("raw_candidates", J.Int r.raw_candidates);
      ("candidates", J.Int r.candidates);
      ("survived", J.Int r.survived);
      ("refuted", J.Int r.refuted);
      ("inconclusive", J.Int r.inconclusive);
      ("checks", J.Int r.checks);
      ( "rediscovered",
        J.List
          (List.map
             (fun (rule, known) ->
               J.Obj [ ("rule", J.String rule); ("known", J.String known) ])
             r.rediscovered) );
      ("seeded_refuted", J.List (List.map (fun s -> J.String s) r.seeded_refuted));
      ("seeded_survived", J.List (List.map (fun s -> J.String s) r.seeded_survived));
      ("saved", J.List (List.map saved_json r.saved));
      ("ranked", J.List (List.map scored_json r.ranked));
      ( "promotion",
        J.Obj
          [ ("attempted", J.List (List.map (fun s -> J.String s) r.promotion.attempted));
            ("promoted", J.List (List.map (fun s -> J.String s) r.promotion.promoted));
            ( "demoted",
              J.List
                (List.map
                   (fun (n, c) -> J.Obj [ ("rule", J.String n); ("bugs", J.Int c) ])
                   r.promotion.demoted) );
            ("pairs_checked", J.Int r.promotion.pairs_checked);
            ("plan_executions", J.Int r.promotion.plan_executions);
            ("suite_queries", J.Int r.promotion.promo_suite_queries) ] );
      ("suite_queries", J.Int r.suite_queries);
      ("scoring_optimizer_runs", J.Int r.scoring_optimizer_runs) ]

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>discovery (%s/%d): %d candidates (%d raw), %d survived, %d refuted, %d \
     inconclusive, %d checks@,"
    r.alphabet r.max_nodes r.candidates r.raw_candidates r.survived r.refuted
    r.inconclusive r.checks;
  Format.fprintf fmt "rediscovered %d known-sound rewrite(s):" (List.length r.rediscovered);
  List.iter (fun (_, known) -> Format.fprintf fmt " %s" known) r.rediscovered;
  Format.fprintf fmt "@,seeded-unsound refuted: %d/%d"
    (List.length r.seeded_refuted)
    (List.length r.seeded_refuted + List.length r.seeded_survived);
  if r.seeded_survived <> [] then begin
    Format.fprintf fmt "@,SEEDED-UNSOUND SURVIVED:";
    List.iter (fun s -> Format.fprintf fmt " %s" s) r.seeded_survived
  end;
  if r.saved <> [] then begin
    Format.fprintf fmt "@,counterexamples:";
    List.iter
      (fun (s : saved_case) ->
        Format.fprintf fmt "@,  %-28s %-12s %s (%d -> %d nodes)%s" s.case_id s.kind
          s.case_display s.nodes_before s.nodes_after
          (match s.seeded with Some n -> " [seeded: " ^ n ^ "]" | None -> ""))
      r.saved
  end;
  let top = List.filteri (fun i _ -> i < 10) r.ranked in
  if top <> [] then begin
    Format.fprintf fmt "@,top ranked (of %d, %d suite queries, %d scoring runs):"
      (List.length r.ranked) r.suite_queries r.scoring_optimizer_runs;
    List.iter
      (fun s ->
        Format.fprintf fmt
          "@,  %6.2f %-12s %-44s saving=%.1f fired=%d shrink=%d%s" s.score
          s.rule_name s.display s.saving s.fired s.shrink
          (match s.rediscovered with Some n -> " = " ^ n | None -> ""))
      top
  end;
  Format.fprintf fmt "@,promoted %d/%d:" (List.length r.promotion.promoted)
    (List.length r.promotion.attempted);
  List.iter (fun n -> Format.fprintf fmt " %s" n) r.promotion.promoted;
  List.iter
    (fun (n, c) -> Format.fprintf fmt "@,demoted %s: %d bug(s) in promotion suite" n c)
    r.promotion.demoted;
  Format.fprintf fmt "@]"
