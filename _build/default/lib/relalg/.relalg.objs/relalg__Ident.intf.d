lib/relalg/ident.mli: Format Map Set
