lib/relalg/aggregate.ml: Format Ident Result Scalar Storage
