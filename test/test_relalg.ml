(* Unit tests for the relational algebra layer: identifiers, scalars,
   aggregates, logical trees, derived properties. *)
open Relalg
module S = Scalar
module L = Logical
module V = Storage.Value

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let id rel name = Ident.make rel name
let a = id "r0" "a"
let b = id "r0" "b"
let c = id "r1" "c"

(* ------------------------------------------------------------------ *)
(* Ident                                                               *)
(* ------------------------------------------------------------------ *)

let test_ident_round_trip () =
  check string_t "to_sql" "r0_l_orderkey" (Ident.to_sql (id "r0" "l_orderkey"));
  (match Ident.of_sql "r0_l_orderkey" with
  | Some i ->
    check string_t "rel" "r0" i.rel;
    check string_t "name" "l_orderkey" i.name
  | None -> Alcotest.fail "of_sql failed");
  check bool_t "no underscore" true (Ident.of_sql "plain" = None);
  check bool_t "leading underscore" true (Ident.of_sql "_x" = None)

let test_ident_validation () =
  try
    ignore (Ident.make "has_underscore" "x");
    Alcotest.fail "expected failure"
  with Invalid_argument _ -> ()

let test_ident_order () =
  check bool_t "equal" true (Ident.equal a (id "r0" "a"));
  check bool_t "compare by rel then name" true (Ident.compare a c < 0);
  check bool_t "set" true (Ident.Set.mem a (Ident.Set.of_list [ a; b ]))

let test_fresh_rel () =
  Ident.reset_fresh ();
  let x = Ident.fresh_rel () and y = Ident.fresh_rel () in
  check bool_t "fresh distinct" true (x <> y);
  check string_t "starts at r0 after reset" "r0" x

(* ------------------------------------------------------------------ *)
(* Scalar                                                              *)
(* ------------------------------------------------------------------ *)

let test_conjuncts () =
  let p = S.conj [ S.eq (S.col a) (S.int 1); S.eq (S.col b) (S.int 2) ] in
  check int_t "two conjuncts" 2 (List.length (S.conjuncts p));
  check int_t "true has none" 0 (List.length (S.conjuncts S.true_));
  check bool_t "conj [] = true" true (S.equal (S.conj []) S.true_)

let test_columns_and_rename () =
  let p = S.And (S.eq (S.col a) (S.col c), S.IsNull (S.col b)) in
  check int_t "three columns" 3 (Ident.Set.cardinal (S.columns p));
  let renamed = S.rename (fun i -> if Ident.equal i a then c else i) p in
  check bool_t "a gone" true (not (Ident.Set.mem a (S.columns renamed)))

let test_null_rejecting () =
  let cols = Ident.Set.singleton a in
  check bool_t "cmp rejects" true (S.is_null_rejecting (S.eq (S.col a) (S.int 1)) cols);
  check bool_t "is null does not reject" false
    (S.is_null_rejecting (S.IsNull (S.col a)) cols);
  check bool_t "is not null rejects" true
    (S.is_null_rejecting (S.IsNotNull (S.col a)) cols);
  check bool_t "or needs both" false
    (S.is_null_rejecting
       (S.Or (S.eq (S.col a) (S.int 1), S.eq (S.col c) (S.int 2)))
       cols);
  check bool_t "or both sides" true
    (S.is_null_rejecting
       (S.Or (S.eq (S.col a) (S.int 1), S.Cmp (S.Lt, S.col a, S.int 9)))
       cols);
  check bool_t "unrelated pred" false
    (S.is_null_rejecting (S.eq (S.col c) (S.int 1)) cols)

let env_ab : S.env =
 fun i ->
  if Ident.equal i a then Some Storage.Datatype.TInt
  else if Ident.equal i b then Some Storage.Datatype.TString
  else None

let test_type_of () =
  check bool_t "int arith" true
    (S.type_of env_ab (S.Arith (S.Add, S.col a, S.int 1)) = Ok Storage.Datatype.TInt);
  check bool_t "promotion" true
    (S.type_of env_ab (S.Arith (S.Mul, S.col a, S.Const (V.Float 2.0)))
    = Ok Storage.Datatype.TFloat);
  check bool_t "cmp bool" true
    (S.type_of env_ab (S.eq (S.col a) (S.int 1)) = Ok Storage.Datatype.TBool);
  check bool_t "string arith fails" true
    (Result.is_error (S.type_of env_ab (S.Arith (S.Add, S.col b, S.int 1))));
  check bool_t "mixed cmp fails" true
    (Result.is_error (S.type_of env_ab (S.eq (S.col a) (S.col b))));
  check bool_t "null literal comparable" true
    (S.type_of env_ab (S.eq (S.col a) (S.Const V.Null)) = Ok Storage.Datatype.TBool);
  check bool_t "unknown column" true
    (Result.is_error (S.type_of env_ab (S.col c)))

let test_scalar_sql_precedence () =
  check string_t "and of or needs parens" "(r0_a = 1 OR r0_a = 2) AND r0_b = 'x'"
    (S.to_sql
       (S.And
          ( S.Or (S.eq (S.col a) (S.int 1), S.eq (S.col a) (S.int 2)),
            S.eq (S.col b) (S.Const (V.Str "x")) )));
  check string_t "arith precedence" "r0_a + r0_a * 2"
    (S.to_sql (S.Arith (S.Add, S.col a, S.Arith (S.Mul, S.col a, S.int 2))));
  check string_t "explicit grouping kept" "(r0_a + 1) * 2"
    (S.to_sql (S.Arith (S.Mul, S.Arith (S.Add, S.col a, S.int 1), S.int 2)));
  check string_t "is null" "r0_a IS NULL" (S.to_sql (S.IsNull (S.col a)));
  check string_t "not" "NOT r0_a = 1" (S.to_sql (S.Not (S.eq (S.col a) (S.int 1))))

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let test_aggregates () =
  let open Aggregate in
  check bool_t "count star type" true
    (result_type env_ab CountStar = Ok Storage.Datatype.TInt);
  check bool_t "avg is float" true
    (result_type env_ab (Avg (S.col a)) = Ok Storage.Datatype.TFloat);
  check bool_t "sum keeps type" true
    (result_type env_ab (Sum (S.col a)) = Ok Storage.Datatype.TInt);
  check bool_t "sum of string fails" true
    (Result.is_error (result_type env_ab (Sum (S.col b))));
  check bool_t "min of string ok" true
    (result_type env_ab (Min (S.col b)) = Ok Storage.Datatype.TString);
  check bool_t "min dup-insensitive" true (is_duplicate_insensitive (Min (S.col a)));
  check bool_t "sum dup-sensitive" false (is_duplicate_insensitive (Sum (S.col a)));
  check string_t "to_sql" "SUM(r0_a)" (to_sql (Sum (S.col a)));
  check bool_t "columns" true (Ident.Set.mem a (columns (Max (S.col a))))

(* ------------------------------------------------------------------ *)
(* Logical trees                                                       *)
(* ------------------------------------------------------------------ *)

let get0 = L.Get { table = "t1"; alias = "r0" }
let get1 = L.Get { table = "t2"; alias = "r1" }

let join =
  L.Join { kind = L.Inner; pred = S.eq (S.col a) (S.col c); left = get0; right = get1 }

let test_children_roundtrip () =
  check int_t "join has two children" 2 (List.length (L.children join));
  let swapped = L.with_children join [ get1; get0 ] in
  check bool_t "children replaced" true (L.children swapped = [ get1; get0 ]);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Logical.with_children: arity mismatch") (fun () ->
      ignore (L.with_children join [ get0 ]))

let test_size_fold_aliases () =
  let t = L.Filter { pred = S.true_; child = join } in
  check int_t "size" 4 (L.size t);
  check int_t "fold counts nodes" 4 (L.fold (fun n _ -> n + 1) 0 t);
  check (Alcotest.list string_t) "aliases" [ "r0"; "r1" ] (L.aliases t)

let test_kind_names () =
  check string_t "join" "Join" (L.kind_name (L.kind join));
  check string_t "get" "Get" (L.kind_name (L.kind get0));
  check string_t "loj" "LeftOuterJoin" (L.kind_name (L.KJoin L.LeftOuter));
  check string_t "gbagg" "GbAgg" (L.kind_name L.KGroupBy)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_pp_contains_structure () =
  let s = L.to_string join in
  check bool_t "mentions tables" true
    (contains ~sub:"Get(t1 AS r0)" s && contains ~sub:"Get(t2 AS r1)" s)

(* ------------------------------------------------------------------ *)
(* Structural hashing and hash-consing                                  *)
(* ------------------------------------------------------------------ *)

let limit_chain depth leaf =
  let rec wrap n t = if n = 0 then t else wrap (n - 1) (L.Limit { count = 7; child = t }) in
  wrap depth leaf

(* Regression: the polymorphic [Hashtbl.hash] only samples a bounded
   prefix of the value, so deep trees differing only near the leaves all
   hashed alike and every hot table degenerated into linear collision
   scans. [Logical.hash] must keep distinguishing them. *)
let test_deep_hash_no_truncation () =
  let t1 = limit_chain 40 get0 in
  let t2 = limit_chain 40 get1 in
  check bool_t "trees differ" false (L.equal t1 t2);
  check bool_t "Hashtbl.hash collides on deep trees (the bug)" true
    (Hashtbl.hash t1 = Hashtbl.hash t2);
  check bool_t "Logical.hash distinguishes them" false (L.hash t1 = L.hash t2);
  (* And the full hash is consistent with equality. *)
  let t1' = limit_chain 40 (L.Get { table = "t1"; alias = "r0" }) in
  check bool_t "equal trees, equal hash" true
    (L.equal t1 t1' && L.hash t1 = L.hash t1')

let test_hashcons_interning () =
  let h = Hashcons.intern join in
  let h' = Hashcons.intern (L.Join { kind = L.Inner; pred = S.eq (S.col a) (S.col c);
                                     left = get0; right = get1 }) in
  check bool_t "equal trees intern to the same node" true (h == h');
  check int_t "same id" (Hashcons.id h) (Hashcons.id h');
  check bool_t "distinct trees get distinct ids" true
    (Hashcons.id (Hashcons.intern get0) <> Hashcons.id (Hashcons.intern get1));
  check int_t "cached size" (L.size join) (Hashcons.size h);
  check int_t "cached hash" (L.hash join) (Hashcons.hash h);
  check bool_t "repr is equal to the input" true (L.equal join (Hashcons.repr h))

let test_hashcons_rebuild () =
  let n = Hashcons.intern join in
  let swapped = Hashcons.rebuild (Hashcons.rebuild n 0 (Hashcons.intern get1)) 1
      (Hashcons.intern get0) in
  let direct =
    Hashcons.intern
      (L.Join { kind = L.Inner; pred = S.eq (S.col a) (S.col c);
                left = get1; right = get0 })
  in
  check bool_t "rebuild = intern of the rebuilt tree" true (swapped == direct);
  check bool_t "rebuild with the same child is the identity" true
    (Hashcons.rebuild n 0 (Hashcons.intern get0) == n);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Hashcons.rebuild: child index out of range") (fun () ->
      ignore (Hashcons.rebuild n 5 (Hashcons.intern get0)))

let suite =
  [ ( "relalg.ident",
      [ Alcotest.test_case "round trip" `Quick test_ident_round_trip;
        Alcotest.test_case "validation" `Quick test_ident_validation;
        Alcotest.test_case "ordering" `Quick test_ident_order;
        Alcotest.test_case "fresh labels" `Quick test_fresh_rel ] );
    ( "relalg.scalar",
      [ Alcotest.test_case "conjuncts" `Quick test_conjuncts;
        Alcotest.test_case "columns and rename" `Quick test_columns_and_rename;
        Alcotest.test_case "null rejection" `Quick test_null_rejecting;
        Alcotest.test_case "type checking" `Quick test_type_of;
        Alcotest.test_case "sql precedence" `Quick test_scalar_sql_precedence ] );
    ("relalg.aggregate", [ Alcotest.test_case "aggregates" `Quick test_aggregates ]);
    ( "relalg.logical",
      [ Alcotest.test_case "children round trip" `Quick test_children_roundtrip;
        Alcotest.test_case "size/fold/aliases" `Quick test_size_fold_aliases;
        Alcotest.test_case "kind names" `Quick test_kind_names;
        Alcotest.test_case "pretty printing" `Quick test_pp_contains_structure ] );
    ( "relalg.hashcons",
      [ Alcotest.test_case "deep hash not truncated" `Quick
          test_deep_hash_no_truncation;
        Alcotest.test_case "interning" `Quick test_hashcons_interning;
        Alcotest.test_case "rebuild" `Quick test_hashcons_rebuild ] ) ]
