open Relalg
module L = Logical
module H = Hashcons
module S = Scalar
open Storage

type t = {
  catalog : Catalog.t;
  rows_cache : (int, float) Hashtbl.t;  (* hashcons id -> estimated rows *)
  alias_cache : (int, (string * string) list) Hashtbl.t;
      (* hashcons id -> (alias, table) bindings *)
}

let create catalog =
  { catalog; rows_cache = Hashtbl.create 512; alias_cache = Hashtbl.create 512 }

let clamp lo hi x = Float.max lo (Float.min hi x)

let aliases_of est (n : H.node) =
  match Hashtbl.find_opt est.alias_cache n.H.id with
  | Some a -> a
  | None ->
    let a =
      L.fold
        (fun acc node ->
          match node with L.Get { table; alias } -> (alias, table) :: acc | _ -> acc)
        [] n.H.repr
    in
    Hashtbl.replace est.alias_cache n.H.id a;
    a

let col_stats est scope (id : Ident.t) =
  let bindings = List.concat_map (aliases_of est) scope in
  match List.assoc_opt id.rel bindings with
  | None -> None
  | Some table -> (
    match Catalog.find est.catalog table with
    | None -> None
    | Some tb -> Stats.col tb.stats id.name)

let ndv_n est scope id =
  match col_stats est scope id with
  | Some cs when cs.ndv > 0 -> float_of_int cs.ndv
  | _ -> 100.0

let null_fraction est scope id =
  match col_stats est scope id with
  | Some cs when cs.ndv + cs.null_count > 0 ->
    float_of_int cs.null_count /. float_of_int (cs.ndv + cs.null_count)
  | _ -> 0.05

(* Fraction of a numeric/date column's range below a constant. *)
let range_fraction est scope id v op =
  let default = 1.0 /. 3.0 in
  match col_stats est scope id with
  | None -> default
  | Some cs -> (
    let as_float = function
      | Value.Int x -> Some (float_of_int x)
      | Value.Float x -> Some x
      | Value.Date x -> Some (float_of_int x)
      | Value.Null | Value.Str _ | Value.Bool _ -> None
    in
    match (as_float cs.min_value, as_float cs.max_value, as_float v) with
    | Some lo, Some hi, Some x when hi > lo ->
      let below = clamp 0.0 1.0 ((x -. lo) /. (hi -. lo)) in
      (match op with
      | S.Lt | S.Le -> below
      | S.Gt | S.Ge -> 1.0 -. below
      | S.Eq | S.Ne -> default)
    | _ -> default)

let rec pred_selectivity est scope (p : S.t) : float =
  match p with
  | S.Const (Value.Bool true) -> 1.0
  | S.Const (Value.Bool false) | S.Const Value.Null -> 0.0
  | S.Const _ | S.Col _ -> 0.5
  | S.And (a, b) -> pred_selectivity est scope a *. pred_selectivity est scope b
  | S.Or (a, b) ->
    let pa = pred_selectivity est scope a and pb = pred_selectivity est scope b in
    pa +. pb -. (pa *. pb)
  | S.Not a -> 1.0 -. pred_selectivity est scope a
  | S.IsNull (S.Col id) -> null_fraction est scope id
  | S.IsNull _ -> 0.05
  | S.IsNotNull (S.Col id) -> 1.0 -. null_fraction est scope id
  | S.IsNotNull _ -> 0.95
  | S.Cmp (S.Eq, S.Col a, S.Col b) ->
    1.0 /. Float.max (ndv_n est scope a) (ndv_n est scope b)
  | S.Cmp (S.Eq, S.Col a, S.Const _) | S.Cmp (S.Eq, S.Const _, S.Col a) ->
    1.0 /. ndv_n est scope a
  | S.Cmp (S.Eq, _, _) -> 0.1
  | S.Cmp (S.Ne, a, b) -> 1.0 -. pred_selectivity est scope (S.Cmp (S.Eq, a, b))
  | S.Cmp (op, S.Col a, S.Const v) -> range_fraction est scope a v op
  | S.Cmp (op, S.Const v, S.Col a) ->
    let flipped =
      match op with
      | S.Lt -> S.Gt
      | S.Le -> S.Ge
      | S.Gt -> S.Lt
      | S.Ge -> S.Le
      | S.Eq | S.Ne -> op
    in
    range_fraction est scope a v flipped
  | S.Cmp ((S.Lt | S.Le | S.Gt | S.Ge), _, _) -> 1.0 /. 3.0
  | S.Neg _ | S.Arith _ -> 0.5

let selectivity_node est scope pred =
  clamp 1e-4 1.0 (pred_selectivity est scope pred)

let rec rows_node est (n : H.node) : float =
  match Hashtbl.find_opt est.rows_cache n.H.id with
  | Some r -> r
  | None ->
    let r = compute est n in
    let r = Float.max 0.0 r in
    Hashtbl.replace est.rows_cache n.H.id r;
    r

and compute est (n : H.node) : float =
  let kid i = n.H.kids.(i) in
  match n.H.repr with
  | L.Get { table; _ } -> (
    match Catalog.find est.catalog table with
    | Some tb -> float_of_int (Table.row_count tb)
    | None -> 1000.0)
  | L.Filter { pred; _ } ->
    rows_node est (kid 0) *. selectivity_node est [ kid 0 ] pred
  | L.Project _ -> rows_node est (kid 0)
  | L.Join { kind; pred; _ } -> (
    let left = kid 0 and right = kid 1 in
    let nl = rows_node est left and nr = rows_node est right in
    let inner = nl *. nr *. selectivity_node est [ left; right ] pred in
    match kind with
    | L.Inner | L.Cross -> inner
    | L.LeftOuter -> Float.max inner nl
    | L.RightOuter -> Float.max inner nr
    | L.FullOuter -> Float.max inner (nl +. nr)
    | L.Semi -> Float.min nl inner
    | L.AntiSemi -> Float.max 1.0 (nl -. Float.min nl inner))
  | L.GroupBy { keys; _ } ->
    if keys = [] then 1.0
    else
      let n = rows_node est (kid 0) in
      let groups =
        List.fold_left (fun acc k -> acc *. ndv_n est [ kid 0 ] k) 1.0 keys
      in
      Float.min n groups
  | L.UnionAll _ -> rows_node est (kid 0) +. rows_node est (kid 1)
  | L.Union _ -> 0.9 *. (rows_node est (kid 0) +. rows_node est (kid 1))
  | L.Intersect _ -> 0.5 *. Float.min (rows_node est (kid 0)) (rows_node est (kid 1))
  | L.Except _ -> 0.5 *. rows_node est (kid 0)
  | L.Distinct _ -> 0.9 *. rows_node est (kid 0)
  | L.Sort _ -> rows_node est (kid 0)
  | L.Limit { count; _ } ->
    Float.min (float_of_int count) (rows_node est (kid 0))

(* Structural entry points (tests, callers outside the engine's
   hash-consed hot path). *)
let rows est (t : L.t) : float = rows_node est (H.intern t)

let selectivity est scope pred =
  selectivity_node est (List.map H.intern scope) pred

let ndv est scope id = ndv_n est (List.map H.intern scope) id
