module F = Core.Framework
module L = Relalg.Logical
module RS = Executor.Resultset

type verdict =
  | Diverges of Divergence.t
  | Agrees
  | Rule_not_fired
  | Invalid of string

type t = {
  fw : F.t;
  target : Core.Suite.target;
  disabled : string list;
  site : string;
  mutable checks : int;
  mutable executions : int;
}

let create ?(site = "triage-oracle") fw target =
  { fw;
    target;
    disabled = Core.Suite.rules_of target;
    site;
    checks = 0;
    executions = 0 }

let target t = t.target
let checks t = t.checks
let executions t = t.executions

let checks_c = Obs.Metrics.counter "triage.oracle.checks"
let exec_c = Obs.Metrics.counter "triage.oracle.executions"

let check t q =
  t.checks <- t.checks + 1;
  Obs.Metrics.incr checks_c;
  let cat = F.catalog t.fw in
  match Relalg.Props.validate cat q with
  | Error e -> Invalid ("validate: " ^ e)
  | Ok () -> (
    match F.optimize t.fw q with
    | Error e -> Invalid ("optimize: " ^ e)
    | Ok base ->
      if not (List.for_all (fun r -> F.SSet.mem r base.exercised) t.disabled) then
        Rule_not_fired
      else (
        match F.optimize t.fw ~disabled:t.disabled q with
        | Error e -> Invalid ("optimize (disabled): " ^ e)
        | Ok variant ->
          if Optimizer.Physical.equal base.plan variant.plan then Agrees
          else (
            (* Logical executions: counted whether or not the run is
               served from the per-domain result cache, so reported
               totals match across [--jobs] settings. *)
            t.executions <- t.executions + 2;
            Obs.Metrics.add exec_c 2;
            match Executor.Cache.run ~site:t.site cat base.plan with
            | Error e -> Invalid ("baseline exec: " ^ e)
            | Ok expected -> (
              match Executor.Cache.run ~site:t.site cat variant.plan with
              | Error e ->
                Diverges
                  (Divergence.exec_error ~expected_rows:(RS.row_count expected) e)
              | Ok actual -> (
                match RS.diverges expected actual with
                | None -> Agrees
                | Some diff -> Diverges (Divergence.of_diff ~expected ~actual diff))))))
