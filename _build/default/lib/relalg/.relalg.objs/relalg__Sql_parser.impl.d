lib/relalg/sql_parser.ml: Aggregate Ident List Logical Option Printf Props Scalar Sql_lexer Storage String
