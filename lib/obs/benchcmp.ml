(* Benchmark regression gate: compares two bench result documents
   (BENCH_results.json) metric by metric against per-metric thresholds.
   Pure JSON-in, findings-out, so the gate is testable without running a
   benchmark and `qtr bench-diff` is a thin shell around it. *)

type direction = Higher_is_better | Lower_is_better
type kind = Ratio | Seconds | Flag | Count | Delta

type spec = { path : string; dir : direction; kind : kind; threshold : float }

type status = Passed | Regressed | Improved | Missing_old | Missing_new

type finding = {
  spec : spec;
  old_v : float option;
  new_v : float option;
  change_pct : float;
  status : status;
}

(* ------------------------------------------------------------------ *)
(* Path lookup: "details/parallel/runs[jobs=4]/speedup_vs_jobs1"       *)
(* ------------------------------------------------------------------ *)

(* A segment is either a plain object member or "name[key=value]",
   which selects from the list under [name] the object whose [key]
   member equals [value] (int or string). *)
let split_segment seg =
  match String.index_opt seg '[' with
  | None -> (seg, None)
  | Some i when String.length seg > 0 && seg.[String.length seg - 1] = ']' ->
    let name = String.sub seg 0 i in
    let inner = String.sub seg (i + 1) (String.length seg - i - 2) in
    (match String.index_opt inner '=' with
    | None -> (seg, None)
    | Some j ->
      let key = String.sub inner 0 j in
      let v = String.sub inner (j + 1) (String.length inner - j - 1) in
      (name, Some (key, v)))
  | _ -> (seg, None)

let select_match key v items =
  List.find_opt
    (fun item ->
      match Json.member key item with
      | Some (Json.Int i) -> string_of_int i = v
      | Some (Json.String s) -> s = v
      | Some (Json.Bool b) -> string_of_bool b = v
      | _ -> false)
    items

let rec walk json = function
  | [] -> Some json
  | seg :: rest -> (
    let name, selector = split_segment seg in
    match Json.member name json with
    | None -> None
    | Some child -> (
      match selector with
      | None -> walk child rest
      | Some (key, v) -> (
        match child with
        | Json.List items ->
          Option.bind (select_match key v items) (fun item -> walk item rest)
        | _ -> None)))

let find json path = walk json (String.split_on_char '/' path)

let as_float = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | Json.Bool b -> Some (if b then 1.0 else 0.0)
  | _ -> None

let lookup json path = Option.bind (find json path) as_float

(* ------------------------------------------------------------------ *)
(* Default metric set                                                  *)
(* ------------------------------------------------------------------ *)

let ratio path ?(threshold = 0.25) dir = { path; dir; kind = Ratio; threshold }
let seconds path = { path; dir = Lower_is_better; kind = Seconds; threshold = 0.35 }
let flag path = { path; dir = Higher_is_better; kind = Flag; threshold = 0.0 }
let count path = { path; dir = Higher_is_better; kind = Count; threshold = 0.25 }
let delta path ?(threshold = 0.1) dir = { path; dir; kind = Delta; threshold }

let default_specs =
  [ (* Engine/executor speedups: the ratios are what the optimizations
       bought; they may wobble with load but must not collapse. *)
    ratio "details/explore/speedup" Higher_is_better;
    ratio "details/matrix/speedup" Higher_is_better;
    ratio "details/execute/speedup" Higher_is_better;
    ratio "details/execute/batch_speedup_vs_rowcompiled" Higher_is_better;
    ratio "details/execute/compiled_rows_per_sec" ~threshold:0.5 Higher_is_better;
    ratio "details/execute/result_cache/hit_rate" ~threshold:0.2 Higher_is_better;
    (* Correctness flags: machine-independent, zero tolerance. *)
    flag "details/execute/agree";
    flag "details/parallel/runs[jobs=2]/identical_to_jobs1";
    flag "details/parallel/runs[jobs=4]/identical_to_jobs1";
    (* Parallelism: scaling ratio plus the attribution invariant that
       the busy/steal/idle/merge buckets keep explaining the pool's
       wall time. *)
    ratio "details/parallel/runs[jobs=4]/speedup_vs_jobs1" ~threshold:0.3
      Higher_is_better;
    ratio "details/parallel/attribution/coverage" ~threshold:0.1 Higher_is_better;
    (* Overhead hovers around zero (scheduler noise can make it
       negative), so a relative band is meaningless — allow an absolute
       +10pp drift per unit of slack instead. *)
    delta "details/parallel/attribution/profile_overhead" ~threshold:0.1
      Lower_is_better;
    (* Incremental maintenance: byte-identity is a zero-tolerance flag;
       the warm-edit speedup and reuse ratio are what the manifest layer
       bought and must not collapse. *)
    flag "details/incremental/identical";
    ratio "details/incremental/speedup" ~threshold:0.5 Higher_is_better;
    ratio "details/incremental/edges_reused_ratio" ~threshold:0.1 Higher_is_better;
    (* Triage quality. *)
    ratio "details/reduce/median_shrink" ~threshold:0.2 Higher_is_better;
    count "details/reduce/reproducers";
    (* Discovery: enumeration and validation are fully deterministic, so
       the counts gate tightly; the seeded-unsound sweep is a
       zero-tolerance flag. *)
    flag "details/discover/seeded_all_refuted";
    count "details/discover/candidates";
    count "details/discover/rediscovered";
    count "details/discover/promoted";
    (* Symbolic oracle: fully deterministic verdicts, so the flags are
       zero-tolerance and the sound count gates tightly. *)
    flag "details/verify/registered_all_sound";
    flag "details/verify/known_sound_all_sound";
    flag "details/verify/seeded_all_refuted";
    count "details/verify/sound";
    (* Wall clocks, the noisiest tier: per-experiment seconds. *)
    seconds "experiment_seconds/explore";
    seconds "experiment_seconds/matrix";
    seconds "experiment_seconds/incremental";
    seconds "experiment_seconds/parallel";
    seconds "experiment_seconds/execute";
    seconds "experiment_seconds/reduce";
    seconds "experiment_seconds/discover";
    seconds "experiment_seconds/verify" ]

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let change_pct old_v new_v =
  if old_v = 0.0 then if new_v = 0.0 then 0.0 else Float.infinity
  else 100.0 *. (new_v -. old_v) /. Float.abs old_v

let compare_one ~slack spec old_v new_v =
  match (old_v, new_v) with
  | None, None -> None
  | Some _, None -> Some { spec; old_v; new_v; change_pct = 0.0; status = Missing_new }
  | None, Some _ -> Some { spec; old_v; new_v; change_pct = 0.0; status = Missing_old }
  | Some o, Some n ->
    let pct = change_pct o n in
    let status =
      match spec.kind with
      | Flag ->
        (* Zero tolerance, slack-independent: true may not become
           false. *)
        if o >= 0.5 && n < 0.5 then Regressed
        else if o < 0.5 && n >= 0.5 then Improved
        else Passed
      | Delta ->
        (* Absolute band: for near-zero metrics a relative band either
           collapses or (for negative baselines) inverts. *)
        let allowed = spec.threshold *. slack in
        let bad, good =
          match spec.dir with
          | Higher_is_better -> (o -. n > allowed, n -. o > allowed)
          | Lower_is_better -> (n -. o > allowed, o -. n > allowed)
        in
        if bad then Regressed else if good then Improved else Passed
      | Ratio | Seconds | Count ->
        (* Band scaled by |old| so a negative baseline (e.g. a measured
           speedup below zero on a noisy box) keeps the band the right
           way round. *)
        let band = spec.threshold *. slack *. Float.abs o in
        let bad, good =
          match spec.dir with
          | Higher_is_better -> (n < o -. band, n > o +. band)
          | Lower_is_better -> (n > o +. band, n < o -. band)
        in
        if bad then Regressed else if good then Improved else Passed
    in
    Some { spec; old_v; new_v; change_pct = pct; status }

let compare_results ?(specs = default_specs) ?(slack = 1.0) ~old_doc ~new_doc () =
  List.filter_map
    (fun spec ->
      compare_one ~slack spec (lookup old_doc spec.path) (lookup new_doc spec.path))
    specs

let regressions findings =
  List.filter
    (fun f -> match f.status with Regressed | Missing_new -> true | _ -> false)
    findings

(* ------------------------------------------------------------------ *)
(* History records                                                     *)
(* ------------------------------------------------------------------ *)

let extract ?(specs = default_specs) doc =
  List.filter_map
    (fun spec -> Option.map (fun v -> (spec.path, v)) (lookup doc spec.path))
    specs

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let status_name = function
  | Passed -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Missing_old -> "new-metric"
  | Missing_new -> "MISSING"

let finding_json f =
  let opt = function Some v -> Json.Float v | None -> Json.Null in
  Json.Obj
    [ ("metric", Json.String f.spec.path);
      ("old", opt f.old_v);
      ("new", opt f.new_v);
      ("change_pct", Json.Float f.change_pct);
      ("status", Json.String (status_name f.status)) ]

let findings_json findings =
  Json.Obj
    [ ("regressions", Json.Int (List.length (regressions findings)));
      ("findings", Json.List (List.map finding_json findings)) ]

let pp_finding fmt f =
  let show = function Some v -> Printf.sprintf "%.4g" v | None -> "-" in
  Format.fprintf fmt "%-10s %-55s %12s -> %-12s %+.1f%%" (status_name f.status)
    f.spec.path (show f.old_v) (show f.new_v) f.change_pct
