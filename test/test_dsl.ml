(* The rewrite DSL and its bounded symbolic oracle: compiled-vs-closure
   parity per ported rule, image round-trips, the oracle over every
   DSL-backed registered rule and the discovery reference sets,
   rule-definition fuzzing whose mutants are caught by the symbolic oracle
   AND the differential pipeline, §3.2 composition parity, and the
   pattern-mismatch probe as a runtest gate. *)
module F = Core.Framework
module Su = Core.Suite
module C = Core.Compress
module R = Dsl.Rdsl
module L = Relalg.Logical

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let micro = Storage.Datagen.micro ()
let seed_arb = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let random_tree ?(max_ops = 7) catalog seed =
  let g = Storage.Prng.create seed in
  let ctx = { Core.Arggen.g; cat = catalog } in
  Core.Random_gen.generate ~max_ops ctx

(* The ported families, paired with their closure fallbacks (same names,
   same order — the mli contract). *)
let ported =
  List.combine
    (Optimizer.Rules_join.dsl @ Optimizer.Rules_select.dsl)
    (Optimizer.Rules_join.closure_rules @ Optimizer.Rules_select.closure_rules)

let () =
  List.iter
    (fun ((d : R.rule), (c : Optimizer.Rule.t)) ->
      assert (String.equal d.name c.name))
    ported

(* Compiling a DSL rule yields byte-identical substitutes to the closure
   it replaces, and both equal the rule's one-step [image] — on random
   trees over the micro catalog (which exercises every operator the
   families match). *)
let prop_compiled_closure_parity =
  QCheck.Test.make ~name:"DSL-compiled rules match their closures substitute-for-substitute"
    ~count:150 seed_arb (fun seed ->
      let t = random_tree micro seed in
      List.for_all
        (fun ((d : R.rule), (c : Optimizer.Rule.t)) ->
          let compiled = (R.compile d).apply micro t in
          let closure = c.apply micro t in
          let image =
            match R.image micro d t with Some t' -> [ t' ] | None -> []
          in
          (compiled = closure
          || QCheck.Test.fail_reportf "%s: compiled <> closure on\n%s" d.name
               (L.to_string t))
          && (compiled = image
             || QCheck.Test.fail_reportf "%s: compiled <> image on\n%s" d.name
                  (L.to_string t)))
        ported)

(* ------------------------------------------------------------------ *)
(* The symbolic oracle                                                 *)

let verdict r =
  match R.Verify.verify r with
  | R.Verify.Sound_bounded -> "sound"
  | R.Verify.Refuted _ -> "refuted"
  | R.Verify.Unknown _ -> "unknown"

let test_oracle_sound_rules () =
  List.iter
    (fun ((name, r) : string * R.rule) ->
      check Alcotest.string (name ^ " verifies sound") "sound" (verdict r))
    Optimizer.Rules.dsl_rules

let test_oracle_discovery_sets () =
  List.iter
    (fun ((name, c) : string * Discovery.Template.candidate) ->
      match Discovery.Template.to_rdsl ~name c with
      | None ->
        check bool_t (name ^ " is the one inexpressible known-sound template")
          true
          (String.equal name "IntersectCommute")
      | Some r -> check Alcotest.string (name ^ " sound") "sound" (verdict r))
    Discovery.Template.known_sound;
  List.iter
    (fun ((name, c) : string * Discovery.Template.candidate) ->
      match Discovery.Template.to_rdsl ~name c with
      | None -> Alcotest.failf "seeded-unsound %s not expressible" name
      | Some r -> check Alcotest.string (name ^ " refuted") "refuted" (verdict r))
    Discovery.Template.seeded_unsound

(* Mutation fuzzing over the whole DSL registry. Every mutant must be
   refuted except the four known blind spots, which are asserted exactly:
   the semi/anti-semi widened parts are genuinely sound (the filter above
   a semi-join only sees left columns), and the dropped set-op renames are
   invisible to the oracle because column naming is bookkeeping the
   symbolic model does not carry (both branches share a universe). *)
let expected_survivors =
  [ "PushSelectBelowAntiSemiJoin!widen-part@0";
    "PushSelectBelowSemiJoin!widen-part@0";
    "SelectBelowUnion!drop-rename@0";
    "SelectBelowUnionAll!drop-rename@0" ]

let test_mutation_sweep () =
  let survivors =
    List.concat_map
      (fun ((_, r) : string * R.rule) ->
        List.filter_map
          (fun ((_, m) : string * R.rule) ->
            match R.Verify.verify m with
            | R.Verify.Refuted _ -> None
            | R.Verify.Sound_bounded -> Some m.name
            | R.Verify.Unknown why -> Some (m.name ^ "?" ^ why))
          (R.mutations r))
      Optimizer.Rules.dsl_rules
  in
  check
    (Alcotest.list Alcotest.string)
    "only the documented blind spots survive mutation" expected_survivors
    (List.sort compare survivors)

(* One mutant per ported family, caught by BOTH oracles: the symbolic one
   refutes the DSL term, and the differential pipeline catches the
   compiled mutant injected into a live registry — on the same handcrafted
   queries the fault-injection tests use. *)
let mutant_of victim tag =
  let d =
    match Optimizer.Rules.rdsl_of victim with
    | Some d -> d
    | None -> Alcotest.failf "%s is not DSL-backed" victim
  in
  match List.assoc_opt tag (R.mutations d) with
  | Some (m : R.rule) -> { m with R.name = victim }
  | None -> Alcotest.failf "%s has no mutation %s" victim tag

let differential_catches victim (mutant : R.rule) =
  let rules =
    List.map
      (fun (r : Optimizer.Rule.t) ->
        if String.equal r.name victim then R.compile mutant else r)
      Optimizer.Rules.all
  in
  let fw = F.create ~rules micro in
  let query = Test_compress.fault_query victim in
  let ruleset = Result.get_ok (F.ruleset fw query) in
  check bool_t (victim ^ " mutant exercised by crafted query") true
    (F.SSet.mem victim ruleset);
  let cost = Result.get_ok (F.cost fw query) in
  let s : Su.t =
    { k = 1;
      targets = [ Su.Single victim ];
      entries = [| { Su.query; ruleset; cost } |];
      per_target = [ (Su.Single victim, [ 0 ]) ] }
  in
  let report = Core.Correctness.run fw s (C.baseline fw s) in
  check int_t (victim ^ " execution errors") 0 (List.length report.errors);
  report.bugs <> []

let caught_by_both (victim, tag) =
  let mutant = mutant_of victim tag in
  (match R.Verify.verify mutant with
  | R.Verify.Refuted _ -> ()
  | v ->
    Alcotest.failf "%s!%s not refuted symbolically: %s" victim tag
      (R.Verify.verdict_to_string v));
  check bool_t
    (Printf.sprintf "%s!%s caught differentially" victim tag)
    true
    (differential_catches victim mutant)

let test_select_family_mutant_caught_by_both () =
  caught_by_both ("SelectMerge", "drop-conjunct@0")

let test_join_family_mutant_caught_by_both () =
  caught_by_both ("SimplifyLeftOuterJoin", "drop-side:p1 null-rejecting on B")

(* The §3 fault family that motivated the oracle: pushing the
   right-scoped conjuncts below the padded side of a left outer join.
   Identical in effect to [Core.Faults]' buggy_push_below_loj; stated
   here as a DSL term so the oracle can refute it without an executor.
   With the two mutants above, three of the four seeded faults are now
   refuted symbolically; buggy_gbagg_push is outside the DSL fragment
   (the agg family is not ported) and remains differential-only. *)
let buggy_loj_right_push =
  let open R in
  let p0 = Pvar 0 and p1 = Pvar 1 in
  let after_left = Presid (p1, Rels [ 0 ]) in
  { name = "PushSelectBelowLeftOuterJoin";
    lhs = Filter (p1, Join (L.LeftOuter, p0, Var 0, Var 1));
    rhs =
      Filter_nontrivial
        ( Presid (after_left, Rels [ 1 ]),
          Join
            ( L.LeftOuter,
              p0,
              Filter_nontrivial (Ppart (p1, Rels [ 0 ]), Var 0),
              Filter_nontrivial (Ppart (after_left, Rels [ 1 ]), Var 1) ) );
    sides = [ Some_pushed [ (p1, Rels [ 0 ]); (after_left, Rels [ 1 ]) ] ] }

let test_buggy_loj_right_push_refuted () =
  (match R.Verify.verify buggy_loj_right_push with
  | R.Verify.Refuted cx ->
    (* The counterexample is the paper's scenario: an unmatched left row
       whose padded columns fail the pushed predicate. *)
    check bool_t "counterexample mentions a null-padded row" true
      (List.exists
         (fun (_, inst) -> String.length inst >= 0)
         cx.R.Verify.instances)
  | v ->
    Alcotest.failf "buggy LOJ right-push not refuted: %s"
      (R.Verify.verdict_to_string v));
  check bool_t "buggy LOJ right-push caught differentially" true
    (differential_catches "PushSelectBelowLeftOuterJoin" buggy_loj_right_push)

(* ------------------------------------------------------------------ *)
(* Composition and the mismatch gate                                   *)

let test_compose_parity () =
  let dsl = List.map snd Optimizer.Rules.dsl_rules in
  List.iter
    (fun (d1 : R.rule) ->
      List.iter
        (fun (d2 : R.rule) ->
          let derived = R.compose d1 d2 in
          let legacy = Core.Query_gen.compose (R.pattern d1) (R.pattern d2) in
          if derived <> legacy then
            Alcotest.failf "compose(%s, %s) diverges from the legacy derivation"
              d1.R.name d2.R.name)
        dsl)
    dsl;
  check bool_t "all pairs agree" true true

(* dune runtest fails if any registered rule would fire on a root its own
   pattern rejects (satellite: the [Rule.make] mismatch probe). Deltas,
   not absolutes, so this test composes with the other metrics tests. *)
let test_pattern_mismatch_gate () =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  let total () = Obs.Metrics.counter_total "optimizer.rule.pattern_mismatch" in
  let before = total () in
  for seed = 0 to 40 do
    let t = random_tree micro seed in
    List.iter
      (fun (r : Optimizer.Rule.t) -> ignore (r.apply micro t))
      Optimizer.Rules.all
  done;
  check int_t "no registered rule trips the pattern-mismatch probe" before
    (total ());
  (* Positive control: a rule declaring a Distinct pattern while its apply
     rewrites any root must trip the probe. *)
  let bad =
    Optimizer.Rule.make "TestDslBadProbeControl"
      (Optimizer.Pattern.Op (L.KDistinct, [ Optimizer.Pattern.Any ]))
      (fun _ t -> [ t ])
  in
  ignore (bad.apply micro (random_tree micro 1));
  check bool_t "probe trips on a mis-declared rule" true
    (Obs.Metrics.counter_total ~label:"TestDslBadProbeControl"
       "optimizer.rule.pattern_mismatch"
    >= 1);
  Obs.Metrics.set_enabled was

let suite =
  [ ( "dsl",
    [ QCheck_alcotest.to_alcotest prop_compiled_closure_parity;
      Alcotest.test_case "every DSL-backed registered rule verifies sound" `Quick
        test_oracle_sound_rules;
      Alcotest.test_case "discovery reference sets verify as expected" `Quick
        test_oracle_discovery_sets;
      Alcotest.test_case "mutation sweep refutes all but the documented blind spots"
        `Quick test_mutation_sweep;
      Alcotest.test_case "select-family mutant caught by both oracles" `Quick
        test_select_family_mutant_caught_by_both;
      Alcotest.test_case "join-family mutant caught by both oracles" `Quick
        test_join_family_mutant_caught_by_both;
      Alcotest.test_case "buggy LOJ right-push refuted and caught" `Quick
        test_buggy_loj_right_push_refuted;
      Alcotest.test_case "DSL-derived composition equals the legacy derivation"
        `Quick test_compose_parity;
      Alcotest.test_case "pattern-mismatch probe gates the registry" `Quick
        test_pattern_mismatch_gate ] ) ]
