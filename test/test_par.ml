(* The parallel worker pool and its determinism contract: jobs-N results
   are identical to jobs-1 across suite generation, compression,
   correctness validation, and triage. Also the PR's bug regressions:
   SMC invocation accounting, under-coverage reporting, Kqueue ties.

   Nothing here measures wall-clock speedup — CI machines may have one
   core, where extra domains only add overhead. Determinism is the
   testable contract; speed is recorded by the [parallel] bench. *)
module F = Core.Framework
module Su = Core.Suite
module C = Core.Compress

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- the pool itself ---------------- *)

let test_pool_basics () =
  check int_t "sequential is one job" 1 (Par.Pool.jobs Par.Pool.sequential);
  Alcotest.check_raises "rejects zero jobs"
    (Invalid_argument "Par.Pool.create: jobs must be >= 1") (fun () ->
      ignore (Par.Pool.create ~jobs:0 ()));
  let pool = Par.Pool.create ~jobs:4 () in
  (* results land in input order whatever domain computed them *)
  let xs = List.init 100 (fun i -> i) in
  check (Alcotest.list int_t) "map_list keeps order"
    (List.map (fun i -> i * i) xs)
    (Par.Pool.map_list pool (fun i -> i * i) xs);
  check (Alcotest.list int_t) "init keeps order"
    (List.init 20 (fun i -> i + 1))
    (Array.to_list (Par.Pool.init pool 20 (fun i -> i + 1)))

let test_pool_exceptions () =
  (* the lowest-index failure is the one re-raised, as sequentially *)
  let pool = Par.Pool.create ~jobs:4 () in
  Alcotest.check_raises "first failure wins" (Failure "task 3") (fun () ->
      ignore
        (Par.Pool.map_list pool
           (fun i -> if i >= 3 then failwith (Printf.sprintf "task %d" i) else i)
           (List.init 10 (fun i -> i))))

(* ---------------- Kqueue tie-breaking ---------------- *)

let test_kqueue_ties () =
  (* Equal costs: the kept set must be a function of (cost, query) alone,
     not of push order. *)
  let runs =
    List.map
      (fun order ->
        let q = C.Kqueue.create 2 in
        List.iter (fun i -> C.Kqueue.push q 1.0 i) order;
        C.Kqueue.contents q)
      [ [ 5; 2; 9 ]; [ 9; 5; 2 ]; [ 2; 9; 5 ]; [ 9; 2; 5 ] ]
  in
  List.iter
    (fun contents ->
      check (Alcotest.list (Alcotest.pair int_t (Alcotest.float 0.0)))
        "ties keep smallest query indices"
        [ (2, 1.0); (5, 1.0) ]
        contents)
    runs;
  (* mixed costs, permuted pushes: same contents *)
  let items = [ (3.0, 1); (1.0, 4); (2.0, 0); (1.0, 2); (2.0, 7) ] in
  let expect =
    let q = C.Kqueue.create 3 in
    List.iter (fun (c, i) -> C.Kqueue.push q c i) items;
    C.Kqueue.contents q
  in
  check (Alcotest.list (Alcotest.pair int_t (Alcotest.float 0.0)))
    "expected cheapest three" [ (2, 1.0); (4, 1.0); (0, 2.0) ] expect;
  List.iter
    (fun perm ->
      let q = C.Kqueue.create 3 in
      List.iter (fun (c, i) -> C.Kqueue.push q c i) perm;
      check bool_t "permutation-independent" true (C.Kqueue.contents q = expect))
    [ List.rev items;
      [ (1.0, 2); (2.0, 7); (3.0, 1); (1.0, 4); (2.0, 0) ];
      [ (2.0, 0); (1.0, 2); (2.0, 7); (1.0, 4); (3.0, 1) ] ]

(* ---------------- handcrafted suite: SMC + under-coverage ---------------- *)

let micro = Storage.Datagen.micro ()

(* One query exercising SelectMerge on the micro catalog (same shape as
   test_compress's fault query, minus the fault). *)
let select_merge_query =
  let open Relalg in
  let module L = Logical in
  let module S = Scalar in
  let id = Ident.make in
  let t1 = L.Get { table = "t1"; alias = "x" } in
  let a = id "x" "a" and cc = id "x" "c" in
  L.Filter
    { pred = S.Cmp (S.Ge, S.col a, S.int 0);
      child =
        L.Filter
          { pred = S.eq (S.col cc) (S.Const (Storage.Value.Str "x")); child = t1 } }

(* A suite that asks for k=2 but only has one covering query: every
   algorithm must report the deficit instead of silently clamping. *)
let starved_suite fw : Su.t =
  let query = select_merge_query in
  let ruleset = Result.get_ok (F.ruleset fw query) in
  check bool_t "query exercises SelectMerge" true (F.SSet.mem "SelectMerge" ruleset);
  let cost = Result.get_ok (F.cost fw query) in
  { k = 2;
    targets = [ Su.Single "SelectMerge" ];
    entries = [| { Su.query; ruleset; cost } |];
    per_target = [ (Su.Single "SelectMerge", [ 0 ]) ] }

let test_under_coverage_reported () =
  let fw = F.create micro in
  let suite = starved_suite fw in
  List.iter
    (fun (name, sol) ->
      check bool_t (name ^ " picked the one covering query") true
        (List.for_all (fun (_, picks) -> List.length picks = 1) sol.C.assignment);
      check bool_t (name ^ " reports deficit 1") true
        (sol.C.under_covered = [ (Su.Single "SelectMerge", 1) ]))
    [ ("baseline", C.baseline fw suite);
      ("smc", C.smc fw suite);
      ("topk", C.topk fw suite);
      ("topk_mono", C.topk ~exploit_monotonicity:true fw suite) ]

let test_smc_invocations_regression () =
  (* The SMC solution used to report invocations = 0 even though the
     edge costs in its assignment were computed. It must count one
     computed edge per (target, pick). *)
  let fw = F.create micro in
  let suite = starved_suite fw in
  let sol = C.smc fw suite in
  let picks = List.fold_left (fun n (_, ps) -> n + List.length ps) 0 sol.C.assignment in
  check bool_t "smc picked something" true (picks > 0);
  check int_t "smc invocations = computed edges" picks sol.C.invocations;
  (* and the edges really carry costs, not placeholders *)
  List.iter
    (fun (_, ps) ->
      List.iter (fun (_, c) -> check bool_t "finite edge" true (Float.is_finite c)) ps)
    sol.C.assignment

(* ---------------- jobs-1 vs jobs-4 determinism ---------------- *)

let cat = Storage.Datagen.tpch ~scale:0.001 ()
let quick_options = { Optimizer.Engine.default_options with max_trees = 400 }

let rules4 =
  [ "JoinCommute"; "PushSelectBelowJoin"; "SelectMerge"; "MergeSelectIntoJoin" ]

let pipeline_with jobs =
  let pool = Par.Pool.create ~jobs () in
  let fw = F.create ~options:quick_options cat in
  let g = Storage.Prng.create 11 in
  let suite =
    Su.generate fw g ~targets:(List.map (fun r -> Su.Single r) rules4) ~k:3 ~pool
  in
  let sols =
    [ C.baseline ~pool fw suite; C.smc ~pool fw suite; C.topk ~pool fw suite ]
  in
  let report = Core.Correctness.run ~pool fw suite (List.nth sols 2) in
  (suite, sols, report)

let test_jobs_deterministic () =
  let suite1, sols1, report1 = pipeline_with 1 in
  let suite4, sols4, report4 = pipeline_with 4 in
  check bool_t "suites identical (jobs 1 = jobs 4)" true (suite1 = suite4);
  List.iteri
    (fun i (s1, s4) ->
      check bool_t (Printf.sprintf "solution %d identical" i) true (s1 = s4))
    (List.combine sols1 sols4);
  check bool_t "correctness reports identical" true (report1 = report4);
  check bool_t "smc counted invocations" true
    ((List.nth sols1 1).C.invocations > 0)

let test_triage_deterministic () =
  (* With a fault injected, bugs surface and triage fans reductions out;
     the triage report must still be identical for any pool size. *)
  let victim = "SelectMerge" in
  let rules = Core.Faults.inject victim in
  let fw = F.create ~rules micro in
  let suite = { (starved_suite fw) with k = 1 } in
  let sol = C.baseline fw suite in
  let run jobs =
    let pool = Par.Pool.create ~jobs () in
    let report = Core.Correctness.run ~pool fw suite sol in
    (report, Triage.Pipeline.triage ~pool fw report)
  in
  let report1, triage1 = run 1 in
  let report4, triage4 = run 4 in
  check bool_t "fault detected" true (report1.bugs <> []);
  check bool_t "correctness identical under fault" true (report1 = report4);
  check bool_t "triage reports identical" true (triage1 = triage4);
  check bool_t "triage produced cases" true (triage1.cases <> [])

let suite =
  [ ( "par.pool",
      [ Alcotest.test_case "basics" `Quick test_pool_basics;
        Alcotest.test_case "exception order" `Quick test_pool_exceptions ] );
    ( "par.compress",
      [ Alcotest.test_case "kqueue tie-break" `Quick test_kqueue_ties;
        Alcotest.test_case "under-coverage reported" `Slow
          test_under_coverage_reported;
        Alcotest.test_case "smc invocation accounting" `Slow
          test_smc_invocations_regression ] );
    ( "par.determinism",
      [ Alcotest.test_case "jobs 1 = jobs 4 pipeline" `Slow test_jobs_deterministic;
        Alcotest.test_case "jobs 1 = jobs 4 triage" `Slow test_triage_deterministic ] ) ]
