module RS = Executor.Resultset

type kind = Row_count | Row_content | Exec_error

let kind_name = function
  | Row_count -> "row_count"
  | Row_content -> "row_content"
  | Exec_error -> "exec_error"

let kind_of_name = function
  | "row_count" -> Some Row_count
  | "row_content" -> Some Row_content
  | "exec_error" -> Some Exec_error
  | _ -> None

type t = {
  kind : kind;
  expected_rows : int;
  actual_rows : int;
  diff : RS.diff;
  detail : string;
}

let of_diff ~(expected : RS.t) ~(actual : RS.t) diff =
  let er = RS.row_count expected and ar = RS.row_count actual in
  { kind = (if er <> ar then Row_count else Row_content);
    expected_rows = er;
    actual_rows = ar;
    diff;
    detail = RS.diff_summary diff }

let classify ~expected ~actual =
  of_diff ~expected ~actual (RS.bag_diff expected actual)

let of_bug (b : Core.Correctness.bug) =
  { kind = (if b.expected_rows <> b.actual_rows then Row_count else Row_content);
    expected_rows = b.expected_rows;
    actual_rows = b.actual_rows;
    diff = b.diff;
    detail = b.detail }

let exec_error ~expected_rows msg =
  { kind = Exec_error;
    expected_rows;
    actual_rows = 0;
    diff = RS.no_diff;
    detail = "variant plan execution failed: " ^ msg }

let pp fmt d =
  Format.fprintf fmt "%s: %d rows vs %d rows (%s)" (kind_name d.kind)
    d.expected_rows d.actual_rows d.detail
