(** Pattern-based query generation — the paper's first contribution (§3).

    Fetch the rule's pattern through the optimizer's export API, build a
    logical query tree by instantiating the pattern (generic placeholders
    become scans; operators get arguments via {!Arggen}), convert to SQL,
    and verify with [RuleSet(q)] that the target rule actually fired.
    Rule pairs use pattern composition (§3.2): root-combination under a
    join or union, and substitution of one pattern into a generic slot of
    the other. *)

type generated = {
  query : Relalg.Logical.t;
  trials : int;  (** instantiation attempts consumed, successful one included *)
}

val instantiate : Arggen.ctx -> Optimizer.Pattern.t -> Relalg.Logical.t option
(** One instantiation attempt. [None] when argument selection fails (e.g.
    no join predicate exists between the chosen tables). Returned trees
    satisfy {!Relalg.Props.validate}. *)

val compose :
  Optimizer.Pattern.t -> Optimizer.Pattern.t -> Optimizer.Pattern.t list
(** All composite patterns for a rule pair, smallest first: substitutions
    of each pattern into each generic slot of the other, then
    root-combinations under Join and UnionAll. *)

val for_rule :
  ?max_trials:int ->
  ?extra_ops:int ->
  Framework.t ->
  Storage.Prng.t ->
  string ->
  generated option
(** PATTERN generation for a singleton rule: instantiate the rule's
    pattern until a query exercising the rule is found (checked via
    [RuleSet]). [extra_ops] pads the query with additional random
    operators, for complex correctness-test queries (§2.3). Default
    [max_trials] is 50. *)

val for_pair :
  ?max_trials:int ->
  ?extra_ops:int ->
  Framework.t ->
  Storage.Prng.t ->
  string * string ->
  generated option
(** PATTERN generation for a rule pair: round-robin over the composite
    patterns (smallest first) until a query exercises both rules. *)

val relevant_for_rule :
  ?max_trials:int ->
  ?extra_ops:int ->
  Framework.t ->
  Storage.Prng.t ->
  string ->
  generated option
(** The §7 variant of the generation problem: a query for which the rule is
    {e relevant} — disabling it changes the optimizer's plan choice, not
    merely the search. Implemented as pattern-based generation with an
    additional [Plan(q) <> Plan(q, ¬{r})] verification; [trials] counts
    every instantiation attempt. *)

val random_for_rules :
  ?max_trials:int ->
  ?min_ops:int ->
  ?max_ops:int ->
  Framework.t ->
  Storage.Prng.t ->
  string list ->
  generated option
(** The RANDOM baseline for the same task: stochastic queries until one
    exercises every rule in the list. *)
