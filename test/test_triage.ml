(* Bug triage: delta reduction of failing queries, signature dedup, corpus
   persistence/replay, SQL round-trip of minimized reproducers, and the
   end-to-end claim that generation surfaces every injected fault. *)
module F = Core.Framework
module Su = Core.Suite
module C = Core.Compress
module L = Relalg.Logical
module O = Triage.Oracle
module R = Triage.Reduce
module P = Triage.Pipeline

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let quick_options = { Optimizer.Engine.default_options with max_trees = 400 }
let micro = Storage.Datagen.micro ()

(* Bugs in the wild come [extra_ops]-padded: bury a spurious operator
   inside the handcrafted reproducer core (shared with {!Test_compress})
   that the reducer must strip again. The padding goes {e below} the
   core, on its first base table — padding {e above} it (a Sort, say)
   makes the buggy plan's extra output rows lose on cost, so the
   optimizer quietly picks the sound plan and the divergence vanishes. *)
let rec pad q =
  match q with
  | L.Get _ -> L.Distinct q
  | _ -> (
    match L.children q with
    | first :: rest -> L.with_children q (pad first :: rest)
    | [] -> q)

let buggy_fw victim = F.create ~options:quick_options ~rules:(Core.Faults.inject victim) micro

let reduce_fault victim =
  let fw_b = buggy_fw victim in
  let q0 = pad (Test_compress.fault_query victim) in
  let oracle = O.create fw_b (Su.Single victim) in
  match R.run oracle q0 with
  | Error e -> Alcotest.failf "%s: padded reproducer irreducible: %s" victim e
  | Ok (reduced, divergence, stats) -> (fw_b, q0, reduced, divergence, stats)

(* Tentpole acceptance: every reproducer shrinks strictly, and the shrunk
   tree is still a true reproducer — the target rule fires on it and the
   plans with and without the rule diverge on the executor. *)
let test_reduce_strict_shrink victim () =
  let fw_b, q0, reduced, divergence, stats = reduce_fault victim in
  check int_t "original size accounted" (L.size q0) stats.R.original_size;
  check int_t "reduced size accounted" (L.size reduced) stats.R.reduced_size;
  check bool_t "strict shrink" true (stats.R.reduced_size < stats.R.original_size);
  check bool_t "padding stripped" true
    (stats.R.reduced_size <= L.size (Test_compress.fault_query victim));
  check bool_t "steps counted" true (stats.R.steps > 0);
  check bool_t "divergence has rows or error" true
    (divergence.Triage.Divergence.expected_rows >= 0);
  (* Re-verify the reduced tree with a fresh oracle: rule fires AND the
     executed plans diverge when the rule is disabled. *)
  (match O.check (O.create fw_b (Su.Single victim)) reduced with
  | O.Diverges _ -> ()
  | O.Agrees -> Alcotest.fail "reduced query no longer diverges"
  | O.Rule_not_fired -> Alcotest.fail "reduced query no longer fires the rule"
  | O.Invalid e -> Alcotest.failf "reduced query invalid: %s" e);
  check bool_t "rule still in RuleSet" true
    (F.SSet.mem victim (Result.get_ok (F.ruleset fw_b reduced)))

(* Every candidate is one edit away: distinct from the input, and at least
   one candidate is a strict hoist (smaller tree). *)
let test_candidates () =
  let core = Test_compress.fault_query "SelectMerge" in
  let q = pad core in
  let cs = R.candidates q in
  check bool_t "has candidates" true (cs <> []);
  check bool_t "all differ from input" true (List.for_all (fun c -> not (L.equal c q)) cs);
  check bool_t "some candidate smaller" true (List.exists (fun c -> L.size c < L.size q) cs);
  (* deleting the padding operator is a one-edit candidate *)
  check bool_t "unpadded core among candidates" true (List.exists (L.equal core) cs)

(* Two differently-padded copies of the same core bug must collapse onto
   one signature: same target, same divergence kind, same shape after
   reduction (literals differ — the shape hash ignores them). *)
let test_signature_dedup () =
  let victim = "SelectMerge" in
  let fw_b = buggy_fw victim in
  let core1 = Test_compress.fault_query victim in
  let core2 =
    (* same shape, different constant and padding *)
    let module S = Relalg.Scalar in
    match core1 with
    | L.Filter { pred = S.Cmp (op, l, _); child } ->
      L.Filter { pred = S.Cmp (op, l, S.int 5); child }
    | _ -> Alcotest.fail "unexpected core shape"
  in
  let q1 = pad core1 in
  let q2 = core2 in
  let entry q =
    { Su.query = q;
      ruleset = Result.get_ok (F.ruleset fw_b q);
      cost = Result.get_ok (F.cost fw_b q) }
  in
  let s : Su.t =
    { k = 2;
      targets = [ Su.Single victim ];
      entries = [| entry q1; entry q2 |];
      per_target = [ (Su.Single victim, [ 0; 1 ]) ] }
  in
  let report = Core.Correctness.run fw_b s (C.baseline fw_b s) in
  check int_t "both padded copies are bugs" 2 (List.length report.bugs);
  let t = P.triage fw_b report in
  check int_t "one case after dedup" 1 (List.length t.P.cases);
  check int_t "one duplicate merged" 1 t.P.duplicates;
  let case = List.hd t.P.cases in
  check int_t "dup_count" 2 case.P.dup_count;
  check bool_t "signature key is stable" true
    (Triage.Signature.key case.P.signature
    = Triage.Signature.key
        (Triage.Signature.make case.P.target case.P.divergence.Triage.Divergence.kind
           case.P.reduced))

(* Satellite: SQL round-trip. Every minimized reproducer must survive
   print -> parse structurally intact — that is what makes the on-disk
   corpus trustworthy. *)
let test_sql_roundtrip () =
  List.iter
    (fun victim ->
      let _, _, reduced, _, _ = reduce_fault victim in
      let sql = Relalg.Sql_print.to_sql micro reduced in
      match Relalg.Sql_parser.parse micro sql with
      | Error e -> Alcotest.failf "%s: reparse failed: %s\n%s" victim e sql
      | Ok q ->
        check bool_t (victim ^ " round-trips structurally") true (L.equal q reduced))
    Core.Faults.names

(* Corpus: save every micro-fault case, then replay from disk. With the
   fault re-injected every case must reproduce; against the sound
   registry none may. *)
let test_corpus_replay () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "qtr-test-corpus" in
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  let total = ref 0 in
  List.iter
    (fun victim ->
      let fw_b = buggy_fw victim in
      let q = pad (Test_compress.fault_query victim) in
      let entry =
        { Su.query = q;
          ruleset = Result.get_ok (F.ruleset fw_b q);
          cost = Result.get_ok (F.cost fw_b q) }
      in
      let s : Su.t =
        { k = 1;
          targets = [ Su.Single victim ];
          entries = [| entry |];
          per_target = [ (Su.Single victim, [ 0 ]) ] }
      in
      let report = Core.Correctness.run fw_b s (C.baseline fw_b s) in
      let t = P.triage fw_b report in
      check bool_t (victim ^ " triaged") true (t.P.cases <> []);
      (match
         P.save_corpus ~dir ~catalog:Triage.Corpus.Micro ~budget:400 ~fault:victim
           micro t
       with
      | Error e -> Alcotest.failf "%s: save failed: %s" victim e
      | Ok paths -> total := !total + List.length paths))
    Core.Faults.names;
  check bool_t "corpus non-empty" true (!total >= List.length Core.Faults.names);
  (* Self-check: re-injecting each case's recorded fault reproduces it. *)
  (match P.replay ~reinject:true ~dir () with
  | Error e -> Alcotest.failf "reinject replay failed: %s" e
  | Ok rs ->
    check int_t "replayed all cases" !total (List.length rs);
    List.iter
      (fun (r : P.replayed) ->
        match r.P.outcome with
        | P.Reproduced _ -> ()
        | o ->
          Alcotest.failf "%s: expected reproduced, got %s" r.P.case.Triage.Corpus.meta.id
            (match o with
            | P.Clean -> "clean"
            | P.Not_fired -> "rule_not_fired"
            | P.Failed e -> "failed: " ^ e
            | P.Reproduced _ -> assert false))
      rs);
  (* Regression gate: the sound registry shows no divergence. *)
  match P.replay ~dir () with
  | Error e -> Alcotest.failf "gate replay failed: %s" e
  | Ok rs ->
    List.iter
      (fun (r : P.replayed) ->
        match r.P.outcome with
        | P.Reproduced _ ->
          Alcotest.failf "%s: diverges under sound rules" r.P.case.Triage.Corpus.meta.id
        | P.Failed e -> Alcotest.failf "%s: replay error: %s" r.P.case.Triage.Corpus.meta.id e
        | P.Clean | P.Not_fired -> ())
      rs

(* Satellite: end to end, for EVERY fault in the registry, the stochastic
   pipeline (generate -> compress -> validate) surfaces at least one bug.
   Generation is seeded; each fault gets a few seeds to do so. *)
let test_e2e_every_fault_surfaces () =
  let cat = Storage.Datagen.tpch ~scale:0.001 () in
  List.iter
    (fun victim ->
      let fw_b =
        F.create ~options:quick_options ~rules:(Core.Faults.inject victim) cat
      in
      let found =
        List.exists
          (fun seed ->
            let g = Storage.Prng.create seed in
            let s =
              Su.generate fw_b g ~targets:[ Su.Single victim ] ~k:8 ~extra_ops:2
            in
            let sol = C.topk ~exploit_monotonicity:true fw_b s in
            (Core.Correctness.run fw_b s sol).bugs <> [])
          [ 1; 5; 4; 2 ]
      in
      check bool_t (victim ^ " surfaced by generation") true found)
    Core.Faults.names

let reduce_case victim = Alcotest.test_case victim `Slow (test_reduce_strict_shrink victim)

let suite =
  [ ( "triage.reduce",
      Alcotest.test_case "one-edit candidates" `Quick test_candidates
      :: List.map reduce_case Core.Faults.names );
    ( "triage.signature",
      [ Alcotest.test_case "padded duplicates dedup" `Slow test_signature_dedup ] );
    ( "triage.corpus",
      [ Alcotest.test_case "sql round-trip of reproducers" `Slow test_sql_roundtrip;
        Alcotest.test_case "save/load/replay" `Slow test_corpus_replay ] );
    ( "triage.e2e",
      [ Alcotest.test_case "every fault surfaces" `Slow test_e2e_every_fault_surfaces ] ) ]
