(** Exploration rules over filters and projections: merge/split, commuting
    with Project/GroupBy/Distinct, pushing below set operations, and
    trivial-operator elimination. Stated declaratively in the rewrite DSL
    and compiled; the original closure implementations remain available
    for parity testing and as a fallback. *)

val dsl : Dsl.Rdsl.rule list
(** The family as DSL rules, in registry order. *)

val rules : Rule.t list
(** [List.map Dsl.Rdsl.compile dsl]. *)

val closure_rules : Rule.t list
(** The original hand-written closures, same names and order as [rules];
    test_dsl.ml checks substitute-level parity against them. *)
