lib/relalg/props.ml: Aggregate Catalog Datatype Hashtbl Ident List Logical Result Scalar Schema Storage String
