(** Differential execution oracle over a {e pair} of logical trees.

    The triage {!Oracle} compares [Plan(q)] against [Plan(q, ¬R)] — one
    query, two rule sets. Discovery needs the transposed check: two
    trees claimed equivalent, executed under a fixed (here: empty) rule
    set. Both sides are planned without exploration, executed through
    {!Executor.Cache}, and bag-compared; a divergence is classified with
    {!Divergence} exactly like a validation bug, so discovered
    counterexamples flow into the same corpus/replay machinery. *)

val align :
  Storage.Catalog.t ->
  reference:Relalg.Logical.t ->
  Relalg.Logical.t ->
  (Relalg.Logical.t, string) result
(** [align cat ~reference t] wraps [t] so it exports [reference]'s
    output schema: [t] unchanged when the columns already agree, an
    identity projection when only the order differs, a positional
    rename when the idents differ but arities and types match
    positionally. [Error] when the schemas are incomparable (or either
    tree is ill-formed). This is also the alignment {!to_rule} bridges
    apply, so the oracle accepts exactly the candidates the bridge can
    promote. *)

val check :
  ?site:string ->
  ?budget:int ->
  Storage.Catalog.t ->
  Relalg.Logical.t ->
  Relalg.Logical.t ->
  (Divergence.t option, string) result
(** [check cat lhs rhs] plans both trees with exploration disabled
    ([budget], default 1, bounds [max_trees]; no rewrite rules run, so
    what executes is the tree itself), executes them via
    {!Executor.Cache.run} under [site] (default ["differential"]) and
    compares. [Ok None] = bag-equal; [Ok (Some d)] = diverges (an
    execution error on the rhs is a divergence of kind [Exec_error],
    mirroring {!Oracle}); [Error] = the check itself could not run
    (ill-formed tree, incomparable schemas, lhs execution failure).
    Counts [triage.differential.checks]/[.executions] — executions are
    logical (cache hits included), so totals match across job counts. *)
