type t =
  | CountStar
  | Count of Scalar.t
  | Sum of Scalar.t
  | Min of Scalar.t
  | Max of Scalar.t
  | Avg of Scalar.t

let equal (a : t) (b : t) = a = b

let hash = function
  | CountStar -> 0x5157
  | Count e -> Scalar.hash_combine 1 (Scalar.hash e)
  | Sum e -> Scalar.hash_combine 2 (Scalar.hash e)
  | Min e -> Scalar.hash_combine 3 (Scalar.hash e)
  | Max e -> Scalar.hash_combine 4 (Scalar.hash e)
  | Avg e -> Scalar.hash_combine 5 (Scalar.hash e)

let shape_hash = function
  | CountStar -> 0x5157
  | Count e -> Scalar.hash_combine 1 (Scalar.shape_hash e)
  | Sum e -> Scalar.hash_combine 2 (Scalar.shape_hash e)
  | Min e -> Scalar.hash_combine 3 (Scalar.shape_hash e)
  | Max e -> Scalar.hash_combine 4 (Scalar.shape_hash e)
  | Avg e -> Scalar.hash_combine 5 (Scalar.shape_hash e)

let argument = function
  | CountStar -> None
  | Count e | Sum e | Min e | Max e | Avg e -> Some e

let columns t =
  match argument t with None -> Ident.Set.empty | Some e -> Scalar.columns e

let rename f = function
  | CountStar -> CountStar
  | Count e -> Count (Scalar.rename f e)
  | Sum e -> Sum (Scalar.rename f e)
  | Min e -> Min (Scalar.rename f e)
  | Max e -> Max (Scalar.rename f e)
  | Avg e -> Avg (Scalar.rename f e)

let result_type env t : (Storage.Datatype.t, string) result =
  let ( let* ) = Result.bind in
  match t with
  | CountStar -> Ok Storage.Datatype.TInt
  | Count e ->
    let* _ = Scalar.type_of env e in
    Ok Storage.Datatype.TInt
  | Avg e ->
    let* ty = Scalar.type_of env e in
    if Storage.Datatype.is_numeric ty then Ok Storage.Datatype.TFloat
    else Error "AVG on non-numeric"
  | Sum e ->
    let* ty = Scalar.type_of env e in
    if Storage.Datatype.is_numeric ty then Ok ty else Error "SUM on non-numeric"
  | Min e | Max e -> Scalar.type_of env e

let is_duplicate_insensitive = function
  | Min _ | Max _ -> true
  | CountStar | Count _ | Sum _ | Avg _ -> false

let to_sql = function
  | CountStar -> "COUNT(*)"
  | Count e -> "COUNT(" ^ Scalar.to_sql e ^ ")"
  | Sum e -> "SUM(" ^ Scalar.to_sql e ^ ")"
  | Min e -> "MIN(" ^ Scalar.to_sql e ^ ")"
  | Max e -> "MAX(" ^ Scalar.to_sql e ^ ")"
  | Avg e -> "AVG(" ^ Scalar.to_sql e ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_sql t)
