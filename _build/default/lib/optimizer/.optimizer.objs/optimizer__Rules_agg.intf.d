lib/optimizer/rules_agg.mli: Rule
