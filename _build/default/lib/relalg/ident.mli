(** Column identifiers.

    Every relation instance in a logical query tree carries a unique
    relation label (e.g. ["r0"], ["r1"], ...) so a column is globally
    identified by the pair (relation label, column name). This makes
    transformation rules purely structural: moving an operator never
    requires renaming the columns it references.

    The SQL surface spelling is [label_name] (e.g. [r0_l_orderkey]); labels
    never contain ['_'], so the spelling is unambiguous. *)

type t = { rel : string; name : string }

val make : string -> string -> t
(** [make rel name]. [rel] must be non-empty and must not contain '_'. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_sql : t -> string
(** [rel ^ "_" ^ name]. *)

val of_sql : string -> t option
(** Inverse of {!to_sql}: splits at the first '_'. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val fresh_rel : unit -> string
(** A process-unique relation label ["r<n>"]. *)

val reset_fresh : unit -> unit
(** Reset the label counter (tests only; makes generated trees
    reproducible). *)
