(* Hash-consed logical trees.

   Interning assigns every structurally distinct tree a unique integer
   id; the returned node caches the full structural hash and the size,
   and canonicalizes the tree so equal subtrees are physically shared.
   On top of it, equality is [==], hashing is one int read, and every
   tree-keyed table in the optimizer can key on [id] instead of deep
   structural hashing (which, with [Hashtbl.hash]'s bounded traversal,
   degenerated to linear collision scans on realistic query sizes).

   The table is domain-local (Domain.DLS) and grows monotonically; each
   domain interns without any synchronization. Ids are carved out of one
   global atomic block allocator so they are unique process-wide and
   stay valid for the lifetime of the process ([clear] drops the current
   domain's table for test isolation but never reuses ids, so stale
   id-keyed caches can miss, never lie — even when nodes from several
   domains meet in one table). *)

module L = Logical

type node = {
  repr : L.t;  (** canonical tree: children are canonical reprs *)
  id : int;
  hkey : int;  (** = [Logical.hash repr], cached *)
  nsize : int;  (** = [Logical.size repr], cached *)
  kids : node array;
}

(* Shallow interning key: the node's payload plus the ids of its already
   canonical children. Two trees are structurally equal iff their
   payloads are equal and their children intern to the same ids. *)
type key = { payload : L.t; kid_ids : int array }

module Tbl = Hashtbl.Make (struct
  type t = key

  let equal a b =
    Array.length a.kid_ids = Array.length b.kid_ids
    && (let n = Array.length a.kid_ids in
        let rec same i = i >= n || (a.kid_ids.(i) = b.kid_ids.(i) && same (i + 1)) in
        same 0)
    && L.payload_equal a.payload b.payload

  let hash k =
    Array.fold_left Scalar.hash_combine (L.payload_hash k.payload) k.kid_ids
end)

(* Per-domain interning state. Ids come from fixed-size blocks handed
   out by one global atomic counter: domains never contend on the hot
   path (a block lasts ~4M interns) yet ids can never collide across
   domains, which is what keeps cross-domain id-keyed caches honest. *)
type state = {
  table : node Tbl.t;
  mutable next_id : int;
  mutable id_limit : int;  (** exclusive end of the current block *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let id_block_bits = 22
let next_block = Atomic.make 0

let refill_block st =
  let b = Atomic.fetch_and_add next_block 1 in
  st.next_id <- b lsl id_block_bits;
  st.id_limit <- (b + 1) lsl id_block_bits

let state_key =
  Domain.DLS.new_key (fun () ->
      let st =
        { table = Tbl.create 4096;
          next_id = 0;
          id_limit = 0;
          hit_count = 0;
          miss_count = 0 }
      in
      refill_block st;
      st)

let state () = Domain.DLS.get state_key

let fresh_id st =
  if st.next_id >= st.id_limit then refill_block st;
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let node_of st (payload : L.t) (kids : node array) : node =
  let key = { payload; kid_ids = Array.map (fun k -> k.id) kids } in
  match Tbl.find_opt st.table key with
  | Some n ->
    st.hit_count <- st.hit_count + 1;
    n
  | None ->
    st.miss_count <- st.miss_count + 1;
    let canonical_kids = Array.to_list (Array.map (fun k -> k.repr) kids) in
    let repr =
      (* Avoid reallocating when the payload's children are already the
         canonical ones (always true for trees built from reprs). *)
      if List.for_all2 ( == ) (L.children payload) canonical_kids then payload
      else L.with_children payload canonical_kids
    in
    let hkey =
      Array.fold_left
        (fun h k -> Scalar.hash_combine h k.hkey)
        (L.payload_hash payload) kids
    in
    let nsize = Array.fold_left (fun s k -> s + k.nsize) 1 kids in
    let id = fresh_id st in
    let n = { repr; id; hkey; nsize; kids } in
    Tbl.replace st.table key n;
    n

let intern (t : L.t) : node =
  let st = state () in
  let rec go t =
    match L.children t with
    | [] -> node_of st t [||]
    | kids -> node_of st t (Array.of_list (List.map go kids))
  in
  go t

let rebuild (n : node) i (kid : node) : node =
  if i < 0 || i >= Array.length n.kids then
    invalid_arg "Hashcons.rebuild: child index out of range";
  if n.kids.(i) == kid then n
  else begin
    let kids = Array.copy n.kids in
    kids.(i) <- kid;
    node_of (state ()) n.repr kids
  end

let repr n = n.repr
let id n = n.id
let hash n = n.hkey
let size n = n.nsize
let equal (a : node) (b : node) = a == b
let live_nodes () = Tbl.length (state ()).table
let hits () = (state ()).hit_count
let misses () = (state ()).miss_count

type occupancy = {
  entries : int;
  buckets : int;
  load_factor : float;
  longest_chain : int;
}

let occupancy () =
  let s = Tbl.stats (state ()).table in
  { entries = s.Hashtbl.num_bindings;
    buckets = s.Hashtbl.num_buckets;
    load_factor =
      (if s.Hashtbl.num_buckets = 0 then 0.0
       else float_of_int s.Hashtbl.num_bindings /. float_of_int s.Hashtbl.num_buckets);
    longest_chain = s.Hashtbl.max_bucket_length }

let clear () =
  let st = state () in
  Tbl.reset st.table;
  st.hit_count <- 0;
  st.miss_count <- 0
