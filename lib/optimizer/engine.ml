open Relalg
module L = Logical
module S = Scalar
module SSet = Set.Make (String)

type options = { disabled : SSet.t; max_trees : int; max_growth : int }

let default_options = { disabled = SSet.empty; max_trees = 1200; max_growth = 6 }

type result = {
  best_logical : L.t;
  plan : Physical.t;
  cost : float;
  exercised : SSet.t;
  impl_exercised : SSet.t;
  trees_explored : int;
  budget_exhausted : bool;
}

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

let replace_nth lst i x = List.mapi (fun j y -> if j = i then x else y) lst

(* Per-rule instruments, resolved once per [explore] so the hot loop
   never touches the metrics registry. When collection is disabled every
   event reduces to the single branch inside [Obs.Metrics]/the [enabled]
   guard here. *)
type instrumented_rule = {
  rule : Rule.t;
  attempts : Obs.Metrics.counter;  (** application attempts, per node *)
  rewritten : Obs.Metrics.counter;  (** rewrites produced *)
  match_ns : Obs.Metrics.histogram;  (** latency of one application *)
}

let instrument_rule (r : Rule.t) =
  { rule = r;
    attempts = Obs.Metrics.counter ~label:r.name "optimizer.rule.attempts";
    rewritten = Obs.Metrics.counter ~label:r.name "optimizer.rule.rewrites";
    match_ns = Obs.Metrics.histogram ~label:r.name "optimizer.rule.match_ns" }

let apply_rule catalog (ir : instrumented_rule) t =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr ir.attempts;
    let t0 = Obs.Clock.now_ns () in
    let out = ir.rule.apply catalog t in
    Obs.Metrics.observe ir.match_ns (Obs.Clock.ns_between t0 (Obs.Clock.now_ns ()));
    (match out with [] -> () | l -> Obs.Metrics.add ir.rewritten (List.length l));
    out
  end
  else ir.rule.apply catalog t

(* All (rule name, rewritten whole tree) pairs obtained by applying a rule
   at any node of [t]. *)
let rec rewrites catalog rules (t : L.t) : (string * L.t) list =
  let at_root =
    List.concat_map
      (fun ir -> List.map (fun t' -> (ir.rule.name, t')) (apply_rule catalog ir t))
      rules
  in
  let kids = L.children t in
  let in_children =
    List.concat
      (List.mapi
         (fun i kid ->
           List.map
             (fun (name, kid') -> (name, L.with_children t (replace_nth kids i kid')))
             (rewrites catalog rules kid))
         kids)
  in
  at_root @ in_children

type exploration = {
  trees : L.t list;  (** insertion order; head is the input tree *)
  logical_exercised : SSet.t;
  count : int;
  truncated : bool;  (** the tree budget cut the closure short *)
}

let explore ~options ~rules catalog t0 : exploration =
  (* Resolved once per call, not per rewrite: registry lookups stay out
     of the closure loop, and a [Metrics.clear] between calls cannot
     leave us holding instruments the registry no longer knows about. *)
  let queue_depth_gauge = Obs.Metrics.gauge "optimizer.explore.queue_depth" in
  let explored_counter = Obs.Metrics.counter "optimizer.explore.trees" in
  let exhausted_counter = Obs.Metrics.counter "optimizer.explore.budget_exhausted" in
  let rules =
    List.filter (fun (r : Rule.t) -> not (SSet.mem r.name options.disabled)) rules
  in
  let rules = List.map instrument_rule rules in
  let max_size = L.size t0 + options.max_growth in
  let seen : (L.t, unit) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [ t0 ] in
  let queue = Queue.create () in
  Hashtbl.replace seen t0 ();
  Queue.add t0 queue;
  let count = ref 1 in
  let exercised = ref SSet.empty in
  let truncated = ref false in
  while (not (Queue.is_empty queue)) && !count < options.max_trees do
    let t = Queue.pop queue in
    List.iter
      (fun (name, t') ->
        exercised := SSet.add name !exercised;
        if L.size t' <= max_size && not (Hashtbl.mem seen t') then begin
          if !count < options.max_trees then begin
            Hashtbl.replace seen t' ();
            order := t' :: !order;
            Queue.add t' queue;
            Obs.Metrics.gauge_max queue_depth_gauge
              (float_of_int (Queue.length queue));
            incr count
          end
          else
            (* A novel tree was dropped on the floor: the closure is
               truncated, whatever the queue looks like afterwards. *)
            truncated := true
        end)
      (rewrites catalog rules t)
  done;
  let truncated = !truncated || not (Queue.is_empty queue) in
  Obs.Metrics.add explored_counter !count;
  if truncated then begin
    Obs.Metrics.incr exhausted_counter;
    Obs.Trace.instant "explore.budget_exhausted"
      ~args:[ ("max_trees", Obs.Json.Int options.max_trees) ]
  end;
  { trees = List.rev !order; logical_exercised = !exercised; count = !count; truncated }

(* ------------------------------------------------------------------ *)
(* Implementation (costing)                                            *)
(* ------------------------------------------------------------------ *)

let implementation_rule_names =
  [ "GetToTableScan"; "SelectToFilter"; "ProjectToComputeScalar";
    "JoinToNestedLoops"; "JoinToHashJoin"; "JoinToMergeJoin";
    "GbAggToHashAggregate"; "GbAggToStreamAggregate"; "SortToSort";
    "DistinctToHashDistinct"; "UnionAllToConcat"; "UnionToHashUnion";
    "IntersectToHashIntersect"; "ExceptToHashExcept"; "LimitToLimit" ]

type planner = {
  catalog : Storage.Catalog.t;
  est : Card.t;
  cache : (L.t, (Physical.t * float) option) Hashtbl.t;
  impl_disabled : SSet.t;
  mutable impl_exercised : SSet.t;
  memo_hits : Obs.Metrics.counter;
  memo_misses : Obs.Metrics.counter;
}

let log2 x = Float.max 1.0 (Float.log (x +. 2.0) /. Float.log 2.0)

(* Paired equi-join keys and the residual predicate. *)
let equi_keys catalog pred left right =
  let lids = Props.output_idents catalog left in
  let rids = Props.output_idents catalog right in
  let keys, residual =
    List.fold_left
      (fun (keys, residual) conjunct ->
        match conjunct with
        | S.Cmp (S.Eq, S.Col a, S.Col b)
          when Ident.Set.mem a lids && Ident.Set.mem b rids ->
          ((a, b) :: keys, residual)
        | S.Cmp (S.Eq, S.Col a, S.Col b)
          when Ident.Set.mem b lids && Ident.Set.mem a rids ->
          ((b, a) :: keys, residual)
        | c -> (keys, c :: residual))
      ([], []) (S.conjuncts pred)
  in
  (List.rev keys, S.conj (List.rev residual))

let rec plan p (t : L.t) : (Physical.t * float) option =
  match Hashtbl.find_opt p.cache t with
  | Some r ->
    Obs.Metrics.incr p.memo_hits;
    r
  | None ->
    Obs.Metrics.incr p.memo_misses;
    (* Seed the cache to guard against cycles (none expected). *)
    Hashtbl.replace p.cache t None;
    let r = plan_uncached p t in
    Hashtbl.replace p.cache t r;
    r

and alternative p name (mk : unit -> (Physical.t * float) option) =
  if SSet.mem name p.impl_disabled then None
  else
    match mk () with
    | Some _ as r ->
      p.impl_exercised <- SSet.add name p.impl_exercised;
      r
    | None -> None

and plan_uncached p (t : L.t) : (Physical.t * float) option =
  let rows t = Card.rows p.est t in
  let alts : (Physical.t * float) option list =
    match t with
    | L.Get { table; alias } ->
      [ alternative p "GetToTableScan" (fun () ->
            Some (Physical.TableScan { table; alias }, rows t)) ]
    | L.Filter { pred; child } ->
      [ alternative p "SelectToFilter" (fun () ->
            Option.map
              (fun (c, cost) ->
                (Physical.FilterOp { pred; child = c }, cost +. (0.2 *. rows child)))
              (plan p child)) ]
    | L.Project { cols; child } ->
      [ alternative p "ProjectToComputeScalar" (fun () ->
            Option.map
              (fun (c, cost) ->
                (Physical.ComputeScalar { cols; child = c }, cost +. (0.2 *. rows child)))
              (plan p child)) ]
    | L.Join { kind; pred; left; right } ->
      let nl = rows left and nr = rows right and nout = rows t in
      let keys, residual = equi_keys p.catalog pred left right in
      let nested =
        alternative p "JoinToNestedLoops" (fun () ->
            match (plan p left, plan p right) with
            | Some (pl, cl), Some (pr, cr) ->
              Some
                ( Physical.NestedLoopsJoin { kind; pred; left = pl; right = pr },
                  cl +. (nl *. cr) +. (0.05 *. nl *. nr) +. (0.1 *. nout) )
            | _ -> None)
      in
      let hash =
        if keys = [] then None
        else
          alternative p "JoinToHashJoin" (fun () ->
              match (plan p left, plan p right) with
              | Some (pl, cl), Some (pr, cr) ->
                Some
                  ( Physical.HashJoin
                      { kind;
                        left_keys = List.map fst keys;
                        right_keys = List.map snd keys;
                        residual;
                        left = pl;
                        right = pr },
                    cl +. cr +. (1.5 *. (nl +. nr)) +. (0.1 *. nout) )
              | _ -> None)
      in
      let merge =
        if keys = [] || kind <> L.Inner then None
        else
          alternative p "JoinToMergeJoin" (fun () ->
              match (plan p left, plan p right) with
              | Some (pl, cl), Some (pr, cr) ->
                let sort_keys ids = List.map (fun id -> (id, L.Asc)) ids in
                let sorted_l =
                  Physical.SortOp { keys = sort_keys (List.map fst keys); child = pl }
                in
                let sorted_r =
                  Physical.SortOp { keys = sort_keys (List.map snd keys); child = pr }
                in
                Some
                  ( Physical.MergeJoin
                      { left_keys = List.map fst keys;
                        right_keys = List.map snd keys;
                        residual;
                        left = sorted_l;
                        right = sorted_r },
                    cl +. cr
                    +. (nl *. log2 nl)
                    +. (nr *. log2 nr)
                    +. nl +. nr +. (0.1 *. nout) )
              | _ -> None)
      in
      [ nested; hash; merge ]
    | L.GroupBy { keys; aggs; child } ->
      let nc = rows child in
      let hash =
        alternative p "GbAggToHashAggregate" (fun () ->
            Option.map
              (fun (c, cost) ->
                (Physical.HashAggregate { keys; aggs; child = c }, cost +. (1.5 *. nc)))
              (plan p child))
      in
      let stream =
        if keys = [] then None
        else
          alternative p "GbAggToStreamAggregate" (fun () ->
              Option.map
                (fun (c, cost) ->
                  let sorted =
                    Physical.SortOp
                      { keys = List.map (fun k -> (k, L.Asc)) keys; child = c }
                  in
                  ( Physical.StreamAggregate { keys; aggs; child = sorted },
                    cost +. (nc *. log2 nc) +. nc ))
                (plan p child))
      in
      [ hash; stream ]
    | L.UnionAll (a, b) ->
      [ alternative p "UnionAllToConcat" (fun () ->
            match (plan p a, plan p b) with
            | Some (pa, ca), Some (pb, cb) -> Some (Physical.Concat (pa, pb), ca +. cb)
            | _ -> None) ]
    | L.Union (a, b) ->
      [ alternative p "UnionToHashUnion" (fun () ->
            match (plan p a, plan p b) with
            | Some (pa, ca), Some (pb, cb) ->
              Some
                ( Physical.HashUnion (pa, pb),
                  ca +. cb +. (1.5 *. (rows a +. rows b)) )
            | _ -> None) ]
    | L.Intersect (a, b) ->
      [ alternative p "IntersectToHashIntersect" (fun () ->
            match (plan p a, plan p b) with
            | Some (pa, ca), Some (pb, cb) ->
              Some
                ( Physical.HashIntersect (pa, pb),
                  ca +. cb +. (1.5 *. (rows a +. rows b)) )
            | _ -> None) ]
    | L.Except (a, b) ->
      [ alternative p "ExceptToHashExcept" (fun () ->
            match (plan p a, plan p b) with
            | Some (pa, ca), Some (pb, cb) ->
              Some
                ( Physical.HashExcept (pa, pb),
                  ca +. cb +. (1.5 *. (rows a +. rows b)) )
            | _ -> None) ]
    | L.Distinct child ->
      [ alternative p "DistinctToHashDistinct" (fun () ->
            Option.map
              (fun (c, cost) -> (Physical.HashDistinct c, cost +. (1.5 *. rows child)))
              (plan p child)) ]
    | L.Sort { keys; child } ->
      [ alternative p "SortToSort" (fun () ->
            Option.map
              (fun (c, cost) ->
                let nc = rows child in
                (Physical.SortOp { keys; child = c }, cost +. (nc *. log2 nc)))
              (plan p child)) ]
    | L.Limit { count; child } ->
      [ alternative p "LimitToLimit" (fun () ->
            Option.map
              (fun (c, cost) ->
                (Physical.LimitOp { count; child = c }, cost +. float_of_int count))
              (plan p child)) ]
  in
  List.fold_left
    (fun best alt ->
      match (best, alt) with
      | None, x | x, None -> x
      | (Some (_, cb) as b), (Some (_, ca) as a) -> if ca < cb then a else b)
    None alts

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let make_planner catalog options =
  { catalog;
    est = Card.create catalog;
    cache = Hashtbl.create 1024;
    impl_disabled = options.disabled;
    impl_exercised = SSet.empty;
    memo_hits = Obs.Metrics.counter "optimizer.memo.hits";
    memo_misses = Obs.Metrics.counter "optimizer.memo.misses" }

let optimize ?(options = default_options) ?(rules = Rules.all) catalog t0 =
  match Props.validate catalog t0 with
  | Error e -> Error ("invalid input tree: " ^ e)
  | Ok () ->
    let exploration =
      Obs.Trace.with_span "engine.explore"
        ~args:[ ("max_trees", Obs.Json.Int options.max_trees) ]
        (fun () -> explore ~options ~rules catalog t0)
    in
    let planner = make_planner catalog options in
    let best =
      Obs.Trace.with_span "engine.cost"
        ~args:[ ("trees", Obs.Json.Int exploration.count) ]
        (fun () ->
          List.fold_left
            (fun best tree ->
              match plan planner tree with
              | None -> best
              | Some (phys, cost) -> (
                match best with
                | Some (_, _, best_cost) when best_cost <= cost -> best
                | _ -> Some (tree, phys, cost)))
            None exploration.trees)
    in
    (match best with
    | None -> Error "no physical plan (are implementation rules disabled?)"
    | Some (best_logical, plan, cost) ->
      Ok
        { best_logical;
          plan;
          cost;
          exercised = exploration.logical_exercised;
          impl_exercised = planner.impl_exercised;
          trees_explored = exploration.count;
          budget_exhausted = exploration.truncated })

let ruleset ?(options = default_options) ?(rules = Rules.all) catalog t0 =
  match Props.validate catalog t0 with
  | Error e -> Error ("invalid input tree: " ^ e)
  | Ok () ->
    let exploration =
      Obs.Trace.with_span "engine.explore"
        ~args:[ ("max_trees", Obs.Json.Int options.max_trees) ]
        (fun () -> explore ~options ~rules catalog t0)
    in
    Ok exploration.logical_exercised
