(** Incremental maintenance of the generate→compress pipeline.

    A session wraps one pipeline run against a cache directory: {!start}
    loads the manifest a previous run persisted for the same
    configuration and diffs the live rule registry's content
    fingerprints against it; {!generate} replays the suite targets the
    diff proves unaffected; {!warm_edges} re-indexes the surviving
    edge-cost matrix cells for injection into
    {!Compress.edge_costs}[ ?warm_edges]; {!note_matrix} folds the
    solved service back in; {!finish} persists the next manifest.

    Staleness semantics: a body-only edit (same name and pattern, new
    fingerprint) or a removal invalidates exactly the slices whose
    recorded dependency sets contain the rule — for matrix cells,
    excepting the rules the cell's own target disables, whose bodies the
    cell's cost never consults. A pattern change or an added rule can
    match trees the recorded artifacts never explored, so either forces
    a full rebuild. Reused slices are byte-identical to what a cold
    rebuild would produce, at any pool size — reused targets still
    consume their PRNG substream slot and warm cells still count into
    invocation accounting. *)

type t

val rules_info : Framework.t -> Storage.Manifest.rule_info list
(** The live registry as manifest rule records: name, content
    fingerprint, pattern fingerprint, and source (["dsl"]/["closure"]),
    in registry order. *)

val config_key : Framework.t -> desc:string -> string
(** Manifest key for a pipeline configuration: digest of the catalog
    contents and [desc], which must encode every generation/compression
    parameter that shapes the artifacts (seed, rule count, pairs flag,
    [k], [extra_ops], generation method, exploration sharing). Runs with
    different configurations never see each other's manifests. *)

val start : dc:Storage.Diskcache.t -> desc:string -> Framework.t -> t
(** Load and diff the manifest for this configuration. No manifest (or a
    corrupt one) yields a session that rebuilds everything cold and
    writes a fresh manifest on {!finish}. *)

val changes : t -> (string * Storage.Manifest.change) list
(** The classified rule diff, sorted by name; empty on a cold start. *)

val cold : t -> bool
(** No prior manifest was found for this configuration. *)

val generate :
  ?gen:Suite.gen_method ->
  ?extra_ops:int ->
  ?max_trials:int ->
  pool:Par.Pool.t ->
  t ->
  Storage.Prng.t ->
  targets:Suite.target list ->
  k:int ->
  Suite.t
(** {!Suite.generate_tracked} with this session's reuse callback: a
    stored target is replayed when it sits at the same index and no
    changed rule appears in its recorded dependency set. Must be called
    exactly once, with the same parameters a cold run would use. *)

val warm_edges : t -> ((int * int) * float) list
(** The manifest's surviving matrix cells, re-indexed to the generated
    suite (queries matched by content, targets by name) — pass to
    {!Compress.edge_costs}[ ?warm_edges]. Empty on a full rebuild.
    Requires {!generate}. *)

val note_matrix : t -> Compress.edge_costs -> unit
(** Record the solved service: its {!Compress.snapshot} becomes the next
    manifest's cell set, and its computed column deps are unioned with
    the deps carried over for columns served entirely warm. Call after
    the last algorithm ran on the (shared) service. Requires
    {!generate}. *)

val finish : t -> bool
(** Persist the next manifest (rules + suite records + matrix). Returns
    false if the write failed. Requires {!generate}. *)

type report = {
  manifest_found : bool;
  rules_total : int;
  rules_changed : (string * string) list;  (** (name, change kind) *)
  full_rebuild : bool;
  targets_reusable : int;
  targets_total : int;
  entries_reused : int;
  edges_reusable : int;
  edges_total : int;
  edges_recomputed : int;
}

val preview : t -> report
(** What the manifest alone proves reusable, without running anything —
    the [qtr delta] report. Target/edge tallies count stored artifacts
    whose dependency sets avoid every changed rule. *)

val result : t -> report
(** The actual reuse tallies after a run: targets/entries served by the
    reuse callback, edges served warm versus recomputed. *)
