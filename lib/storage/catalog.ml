module SMap = Map.Make (String)

type t = Table.t SMap.t

let empty = SMap.empty
let add t (table : Table.t) = SMap.add table.schema.name table t
let of_tables tables = List.fold_left add empty tables
let find t name = SMap.find_opt name t
let find_exn t name = SMap.find name t
let mem t name = SMap.mem name t
let table_names t = SMap.bindings t |> List.map fst
let tables t = SMap.bindings t |> List.map snd
let schemas t = tables t |> List.map (fun (tb : Table.t) -> tb.schema)

(* Content fingerprint over schemas *and* data, used to key the on-disk
   warm-start caches: two catalogs with the same tables, columns, and
   rows (in order) hash equal, anything else — regenerated data, a new
   column, a different scale — invalidates every dependent cache entry.
   Same multiplier discipline as [Relalg.Scalar.hash_combine]: every row
   contributes, since [Hashtbl.hash] alone would sample a prefix. *)
let content_hash t =
  let combine h k = ((h * 65599) + k) land max_int in
  SMap.fold
    (fun name (tb : Table.t) h ->
      let h = combine h (Hashtbl.hash name) in
      let h =
        List.fold_left
          (fun h (c : Schema.column) -> combine h (Hashtbl.hash (c.col_name, c.col_type)))
          h tb.schema.columns
      in
      Array.fold_left
        (fun h row ->
          Array.fold_left (fun h v -> combine h (Value.hash v)) (combine h 7) row)
        h tb.rows)
    t 17

let referenced_key t (fk : Schema.foreign_key) =
  Option.map (fun (tb : Table.t) -> tb.schema) (find t fk.fk_table)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  SMap.iter
    (fun _ (tb : Table.t) ->
      Format.fprintf fmt "%a  -- %d rows@," Schema.pp tb.schema (Table.row_count tb))
    t;
  Format.fprintf fmt "@]"
