type edge_costs = {
  fw : Framework.t;
  suite : Suite.t;
  targets : Suite.target array;
  memo : (int * int, float) Hashtbl.t;
  share : bool;
  shared : Framework.shared option option array;
      (* per query index: None = not explored yet; Some None = shared
         exploration failed, use the per-call path for this query *)
  mutable calls : int;
  computed_c : Obs.Metrics.counter;
  memo_hit_c : Obs.Metrics.counter;
  (* Warm-start tier: edges loaded from a prior run's spilled matrix.
     Serving an edge from here still counts into [calls] — the paper's
     abstract unit of optimizer work, and the [invocations] field every
     solution reports — so cold and warm runs produce byte-identical
     solutions; only the *concrete* work (explorations, costing passes,
     wall time) collapses. *)
  warm : (int * int, float) Hashtbl.t;
  disk : (Storage.Diskcache.t * string) option;
  disk_served_c : Obs.Metrics.counter;
  (* Per-query-column dependency sets: the names of every rule whose
     pattern matched while computing this column's edges (the shared
     exploration plus any per-call fallbacks). A rule absent from a
     column's set cannot change that column's costs through a body-only
     edit — the reuse criterion the incremental manifest applies. Only
     columns with at least one computed edge appear. *)
  deps : (int, string list) Hashtbl.t;
  mutable computed_n : int;
  mutable warm_n : int;
}

let matrix_ns = "matrix"

(* The spill key ties a matrix to everything its costs depend on: the
   catalog (schema + data), the rule set, and the suite's exact queries,
   targets, and shape (k). Any drift — new seed, new scale, edited rule,
   regenerated suite — changes the key and the old entry is ignored.
   Rules contribute their *content fingerprint*, not their name: editing
   a rule's body under an unchanged name (fault injection, a DSL term
   edit, a closure version bump) must change the key, or a warm run would
   serve edge costs computed with the old body. *)
let matrix_key fw (suite : Suite.t) =
  let combine h k = ((h * 65599) + k) land max_int in
  let h = Storage.Catalog.content_hash (Framework.catalog fw) in
  let h =
    List.fold_left
      (fun h (r : Optimizer.Rule.t) -> combine h (Hashtbl.hash r.fingerprint))
      h (Framework.rules fw)
  in
  let h = combine h suite.k in
  let h =
    List.fold_left
      (fun h t -> combine h (Hashtbl.hash (Suite.target_name t)))
      h suite.targets
  in
  let h =
    Array.fold_left
      (fun h (e : Suite.entry) ->
        combine (combine h (Relalg.Logical.hash e.query))
          (Hashtbl.hash e.cost))
      h suite.entries
  in
  let h =
    List.fold_left
      (fun h (t, picks) ->
        List.fold_left combine (combine h (Hashtbl.hash (Suite.target_name t)))
          picks)
      h suite.per_target
  in
  Printf.sprintf "matrix-%x" h

let disk_loaded_c = Obs.Metrics.counter "compress.matrix.disk_edges_loaded"

let edge_costs ?(share_exploration = true) ?disk ?(warm_edges = []) fw
    (suite : Suite.t) =
  let warm = Hashtbl.create 256 in
  let disk =
    match disk with
    | None -> None
    | Some dc ->
      let key = matrix_key fw suite in
      (match
         (Storage.Diskcache.load dc ~ns:matrix_ns ~key
           : ((int * int) * float) array option)
       with
      | Some edges ->
        Array.iter (fun (p, c) -> Hashtbl.replace warm p c) edges;
        if Obs.Metrics.enabled () then
          Obs.Metrics.add disk_loaded_c (Array.length edges)
      | None -> ());
      Some (dc, key)
  in
  (* Manifest-supplied surviving cells (incremental maintenance). They
     land in the same warm tier as a disk-loaded matrix, so serving them
     keeps the cold-run accounting and solutions byte-identical. *)
  List.iter (fun (p, c) -> Hashtbl.replace warm p c) warm_edges;
  { fw;
    suite;
    targets = Array.of_list suite.targets;
    memo = Hashtbl.create 256;
    share = share_exploration;
    shared = Array.make (Array.length suite.entries) None;
    calls = 0;
    computed_c = Obs.Metrics.counter "compress.edge_cost.computed";
    memo_hit_c = Obs.Metrics.counter "compress.edge_cost.memo_hits";
    warm;
    disk;
    disk_served_c = Obs.Metrics.counter "compress.matrix.disk_served";
    deps = Hashtbl.create 64;
    computed_n = 0;
    warm_n = 0 }

(* Spill every known edge (computed this run or inherited warm) back to
   disk. Last-writer-wins under the same key is benign: both writers
   computed the same costs. *)
let save_matrix ec =
  match ec.disk with
  | None -> ()
  | Some (dc, key) ->
    let union = Hashtbl.copy ec.memo in
    Hashtbl.iter
      (fun p c -> if not (Hashtbl.mem union p) then Hashtbl.replace union p c)
      ec.warm;
    ignore
      (Storage.Diskcache.store dc ~ns:matrix_ns ~key
         (Array.of_seq (Hashtbl.to_seq union)))

let record_deps ec query_idx matched =
  match Hashtbl.find_opt ec.deps query_idx with
  | None -> Hashtbl.replace ec.deps query_idx matched
  | Some prev ->
    Hashtbl.replace ec.deps query_idx
      (List.sort_uniq String.compare (List.rev_append matched prev))

let shared_for ec query_idx =
  match ec.shared.(query_idx) with
  | Some r -> r
  | None ->
    let r =
      match Framework.explore_shared ec.fw ec.suite.entries.(query_idx).query with
      | Ok sh -> Some sh
      | Error _ -> None
    in
    ec.shared.(query_idx) <- Some r;
    r

let edge_cost ec ~target_idx ~query_idx =
  match Hashtbl.find_opt ec.memo (target_idx, query_idx) with
  | Some c ->
    Obs.Metrics.incr ec.memo_hit_c;
    c
  | None -> (
    (* [calls] counts computed edges — the paper's abstract unit of
       optimizer work (Figure 14) — regardless of how an edge is served:
       a full [Cost(q, negated R)] optimization, a filtered re-costing
       pass over the query's one shared exploration, or a warm edge
       loaded from a prior run's spilled matrix. The concrete invocation
       count is [Framework.invocations]. *)
    ec.calls <- ec.calls + 1;
    match Hashtbl.find_opt ec.warm (target_idx, query_idx) with
    | Some c ->
      Obs.Metrics.incr ec.disk_served_c;
      ec.warm_n <- ec.warm_n + 1;
      Hashtbl.replace ec.memo (target_idx, query_idx) c;
      c
    | None ->
      Obs.Metrics.incr ec.computed_c;
      ec.computed_n <- ec.computed_n + 1;
      let disabled = Suite.rules_of ec.targets.(target_idx) in
      let query = ec.suite.entries.(query_idx).query in
      let c, matched =
        Framework.with_matched @@ fun () ->
        let per_call () =
          match Framework.cost ec.fw ~disabled query with
          | Ok c -> c
          | Error _ -> Float.infinity
        in
        if ec.share then
          match shared_for ec query_idx with
          | Some sh -> (
            match Framework.shared_cost ec.fw ~disabled sh with
            | Ok c -> c
            | Error _ -> Float.infinity)
          | None -> per_call ()
        else per_call ()
      in
      record_deps ec query_idx matched;
      Hashtbl.replace ec.memo (target_idx, query_idx) c;
      c)

let invocations_used ec = ec.calls
let computed_edges ec = ec.computed_n
let warm_served_edges ec = ec.warm_n

(* Every cell this service knows — computed this run or inherited warm —
   sorted for determinism; the incremental manifest persists this. *)
let snapshot ec =
  let union = Hashtbl.copy ec.memo in
  Hashtbl.iter
    (fun p c -> if not (Hashtbl.mem union p) then Hashtbl.replace union p c)
    ec.warm;
  List.sort compare (List.of_seq (Hashtbl.to_seq union))

let column_deps ec =
  List.sort compare (List.of_seq (Hashtbl.to_seq ec.deps))

(* Parallel edge-matrix fill. The pair list is partitioned by query
   index — one task per query column — so each task owns one query's
   shared exploration and every edge it computes; tasks share nothing
   but the (read-only) suite and the framework, whose counters are
   atomic. Workers return pure results; the merge into [memo]/[shared]/
   [calls] happens on the calling domain in task order, so the memo
   contents and the computed-edge count are identical to a sequential
   fill of the same pairs — [Par.Pool.sequential] is the reference. *)
let prefetch ?(pool = Par.Pool.sequential) ec pairs =
  let seen = Hashtbl.create 64 in
  let cols : (int, int list ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (ti, qi) ->
      if
        (not (Hashtbl.mem ec.memo (ti, qi))) && not (Hashtbl.mem seen (ti, qi))
      then begin
        Hashtbl.replace seen (ti, qi) ();
        match Hashtbl.find_opt ec.warm (ti, qi) with
        | Some c ->
          (* Warm edge: merge straight into the memo — no task, no
             exploration — with the same logical-work accounting a
             computed edge gets. *)
          ec.calls <- ec.calls + 1;
          Obs.Metrics.incr ec.disk_served_c;
          ec.warm_n <- ec.warm_n + 1;
          Hashtbl.replace ec.memo (ti, qi) c
        | None -> (
          match Hashtbl.find_opt cols qi with
          | Some l -> l := ti :: !l
          | None ->
            Hashtbl.replace cols qi (ref [ ti ]);
            order := qi :: !order)
      end)
    pairs;
  let columns =
    List.rev_map (fun qi -> (qi, List.rev !(Hashtbl.find cols qi))) !order
  in
  let results =
    Par.Pool.map_list pool
      (fun (qi, tis) ->
        (* The whole column computes under a matched-rule collector (the
           task runs wholly on one domain), so the returned deps are the
           column's dependency set: every rule whose body the shared
           exploration or a per-call fallback could have consulted. *)
        let (sh, edges), deps =
          Framework.with_matched @@ fun () ->
          let query = ec.suite.entries.(qi).query in
          let sh =
            if ec.share then
              match ec.shared.(qi) with
              | Some r -> r
              | None -> (
                match Framework.explore_shared ec.fw query with
                | Ok sh -> Some sh
                | Error _ -> None)
            else None
          in
          let cost_of ti =
            let disabled = Suite.rules_of ec.targets.(ti) in
            match sh with
            | Some sh -> (
              match Framework.shared_cost ec.fw ~disabled sh with
              | Ok c -> c
              | Error _ -> Float.infinity)
            | None -> (
              match Framework.cost ec.fw ~disabled query with
              | Ok c -> c
              | Error _ -> Float.infinity)
          in
          (sh, List.map (fun ti -> (ti, cost_of ti)) tis)
        in
        (qi, sh, edges, deps))
      columns
  in
  List.iter
    (fun (qi, sh, edges, deps) ->
      if ec.share && ec.shared.(qi) = None then ec.shared.(qi) <- Some sh;
      record_deps ec qi deps;
      List.iter
        (fun (ti, c) ->
          if not (Hashtbl.mem ec.memo (ti, qi)) then begin
            ec.calls <- ec.calls + 1;
            Obs.Metrics.incr ec.computed_c;
            ec.computed_n <- ec.computed_n + 1;
            Hashtbl.replace ec.memo (ti, qi) c
          end)
        edges)
    results

type solution = {
  assignment : (Suite.target * (int * float) list) list;
  total_cost : float;
  invocations : int;
  under_covered : (Suite.target * int) list;
}

let node_cost (suite : Suite.t) i = suite.entries.(i).cost

(* A solution under-covers a target when it assigns fewer than k queries
   — the suite simply has no k covering queries for it. Silently
   clamping (as smc's [need] array must, to terminate) hid this; now
   every algorithm reports the deficit so callers can regenerate with a
   bigger budget instead of trusting a weaker-than-requested suite. *)
let under_coverage (suite : Suite.t) assignment =
  List.filter_map
    (fun (target, picks) ->
      let deficit = suite.k - List.length picks in
      if deficit > 0 then Some (target, deficit) else None)
    assignment

(* Every algorithm runs under a span and publishes its outcome as
   gauges, so a compression run's cost/invocation trade-off (Figures
   11-14) is readable straight off a trace or metrics snapshot. *)
let algo_span name (suite : Suite.t) f =
  Obs.Trace.with_span ("compress." ^ name)
    ~args:
      [ ("targets", Obs.Json.Int (List.length suite.targets));
        ("queries", Obs.Json.Int (Array.length suite.entries));
        ("k", Obs.Json.Int suite.k) ]
    (fun () ->
      let sol = f () in
      Obs.Metrics.gauge_set
        (Obs.Metrics.gauge ~label:name "compress.total_cost")
        sol.total_cost;
      Obs.Metrics.gauge_set
        (Obs.Metrics.gauge ~label:name "compress.invocations")
        (float_of_int sol.invocations);
      Obs.Metrics.gauge_set
        (Obs.Metrics.gauge ~label:name "compress.under_covered_targets")
        (float_of_int (List.length sol.under_covered));
      sol)

(* Shared-execution objective: distinct node costs once + all edge costs. *)
let solution_cost (suite : Suite.t) sol =
  let used = Hashtbl.create 16 in
  let node_total = ref 0.0 in
  let edge_total = ref 0.0 in
  List.iter
    (fun (_, picks) ->
      List.iter
        (fun (q, ecost) ->
          edge_total := !edge_total +. ecost;
          if not (Hashtbl.mem used q) then begin
            Hashtbl.replace used q ();
            node_total := !node_total +. node_cost suite q
          end)
        picks)
    sol.assignment;
  !node_total +. !edge_total

(* ------------------------------------------------------------------ *)
(* BASELINE (§2.3): every target executes its own generated queries,    *)
(* without sharing Plan(q) runs across targets.                         *)
(* ------------------------------------------------------------------ *)

let service ?share_exploration ?disk ?ec fw suite =
  match ec with
  | Some ec -> ec
  | None -> edge_costs ?share_exploration ?disk fw suite

let baseline ?share_exploration ?pool ?disk ?ec fw (suite : Suite.t) =
  algo_span "baseline" suite @@ fun () ->
  let ec = service ?share_exploration ?disk ?ec fw suite in
  let tindex =
    List.mapi (fun i (t, _) -> (t, i)) suite.per_target
  in
  prefetch ?pool ec
    (List.concat_map
       (fun (target, indices) ->
         let ti = List.assoc target tindex in
         List.map (fun q -> (ti, q)) indices)
       suite.per_target);
  let assignment =
    List.map
      (fun (target, indices) ->
        let ti = List.assoc target tindex in
        ( target,
          List.map (fun q -> (q, edge_cost ec ~target_idx:ti ~query_idx:q)) indices ))
      suite.per_target
  in
  (* Unshared semantics: node costs counted per (target, query) pick. *)
  let total =
    List.fold_left
      (fun acc (_, picks) ->
        List.fold_left
          (fun acc (q, ecost) -> acc +. node_cost suite q +. ecost)
          acc picks)
      0.0 assignment
  in
  save_matrix ec;
  { assignment;
    total_cost = total;
    invocations = invocations_used ec;
    under_covered = under_coverage suite assignment }

(* ------------------------------------------------------------------ *)
(* Greedy Constrained Set-Multicover (Figure 5)                         *)
(* ------------------------------------------------------------------ *)

let smc ?share_exploration ?pool ?disk ?ec fw (suite : Suite.t) =
  algo_span "smc" suite @@ fun () ->
  let iterations_c = Obs.Metrics.counter "compress.smc.iterations" in
  let targets = Array.of_list suite.targets in
  let nt = Array.length targets in
  let nq = Array.length suite.entries in
  let covers_q = Array.init nq (fun _ -> []) in
  Array.iteri
    (fun ti target ->
      List.iter
        (fun q -> covers_q.(q) <- ti :: covers_q.(q))
        (Suite.covering suite target))
    targets;
  let need = Array.make nt suite.k in
  (* A target with fewer covering queries than k can never be satisfied;
     clamp so the loop terminates. *)
  Array.iteri
    (fun ti target ->
      need.(ti) <- min need.(ti) (List.length (Suite.covering suite target)))
    targets;
  let picked = Array.make nq false in
  let assignment = Array.make nt [] in
  let remaining ti = need.(ti) > 0 in
  let continue_ = ref true in
  while !continue_ do
    let best = ref None in
    for q = 0 to nq - 1 do
      if not picked.(q) then begin
        let gain = List.length (List.filter remaining covers_q.(q)) in
        if gain > 0 then
          let benefit = float_of_int gain /. Float.max 1e-9 (node_cost suite q) in
          match !best with
          | Some (_, b) when b >= benefit -> ()
          | _ -> best := Some (q, benefit)
      end
    done;
    match !best with
    | None -> continue_ := false
    | Some (q, _) ->
      Obs.Metrics.incr iterations_c;
      picked.(q) <- true;
      List.iter
        (fun ti ->
          if remaining ti then begin
            need.(ti) <- need.(ti) - 1;
            assignment.(ti) <- q :: assignment.(ti)
          end)
        covers_q.(q)
  done;
  (* SMC never looks at edge costs while choosing; they are computed once
     afterwards to evaluate the solution, as when executing it. *)
  let ec = service ?share_exploration ?disk ?ec fw suite in
  prefetch ?pool ec
    (List.concat
       (Array.to_list
          (Array.mapi
             (fun ti picks -> List.rev_map (fun q -> (ti, q)) picks)
             assignment)));
  let assignment =
    Array.to_list
      (Array.mapi
         (fun ti picks ->
           ( targets.(ti),
             List.rev_map
               (fun q -> (q, edge_cost ec ~target_idx:ti ~query_idx:q))
               picks ))
         assignment)
  in
  save_matrix ec;
  let sol =
    { assignment;
      total_cost = 0.0;
      invocations = invocations_used ec;
      under_covered = under_coverage suite assignment }
  in
  { sol with total_cost = solution_cost suite sol }

(* ------------------------------------------------------------------ *)
(* TopKIndependent (Figure 6), optionally with monotonicity (§5.3.1)    *)
(* ------------------------------------------------------------------ *)

(* Bounded max-queue of (edge_cost, query) keeping the k cheapest.
   Ordered by (cost, query index), so equal-cost ties evict the larger
   query index: the kept set — and therefore the whole solution — is a
   function of the edge costs alone, not of insertion order. (The old
   cost-only comparator let [List.merge]'s placement of ties decide,
   which made solutions depend on scan order.) *)
module Kqueue = struct
  type t = { k : int; mutable items : (float * int) list (* descending *) }

  let create k = { k; items = [] }
  let size q = List.length q.items
  let max_cost q = match q.items with [] -> Float.infinity | (c, _) :: _ -> c

  let push q cost query =
    let items =
      List.merge
        (fun (a, qa) (b, qb) -> compare (b, qb) (a, qa))
        [ (cost, query) ] q.items
    in
    q.items <-
      (if List.length items > q.k then List.tl items else items)

  let contents q = List.rev_map (fun (c, i) -> (i, c)) q.items
end

let topk ?(exploit_monotonicity = false) ?share_exploration ?pool ?disk ?ec fw
    (suite : Suite.t) =
  algo_span (if exploit_monotonicity then "topk_mono" else "topk") suite @@ fun () ->
  let pruned_c = Obs.Metrics.counter "compress.topk.pruned_edges" in
  let ec = service ?share_exploration ?disk ?ec fw suite in
  let targets = Array.of_list suite.targets in
  (* The naive variant computes every (target, covering query) edge, so
     the whole matrix can be prefetched in parallel. The monotonicity
     variant stays sequential: which edges it computes depends on the
     costs of earlier ones (that adaptivity is the point of §5.3.1). *)
  if not exploit_monotonicity then
    prefetch ?pool ec
      (List.concat
         (Array.to_list
            (Array.mapi
               (fun ti target ->
                 List.map (fun q -> (ti, q)) (Suite.covering suite target))
               targets)));
  let assignment =
    Array.to_list
      (Array.mapi
         (fun ti target ->
           let w = Suite.covering suite target in
           let queue = Kqueue.create suite.k in
           if exploit_monotonicity then begin
             (* Scan in increasing node cost; once the queue holds k edges
                all cheaper than the next node cost, no later edge can
                improve it, since Cost(q) <= Cost(q, negated R). *)
             let sorted =
               List.sort
                 (fun a b -> compare (node_cost suite a) (node_cost suite b))
                 w
             in
             let rec scan = function
               | [] -> ()
               | q :: rest ->
                 if
                   Kqueue.size queue >= suite.k
                   && node_cost suite q >= Kqueue.max_cost queue
                 then begin
                   (* Monotonicity pruned this edge and everything after
                      it — the saving Figure 14 measures. *)
                   if Obs.Metrics.enabled () then
                     Obs.Metrics.add pruned_c (1 + List.length rest)
                 end
                 else begin
                   Kqueue.push queue (edge_cost ec ~target_idx:ti ~query_idx:q) q;
                   scan rest
                 end
             in
             scan sorted
           end
           else
             List.iter
               (fun q -> Kqueue.push queue (edge_cost ec ~target_idx:ti ~query_idx:q) q)
               w;
           (target, Kqueue.contents queue))
         targets)
  in
  save_matrix ec;
  let sol =
    { assignment;
      total_cost = 0.0;
      invocations = invocations_used ec;
      under_covered = under_coverage suite assignment }
  in
  { sol with total_cost = solution_cost suite sol }
