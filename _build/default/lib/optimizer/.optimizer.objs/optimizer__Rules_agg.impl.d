lib/optimizer/rules_agg.ml: Aggregate Ident List Logical Option Pattern Props Relalg Rule Scalar
