(** Near-zero-cost counters, gauges, and log-bucketed histograms.

    Instruments are registered once (a hash lookup, interned by name and
    optional label) and then mutated directly on the hot path. All
    mutation entry points check one global flag first, so a *disabled*
    collector — the default — costs a single predictable branch per
    event; the bench harness verifies the optimizer's wall time is
    unaffected. Expensive event *preparation* (reading the clock, sizing
    a list) should additionally be guarded by {!enabled} at the call
    site.

    The registry is global and domain-safe: counters and gauges are
    single atomics (exact totals under parallel mutation, lock-free),
    histograms and the registry table are mutex-protected. Parallel
    workers spawned by [Par.Pool] therefore share one registry and their
    events aggregate exactly as in a sequential run. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Turn collection on or off globally. Off by default. *)

val enabled : unit -> bool

(** {2 Registration}

    Re-registering the same [(name, label)] returns the same instrument.
    [label] distinguishes instances of a family — e.g. one
    ["optimizer.rule.attempts"] counter per rule name. *)

val counter : ?label:string -> string -> counter
val gauge : ?label:string -> string -> gauge
val histogram : ?label:string -> string -> histogram

(** {2 Hot-path mutation} *)

val incr : counter -> unit
val add : counter -> int -> unit
val gauge_set : gauge -> float -> unit

val gauge_max : gauge -> float -> unit
(** Retain the high-water mark (e.g. deepest queue seen). *)

val observe : histogram -> float -> unit
(** Record one sample. Units are the caller's convention (this codebase
    uses nanoseconds for latencies). *)

(** {2 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> float

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;  (** +inf when empty *)
  max : float;  (** -inf when empty *)
}

val hist_snapshot : histogram -> hist_snapshot
val hist_mean : histogram -> float
(** 0 when empty. *)

val hist_quantile : histogram -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) from
    the power-of-two buckets: the geometric midpoint of the bucket where
    the cumulative count crosses [q]. 0 when empty. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

val snapshot : unit -> (string * string option * value) list
(** Every registered instrument as [(name, label, value)], sorted by
    name then label. Zero-valued instruments are included. *)

val find : ?label:string -> string -> value option
(** Current value of one instrument, [None] if never registered —
    reporting sugar that avoids scanning {!snapshot}. *)

val counter_total : ?label:string -> string -> int
(** [find] specialized to counters; 0 when absent or another kind. *)

val reset : unit -> unit
(** Zero every instrument's value. Registrations (and references held by
    instrumented code) stay valid. *)

val clear : unit -> unit
(** Drop the whole registry. Previously obtained instruments keep
    working but are no longer reported; intended for test isolation. *)
