module SSet = Optimizer.Engine.SSet

type t = {
  cat : Storage.Catalog.t;
  options : Optimizer.Engine.options;
  rule_list : Optimizer.Rule.t list;
  invocations : int Atomic.t;
      (** atomic so one framework can be shared by parallel workers and
          still count every invocation exactly *)
}

let create ?(options = Optimizer.Engine.default_options)
    ?(rules = Optimizer.Rules.all) cat =
  { cat; options; rule_list = rules; invocations = Atomic.make 0 }

let catalog t = t.cat
let rules t = t.rule_list

let fingerprints t =
  List.map (fun (r : Optimizer.Rule.t) -> (r.name, r.fingerprint)) t.rule_list

let with_matched = Optimizer.Rule.collect_matched
let invocations t = Atomic.get t.invocations
let reset_invocations t = Atomic.set t.invocations 0

let with_disabled options disabled =
  { options with
    Optimizer.Engine.disabled =
      List.fold_left (fun s r -> SSet.add r s) options.Optimizer.Engine.disabled
        disabled }

(* One span per optimizer invocation, tagged with the disabled-rule set —
   the unit of measurement of the paper's Figure 14, now visible on a
   timeline. *)
let invoked t ~kind ~disabled f =
  let invocation = Atomic.fetch_and_add t.invocations 1 + 1 in
  Obs.Metrics.incr (Obs.Metrics.counter "framework.invocations");
  if Obs.Trace.enabled () then
    Obs.Trace.with_span ("framework." ^ kind)
      ~args:
        [ ("invocation", Obs.Json.Int invocation);
          ("disabled", Obs.Json.List (List.map (fun r -> Obs.Json.String r) disabled)) ]
      f
  else f ()

let ruleset t q =
  invoked t ~kind:"ruleset" ~disabled:[] (fun () ->
      Optimizer.Engine.ruleset ~options:t.options ~rules:t.rule_list t.cat q)

let optimize t ?(disabled = []) q =
  invoked t ~kind:"optimize" ~disabled (fun () ->
      Optimizer.Engine.optimize
        ~options:(with_disabled t.options disabled)
        ~rules:t.rule_list t.cat q)

let cost t ?disabled q =
  Result.map (fun (r : Optimizer.Engine.result) -> r.cost) (optimize t ?disabled q)

let execute t ?disabled q =
  match optimize t ?disabled q with
  | Error e -> Error e
  | Ok r -> Executor.Exec.run t.cat r.plan

type shared = Optimizer.Engine.shared

let explore_shared t q =
  invoked t ~kind:"explore_shared" ~disabled:[] (fun () ->
      Optimizer.Engine.explore_shared ~options:t.options ~rules:t.rule_list t.cat
        q)

let shared_cost _t ?(disabled = []) sh =
  (* Not an optimizer invocation: this is the cheap filtered re-costing
     pass that shared exploration buys — the whole point is that it does
     not invoke the optimizer again. Tracked by its own counter. *)
  Obs.Metrics.incr (Obs.Metrics.counter "framework.shared_cost_passes");
  Optimizer.Engine.shared_cost sh
    ~disabled:(List.fold_left (fun s r -> SSet.add r s) SSet.empty disabled)

let pattern_of t name =
  List.find_map
    (fun (r : Optimizer.Rule.t) ->
      if String.equal r.name name then
        (* Round-trip through the XML export, as an external tool would. *)
        match Optimizer.Pattern.of_xml (Optimizer.Pattern.to_xml r.pattern) with
        | Ok p -> Some p
        | Error _ -> None
      else None)
    t.rule_list
