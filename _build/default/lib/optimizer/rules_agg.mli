(** Exploration rules over aggregation, distinct and set operations:
    group-by pull-up/push-down across joins (with the functional-dependency
    style preconditions the paper cites), group-by/distinct elimination on
    keys, set-operation commutativity/associativity, and rewrites of
    INTERSECT/EXCEPT into semi/anti-semi joins. *)

val rules : Rule.t list
