lib/core/arggen.mli: Relalg Storage
