type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_to_string f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let perror st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at offset %d" m st.pos))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> perror st "expected '%c'" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else perror st "invalid literal"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> perror st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then perror st "truncated \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> perror st "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        (* Escaped control characters are all we emit; decode the BMP
           code point as UTF-8 so round-trips stay lossless. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> perror st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
      advance st;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> perror st "bad number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> perror st "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> perror st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some c -> perror st "unexpected character '%c'" c

let of_string s =
  let st = { src = s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage after document"
    else Ok v
  with Parse_error m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
