lib/relalg/props.mli: Ident Logical Scalar Storage
