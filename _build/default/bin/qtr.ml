(* qtr — command-line interface to the rule-testing framework.

     qtr rules                         list transformation rules + patterns
     qtr optimize --sql "SELECT ..."   optimize a SQL query, show plan/RuleSet
     qtr generate --rule JoinCommute   emit a SQL test case for a rule
     qtr generate --pair A,B           ... for a rule pair
     qtr coverage --rules 30           Figure-8-style coverage table
     qtr compress --rules 10 --k 5     compare BASELINE/SMC/TOPK
     qtr validate --rules 10 --k 3     run correctness testing
     qtr validate --inject SelectMerge ... with a buggy rule injected *)

open Cmdliner
open Storage

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)
(* ------------------------------------------------------------------ *)

let scale_arg =
  Arg.(value & opt float 0.002 & info [ "scale" ] ~docv:"SF" ~doc:"TPC-H scale factor.")

let seed_arg =
  Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let budget_arg =
  Arg.(
    value
    & opt int 400
    & info [ "budget" ] ~docv:"TREES" ~doc:"Optimizer exploration budget (trees).")

let make_fw ?rules scale budget =
  let cat = Datagen.tpch ~scale () in
  let options = { Optimizer.Engine.default_options with max_trees = budget } in
  Core.Framework.create ~options ?rules cat

(* ------------------------------------------------------------------ *)
(* qtr rules                                                           *)
(* ------------------------------------------------------------------ *)

let rules_cmd =
  let xml =
    Arg.(value & flag & info [ "xml" ] ~doc:"Print the full XML pattern document.")
  in
  let run xml =
    if xml then print_endline (Optimizer.Rules.all_patterns_xml ())
    else begin
      Printf.printf "%d exploration rules:\n" Optimizer.Rules.count;
      List.iter
        (fun (r : Optimizer.Rule.t) ->
          Format.printf "  %-34s %a@." r.name Optimizer.Pattern.pp r.pattern)
        Optimizer.Rules.all;
      Printf.printf "%d implementation rules:\n"
        (List.length Optimizer.Engine.implementation_rule_names);
      List.iter (Printf.printf "  %s\n") Optimizer.Engine.implementation_rule_names
    end
  in
  Cmd.v (Cmd.info "rules" ~doc:"List transformation rules and their patterns")
    Term.(const run $ xml)

(* ------------------------------------------------------------------ *)
(* qtr optimize                                                        *)
(* ------------------------------------------------------------------ *)

let optimize_cmd =
  let sql =
    Arg.(
      required
      & opt (some string) None
      & info [ "sql" ] ~docv:"SQL" ~doc:"Query in the framework's SQL dialect.")
  in
  let disabled =
    Arg.(
      value
      & opt_all string []
      & info [ "disable" ] ~docv:"RULE" ~doc:"Disable a rule (repeatable).")
  in
  let run scale budget sql disabled =
    let fw = make_fw scale budget in
    let cat = Core.Framework.catalog fw in
    match Relalg.Sql_parser.parse cat sql with
    | Error e ->
      Printf.eprintf "%s\n" e;
      exit 1
    | Ok tree -> (
      Format.printf "Logical tree:@.%a@.@." Relalg.Logical.pp tree;
      match Core.Framework.optimize fw ~disabled tree with
      | Error e ->
        Printf.eprintf "optimize: %s\n" e;
        exit 1
      | Ok r -> (
        Format.printf "Plan (cost %.1f, %d trees explored):@.%a@.@." r.cost
          r.trees_explored Optimizer.Physical.pp r.plan;
        Format.printf "RuleSet: %s@."
          (String.concat ", " (Core.Framework.SSet.elements r.exercised));
        match Executor.Exec.run cat r.plan with
        | Ok res -> Format.printf "@.%a@." Executor.Resultset.pp res
        | Error e -> Printf.eprintf "execution: %s\n" e))
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Parse, optimize and execute a SQL query")
    Term.(const run $ scale_arg $ budget_arg $ sql $ disabled)

(* ------------------------------------------------------------------ *)
(* qtr generate                                                        *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let rule =
    Arg.(value & opt (some string) None & info [ "rule" ] ~docv:"RULE" ~doc:"Target rule.")
  in
  let pair =
    Arg.(
      value
      & opt (some (pair ~sep:',' string string)) None
      & info [ "pair" ] ~docv:"R1,R2" ~doc:"Target rule pair.")
  in
  let extra =
    Arg.(
      value & opt int 0
      & info [ "extra-ops" ] ~docv:"N" ~doc:"Pad the query with N random operators.")
  in
  let relevant =
    Arg.(
      value & flag
      & info [ "relevant" ]
          ~doc:
            "Require the rule to be relevant (disabling it changes the chosen plan) — \
             the paper's §7 variant. Only with --rule.")
  in
  let run scale budget seed rule pair extra relevant =
    let fw = make_fw scale budget in
    let g = Prng.create seed in
    let result =
      match (rule, pair) with
      | Some r, None ->
        if relevant then
          Core.Query_gen.relevant_for_rule ~max_trials:100 ~extra_ops:extra fw g r
        else Core.Query_gen.for_rule ~max_trials:100 ~extra_ops:extra fw g r
      | None, Some (a, b) ->
        Core.Query_gen.for_pair ~max_trials:120 ~extra_ops:extra fw g (a, b)
      | _ ->
        Printf.eprintf "exactly one of --rule / --pair is required\n";
        exit 2
    in
    match result with
    | None ->
      Printf.eprintf "no query found within the trial budget\n";
      exit 1
    | Some { query; trials } ->
      let cat = Core.Framework.catalog fw in
      Format.printf "-- found in %d trial(s), %d operators@." trials
        (Relalg.Logical.size query);
      Format.printf "%s@.@." (Relalg.Sql_print.to_sql_pretty cat query);
      Format.printf "Logical tree:@.%a@." Relalg.Logical.pp query
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a SQL test case exercising a rule or rule pair")
    Term.(const run $ scale_arg $ budget_arg $ seed_arg $ rule $ pair $ extra $ relevant)

(* ------------------------------------------------------------------ *)
(* qtr coverage                                                        *)
(* ------------------------------------------------------------------ *)

let n_rules_arg =
  Arg.(
    value & opt int 30
    & info [ "rules" ] ~docv:"N" ~doc:"Number of rules (prefix of the registry).")

let coverage_cmd =
  let run scale budget seed n =
    let fw = make_fw scale budget in
    let rules = List.filteri (fun i _ -> i < n) Optimizer.Rules.names in
    Printf.printf "%-34s %8s %9s\n" "rule" "RANDOM" "PATTERN";
    List.iteri
      (fun i name ->
        let g = Prng.create (seed + i) in
        let r =
          match Core.Query_gen.random_for_rules ~max_trials:100 fw g [ name ] with
          | Some x -> string_of_int x.trials
          | None -> ">100"
        in
        let p =
          match Core.Query_gen.for_rule ~max_trials:100 fw g name with
          | Some x -> string_of_int x.trials
          | None -> "FAIL"
        in
        Printf.printf "%-34s %8s %9s\n%!" name r p)
      rules
  in
  Cmd.v
    (Cmd.info "coverage" ~doc:"Rule-coverage trials, RANDOM vs PATTERN (Figure 8)")
    Term.(const run $ scale_arg $ budget_arg $ seed_arg $ n_rules_arg)

(* ------------------------------------------------------------------ *)
(* qtr compress                                                        *)
(* ------------------------------------------------------------------ *)

let k_arg = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"Test-suite size per rule.")

let pairs_flag =
  Arg.(value & flag & info [ "pairs" ] ~doc:"Target rule pairs instead of singletons.")

let compress_cmd =
  let run scale budget seed n k pairs =
    let fw = make_fw scale budget in
    let g = Prng.create seed in
    let rules = List.filteri (fun i _ -> i < n) Optimizer.Rules.names in
    let targets =
      if pairs then Core.Suite.all_pairs rules
      else List.map (fun r -> Core.Suite.Single r) rules
    in
    Printf.printf "generating suite: %d targets x k=%d...\n%!" (List.length targets) k;
    let suite = Core.Suite.generate ~extra_ops:2 fw g ~targets ~k in
    Printf.printf "%d distinct queries (shortfalls %d)\n%!"
      (Array.length suite.entries)
      (List.length (Core.Suite.shortfall suite));
    let report name (sol : Core.Compress.solution) =
      Printf.printf "  %-10s cost %14.1f  invocations %5d\n%!" name sol.total_cost
        sol.invocations
    in
    report "BASELINE" (Core.Compress.baseline fw suite);
    report "SMC" (Core.Compress.smc fw suite);
    report "TOPK" (Core.Compress.topk fw suite);
    report "TOPK+mono" (Core.Compress.topk ~exploit_monotonicity:true fw suite)
  in
  Cmd.v
    (Cmd.info "compress" ~doc:"Test-suite compression: BASELINE vs SMC vs TOPK")
    Term.(const run $ scale_arg $ budget_arg $ seed_arg $ n_rules_arg $ k_arg $ pairs_flag)

(* ------------------------------------------------------------------ *)
(* qtr validate                                                        *)
(* ------------------------------------------------------------------ *)

let validate_cmd =
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"RULE"
          ~doc:
            "Inject the buggy variant of RULE (one of the Faults registry) before \
             validating.")
  in
  let run scale budget seed n k inject =
    let rules_override = Option.map Core.Faults.inject inject in
    let fw = make_fw ?rules:rules_override scale budget in
    let g = Prng.create seed in
    let rules =
      match inject with
      | Some victim -> [ victim ]
      | None -> List.filteri (fun i _ -> i < n) Optimizer.Rules.names
    in
    let targets = List.map (fun r -> Core.Suite.Single r) rules in
    Printf.printf "generating suite: %d rules x k=%d...\n%!" (List.length targets) k;
    let suite = Core.Suite.generate ~extra_ops:2 fw g ~targets ~k in
    let sol = Core.Compress.topk ~exploit_monotonicity:true fw suite in
    let report = Core.Correctness.run fw suite sol in
    Format.printf "%a@." Core.Correctness.pp_report report;
    if report.bugs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Execute a compressed correctness suite (optionally with a fault injected)")
    Term.(const run $ scale_arg $ budget_arg $ seed_arg $ n_rules_arg $ k_arg $ inject)

let () =
  let doc = "testing framework for query transformation rules (SIGMOD'09 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "qtr" ~version:"1.0.0" ~doc)
          [ rules_cmd; optimize_cmd; generate_cmd; coverage_cmd; compress_cmd;
            validate_cmd ]))
