open Relalg

type t = Op of Logical.op_kind * t list | Any

let all_kinds : Logical.op_kind list =
  [ KGet; KFilter; KProject; KJoin Inner; KJoin Cross; KJoin LeftOuter;
    KJoin RightOuter; KJoin FullOuter; KJoin Semi; KJoin AntiSemi; KGroupBy;
    KUnionAll; KUnion; KIntersect; KExcept; KDistinct; KSort; KLimit ]

let kind_of_name name =
  List.find_opt (fun k -> String.equal (Logical.kind_name k) name) all_kinds

let rec matches p t =
  match p with
  | Any -> true
  | Op (kind, kids) ->
    Logical.kind t = kind
    &&
    let children = Logical.children t in
    List.length children = List.length kids
    && List.for_all2 matches kids children

let matches_anywhere p t =
  Logical.fold (fun acc node -> acc || matches p node) false t

let rec size = function
  | Any -> 0
  | Op (_, kids) -> 1 + List.fold_left (fun acc k -> acc + size k) 0 kids

let rec leaves = function
  | Any -> 1
  | Op (_, kids) -> List.fold_left (fun acc k -> acc + leaves k) 0 kids

let substitute_leaf p i q =
  (* Threads a counter through a left-to-right traversal. *)
  let rec go p i =
    match p with
    | Any -> if i = 0 then (Some q, i - 1) else (None, i - 1)
    | Op (kind, kids) ->
      let replaced, remaining, kids' =
        List.fold_left
          (fun (replaced, i, acc) kid ->
            if replaced then (true, i, kid :: acc)
            else
              match go kid i with
              | Some kid', i' -> (true, i', kid' :: acc)
              | None, i' -> (false, i', kid :: acc))
          (false, i, []) kids
      in
      if replaced then (Some (Op (kind, List.rev kids')), remaining)
      else (None, remaining)
  in
  match go p i with Some p', _ -> Some p' | None, _ -> None

let rec to_xml = function
  | Any -> "<any/>"
  | Op (kind, []) -> Printf.sprintf "<op kind=\"%s\"/>" (Logical.kind_name kind)
  | Op (kind, kids) ->
    Printf.sprintf "<op kind=\"%s\">%s</op>" (Logical.kind_name kind)
      (String.concat "" (List.map to_xml kids))

(* A minimal XML reader for the subset emitted by [to_xml]. *)
let of_xml input =
  let n = String.length input in
  let pos = ref 0 in
  let error = ref None in
  let fail msg =
    error := Some msg;
    raise Exit
  in
  let skip_ws () =
    while !pos < n && (input.[!pos] = ' ' || input.[!pos] = '\n' || input.[!pos] = '\t') do
      incr pos
    done
  in
  let literal s =
    let l = String.length s in
    if !pos + l <= n && String.sub input !pos l = s then pos := !pos + l
    else fail (Printf.sprintf "expected %s at position %d" s !pos)
  in
  let rec node () =
    skip_ws ();
    if !pos + 6 <= n && String.sub input !pos 6 = "<any/>" then begin
      pos := !pos + 6;
      Any
    end
    else begin
      literal "<op kind=\"";
      let start = !pos in
      while !pos < n && input.[!pos] <> '"' do
        incr pos
      done;
      if !pos >= n then fail "unterminated kind attribute";
      let name = String.sub input start (!pos - start) in
      incr pos;
      let kind =
        match kind_of_name name with
        | Some k -> k
        | None -> fail ("unknown operator kind " ^ name)
      in
      skip_ws ();
      if !pos < n && input.[!pos] = '/' then begin
        literal "/>";
        Op (kind, [])
      end
      else begin
        literal ">";
        let kids = ref [] in
        skip_ws ();
        while not (!pos + 1 < n && input.[!pos] = '<' && input.[!pos + 1] = '/') do
          kids := node () :: !kids;
          skip_ws ()
        done;
        literal "</op>";
        Op (kind, List.rev !kids)
      end
    end
  in
  try
    let p = node () in
    skip_ws ();
    if !pos <> n then Error "trailing input after pattern"
    else Ok p
  with Exit -> Error (Option.value !error ~default:"malformed pattern XML")

let rec pp fmt = function
  | Any -> Format.pp_print_string fmt "_"
  | Op (kind, []) -> Format.pp_print_string fmt (Logical.kind_name kind)
  | Op (kind, kids) ->
    Format.fprintf fmt "%s(%a)" (Logical.kind_name kind)
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
      kids
