lib/core/compress.ml: Array Float Framework Hashtbl List Suite
