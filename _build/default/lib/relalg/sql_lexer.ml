type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | SLASH
  | EOF

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "ORDER"; "ASC"; "DESC"; "LIMIT";
    "AS"; "ON"; "JOIN"; "INNER"; "LEFT"; "RIGHT"; "FULL"; "OUTER"; "CROSS";
    "UNION"; "ALL"; "INTERSECT"; "EXCEPT"; "DISTINCT"; "EXISTS"; "NOT"; "AND";
    "OR"; "NULL"; "TRUE"; "FALSE"; "IS"; "DATE"; "COUNT"; "SUM"; "MIN"; "MAX";
    "AVG" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '_'
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let error = ref None in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  (try
     while !i < n do
       let c = input.[!i] in
       if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
       else if is_ident_start c then begin
         let start = !i in
         while !i < n && is_ident_char input.[!i] do
           incr i
         done;
         let word = String.sub input start (!i - start) in
         let upper = String.uppercase_ascii word in
         if List.mem upper keywords then push (KW upper) else push (IDENT word)
       end
       else if is_digit c then begin
         let start = !i in
         while !i < n && is_digit input.[!i] do
           incr i
         done;
         let is_float = ref false in
         if !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1]
         then begin
           is_float := true;
           incr i;
           while !i < n && is_digit input.[!i] do
             incr i
           done
         end;
         (* Exponent part of %g-printed floats. *)
         if !i < n && (input.[!i] = 'e' || input.[!i] = 'E') then begin
           is_float := true;
           incr i;
           if !i < n && (input.[!i] = '+' || input.[!i] = '-') then incr i;
           while !i < n && is_digit input.[!i] do
             incr i
           done
         end;
         let text = String.sub input start (!i - start) in
         if !is_float then push (FLOAT (float_of_string text))
         else push (INT (int_of_string text))
       end
       else if c = '\'' then begin
         (* String literal with '' escapes. *)
         let buf = Buffer.create 16 in
         incr i;
         let closed = ref false in
         while not !closed && !i < n do
           if input.[!i] = '\'' then
             if !i + 1 < n && input.[!i + 1] = '\'' then begin
               Buffer.add_char buf '\'';
               i := !i + 2
             end
             else begin
               closed := true;
               incr i
             end
           else begin
             Buffer.add_char buf input.[!i];
             incr i
           end
         done;
         if not !closed then raise Exit;
         push (STRING (Buffer.contents buf))
       end
       else begin
         let two =
           if !i + 1 < n then String.sub input !i 2 else ""
         in
         match two with
         | "<>" ->
           push NE;
           i := !i + 2
         | "<=" ->
           push LE;
           i := !i + 2
         | ">=" ->
           push GE;
           i := !i + 2
         | "!=" ->
           push NE;
           i := !i + 2
         | _ -> (
           incr i;
           match c with
           | '(' -> push LPAREN
           | ')' -> push RPAREN
           | ',' -> push COMMA
           | '.' -> push DOT
           | '*' -> push STAR
           | '=' -> push EQ
           | '<' -> push LT
           | '>' -> push GT
           | '+' -> push PLUS
           | '-' -> push MINUS
           | '/' -> push SLASH
           | _ ->
             error := Some (Printf.sprintf "unexpected character %c at %d" c (!i - 1));
             raise Exit)
       end
     done
   with Exit -> if !error = None then error := Some "unterminated string literal");
  match !error with
  | Some msg -> Error msg
  | None -> Ok (List.rev (EOF :: !toks))

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | KW k -> k
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | STAR -> "*"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | EOF -> "<eof>"
