(** The testing framework's view of the DBMS (paper Figure 2, "Query
    Optimizer Extensions"): [RuleSet(q)], [Plan(q, ¬R)], [Cost(q, ¬R)],
    plus an optimizer-invocation counter — the unit of measurement in the
    monotonicity experiment (Figure 14). *)

module SSet = Optimizer.Engine.SSet

type t

val create :
  ?options:Optimizer.Engine.options ->
  ?rules:Optimizer.Rule.t list ->
  Storage.Catalog.t ->
  t
(** [rules] overrides the exploration-rule registry (fault injection). *)

val catalog : t -> Storage.Catalog.t
val rules : t -> Optimizer.Rule.t list

val fingerprints : t -> (string * string) list
(** (name, content fingerprint) of this framework's rule registry, in
    registry order — the content identity incremental maintenance diffs
    against a persisted manifest. *)

val with_matched : (unit -> 'a) -> 'a * string list
(** Re-export of {!Optimizer.Rule.collect_matched}: run a thunk recording
    the sorted names of every rule whose pattern matched some tree — the
    dependency set of whatever the thunk computed. Per-domain; wrap pool
    task bodies, not code that fans out. *)

val ruleset : t -> Relalg.Logical.t -> (SSet.t, string) result
(** [RuleSet(q)]: logical rules exercised while optimizing [q].
    Exploration only — counted as an optimizer invocation. *)

val optimize :
  t -> ?disabled:string list -> Relalg.Logical.t ->
  (Optimizer.Engine.result, string) result
(** [Plan(q, ¬R)] with full costing — counted as an optimizer
    invocation. *)

val cost : t -> ?disabled:string list -> Relalg.Logical.t -> (float, string) result
(** [Cost(q, ¬R)] — optimizer-estimated cost, as used throughout §6. *)

val execute :
  t -> ?disabled:string list -> Relalg.Logical.t ->
  (Executor.Resultset.t, string) result
(** Optimize then run the chosen plan against the catalog. *)

(** {2 Shared exploration}

    Monotonicity-aware service for workloads that cost the same query
    under many disabled sets (the compression cost matrix): one counted
    exploration, then as many cheap [Cost(q, ¬R)] passes as needed. See
    {!Optimizer.Engine.explore_shared} for exactness conditions. *)

type shared = Optimizer.Engine.shared

val explore_shared : t -> Relalg.Logical.t -> (shared, string) result
(** Explore [q] once with all enabled rules, tagging derivations —
    counted as one optimizer invocation. *)

val shared_cost : t -> ?disabled:string list -> shared -> (float, string) result
(** [Cost(q, ¬R)] served from a shared exploration — a filtered
    re-costing pass, {e not} counted as an optimizer invocation (counter
    ["framework.shared_cost_passes"]). [shared_cost ~disabled:[]] equals
    {!cost}[ ~disabled:[]]. *)

val invocations : t -> int
(** Number of optimizer invocations ([ruleset]/[optimize]/[cost]/[execute])
    since creation or the last {!reset_invocations}. *)

val reset_invocations : t -> unit

val pattern_of : t -> string -> Optimizer.Pattern.t option
(** The exported rule pattern for a rule name, obtained through the XML
    export/import round trip — i.e. what a test tool outside the server
    would receive (§3.1). *)
