(* Versioned on-disk key/value store for warm-start caches.

   Values are [Marshal]ed, so a payload is only readable by the exact
   code that wrote it — the header therefore embeds a format version
   *and* [Sys.ocaml_version] (plus any caller-supplied version salt),
   and every load falls back to a miss rather than an error: a cache
   directory from an older build, a different compiler, or a crashed
   writer behaves like an empty cache, never like corruption.

   Safety against torn/flipped payloads matters more than usual here
   because [Marshal.from_bytes] on garbage can crash the runtime, not
   just raise: the header carries an MD5 of the payload bytes and the
   payload is only unmarshaled after the digest checks out.

   Writes go to a temp file in the same directory and are renamed into
   place, so concurrent writers (parallel validation domains, two
   overlapping CI jobs) race benignly: readers see either the old
   complete entry or the new complete entry, never a partial one. *)

let magic = "QTRDC1"
let format_version = 1

type t = { root : string; version : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let create ?(version = "") ~dir () =
  mkdir_p dir;
  { root = dir;
    version =
      Printf.sprintf "%d/%s/%s" format_version Sys.ocaml_version version }

let dir t = t.root

(* Keys are arbitrary strings (often long hash concatenations); the
   filename is always the MD5 hex of the key, and the key itself is
   echoed inside the entry so filename collisions degrade to misses. *)
let path t ~ns ~key =
  Filename.concat (Filename.concat t.root ns) (Digest.to_hex (Digest.string key) ^ ".bin")

let store t ~ns ~key v =
  try
    let dirname = Filename.concat t.root ns in
    mkdir_p dirname;
    let payload = Marshal.to_bytes v [] in
    let file = path t ~ns ~key in
    let tmp = Filename.temp_file ~temp_dir:dirname "qtrdc" ".tmp" in
    let oc = open_out_bin tmp in
    Printf.fprintf oc "%s\n%s\n%s\n%s\n" magic t.version key
      (Digest.to_hex (Digest.bytes payload));
    output_bytes oc payload;
    close_out oc;
    Sys.rename tmp file;
    true
  with Sys_error _ -> false

let load t ~ns ~key =
  let file = path t ~ns ~key in
  if not (Sys.file_exists file) then None
  else
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let m = input_line ic in
          let v = input_line ic in
          let k = input_line ic in
          let d = input_line ic in
          if m <> magic || v <> t.version || k <> key then None
          else begin
            let len = in_channel_length ic - pos_in ic in
            let payload = really_input_string ic len in
            if Digest.to_hex (Digest.string payload) <> d then None
            else Some (Marshal.from_string payload 0)
          end)
    with Sys_error _ | End_of_file | Failure _ -> None

let entries t ~ns =
  let dirname = Filename.concat t.root ns in
  if Sys.file_exists dirname && Sys.is_directory dirname then
    Array.fold_left
      (fun acc f -> if Filename.check_suffix f ".bin" then acc + 1 else acc)
      0 (Sys.readdir dirname)
  else 0
