(** In-memory tables: a schema, its rows, and cached statistics. *)

type t = private {
  schema : Schema.t;
  rows : Value.t array array;
  stats : Stats.t;
}

val create : Schema.t -> Value.t array array -> t
(** Validates row arity and (non-strictly) column types: every non-NULL
    value must match its column's type, and NULLs are only allowed in
    nullable columns. Raises [Invalid_argument] on violation. Statistics
    are computed eagerly. *)

val row_count : t -> int
val column_values : t -> string -> Value.t array
(** All values of a named column (in row order). Raises [Not_found] for an
    unknown column. *)

val pp : Format.formatter -> t -> unit
(** Header plus at most 20 rows. *)
