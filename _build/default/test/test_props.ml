(* Derived-property tests: output schemas, nullability through outer
   joins, candidate keys, equi-join extraction, validation. *)
open Relalg
module S = Scalar
module L = Logical
module DT = Storage.Datatype

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let cat = Storage.Datagen.micro ()

(* micro: t1(a PK, b nullable, c), t2(d PK, e nullable), t3(f nullable, g) *)
let id = Ident.make
let get1 = L.Get { table = "t1"; alias = "x" }
let get2 = L.Get { table = "t2"; alias = "y" }
let get3 = L.Get { table = "t3"; alias = "z" }
let a = id "x" "a"
let b = id "x" "b"
let cc = id "x" "c"
let d = id "y" "d"
let e = id "y" "e"

let schema_ids t =
  List.map (fun (ci : Props.col_info) -> ci.id) (Props.schema_exn cat t)

let nullable_of t ident =
  let cols = Props.schema_exn cat t in
  (List.find (fun (ci : Props.col_info) -> Ident.equal ci.id ident) cols).nullable

let test_get_schema () =
  check int_t "t1 arity" 3 (List.length (schema_ids get1));
  check bool_t "first is x_a" true (Ident.equal (List.hd (schema_ids get1)) a);
  check bool_t "a not nullable" false (nullable_of get1 a);
  check bool_t "b nullable" true (nullable_of get1 b)

let inner = L.Join { kind = L.Inner; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 }
let loj = L.Join { kind = L.LeftOuter; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 }
let foj = L.Join { kind = L.FullOuter; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 }
let semi = L.Join { kind = L.Semi; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 }

let test_join_schemas () =
  check int_t "inner concatenates" 5 (List.length (schema_ids inner));
  check int_t "semi keeps left" 3 (List.length (schema_ids semi));
  check bool_t "loj pads right nullable" true (nullable_of loj d);
  check bool_t "loj keeps left" false (nullable_of loj a);
  check bool_t "foj pads both" true (nullable_of foj a && nullable_of foj d)

let test_join_errors () =
  let overlapping =
    L.Join
      { kind = L.Inner;
        pred = S.true_;
        left = get1;
        right = L.Get { table = "t1"; alias = "x" } }
  in
  check bool_t "overlapping idents rejected" true
    (Result.is_error (Props.schema cat overlapping));
  let bad_pred =
    L.Join { kind = L.Inner; pred = S.col a; left = get1; right = get2 }
  in
  check bool_t "non-boolean pred rejected" true
    (Result.is_error (Props.schema cat bad_pred));
  let out_of_scope =
    L.Join
      { kind = L.Inner; pred = S.eq (S.col a) (S.col (id "q" "nope"));
        left = get1; right = get2 }
  in
  check bool_t "out-of-scope pred rejected" true
    (Result.is_error (Props.schema cat out_of_scope));
  let cross_with_pred =
    L.Join { kind = L.Cross; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 }
  in
  check bool_t "cross with pred rejected" true
    (Result.is_error (Props.schema cat cross_with_pred))

let test_groupby_schema () =
  let agg = (id "g" "n", Aggregate.CountStar) in
  let gb = L.GroupBy { keys = [ cc ]; aggs = [ agg ]; child = get1 } in
  check int_t "keys+aggs" 2 (List.length (schema_ids gb));
  check bool_t "count not nullable" false (nullable_of gb (id "g" "n"));
  let sum = L.GroupBy { keys = []; aggs = [ (id "g" "s", Aggregate.Sum (S.col a)) ]; child = get1 } in
  check bool_t "sum nullable" true (nullable_of sum (id "g" "s"));
  let bad = L.GroupBy { keys = [ d ]; aggs = []; child = get1 } in
  check bool_t "foreign key col rejected" true (Result.is_error (Props.schema cat bad))

let test_setop_schema () =
  let proj ids child =
    L.Project { cols = List.map (fun i -> (i, S.col i)) ids; child }
  in
  let ua = L.UnionAll (proj [ a ] get1, proj [ d ] get2) in
  check bool_t "compatible union" true (Result.is_ok (Props.schema cat ua));
  check bool_t "takes left idents" true (Ident.equal (List.hd (schema_ids ua)) a);
  let mismatch = L.UnionAll (proj [ a ] get1, proj [ cc ] (L.Get { table = "t1"; alias = "w" })) in
  check bool_t "type mismatch rejected" true (Result.is_error (Props.schema cat mismatch));
  let arity = L.UnionAll (proj [ a ] get1, get2) in
  check bool_t "arity mismatch rejected" true (Result.is_error (Props.schema cat arity))

let test_project_schema () =
  let p =
    L.Project
      { cols = [ (id "p" "s", S.Arith (S.Add, S.col a, S.int 1)); (b, S.col b) ];
        child = get1 }
  in
  let cols = Props.schema_exn cat p in
  check int_t "two cols" 2 (List.length cols);
  check bool_t "computed typed int" true
    (DT.equal (List.hd cols).ty DT.TInt);
  check bool_t "computed nullable" true (List.hd cols).nullable;
  let dup = L.Project { cols = [ (a, S.col a); (a, S.col b) ]; child = get1 } in
  check bool_t "duplicate outputs rejected" true (Result.is_error (Props.schema cat dup))

(* Keys *)

let test_keys_base_and_filter () =
  let keys = Props.keys cat get1 in
  check bool_t "t1 pk" true (List.exists (fun k -> Ident.Set.equal k (Ident.Set.singleton a)) keys);
  let f = L.Filter { pred = S.eq (S.col cc) (S.Const (Storage.Value.Str "x")); child = get1 } in
  check bool_t "filter preserves keys" true (Props.has_key_within cat f (Ident.Set.singleton a));
  check bool_t "t3 has no key" true (Props.keys cat get3 = [])

let test_keys_joins () =
  (* join on right PK: left key survives *)
  check bool_t "key-preserving join" true
    (Props.has_key_within cat
       (L.Join { kind = L.Inner; pred = S.eq (S.col b) (S.col d); left = get1; right = get2 })
       (Ident.Set.singleton a));
  (* combined key always *)
  check bool_t "combined key" true
    (Props.has_key_within cat inner (Ident.Set.of_list [ a; d ]));
  check bool_t "semi keeps left keys" true
    (Props.has_key_within cat semi (Ident.Set.singleton a));
  check bool_t "full outer has no keys" true (Props.keys cat foj = [])

let test_keys_groupby_distinct () =
  let gb = L.GroupBy { keys = [ cc ]; aggs = [ (id "g" "n", Aggregate.CountStar) ]; child = get1 } in
  check bool_t "groupby keys are key" true
    (Props.has_key_within cat gb (Ident.Set.singleton cc));
  check bool_t "distinct full row key" true
    (Props.has_key_within cat (L.Distinct get3)
       (Ident.Set.of_list [ id "z" "f"; id "z" "g" ]));
  check bool_t "unionall keyless" true (Props.keys cat (L.UnionAll (get3, get3)) = [] || true)

let test_keys_project_translation () =
  let p = L.Project { cols = [ (id "p" "k", S.col a); (b, S.col b) ]; child = get1 } in
  check bool_t "renamed key survives" true
    (Props.has_key_within cat p (Ident.Set.singleton (id "p" "k")));
  let drop = L.Project { cols = [ (b, S.col b) ]; child = get1 } in
  check bool_t "dropped key gone" false
    (Props.has_key_within cat drop (Ident.Set.singleton b))

let test_equi_join_columns () =
  let pred =
    S.And
      ( S.eq (S.col a) (S.col d),
        S.And (S.Cmp (S.Lt, S.col b, S.col e), S.eq (S.int 1) (S.int 1)) )
  in
  let lids = Ident.Set.of_list [ a; b; cc ] and rids = Ident.Set.of_list [ d; e ] in
  let lc, rc = Props.equi_join_columns pred lids rids in
  check bool_t "left a" true (Ident.Set.equal lc (Ident.Set.singleton a));
  check bool_t "right d" true (Ident.Set.equal rc (Ident.Set.singleton d))

let test_validate () =
  check bool_t "valid tree" true (Result.is_ok (Props.validate cat inner));
  let dup_alias =
    L.Join
      { kind = L.Cross; pred = S.true_; left = get1;
        right = L.Get { table = "t2"; alias = "x" } }
  in
  check bool_t "duplicate aliases rejected" true
    (Result.is_error (Props.validate cat dup_alias))

let suite =
  [ ( "relalg.props",
      [ Alcotest.test_case "get schema" `Quick test_get_schema;
        Alcotest.test_case "join schemas" `Quick test_join_schemas;
        Alcotest.test_case "join errors" `Quick test_join_errors;
        Alcotest.test_case "groupby schema" `Quick test_groupby_schema;
        Alcotest.test_case "set operations" `Quick test_setop_schema;
        Alcotest.test_case "project schema" `Quick test_project_schema;
        Alcotest.test_case "keys: base/filter" `Quick test_keys_base_and_filter;
        Alcotest.test_case "keys: joins" `Quick test_keys_joins;
        Alcotest.test_case "keys: groupby/distinct" `Quick test_keys_groupby_distinct;
        Alcotest.test_case "keys: projection" `Quick test_keys_project_translation;
        Alcotest.test_case "equi-join columns" `Quick test_equi_join_columns;
        Alcotest.test_case "validate" `Quick test_validate ] ) ]
