(** Exploration rules over filters and projections: merge/split, commuting
    with Project/GroupBy/Distinct, pushing below set operations, and
    trivial-operator elimination. *)

val rules : Rule.t list
