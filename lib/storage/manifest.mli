(** Persisted suite manifest for incremental maintenance.

    Records the content fingerprint of every rule a pipeline run was
    built with, plus named opaque sections (Marshal'd payloads owned by
    the writing layer: per-target generation records, edge-cost matrix
    cells with their per-column rule-dependency sets). The next run diffs
    its live registry against the manifest with {!diff} and recomputes
    only the slices a changed rule can reach; everything here is plain
    data so the storage layer stays free of core/optimizer types.

    Persistence is a {!Diskcache} namespace ("manifest"), so corrupted,
    stale-version or foreign-compiler manifests load as [None] — an
    incremental run falls back to a cold rebuild, never to an error. *)

type rule_info = {
  name : string;
  fingerprint : string;  (** content digest of the whole rule definition *)
  pattern_fp : string;  (** digest of the pattern alone *)
  source : string;  (** ["dsl"] or ["closure"] *)
}

type t = {
  config : string;
      (** human-readable summary of the pipeline configuration (seed, k,
          targets, catalog hash) — display only; the cache {e key} is the
          caller's config digest *)
  rules : rule_info list;  (** registry order at save time *)
  sections : (string * string) list;  (** name → opaque Marshal'd payload *)
}

val make : config:string -> rules:rule_info list -> t
val section : t -> string -> string option

val set_section : t -> string -> string -> t
(** Functional update; replaces any existing section of the same name. *)

type change = Body_changed | Pattern_changed | Added | Removed

val change_to_string : change -> string

val diff : t -> rules:rule_info list -> (string * change) list
(** Every rule whose content drifted between the manifest and the live
    registry, classified and sorted by name; unchanged rules are
    omitted. [Body_changed] (same pattern digest) is the reusable case:
    slices whose dependency sets avoid the rule are still valid.
    [Pattern_changed] and [Added] rules can match trees the recorded
    artifacts never explored, so callers must rebuild cold. *)

val ns : string
(** The Diskcache namespace manifests live under. *)

val load : Diskcache.t -> key:string -> t option

val save : Diskcache.t -> key:string -> t -> bool
(** Persist atomically and record [key] in the manifest index
    (most-recently-saved last). [false] on I/O failure. *)

val index : Diskcache.t -> (string * string) list
(** (key, config summary) of every manifest saved into this cache,
    most-recently-saved last — how `qtr stats` finds the latest manifest
    without knowing the pipeline configuration. *)
