lib/storage/datagen.ml: Array Catalog List Printf Prng Schema String Table Value
