type arith_op = Add | Sub | Mul | Div
type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Storage.Value.t
  | Col of Ident.t
  | Neg of t
  | Arith of arith_op * t * t
  | Cmp of cmp_op * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | IsNull of t
  | IsNotNull of t

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

(* Full-depth structural hash. [Hashtbl.hash] samples only a bounded
   prefix of the value, so deep expressions that differ near the leaves
   collide; expressions are hashed millions of times as parts of logical
   trees during exploration, so every node must contribute. *)
let hash_combine h k = (h * 65599) + k

let rec hash = function
  | Const v -> hash_combine 1 (Hashtbl.hash v)
  | Col id -> hash_combine 2 (Ident.hash id)
  | Neg a -> hash_combine 3 (hash a)
  | Arith (op, a, b) ->
    hash_combine (hash_combine (hash_combine 4 (Hashtbl.hash op)) (hash a)) (hash b)
  | Cmp (op, a, b) ->
    hash_combine (hash_combine (hash_combine 5 (Hashtbl.hash op)) (hash a)) (hash b)
  | And (a, b) -> hash_combine (hash_combine 6 (hash a)) (hash b)
  | Or (a, b) -> hash_combine (hash_combine 7 (hash a)) (hash b)
  | Not a -> hash_combine 8 (hash a)
  | IsNull a -> hash_combine 9 (hash a)
  | IsNotNull a -> hash_combine 10 (hash a)
(* Shape hash: the constructor skeleton only. Constants contribute their
   type, not their value; column references contribute a fixed tag. Two
   predicates that differ only in literals or in which columns they touch
   share a shape — the granularity at which triage dedups bugs. *)
let rec shape_hash = function
  | Const v ->
    hash_combine 101
      (match Storage.Value.type_of v with Some ty -> Hashtbl.hash ty | None -> 0)
  | Col _ -> 102
  | Neg a -> hash_combine 103 (shape_hash a)
  | Arith (op, a, b) ->
    hash_combine
      (hash_combine (hash_combine 104 (Hashtbl.hash op)) (shape_hash a))
      (shape_hash b)
  | Cmp (op, a, b) ->
    hash_combine
      (hash_combine (hash_combine 105 (Hashtbl.hash op)) (shape_hash a))
      (shape_hash b)
  | And (a, b) -> hash_combine (hash_combine 106 (shape_hash a)) (shape_hash b)
  | Or (a, b) -> hash_combine (hash_combine 107 (shape_hash a)) (shape_hash b)
  | Not a -> hash_combine 108 (shape_hash a)
  | IsNull a -> hash_combine 109 (shape_hash a)
  | IsNotNull a -> hash_combine 110 (shape_hash a)

let true_ = Const (Storage.Value.Bool true)
let col id = Col id
let int n = Const (Storage.Value.Int n)
let eq a b = Cmp (Eq, a, b)

let conj = function
  | [] -> true_
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let rec conjuncts p =
  match p with
  | And (a, b) -> conjuncts a @ conjuncts b
  | Const (Storage.Value.Bool true) -> []
  | _ -> [ p ]

let rec columns = function
  | Const _ -> Ident.Set.empty
  | Col id -> Ident.Set.singleton id
  | Neg e | Not e | IsNull e | IsNotNull e -> columns e
  | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    Ident.Set.union (columns a) (columns b)

let rec rename f = function
  | Const v -> Const v
  | Col id -> Col (f id)
  | Neg e -> Neg (rename f e)
  | Not e -> Not (rename f e)
  | IsNull e -> IsNull (rename f e)
  | IsNotNull e -> IsNotNull (rename f e)
  | Arith (op, a, b) -> Arith (op, rename f a, rename f b)
  | Cmp (op, a, b) -> Cmp (op, rename f a, rename f b)
  | And (a, b) -> And (rename f a, rename f b)
  | Or (a, b) -> Or (rename f a, rename f b)

(* [strict e cols]: e evaluates to NULL whenever all referenced columns in
   [cols] are NULL and e references at least one of them. *)
let rec strict e cols =
  match e with
  | Col id -> Ident.Set.mem id cols
  | Const _ -> false
  | Neg a -> strict a cols
  | Arith (_, a, b) ->
    (* NULL propagates through arithmetic from either side. *)
    strict a cols || strict b cols
  | Cmp _ | And _ | Or _ | Not _ | IsNull _ | IsNotNull _ -> false

let rec is_null_rejecting p cols =
  match p with
  | Cmp (_, a, b) -> strict a cols || strict b cols
  | And (a, b) -> is_null_rejecting a cols || is_null_rejecting b cols
  | Or (a, b) -> is_null_rejecting a cols && is_null_rejecting b cols
  | IsNotNull e -> strict e cols
  | Const _ | Col _ | Neg _ | Arith _ | Not _ | IsNull _ -> false

type env = Ident.t -> Storage.Datatype.t option

open Storage.Datatype

let comparable a b =
  equal a b || (is_numeric a && is_numeric b)

let rec type_of env e : (Storage.Datatype.t, string) result =
  let ( let* ) = Result.bind in
  match e with
  | Const v -> (
    match Storage.Value.type_of v with
    | Some ty -> Ok ty
    | None -> Ok TBool (* bare NULL literal: context-free default *))
  | Col id -> (
    match env id with
    | Some ty -> Ok ty
    | None -> Error ("unknown column " ^ Ident.to_sql id))
  | Neg a ->
    let* ta = type_of env a in
    if is_numeric ta then Ok ta else Error "negation of non-numeric"
  | Arith (_, a, b) ->
    let* ta = type_of env a in
    let* tb = type_of env b in
    if is_numeric ta && is_numeric tb then
      Ok (if equal ta TFloat || equal tb TFloat then TFloat else TInt)
    else Error "arithmetic on non-numeric operands"
  | Cmp (_, a, b) ->
    let* ta = type_of env a in
    let* tb = type_of env b in
    (* Allow NULL literals to compare against anything. *)
    let null_lit x = match x with Const v -> Storage.Value.is_null v | _ -> false in
    if comparable ta tb || null_lit a || null_lit b then Ok TBool
    else
      Error
        (Printf.sprintf "incomparable types %s vs %s" (to_string ta) (to_string tb))
  | And (a, b) | Or (a, b) ->
    let* ta = type_of env a in
    let* tb = type_of env b in
    if equal ta TBool && equal tb TBool then Ok TBool
    else Error "logical connective on non-boolean"
  | Not a ->
    let* ta = type_of env a in
    if equal ta TBool then Ok TBool else Error "NOT on non-boolean"
  | IsNull a | IsNotNull a ->
    let* _ = type_of env a in
    Ok TBool

let arith_op_to_sql = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmp_op_to_sql = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Precedence climbing for minimal parentheses: or(1) < and(2) < not(3) <
   cmp/is(4) < add(5) < mul(6) < unary(7). *)
let rec emit buf prec e =
  let paren p body =
    if p < prec then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  match e with
  | Const v -> Buffer.add_string buf (Storage.Value.to_sql v)
  | Col id -> Buffer.add_string buf (Ident.to_sql id)
  | Or (a, b) ->
    paren 1 (fun () ->
        emit buf 1 a;
        Buffer.add_string buf " OR ";
        emit buf 2 b)
  | And (a, b) ->
    paren 2 (fun () ->
        emit buf 2 a;
        Buffer.add_string buf " AND ";
        emit buf 3 b)
  | Not a ->
    paren 3 (fun () ->
        Buffer.add_string buf "NOT ";
        emit buf 3 a)
  | Cmp (op, a, b) ->
    paren 4 (fun () ->
        emit buf 5 a;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (cmp_op_to_sql op);
        Buffer.add_char buf ' ';
        emit buf 5 b)
  | IsNull a ->
    paren 4 (fun () ->
        emit buf 7 a;
        Buffer.add_string buf " IS NULL")
  | IsNotNull a ->
    paren 4 (fun () ->
        emit buf 7 a;
        Buffer.add_string buf " IS NOT NULL")
  | Arith ((Add | Sub) as op, a, b) ->
    paren 5 (fun () ->
        emit buf 5 a;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (arith_op_to_sql op);
        Buffer.add_char buf ' ';
        emit buf 6 b)
  | Arith ((Mul | Div) as op, a, b) ->
    paren 6 (fun () ->
        emit buf 6 a;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (arith_op_to_sql op);
        Buffer.add_char buf ' ';
        emit buf 7 b)
  | Neg a ->
    paren 7 (fun () ->
        Buffer.add_string buf "-";
        emit buf 7 a)

let to_sql e =
  let buf = Buffer.create 64 in
  emit buf 0 e;
  Buffer.contents buf

let pp fmt e = Format.pp_print_string fmt (to_sql e)
