module T = Template
module L = Relalg.Logical
module S = Relalg.Scalar
module I = Relalg.Ident
module P = Relalg.Props
module A = Core.Arggen

type params = { seed : int; trials : int; min_instances : int; budget : int }

let default_params = { seed = 2009; trials = 6; min_instances = 2; budget = 1 }

type assignment = {
  rels : (int * L.t) list;
  preds : (int * S.t) list;
  joins : (int * S.t) list;
}

type refutation = {
  assignment : assignment;
  lhs_instance : L.t;
  rhs_instance : L.t;
  divergence : Triage.Divergence.t;
  instance_index : int;
}

type verdict = Survived of int | Refuted of refutation | Inconclusive of string

type result = {
  cand : T.candidate;
  name : string;
  verdict : verdict;
  checks : int;
}

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)

let build asn cand =
  let pred_of = function
    | T.Pvar i -> List.assoc i asn.preds
    | T.Pand (i, j) -> S.And (List.assoc i asn.preds, List.assoc j asn.preds)
  in
  let rec inst = function
    | T.Rel i -> List.assoc i asn.rels
    | T.Filter (p, c) -> L.Filter { pred = pred_of p; child = inst c }
    | T.Join (v, a, b) ->
      L.Join
        { kind = L.Inner;
          pred = List.assoc v asn.joins;
          left = inst a;
          right = inst b }
    | T.Distinct c -> L.Distinct (inst c)
    | T.UnionAll (a, b) -> L.UnionAll (inst a, inst b)
    | T.Union (a, b) -> L.Union (inst a, inst b)
    | T.Intersect (a, b) -> L.Intersect (inst a, inst b)
    | T.Except (a, b) -> L.Except (inst a, inst b)
  in
  match (inst cand.T.lhs, inst cand.T.rhs) with
  | l, r -> Some (l, r)
  | exception Not_found -> None

(* Placeholder instance of a template side: relation variables filled
   in, every predicate [true_] — schemas are predicate-independent, so
   these carry the column scopes predicate assignment must respect. *)
let rec placeholder rels = function
  | T.Rel i -> List.assoc i rels
  | T.Filter (_, c) -> L.Filter { pred = S.true_; child = placeholder rels c }
  | T.Join (_, a, b) ->
    L.Join
      { kind = L.Inner;
        pred = S.true_;
        left = placeholder rels a;
        right = placeholder rels b }
  | T.Distinct c -> L.Distinct (placeholder rels c)
  | T.UnionAll (a, b) -> L.UnionAll (placeholder rels a, placeholder rels b)
  | T.Union (a, b) -> L.Union (placeholder rels a, placeholder rels b)
  | T.Intersect (a, b) -> L.Intersect (placeholder rels a, placeholder rels b)
  | T.Except (a, b) -> L.Except (placeholder rels a, placeholder rels b)

(* Every filter child (per predicate variable) and join operand pair
   (per join variable) a variable's instantiation must be scoped to,
   over both sides of the candidate. *)
let occurrences rels cand =
  let pred_occ : (int, L.t list) Hashtbl.t = Hashtbl.create 4 in
  let join_occ : (int, (L.t * L.t) list) Hashtbl.t = Hashtbl.create 4 in
  let add tbl k v =
    Hashtbl.replace tbl k (Hashtbl.find_opt tbl k |> Option.value ~default:[] |> fun l -> l @ [ v ])
  in
  let rec go = function
    | T.Rel _ -> ()
    | T.Filter (p, c) ->
      let child = placeholder rels c in
      (match p with
      | T.Pvar i -> add pred_occ i child
      | T.Pand (i, j) ->
        add pred_occ i child;
        add pred_occ j child);
      go c
    | T.Join (v, a, b) ->
      add join_occ v (placeholder rels a, placeholder rels b);
      go a;
      go b
    | T.Distinct c -> go c
    | T.UnionAll (a, b) | T.Union (a, b) | T.Intersect (a, b) | T.Except (a, b) ->
      go a;
      go b
  in
  go cand.T.lhs;
  go cand.T.rhs;
  (pred_occ, join_occ)

(* First (table, column) holding a duplicated value — the adversarial
   instance projects every relation variable onto it, so bag-vs-set
   confusions surface. Deterministic: tables and columns in catalog
   order. *)
let dup_column cat =
  List.find_map
    (fun tn ->
      let t = Storage.Catalog.find_exn cat tn in
      List.find_map
        (fun (c : Storage.Schema.column) ->
          let vs = Storage.Table.column_values t c.col_name in
          let seen = Hashtbl.create (Array.length vs) in
          let dup = ref false in
          Array.iter
            (fun v ->
              if Hashtbl.mem seen v then dup := true else Hashtbl.add seen v ())
            vs;
          if !dup then Some (tn, c.col_name) else None)
        t.Storage.Table.schema.columns)
    (Storage.Catalog.table_names cat)

let single_col tn cn =
  let alias = I.fresh_rel () in
  let id = I.make alias cn in
  L.Project { cols = [ (id, S.Col id) ]; child = L.Get { table = tn; alias } }

let scope_retries = 4

type mode = Adversarial | Adversarial_weak | Random

let mode_of_instance = function
  | 0 -> Adversarial
  | 1 -> Adversarial_weak
  | _ -> Random

let assign_rels (ctx : A.ctx) ~mode cand =
  let vars = List.sort_uniq compare (T.rel_vars cand.T.lhs @ T.rel_vars cand.T.rhs) in
  if mode <> Random then
    match dup_column ctx.cat with
    | Some (tn, cn) -> List.map (fun v -> (v, single_col tn cn)) vars
    | None ->
      List.map
        (fun v -> (v, L.Get { table = List.hd (Storage.Catalog.table_names ctx.cat); alias = I.fresh_rel () }))
        vars
  else if T.has_setop cand.T.lhs || T.has_setop cand.T.rhs then
    (* Set-operation branches must be union-compatible: one table for
       every relation variable, usually behind distinct filters so the
       branches' contents differ. *)
    let table = Storage.Prng.pick ctx.g (Storage.Catalog.table_names ctx.cat) in
    List.map
      (fun v ->
        let base = L.Get { table; alias = I.fresh_rel () } in
        let t =
          if Storage.Prng.chance ctx.g 0.85 then
            Option.value (A.add_filter ctx base) ~default:base
          else base
        in
        (v, t))
      vars
  else
    List.map
      (fun v ->
        let t = A.fresh_get ctx in
        let t =
          if Storage.Prng.chance ctx.g 0.35 then
            Option.value (A.add_filter ctx t) ~default:t
          else t
        in
        let t =
          if Storage.Prng.chance ctx.g 0.3 then
            Option.value (A.add_project ctx t) ~default:t
          else t
        in
        (v, t))
      vars

let assign_preds (ctx : A.ctx) cat ~mode pred_occ =
  let vars = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) pred_occ []) in
  let scoped p occ = I.Set.subset (S.columns p) (P.output_idents cat occ) in
  let rec assign acc = function
    | [] -> Some acc
    | v :: rest -> (
      let occs = Hashtbl.find pred_occ v in
      let smallest =
        List.fold_left
          (fun best occ ->
            let n = I.Set.cardinal (P.output_idents cat occ) in
            match best with
            | Some (_, bn) when bn <= n -> best
            | _ -> Some (occ, n))
          None occs
        |> Option.get |> fst
      in
      (* The weak adversarial instance filters nothing: a selective
         predicate can hide a bag-vs-set confusion by filtering the
         duplicated rows away, so here every predicate variable becomes
         a trivially-true column test and the duplicates flow through. *)
      let weak =
        match P.schema cat smallest with
        | Ok ((c : P.col_info) :: _) ->
          let p = S.IsNotNull (S.Col c.id) in
          if List.for_all (scoped p) occs then Some p else None
        | _ -> None
      in
      let rec try_draw k =
        if k >= scope_retries then None
        else
          match A.random_pred ctx smallest with
          | Some p when List.for_all (scoped p) occs -> Some p
          | _ -> try_draw (k + 1)
      in
      let drawn =
        match (mode, weak) with
        | Adversarial_weak, Some p -> Some p
        | _ -> try_draw 0
      in
      match drawn with
      | None -> None
      | Some p -> assign ((v, p) :: acc) rest)
  in
  assign [] vars

let assign_joins (ctx : A.ctx) cat join_occ =
  let vars = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) join_occ []) in
  let scoped p (l, r) =
    I.Set.subset (S.columns p)
      (I.Set.union (P.output_idents cat l) (P.output_idents cat r))
  in
  let rec assign acc = function
    | [] -> Some acc
    | v :: rest -> (
      let occs = Hashtbl.find join_occ v in
      let l0, r0 = List.hd occs in
      let rec try_draw k =
        if k >= scope_retries then None
        else
          match A.join_pred ctx ~left:l0 ~right:r0 with
          | Some p when List.for_all (scoped p) occs -> Some p
          | _ -> try_draw (k + 1)
      in
      match try_draw 0 with
      | None -> None
      | Some p -> assign ((v, p) :: acc) rest)
  in
  assign [] vars

let instantiate _params cat g ~mode cand =
  let ctx = { A.g; cat } in
  let rels = assign_rels ctx ~mode cand in
  let pred_occ, join_occ = occurrences rels cand in
  match assign_preds ctx cat ~mode pred_occ with
  | None -> None
  | Some preds -> (
    match assign_joins ctx cat join_occ with
    | None -> None
    | Some joins -> (
      let asn = { rels; preds; joins } in
      match build asn cand with
      | None -> None
      | Some (l, r) -> (
        match (P.validate cat l, P.validate cat r) with
        | Ok (), Ok () -> Some (asn, l, r)
        | _ -> None)))

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)

let run_one params cat ~index (name, cand) =
  (* Disjoint alias range and private PRNG substream per candidate, so
     the work a task does depends only on its index — never on which
     domain ran it or what ran before. *)
  I.set_fresh (10_000_000 + (index * 10_000));
  let g = Storage.Prng.create (params.seed + (index * 1009)) in
  let checks = ref 0 in
  let clean = ref 0 in
  let refut = ref None in
  let last_err = ref "no valid instantiation" in
  let inst = ref 0 in
  while !inst < params.trials && !refut = None do
    (match instantiate params cat g ~mode:(mode_of_instance !inst) cand with
    | None -> ()
    | Some (asn, l, r) -> (
      incr checks;
      match Triage.Differential.check ~site:"discovery" ~budget:params.budget cat l r with
      | Error e -> last_err := e
      | Ok None -> incr clean
      | Ok (Some d) ->
        refut :=
          Some
            { assignment = asn;
              lhs_instance = l;
              rhs_instance = r;
              divergence = d;
              instance_index = !inst }));
    incr inst
  done;
  let verdict =
    match !refut with
    | Some r -> Refuted r
    | None ->
      if !clean >= params.min_instances then Survived !clean
      else
        Inconclusive
          (Printf.sprintf "%d/%d clean instances (last obstacle: %s)" !clean
             params.min_instances !last_err)
  in
  { cand; name; verdict; checks = !checks }

let run ?(pool = Par.Pool.sequential) params cat named =
  let arr = Array.of_list named in
  Array.to_list
    (Par.Pool.init pool (Array.length arr) (fun i ->
         run_one params cat ~index:i arr.(i)))

(* ------------------------------------------------------------------ *)
(* Counterexample minimization                                         *)

type minimized = {
  refutation : refutation;
  nodes_before : int;
  nodes_after : int;
  steps : int;
  min_checks : int;
}

let replace k v l = List.map (fun (k', v') -> if k = k' then (k, v) else (k', v')) l

let minimize ?(max_checks = 48) params cat cand (r : refutation) =
  let checks = ref 0 in
  let steps = ref 0 in
  let diverging asn =
    if !checks >= max_checks then None
    else (
      incr checks;
      match build asn cand with
      | None -> None
      | Some (l, rr) -> (
        match
          Triage.Differential.check ~site:"discovery" ~budget:params.budget cat
            l rr
        with
        | Ok (Some d) -> Some (asn, l, rr, d)
        | _ -> None))
  in
  let scalar_moves p =
    (if S.equal p S.true_ then [] else [ S.true_ ])
    @ match S.conjuncts p with [] | [ _ ] -> [] | cs -> cs
  in
  let moves asn =
    List.concat_map
      (fun (i, t) ->
        List.map (fun t' -> { asn with rels = replace i t' asn.rels })
          (Triage.Reduce.candidates t))
      asn.rels
    @ List.concat_map
        (fun (i, p) ->
          List.map (fun p' -> { asn with preds = replace i p' asn.preds })
            (scalar_moves p))
        asn.preds
    @ List.concat_map
        (fun (i, p) ->
          List.map (fun p' -> { asn with joins = replace i p' asn.joins })
            (scalar_moves p))
        asn.joins
  in
  let current = ref (r.assignment, r.lhs_instance, r.rhs_instance, r.divergence) in
  let progress = ref true in
  while !progress && !checks < max_checks do
    progress := false;
    let asn, _, _, _ = !current in
    match List.find_map diverging (moves asn) with
    | Some next ->
      current := next;
      incr steps;
      progress := true
    | None -> ()
  done;
  let asn, l, rr, d = !current in
  { refutation =
      { r with assignment = asn; lhs_instance = l; rhs_instance = rr; divergence = d };
    nodes_before = L.size r.lhs_instance + L.size r.rhs_instance;
    nodes_after = L.size l + L.size rr;
    steps = !steps;
    min_checks = !checks }
