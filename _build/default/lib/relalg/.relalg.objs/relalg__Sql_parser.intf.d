lib/relalg/sql_parser.mli: Logical Storage
