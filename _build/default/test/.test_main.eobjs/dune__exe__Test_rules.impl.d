test/test_rules.ml: Aggregate Alcotest Core Executor Hashtbl Ident List Logical Optimizer Props Relalg Scalar Storage
