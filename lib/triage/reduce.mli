(** Delta reduction of failing queries (greedy one-edit descent).

    From a bug's (often [extra_ops]-padded) query, repeatedly apply the
    single smallest-result edit that keeps the {!Oracle} verdict at
    [Diverges]: operator deletion by child hoisting, predicate and
    projection simplification, group-by key/aggregate dropping, and
    constant shrinking. Every accepted step is a true reproducer — the
    target rule still fires and Plan(q) vs Plan(q, ¬R) still diverge on
    the executor — so the fixpoint is a minimal-by-one-edit reproducer. *)

val candidates : Relalg.Logical.t -> Relalg.Logical.t list
(** All trees reachable by one edit at one position (exposed for tests).
    Candidates are not validated; the oracle re-checks well-formedness. *)

type stats = {
  steps : int;  (** accepted shrinking edits *)
  checks : int;  (** oracle evaluations spent (cache misses only) *)
  original_size : int;  (** node count before *)
  reduced_size : int;  (** node count after *)
  budget_exhausted : bool;  (** [max_checks] stopped the descent early *)
}

val run :
  ?max_checks:int ->
  Oracle.t ->
  Relalg.Logical.t ->
  (Relalg.Logical.t * Divergence.t * stats, string) result
(** [run oracle q0] first re-verifies that [q0] diverges (error if not),
    then descends greedily, trying candidates in ascending-size order and
    restarting from the first accepted one. Verdicts are cached per
    distinct tree, so revisited candidates cost nothing. [max_checks]
    (default 400) bounds oracle evaluations; on exhaustion the best tree
    so far is returned with [budget_exhausted] set. The returned
    divergence is the one observed on the {e reduced} query. *)
