lib/storage/stats.ml: Array Format List Schema Set Value
