examples/suite_compression.mli:
