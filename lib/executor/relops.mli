(** Row-level machinery shared by the interpreter ({!Exec.run_interpreted})
    and the compiled path ({!Compile}): hash tables over rows, join
    finalization, grouping, aggregation, distinct, and sort comparators.

    Everything here is parameterized by already-resolved column *indices*
    and per-row evaluation *closures*, so the two execution paths differ
    only in how they evaluate expressions (AST walk with a column
    hashtable vs. precompiled closures over array offsets), never in
    relational semantics. *)

open Storage

exception Exec_error of string
(** Row-time execution failure (e.g. AVG over a non-numeric value, or —
    interpreter only — an unknown column reached while evaluating a
    row). *)

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [Printf]-style; raises {!Exec_error}. *)

module RowTbl : Hashtbl.S with type key = Value.t array
(** Hashtable keyed by whole rows ({!Resultset.compare_rows} equality). *)

module Vec : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val to_array : 'a t -> 'a array
end

val nulls : int -> Value.t array
val key_has_null : Value.t array -> bool
val extract_key : int array -> Value.t array -> Value.t array
val filter_rows : (Value.t array -> bool) -> Value.t array array -> Value.t array array
val take_rows : int -> Value.t array array -> Value.t array array

val morselize : rows:int -> 'a array -> 'a array array
(** Fixed-size chunks in input order; the last may be short; empty input
    yields zero morsels. Raises [Invalid_argument] when [rows < 1]. *)

val map_morsels :
  Par.Pool.t -> rows:int -> ('a array -> 'b array) -> 'a array -> 'b array
(** Chunk, map each morsel through the pool, concatenate in task order —
    output (and any raised exception: the lowest morsel's) is identical
    for every pool size. Counts [executor.batch.morsels] /
    [executor.batch.rows] when metrics are on. *)

val make_agg :
  (Relalg.Scalar.t -> Value.t array -> Value.t) ->
  Relalg.Aggregate.t ->
  Value.t array array ->
  Value.t
(** [make_agg compile agg] resolves the aggregate's argument once via
    [compile] and returns the evaluator for one group's rows. NULLs are
    skipped by every aggregate except COUNT( * ); SUM/MIN/MAX/AVG of an
    all-NULL (or empty) group is NULL. *)

val hash_groups :
  int array ->
  Value.t array array ->
  (Value.t array * Value.t array array) array
(** Groups in first-appearance order of the keys; members keep input
    order. *)

val stream_groups :
  int array ->
  Value.t array array ->
  (Value.t array * Value.t array array) array
(** Consecutive runs of equal keys (input must be sorted by the keys). *)

val grouped_rows :
  (Value.t array array -> Value.t) array ->
  (Value.t array * Value.t array array) array ->
  Value.t array array
(** One output row per group: key values then aggregate values. *)

val join_cols :
  Relalg.Logical.join_kind ->
  Relalg.Ident.t array ->
  Relalg.Ident.t array ->
  Relalg.Ident.t array
(** Output columns: left only for (anti)semi joins, left @ right
    otherwise. *)

val join_rows :
  Relalg.Logical.join_kind ->
  left_arity:int ->
  right_arity:int ->
  Value.t array array ->
  Value.t array array ->
  int list array ->
  Value.t array array
(** Join finalization from per-left-row match lists ([match_lists.(li)]
    holds the indices of right rows fully matching left row [li]):
    combination, outer-join NULL padding, (anti)semi projection. *)

val nested_loops_matches :
  (Value.t array -> bool) ->
  Value.t array array ->
  Value.t array array ->
  int list array
(** Predicate over the combined row, every pair tested. *)

val hash_build : ridx:int array -> Value.t array array -> int list ref RowTbl.t
(** Build side of {!hash_matches}: right-row indices by key, NULL keys
    skipped. *)

val hash_probe_row :
  int list ref RowTbl.t ->
  lidx:int array ->
  residual:(Value.t array -> bool) option ->
  Value.t array array ->
  Value.t array ->
  int list
(** Probe one left row: matching right indices in right-input order,
    residual-filtered. Pure per row, so probes parallelize by morsel. *)

val hash_matches :
  lidx:int array ->
  ridx:int array ->
  residual:(Value.t array -> bool) option ->
  Value.t array array ->
  Value.t array array ->
  int list array
(** Equi-join by hashing the right side; NULL keys never match;
    [residual] (over the combined row) filters matches when present.
    [hash_build] + [hash_probe_row] per left row. *)

val merge_matches :
  lidx:int array ->
  ridx:int array ->
  residual:(Value.t array -> bool) option ->
  Value.t array array ->
  Value.t array array ->
  int list array
(** Inner merge join over key-sorted inputs; NULL keys are skipped. *)

val distinct_rows : Value.t array array -> Value.t array array
(** First occurrence of each row, input order preserved. *)

val row_set : Value.t array array -> unit RowTbl.t

val sort_compare :
  int array ->
  Relalg.Logical.sort_dir array ->
  Value.t array ->
  Value.t array ->
  int
(** Multi-key comparator honouring per-key direction
    ({!Storage.Value.compare_total} per column). *)
