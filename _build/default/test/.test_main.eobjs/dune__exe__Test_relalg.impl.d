test/test_relalg.ml: Aggregate Alcotest Ident List Logical Relalg Result Scalar Storage String
