lib/optimizer/rules_select.mli: Rule
