open Relalg

type t = {
  name : string;
  pattern : Pattern.t;
  apply : Storage.Catalog.t -> Logical.t -> Logical.t list;
}

let make name pattern apply =
  let guarded cat tree =
    if Pattern.matches pattern tree then apply cat tree
    else begin
      (* A rule whose [apply] would return substitutes on a root its own
         pattern rejects is mis-declared: the engine (which consults the
         pattern first) silently never fires it. Probe only when metrics
         are on so the hot path keeps its single-branch cost. *)
      if Obs.Metrics.enabled () then
        (match apply cat tree with
        | exception _ -> ()
        | [] -> ()
        | _ :: _ ->
          Obs.Metrics.incr
            (Obs.Metrics.counter ~label:name "optimizer.rule.pattern_mismatch"));
      []
    end
  in
  { name; pattern; apply = guarded }

let rec subst f (e : Scalar.t) : Scalar.t =
  match e with
  | Scalar.Col id -> ( match f id with Some e' -> e' | None -> e)
  | Scalar.Const _ -> e
  | Scalar.Neg a -> Scalar.Neg (subst f a)
  | Scalar.Not a -> Scalar.Not (subst f a)
  | Scalar.IsNull a -> Scalar.IsNull (subst f a)
  | Scalar.IsNotNull a -> Scalar.IsNotNull (subst f a)
  | Scalar.Arith (op, a, b) -> Scalar.Arith (op, subst f a, subst f b)
  | Scalar.Cmp (op, a, b) -> Scalar.Cmp (op, subst f a, subst f b)
  | Scalar.And (a, b) -> Scalar.And (subst f a, subst f b)
  | Scalar.Or (a, b) -> Scalar.Or (subst f a, subst f b)

let positional_rename from_cols to_cols =
  let table =
    List.map2
      (fun (a : Props.col_info) (b : Props.col_info) -> (a.id, b.id))
      from_cols to_cols
  in
  fun id ->
    match List.find_opt (fun (a, _) -> Ident.equal a id) table with
    | Some (_, b) -> b
    | None -> id

let split_by_scope pred cols =
  let inside, outside =
    List.partition
      (fun conjunct ->
        let used = Scalar.columns conjunct in
        (not (Ident.Set.is_empty used)) && Ident.Set.subset used cols)
      (Scalar.conjuncts pred)
  in
  (Scalar.conj inside, Scalar.conj outside)

let identity_project cols child =
  Logical.Project
    { cols = List.map (fun (c : Props.col_info) -> (c.id, Scalar.Col c.id)) cols;
      child }

let null_safe_row_eq left_cols right_cols =
  let pair (a : Props.col_info) (b : Props.col_info) =
    let ca = Scalar.Col a.id and cb = Scalar.Col b.id in
    Scalar.Or
      (Scalar.Cmp (Scalar.Eq, ca, cb), Scalar.And (Scalar.IsNull ca, Scalar.IsNull cb))
  in
  Scalar.conj (List.map2 pair left_cols right_cols)
