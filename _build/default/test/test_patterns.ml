(* Rule patterns: matching, composition, and the XML export API. *)
open Relalg
module L = Logical
module P = Optimizer.Pattern
module S = Scalar

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let get1 = L.Get { table = "t1"; alias = "x" }
let get2 = L.Get { table = "t2"; alias = "y" }
let a = Ident.make "x" "a"
let d = Ident.make "y" "d"

let join =
  L.Join { kind = L.Inner; pred = S.eq (S.col a) (S.col d); left = get1; right = get2 }

let filter_join = L.Filter { pred = S.true_; child = join }

let test_matches () =
  check bool_t "any matches anything" true (P.matches P.Any get1);
  check bool_t "join pattern" true
    (P.matches (P.Op (L.KJoin L.Inner, [ P.Any; P.Any ])) join);
  check bool_t "wrong kind" false
    (P.matches (P.Op (L.KJoin L.LeftOuter, [ P.Any; P.Any ])) join);
  check bool_t "depth two" true
    (P.matches
       (P.Op (L.KFilter, [ P.Op (L.KJoin L.Inner, [ P.Any; P.Any ]) ]))
       filter_join);
  check bool_t "root mismatch, anywhere hit" true
    ((not (P.matches (P.Op (L.KJoin L.Inner, [ P.Any; P.Any ])) filter_join))
    && P.matches_anywhere (P.Op (L.KJoin L.Inner, [ P.Any; P.Any ])) filter_join);
  check bool_t "get leaf pattern" true (P.matches (P.Op (L.KGet, [])) get1)

let test_size_leaves () =
  let p = P.Op (L.KFilter, [ P.Op (L.KJoin L.Inner, [ P.Any; P.Any ]) ]) in
  check int_t "size counts concrete" 2 (P.size p);
  check int_t "leaves counts any" 2 (P.leaves p);
  check int_t "any sizes" 0 (P.size P.Any)

let test_substitute_leaf () =
  let p = P.Op (L.KJoin L.Inner, [ P.Any; P.Any ]) in
  let q = P.Op (L.KGroupBy, [ P.Any ]) in
  (match P.substitute_leaf p 0 q with
  | Some (P.Op (L.KJoin L.Inner, [ P.Op (L.KGroupBy, [ P.Any ]); P.Any ])) -> ()
  | _ -> Alcotest.fail "substitute at 0");
  (match P.substitute_leaf p 1 q with
  | Some (P.Op (L.KJoin L.Inner, [ P.Any; P.Op (L.KGroupBy, [ P.Any ]) ])) -> ()
  | _ -> Alcotest.fail "substitute at 1");
  check bool_t "out of range" true (P.substitute_leaf p 2 q = None)

let test_xml_round_trip_registry () =
  List.iter
    (fun (r : Optimizer.Rule.t) ->
      match P.of_xml (P.to_xml r.pattern) with
      | Ok p ->
        check bool_t (r.name ^ " xml round trip") true (p = r.pattern)
      | Error e -> Alcotest.failf "%s: %s" r.name e)
    Optimizer.Rules.all

let test_xml_errors () =
  check bool_t "garbage" true (Result.is_error (P.of_xml "<op>"));
  check bool_t "unknown kind" true
    (Result.is_error (P.of_xml "<op kind=\"Nope\"><any/></op>"));
  check bool_t "trailing" true (Result.is_error (P.of_xml "<any/><any/>"))

let test_registry () =
  check bool_t "at least 40 rules" true (Optimizer.Rules.count >= 40);
  check bool_t "find works" true (Optimizer.Rules.find "JoinCommute" <> None);
  check bool_t "find missing" true (Optimizer.Rules.find "NoSuchRule" = None);
  check bool_t "pattern_xml" true (Optimizer.Rules.pattern_xml "JoinCommute" <> None);
  let doc = Optimizer.Rules.all_patterns_xml () in
  check bool_t "document lists every rule" true
    (List.for_all
       (fun n ->
         let marker = "name=\"" ^ n ^ "\"" in
         let rec find i =
           i + String.length marker <= String.length doc
           && (String.sub doc i (String.length marker) = marker || find (i + 1))
         in
         find 0)
       Optimizer.Rules.names)

let test_compose () =
  let p1 = P.Op (L.KJoin L.Inner, [ P.Any; P.Any ]) in
  let p2 = P.Op (L.KGroupBy, [ P.Any ]) in
  let cs = Core.Query_gen.compose p1 p2 in
  (* 2 slots in p1 + 1 slot in p2 + 2 root combinations *)
  check int_t "candidate count" 5 (List.length cs);
  (* ordered by size *)
  let sizes = List.map P.size cs in
  check bool_t "sorted by size" true (List.sort compare sizes = sizes);
  check bool_t "root join present" true
    (List.mem (P.Op (L.KJoin L.Inner, [ p1; p2 ])) cs)

let suite =
  [ ( "optimizer.pattern",
      [ Alcotest.test_case "matching" `Quick test_matches;
        Alcotest.test_case "size/leaves" `Quick test_size_leaves;
        Alcotest.test_case "substitute leaf" `Quick test_substitute_leaf;
        Alcotest.test_case "xml round trip (all rules)" `Quick test_xml_round_trip_registry;
        Alcotest.test_case "xml errors" `Quick test_xml_errors;
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "pair composition" `Quick test_compose ] ) ]
