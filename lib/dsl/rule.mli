(** Transformation rules: (name, pattern, substitution) triples (§3.1).

    [apply] is the substitution function: given a tree whose root matches
    [pattern], it returns zero or more equivalent trees. Returning [] means
    the rule's preconditions (beyond the pattern) did not hold — the
    pattern is necessary, not sufficient. A rule is {e exercised} when
    [apply] returns at least one substitute. *)

type t = {
  name : string;
  pattern : Pattern.t;
  apply : Storage.Catalog.t -> Relalg.Logical.t -> Relalg.Logical.t list;
  fingerprint : string;
      (** Content digest identifying this rule's {e behaviour}, not just
          its name: DSL-backed rules digest their full [Rdsl] term (via
          {!make}'s [?fingerprint]); closure rules digest
          (name, pattern, [?version]). Editing a rule body under the same
          name must change the fingerprint — bump [?version] for closure
          rules, whose bodies are opaque OCaml. Incremental maintenance
          and the warm-start matrix key are built on this. *)
  pattern_fp : string;
      (** Digest of the pattern alone. [fingerprint] differing while
          [pattern_fp] is unchanged classifies an edit as body-only — the
          case incremental maintenance can reuse slices across. *)
}

val make :
  ?version:string ->
  ?fingerprint:string ->
  string ->
  Pattern.t ->
  (Storage.Catalog.t -> Relalg.Logical.t -> Relalg.Logical.t list) ->
  t
(** Wraps [apply] with the pattern check: the returned rule's [apply] is a
    no-op on trees whose root does not match [pattern]. When metrics are
    enabled, a non-matching root is additionally probed against the raw
    [apply]: if it would have produced substitutes, the
    [optimizer.rule.pattern_mismatch] counter (labelled with the rule
    name) is bumped — the rule's declared pattern and its implementation
    disagree, and the engine would silently never fire it.

    [?fingerprint] overrides the content fingerprint (DSL rules pass a
    digest of their term); otherwise it is derived from
    (name, pattern, [?version]) — [?version] (default [""]) is the
    closure rule's explicit content tag: pass a new value whenever the
    closure body's semantics change (fault injection passes ["fault"]). *)

val collect_matched : (unit -> 'a) -> 'a * string list
(** [collect_matched f] runs [f] with a domain-local collector installed
    and returns [f]'s result plus the sorted, deduplicated names of every
    rule whose pattern accepted some tree during the call. Because the
    pattern check in {!make} is the single gate in front of every rule
    body, this set is exactly the rules whose bodies could have
    influenced [f]'s result — the dependency set incremental maintenance
    records per suite target and per cost-matrix column. The collector is
    per-domain: [f] must not itself fan work out to other domains (wrap
    each pool task body instead). Nested collectors shadow the outer one
    for their extent. *)

(** {2 Helpers shared by rule implementations} *)

val subst :
  (Relalg.Ident.t -> Relalg.Scalar.t option) -> Relalg.Scalar.t -> Relalg.Scalar.t
(** Substitutes column references by expressions. *)

val positional_rename :
  Relalg.Props.col_info list ->
  Relalg.Props.col_info list ->
  Relalg.Ident.t ->
  Relalg.Ident.t
(** [positional_rename from_cols to_cols] maps the i-th ident of
    [from_cols] to the i-th of [to_cols]; other idents map to themselves. *)

val split_by_scope :
  Relalg.Scalar.t -> Relalg.Ident.Set.t -> Relalg.Scalar.t * Relalg.Scalar.t
(** [split_by_scope pred cols] splits the conjuncts of [pred] into (those
    referencing only [cols] — and at least one column, so constant
    conjuncts stay behind —, the rest). Both sides are [Scalar.true_] when
    empty. *)

val identity_project :
  Relalg.Props.col_info list -> Relalg.Logical.t -> Relalg.Logical.t
(** Project re-exporting exactly the given columns (used by rules that
    change column order and must restore it). *)

val null_safe_row_eq :
  Relalg.Props.col_info list -> Relalg.Props.col_info list -> Relalg.Scalar.t
(** Pairwise null-safe equality predicate
    [(a1 = b1 OR (a1 IS NULL AND b1 IS NULL)) AND ...] between two
    positionally-matched column lists. *)
