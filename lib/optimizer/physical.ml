open Relalg

type t =
  | TableScan of { table : string; alias : string }
  | FilterOp of { pred : Scalar.t; child : t }
  | ComputeScalar of { cols : (Ident.t * Scalar.t) list; child : t }
  | NestedLoopsJoin of {
      kind : Logical.join_kind;
      pred : Scalar.t;
      left : t;
      right : t;
    }
  | HashJoin of {
      kind : Logical.join_kind;
      left_keys : Ident.t list;
      right_keys : Ident.t list;
      residual : Scalar.t;
      left : t;
      right : t;
    }
  | MergeJoin of {
      left_keys : Ident.t list;
      right_keys : Ident.t list;
      residual : Scalar.t;
      left : t;
      right : t;
    }
  | HashAggregate of {
      keys : Ident.t list;
      aggs : (Ident.t * Aggregate.t) list;
      child : t;
    }
  | StreamAggregate of {
      keys : Ident.t list;
      aggs : (Ident.t * Aggregate.t) list;
      child : t;
    }
  | SortOp of { keys : (Ident.t * Logical.sort_dir) list; child : t }
  | Concat of t * t
  | HashUnion of t * t
  | HashIntersect of t * t
  | HashExcept of t * t
  | HashDistinct of t
  | LimitOp of { count : int; child : t }

let children = function
  | TableScan _ -> []
  | FilterOp { child; _ }
  | ComputeScalar { child; _ }
  | HashAggregate { child; _ }
  | StreamAggregate { child; _ }
  | SortOp { child; _ }
  | HashDistinct child
  | LimitOp { child; _ } ->
    [ child ]
  | NestedLoopsJoin { left; right; _ }
  | HashJoin { left; right; _ }
  | MergeJoin { left; right; _ } ->
    [ left; right ]
  | Concat (a, b) | HashUnion (a, b) | HashIntersect (a, b) | HashExcept (a, b) ->
    [ a; b ]

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 (children t)

let op_name = function
  | TableScan _ -> "TableScan"
  | FilterOp _ -> "Filter"
  | ComputeScalar _ -> "ComputeScalar"
  | NestedLoopsJoin { kind; _ } ->
    "NestedLoops" ^ Logical.kind_name (Logical.KJoin kind)
  | HashJoin { kind; _ } -> "Hash" ^ Logical.kind_name (Logical.KJoin kind)
  | MergeJoin _ -> "MergeJoin"
  | HashAggregate _ -> "HashAggregate"
  | StreamAggregate _ -> "StreamAggregate"
  | SortOp _ -> "Sort"
  | Concat _ -> "Concat"
  | HashUnion _ -> "HashUnion"
  | HashIntersect _ -> "HashIntersect"
  | HashExcept _ -> "HashExcept"
  | HashDistinct _ -> "HashDistinct"
  | LimitOp _ -> "Limit"

let equal (a : t) (b : t) = a = b

(* Full-depth structural hash (the plan analogue of [Logical.hash]):
   every constructor contributes a distinct tag and every payload —
   scalars, identifiers, aggregates, join kinds, sort keys — is folded
   in, so plans differing only deep inside an expression still get
   distinct fingerprints. Agrees with [equal] by construction. *)
let fingerprint t =
  let ( ** ) = Scalar.hash_combine in
  let hash_idents h ids = List.fold_left (fun h i -> h ** Ident.hash i) h ids in
  let rec go t =
    match t with
    | TableScan { table; alias } ->
      (1 ** Hashtbl.hash table) ** Hashtbl.hash alias
    | FilterOp { pred; child } -> (2 ** Scalar.hash pred) ** go child
    | ComputeScalar { cols; child } ->
      List.fold_left
        (fun h (id, e) -> (h ** Ident.hash id) ** Scalar.hash e)
        3 cols
      ** go child
    | NestedLoopsJoin { kind; pred; left; right } ->
      (((4 ** Hashtbl.hash kind) ** Scalar.hash pred) ** go left) ** go right
    | HashJoin { kind; left_keys; right_keys; residual; left; right } ->
      (hash_idents (hash_idents (5 ** Hashtbl.hash kind) left_keys) right_keys
      ** Scalar.hash residual)
      ** go left ** go right
    | MergeJoin { left_keys; right_keys; residual; left; right } ->
      (hash_idents (hash_idents 6 left_keys) right_keys
      ** Scalar.hash residual)
      ** go left ** go right
    | HashAggregate { keys; aggs; child } -> agg 7 keys aggs child
    | StreamAggregate { keys; aggs; child } -> agg 8 keys aggs child
    | SortOp { keys; child } ->
      List.fold_left
        (fun h (id, dir) -> (h ** Ident.hash id) ** Hashtbl.hash dir)
        9 keys
      ** go child
    | Concat (a, b) -> (10 ** go a) ** go b
    | HashUnion (a, b) -> (11 ** go a) ** go b
    | HashIntersect (a, b) -> (12 ** go a) ** go b
    | HashExcept (a, b) -> (13 ** go a) ** go b
    | HashDistinct a -> 14 ** go a
    | LimitOp { count; child } -> (15 ** count) ** go child
  and agg tag keys aggs child =
    List.fold_left
      (fun h (id, a) -> (h ** Ident.hash id) ** Aggregate.hash a)
      (hash_idents tag keys) aggs
    ** go child
  in
  go t land max_int

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = fingerprint
end)

let detail = function
  | TableScan { table; alias } -> Printf.sprintf "(%s AS %s)" table alias
  | FilterOp { pred; _ } -> Printf.sprintf "(%s)" (Scalar.to_sql pred)
  | ComputeScalar { cols; _ } ->
    let item (id, e) = Ident.to_sql id ^ " := " ^ Scalar.to_sql e in
    Printf.sprintf "(%s)" (String.concat ", " (List.map item cols))
  | NestedLoopsJoin { pred; _ } -> Printf.sprintf "(%s)" (Scalar.to_sql pred)
  | HashJoin { left_keys; right_keys; residual; _ }
  | MergeJoin { left_keys; right_keys; residual; _ } ->
    Printf.sprintf "(%s = %s%s)"
      (String.concat ", " (List.map Ident.to_sql left_keys))
      (String.concat ", " (List.map Ident.to_sql right_keys))
      (if Scalar.equal residual Scalar.true_ then ""
       else "; residual " ^ Scalar.to_sql residual)
  | HashAggregate { keys; aggs; _ } | StreamAggregate { keys; aggs; _ } ->
    let agg (id, a) = Ident.to_sql id ^ " := " ^ Aggregate.to_sql a in
    Printf.sprintf "(keys=[%s]; %s)"
      (String.concat ", " (List.map Ident.to_sql keys))
      (String.concat ", " (List.map agg aggs))
  | SortOp { keys; _ } ->
    let key (id, dir) =
      Ident.to_sql id ^ (match dir with Logical.Asc -> " ASC" | Logical.Desc -> " DESC")
    in
    Printf.sprintf "(%s)" (String.concat ", " (List.map key keys))
  | LimitOp { count; _ } -> Printf.sprintf "(%d)" count
  | Concat _ | HashUnion _ | HashIntersect _ | HashExcept _ | HashDistinct _ -> ""

let rec pp_indent fmt depth t =
  Format.fprintf fmt "%s%s%s" (String.make (2 * depth) ' ') (op_name t) (detail t);
  List.iter
    (fun c ->
      Format.pp_print_cut fmt ();
      pp_indent fmt (depth + 1) c)
    (children t)

let pp fmt t = Format.fprintf fmt "@[<v>%a@]" (fun fmt -> pp_indent fmt 0) t
let to_string t = Format.asprintf "%a" pp t
