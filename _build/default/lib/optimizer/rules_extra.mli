(** Additional exploration rules: filter/sort commutation, filter
    distribution over INTERSECT/EXCEPT, distinct motion around UNION ALL,
    and cross-join commutativity. Registered after the original rules so
    experiment configurations indexing the registry by prefix are
    unaffected. *)

val rules : Rule.t list
