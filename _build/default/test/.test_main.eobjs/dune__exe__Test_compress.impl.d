test/test_compress.ml: Aggregate Alcotest Array Core Ident List Logical Optimizer Printf Relalg Result Scalar Storage String
