(** The rule registry: all exploration (logical) transformation rules in a
    canonical order, plus the pattern-export API the paper adds to the
    DBMS (§3.1: "we have extended the database server with an API through
    which it returns the rule pattern tree for a rule in a XML format"). *)

val all : Rule.t list
(** All exploration rules; the order is stable and experiments index rules
    by position in this list. *)

val names : string list
val count : int
val find : string -> Rule.t option
val find_exn : string -> Rule.t

val nth : int -> Rule.t
(** Raises [Invalid_argument] when out of range. *)

val pattern_xml : string -> string option
(** The XML rule-pattern export for a rule name. *)

val all_patterns_xml : unit -> string
(** One [<rules>...</rules>] document with every rule's pattern. *)

val fingerprints : unit -> (string * string) list
(** (name, content fingerprint) for every registered rule, in registry
    order. DSL-backed rules digest their full [Rdsl] term; closure rules
    digest (name, pattern, version tag). Any edit to a rule's definition
    yields a new fingerprint — the identity incremental maintenance and
    the warm-start matrix key are built on. *)

val source_of : string -> string
(** ["dsl"] when the named registered rule is compiled from an [Rdsl]
    term, ["closure"] otherwise. *)

val simulate_edit : ?rules:Rule.t list -> string -> Rule.t list
(** [simulate_edit name] is the registry (default {!all}) with the named
    rule rebuilt under a bumped version tag: same name, same pattern,
    same behavior, new content fingerprint — a behavior-preserving
    refactor of the rule's body, reproducible for warm-edit benchmarks,
    CI, and incremental-maintenance tests. The maintenance layer must
    recompute everything depending on the rule, and the recomputed
    results must equal the pre-edit ones byte for byte. Raises
    [Invalid_argument] for an unknown name. *)

val dsl_rules : (string * Dsl.Rdsl.rule) list
(** The DSL source of each DSL-backed registered rule (the join and select
    families), keyed by rule name, in registry order. *)

val rdsl_of : string -> Dsl.Rdsl.rule option
