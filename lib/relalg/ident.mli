(** Column identifiers.

    Every relation instance in a logical query tree carries a unique
    relation label (e.g. ["r0"], ["r1"], ...) so a column is globally
    identified by the pair (relation label, column name). This makes
    transformation rules purely structural: moving an operator never
    requires renaming the columns it references.

    The SQL surface spelling is [label_name] (e.g. [r0_l_orderkey]); labels
    never contain ['_'], so the spelling is unambiguous. *)

type t = { rel : string; name : string }

val make : string -> string -> t
(** [make rel name]. [rel] must be non-empty and must not contain '_'. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_sql : t -> string
(** [rel ^ "_" ^ name]. *)

val of_sql : string -> t option
(** Inverse of {!to_sql}: splits at the first '_'. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val fresh_rel : unit -> string
(** A fresh relation label ["r<n>"] from a domain-local counter. Unique
    within a domain; parallel callers carve out disjoint ranges with
    {!set_fresh} to keep labels deterministic and collision-free. *)

val reset_fresh : unit -> unit
(** Reset the calling domain's label counter (tests only; makes
    generated trees reproducible). *)

val set_fresh : int -> unit
(** Set the calling domain's label counter. Parallel generation gives
    each task a disjoint base (e.g. [task_index * 100_000]) so the
    aliases a task produces depend only on the task, not on which
    domain ran it. *)
