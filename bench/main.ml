(* Benchmark harness: regenerates every experiment of the paper's
   evaluation (§6, Figures 8-14), plus Bechamel microbenchmarks of the
   substrate.

     dune exec bench/main.exe                 -- all figures, quick scale
     dune exec bench/main.exe -- fig12        -- one figure
     dune exec bench/main.exe -- --full all   -- paper-scale parameters

   Absolute numbers differ from the paper (different DBMS, different
   hardware); the claims that must reproduce are the *shapes*: PATTERN
   beats RANDOM (more so for pairs), SMC/TOPK beat BASELINE by orders of
   magnitude for singletons, TOPK stays robust for pairs while SMC
   degrades, and monotonicity saves a large factor of optimizer calls at
   identical solution quality. *)

open Storage
module F = Core.Framework
module QG = Core.Query_gen
module Su = Core.Suite
module C = Core.Compress

let scale = 0.002
let bench_options = { Optimizer.Engine.default_options with max_trees = 400 }
let catalog = lazy (Datagen.tpch ~scale ())
let fw () = F.create ~options:bench_options (Lazy.force catalog)

(* Monotonic, so figure timings can't be skewed by wall-clock jumps. *)
let now () = Obs.Clock.now_s ()
let header title = Printf.printf "\n=== %s ===\n%!" title
let hr () = print_endline (String.make 72 '-')

(* Results accumulated for --json: per-experiment wall time, plus the
   detail objects some experiments publish (speedups, optimizer-call
   counts). Written to BENCH_results.json at exit. *)
let timings : (string * float) list ref = ref []
let details : (string * Obs.Json.t) list ref = ref []
let detail name obj = details := (name, obj) :: !details

(* Provenance stamped on every JSON emission, so a results file (and the
   history line derived from it) identifies the commit and machine it
   came from. All best-effort: a missing .git or an odd platform yields
   "unknown", never a failure. *)
let git_sha () =
  let read_line_of f =
    let ic = open_in f in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> String.trim (input_line ic))
  in
  try
    let head = read_line_of ".git/HEAD" in
    match String.index_opt head ' ' with
    | None -> head (* detached HEAD: the sha itself *)
    | Some i -> (
      let r = String.sub head (i + 1) (String.length head - i - 1) in
      try read_line_of (Filename.concat ".git" r)
      with _ ->
        (* ref not loose — scan packed-refs for "<sha> <ref>" *)
        let ic = open_in ".git/packed-refs" in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let rec scan () =
              let line = input_line ic in
              match String.index_opt line ' ' with
              | Some j when String.sub line (j + 1) (String.length line - j - 1) = r
                ->
                String.sub line 0 j
              | _ -> scan ()
            in
            try scan () with End_of_file -> "unknown"))
  with _ -> "unknown"

let meta_json () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Obs.Json.Obj
    [ ("git_sha", Obs.Json.String (git_sha ()));
      ( "timestamp",
        Obs.Json.String
          (Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
             (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
             tm.Unix.tm_sec) );
      ("hostname", Obs.Json.String (try Unix.gethostname () with _ -> "unknown"));
      ("recommended_domains", Obs.Json.Int (Domain.recommended_domain_count ()));
      ("ocaml", Obs.Json.String Sys.ocaml_version) ]

(* One line per bench run: provenance + the regression gate's key
   metrics, flattened to path/value pairs. Append-only, so the file is a
   trajectory of this machine's runs that bench-diff thresholds can be
   tuned against. *)
let append_history ~meta ~doc path =
  let metrics = Obs.Benchcmp.extract doc in
  let record =
    Obs.Json.Obj
      [ ("meta", meta);
        ("scale", Obs.Json.Float scale);
        ("max_trees", Obs.Json.Int bench_options.max_trees);
        ( "metrics",
          Obs.Json.Obj (List.map (fun (p, v) -> (p, Obs.Json.Float v)) metrics) ) ]
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Obs.Json.to_string record);
  output_char oc '\n';
  close_out oc;
  Printf.printf "appended %d key metric(s) to %s\n%!" (List.length metrics) path

let write_json ~full path =
  let meta = meta_json () in
  let json =
    Obs.Json.Obj
      [ ("meta", meta);
        ("scale", Obs.Json.Float scale);
        ("max_trees", Obs.Json.Int bench_options.max_trees);
        ("full", Obs.Json.Bool full);
        ( "experiment_seconds",
          Obs.Json.Obj
            (List.rev_map (fun (n, s) -> (n, Obs.Json.Float s)) !timings) );
        ("details", Obs.Json.Obj (List.rev !details)) ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n%!" path;
  append_history ~meta ~doc:json "BENCH_history.jsonl"

(* ------------------------------------------------------------------ *)
(* Figure 8: trials per singleton rule, RANDOM vs PATTERN               *)
(* ------------------------------------------------------------------ *)

let fig8 ~full =
  let n_rules = if full then Optimizer.Rules.count else 30 in
  let rules = List.filteri (fun i _ -> i < n_rules) Optimizer.Rules.names in
  let cap = 100 in
  header
    (Printf.sprintf
       "Figure 8: query generation trials per singleton rule (%d rules, cap %d)"
       (List.length rules) cap);
  let framework = fw () in
  Printf.printf "%-34s %8s %9s\n" "rule" "RANDOM" "PATTERN";
  hr ();
  let tr = ref 0 and tp = ref 0 and rand_failures = ref 0 in
  List.iteri
    (fun i name ->
      let g = Prng.create (1000 + i) in
      let random_trials =
        match QG.random_for_rules ~max_trials:cap framework g [ name ] with
        | Some r -> r.trials
        | None ->
          incr rand_failures;
          cap
      in
      let pattern_trials =
        match QG.for_rule ~max_trials:cap framework g name with
        | Some r -> r.trials
        | None -> cap
      in
      tr := !tr + random_trials;
      tp := !tp + pattern_trials;
      Printf.printf "%-34s %8d %9d\n%!" name random_trials pattern_trials)
    rules;
  hr ();
  Printf.printf "%-34s %8d %9d   (RANDOM hit the cap for %d rules)\n" "TOTAL" !tr !tp
    !rand_failures

(* ------------------------------------------------------------------ *)
(* Figures 9 & 10: rule pairs — trials and generation time              *)
(* ------------------------------------------------------------------ *)

let fig9_10 ~full =
  let ns = if full then [ 15; 30 ] else [ 10; 15 ] in
  let cap_random = if full then 300 else 120 in
  let cap_pattern = 60 in
  header
    (Printf.sprintf
       "Figures 9 and 10: rule-pair generation, RANDOM vs PATTERN (caps %d/%d)"
       cap_random cap_pattern);
  Printf.printf "%5s %7s | %13s %14s | %9s %10s\n" "n" "pairs" "RANDOM trials"
    "PATTERN trials" "RANDOM s" "PATTERN s";
  hr ();
  List.iter
    (fun n ->
      let rules = List.filteri (fun i _ -> i < n) Optimizer.Rules.names in
      let pairs = Su.all_pairs rules in
      let framework = fw () in
      let rt = ref 0 and pt = ref 0 in
      let rsec = ref 0.0 and psec = ref 0.0 in
      let rfail = ref 0 and pfail = ref 0 in
      List.iteri
        (fun i pair ->
          let r1, r2 =
            match pair with Su.Pair (a, b) -> (a, b) | Su.Single r -> (r, r)
          in
          let g = Prng.create (5000 + i) in
          let t0 = now () in
          (match
             QG.random_for_rules ~max_trials:cap_random ~max_ops:8 framework g
               [ r1; r2 ]
           with
          | Some r -> rt := !rt + r.trials
          | None ->
            incr rfail;
            rt := !rt + cap_random);
          rsec := !rsec +. (now () -. t0);
          let t1 = now () in
          (match QG.for_pair ~max_trials:cap_pattern framework g (r1, r2) with
          | Some r -> pt := !pt + r.trials
          | None ->
            incr pfail;
            pt := !pt + cap_pattern);
          psec := !psec +. (now () -. t1))
        pairs;
      Printf.printf
        "%5d %7d | %13d %14d | %9.1f %10.1f   (caps hit: RANDOM %d, PATTERN %d)\n%!" n
        (List.length pairs) !rt !pt !rsec !psec !rfail !pfail)
    ns

(* ------------------------------------------------------------------ *)
(* Suite machinery shared by Figures 11-14                              *)
(* ------------------------------------------------------------------ *)

let rec take m = function
  | [] -> []
  | _ when m = 0 -> []
  | x :: xs -> x :: take (m - 1) xs

(* Restrict a suite to its first [n] targets and at most [k] queries per
   target (suites are generated once at the largest configuration). *)
let subset_suite (suite : Su.t) ~targets ~k : Su.t =
  let per_target =
    List.filter_map
      (fun (t, idx) -> if List.mem t targets then Some (t, take k idx) else None)
      suite.per_target
  in
  { suite with k; targets; per_target }

let print_compression_row label (sol : C.solution) seconds =
  Printf.printf "  %-10s total cost = %14.1f   (invocations %5d, %5.1fs)\n%!" label
    sol.total_cost sol.invocations seconds

let run_algorithms framework suite =
  let t0 = now () in
  let b = C.baseline framework suite in
  let t1 = now () in
  print_compression_row "BASELINE" b (t1 -. t0);
  let s = C.smc framework suite in
  let t2 = now () in
  print_compression_row "SMC" s (t2 -. t1);
  let t = C.topk ~exploit_monotonicity:true framework suite in
  let t3 = now () in
  print_compression_row "TOPK" t (t3 -. t2);
  (b, s, t)

(* ------------------------------------------------------------------ *)
(* Figure 11: compression for singleton rules                           *)
(* ------------------------------------------------------------------ *)

let fig11 ~full =
  let k = if full then 10 else 6 in
  let ns = if full then [ 5; 10; 15; 20; 25; 30 ] else [ 5; 10; 15; 20 ] in
  let n_max = List.fold_left max 0 ns in
  header (Printf.sprintf "Figure 11: test-suite compression, singleton rules (k=%d)" k);
  let framework = fw () in
  let g = Prng.create 42 in
  let rules = List.filteri (fun i _ -> i < n_max) Optimizer.Rules.names in
  let targets = List.map (fun r -> Su.Single r) rules in
  Printf.printf "generating the overall test suite (%d rules x k=%d)...\n%!" n_max k;
  let t0 = now () in
  let full_suite = Su.generate ~extra_ops:3 framework g ~targets ~k in
  Printf.printf "  %d distinct queries in %.1fs (shortfalls: %d)\n%!"
    (Array.length full_suite.entries)
    (now () -. t0)
    (List.length (Su.shortfall full_suite));
  List.iter
    (fun n ->
      Printf.printf "n = %d singleton rules:\n" n;
      ignore (run_algorithms framework (subset_suite full_suite ~targets:(take n targets) ~k)))
    ns

(* ------------------------------------------------------------------ *)
(* Figures 12-14 share one pair suite                                   *)
(* ------------------------------------------------------------------ *)

let pair_suite ~full framework =
  let n_max = if full then 15 else 10 in
  let k = if full then 10 else 4 in
  let g = Prng.create 77 in
  let rules = List.filteri (fun i _ -> i < n_max) Optimizer.Rules.names in
  let targets = Su.all_pairs rules in
  Printf.printf "generating the pair test suite (%d pairs x k=%d)...\n%!"
    (List.length targets) k;
  let t0 = now () in
  let suite = Su.generate ~extra_ops:1 framework g ~targets ~k in
  Printf.printf "  %d distinct queries in %.1fs (shortfalls: %d)\n%!"
    (Array.length suite.entries)
    (now () -. t0)
    (List.length (Su.shortfall suite));
  (suite, n_max, k)

let cached_pair_suite = ref None

let get_pair_suite ~full framework =
  match !cached_pair_suite with
  | Some ((_, _, _) as r, was_full) when was_full = full -> r
  | _ ->
    let r = pair_suite ~full framework in
    cached_pair_suite := Some (r, full);
    r

let pair_targets_of_first_n (suite : Su.t) n =
  let rules = List.filteri (fun i _ -> i < n) Optimizer.Rules.names in
  let wanted = Su.all_pairs rules in
  List.filter (fun t -> List.mem t wanted) suite.targets

let fig12 ~full =
  header "Figure 12: test-suite compression, rule pairs";
  let framework = fw () in
  let suite, n_max, k = get_pair_suite ~full framework in
  let ns = if full then [ 5; 10; 15 ] else [ 5; 8; 10 ] in
  List.iter
    (fun n ->
      if n <= n_max then begin
        let targets = pair_targets_of_first_n suite n in
        let sub = subset_suite suite ~targets ~k in
        Printf.printf "n = %d rules (%d pairs):\n" n (List.length sub.targets);
        ignore (run_algorithms framework sub)
      end)
    ns

let fig13 ~full =
  header "Figure 13: impact of the test-suite size k (rule pairs)";
  let framework = fw () in
  let suite, n_max, k_max = get_pair_suite ~full framework in
  let ks = List.filter (fun k -> k <= k_max) [ 1; 2; 3; 4; 5; 10 ] in
  let targets = pair_targets_of_first_n suite n_max in
  List.iter
    (fun k ->
      let sub = subset_suite suite ~targets ~k in
      Printf.printf "k = %d:\n" k;
      ignore (run_algorithms framework sub))
    ks

let fig14 ~full =
  header "Figure 14: optimizer invocations, TOPK naive vs exploiting monotonicity";
  let framework = fw () in
  let suite, n_max, k = get_pair_suite ~full framework in
  let ns = if full then [ 5; 10; 15 ] else [ 5; 8; 10 ] in
  Printf.printf "%5s %7s | %10s %10s %8s | %s\n" "n" "pairs" "naive" "mono" "saving"
    "solution quality delta";
  hr ();
  List.iter
    (fun n ->
      if n <= n_max then begin
        let targets = pair_targets_of_first_n suite n in
        let sub = subset_suite suite ~targets ~k in
        let naive = C.topk framework sub in
        let mono = C.topk ~exploit_monotonicity:true framework sub in
        (* With an untruncated search the two solutions are identical
           (Cost(q) <= Cost(q, not R) holds exactly); at finite exploration
           budgets the assumption can bend slightly — report the delta. *)
        let delta =
          100.0 *. (mono.total_cost -. naive.total_cost) /. naive.total_cost
        in
        Printf.printf "%5d %7d | %10d %10d %7.1fx | %+.2f%%\n%!" n
          (List.length sub.targets) naive.invocations mono.invocations
          (float_of_int naive.invocations /. float_of_int (max 1 mono.invocations))
          delta
      end)
    ns

(* ------------------------------------------------------------------ *)
(* Extension experiments beyond the paper's figures                     *)
(* ------------------------------------------------------------------ *)

let ext_matching () =
  header "Extension (paper §7): exact no-sharing assignment vs BASELINE";
  let framework = fw () in
  let g = Prng.create 4242 in
  let rules = List.filteri (fun i _ -> i < 10) Optimizer.Rules.names in
  let suite =
    Su.generate ~extra_ops:3 framework g
      ~targets:(List.map (fun r -> Su.Single r) rules)
      ~k:4
  in
  let b = C.baseline framework suite in
  let m = Core.Matching.solve framework suite in
  Printf.printf "  BASELINE  %14.1f\n  MATCHING  %14.1f  (complete=%b)\n" b.total_cost
    m.total_cost m.complete

let ext_correctness () =
  header "Extension: executing a compressed suite for the whole registry";
  let framework = fw () in
  let g = Prng.create 31337 in
  let targets = List.map (fun r -> Su.Single r) Optimizer.Rules.names in
  let t0 = now () in
  let suite = Su.generate ~extra_ops:2 framework g ~targets ~k:2 in
  let sol = C.topk ~exploit_monotonicity:true framework suite in
  let report = Core.Correctness.run framework suite sol in
  Printf.printf
    "  %d rules, %d distinct queries; checked %d pairs, executed %d plans, skipped %d, bugs %d, errors %d (%.1fs)\n"
    (List.length targets)
    (Array.length suite.entries)
    report.pairs_checked report.executions report.skipped_identical
    (List.length report.bugs)
    (List.length report.errors)
    (now () -. t0);
  let victim = "SelectMerge" in
  let fw_bug =
    F.create ~options:bench_options
      ~rules:(Core.Faults.inject victim)
      (Lazy.force catalog)
  in
  let g2 = Prng.create 99 in
  let s2 = Su.generate ~extra_ops:2 fw_bug g2 ~targets:[ Su.Single victim ] ~k:6 in
  let rep2 = Core.Correctness.run fw_bug s2 (C.baseline fw_bug s2) in
  Printf.printf "  with buggy %s injected: %d bug(s) reported\n" victim
    (List.length rep2.bugs)

(* ------------------------------------------------------------------ *)
(* Triage: delta reduction of the bugs each injected fault surfaces     *)
(* ------------------------------------------------------------------ *)

let reduce_bench () =
  header "Triage: delta reduction of injected-fault bugs (k=8, seed 1)";
  let cat = Lazy.force catalog in
  Printf.printf "%-30s %5s %6s %10s %8s %8s %7s\n" "fault" "bugs" "cases"
    "nodes" "steps" "checks" "secs";
  hr ();
  let all_shrink = ref [] in
  let faults = ref [] in
  List.iter
    (fun victim ->
      let fw_b =
        F.create ~options:bench_options
          ~rules:(Core.Faults.inject victim)
          cat
      in
      let g = Prng.create 1 in
      let t0 = now () in
      let suite =
        Su.generate ~extra_ops:2 fw_b g ~targets:[ Su.Single victim ] ~k:8
      in
      let sol = C.topk ~exploit_monotonicity:true fw_b suite in
      let report = Core.Correctness.run fw_b suite sol in
      let t = Triage.Pipeline.triage fw_b report in
      let secs = now () -. t0 in
      let shrinks =
        List.map
          (fun (c : Triage.Pipeline.case) ->
            (c.stats.original_size, c.stats.reduced_size, c.stats.steps,
             c.stats.checks))
          t.cases
      in
      all_shrink := !all_shrink @ shrinks;
      let sum f = List.fold_left (fun a x -> a + f x) 0 shrinks in
      Printf.printf "%-30s %5d %6d %4d->%-5d %8d %8d %6.1fs\n%!" victim
        (List.length report.bugs)
        (List.length t.cases)
        (sum (fun (o, _, _, _) -> o))
        (sum (fun (_, r, _, _) -> r))
        (sum (fun (_, _, s, _) -> s))
        t.checks secs;
      faults :=
        ( victim,
          Obs.Json.Obj
            [ ("bugs", Obs.Json.Int (List.length report.bugs));
              ("cases", Obs.Json.Int (List.length t.cases));
              ("duplicates", Obs.Json.Int t.duplicates);
              ( "original_nodes",
                Obs.Json.Int (sum (fun (o, _, _, _) -> o)) );
              ("reduced_nodes", Obs.Json.Int (sum (fun (_, r, _, _) -> r)));
              ("oracle_checks", Obs.Json.Int t.checks);
              ("plan_executions", Obs.Json.Int t.executions);
              ("seconds", Obs.Json.Float secs) ] )
        :: !faults)
    Core.Faults.names;
  hr ();
  let shrinks =
    List.map
      (fun (o, r, _, _) -> float_of_int (o - r) /. float_of_int (max 1 o))
      !all_shrink
  in
  let median xs =
    match List.sort compare xs with
    | [] -> 0.0
    | l -> List.nth l (List.length l / 2)
  in
  Printf.printf "  %d reproducers; median node shrink %.0f%%\n"
    (List.length shrinks)
    (100.0 *. median shrinks);
  detail "reduce"
    (Obs.Json.Obj
       [ ("reproducers", Obs.Json.Int (List.length shrinks));
         ("median_shrink", Obs.Json.Float (median shrinks));
         ("per_fault", Obs.Json.Obj (List.rev !faults)) ])

(* ------------------------------------------------------------------ *)
(* Rule-discovery experiment (lib/discovery end to end)                 *)
(* ------------------------------------------------------------------ *)

let discover_bench ~disk () =
  print_endline "discover: mine, validate, rank and promote rewrite rules";
  hr ();
  (* Firing counters feed the ranker; restore the disabled default so
     the other experiments keep their uninstrumented fast path. *)
  Obs.Metrics.set_enabled true;
  let t0 = now () in
  let report = Discovery.Driver.run ?disk Discovery.Driver.default_config in
  let secs = now () -. t0 in
  Obs.Metrics.set_enabled false;
  Printf.printf
    "%d candidates (%d raw): %d survived, %d refuted (%d/%d seeded), %d \
     inconclusive in %d checks\n"
    report.candidates report.raw_candidates report.survived report.refuted
    (List.length report.seeded_refuted)
    (List.length report.seeded_refuted + List.length report.seeded_survived)
    report.inconclusive report.checks;
  Printf.printf
    "rediscovered %d known-sound; ranked over %d suite queries (%d optimizer \
     runs); promoted %d/%d (%d demoted)\n"
    (List.length report.rediscovered)
    report.suite_queries report.scoring_optimizer_runs
    (List.length report.promotion.promoted)
    (List.length report.promotion.attempted)
    (List.length report.promotion.demoted);
  Printf.printf "  %.1fs\n%!" secs;
  detail "discover"
    (Obs.Json.Obj
       [ ("raw_candidates", Obs.Json.Int report.raw_candidates);
         ("candidates", Obs.Json.Int report.candidates);
         ("survived", Obs.Json.Int report.survived);
         ("refuted", Obs.Json.Int report.refuted);
         ("inconclusive", Obs.Json.Int report.inconclusive);
         ("checks", Obs.Json.Int report.checks);
         ("rediscovered", Obs.Json.Int (List.length report.rediscovered));
         ("seeded_refuted", Obs.Json.Int (List.length report.seeded_refuted));
         ("seeded_survived", Obs.Json.Int (List.length report.seeded_survived));
         ( "seeded_all_refuted",
           Obs.Json.Bool
             (report.seeded_survived = [] && report.seeded_refuted <> []) );
         ("promoted", Obs.Json.Int (List.length report.promotion.promoted));
         ("demoted", Obs.Json.Int (List.length report.promotion.demoted));
         ( "scoring_optimizer_runs",
           Obs.Json.Int report.scoring_optimizer_runs );
         ("seconds", Obs.Json.Float secs) ])

(* ------------------------------------------------------------------ *)
(* Symbolic oracle experiment (lib/dsl Verify over the registries)      *)
(* ------------------------------------------------------------------ *)

let verify_bench () =
  print_endline
    "verify: bounded symbolic oracle over the DSL registry + discovery sets";
  hr ();
  let t0 = now () in
  let tally rules =
    List.fold_left
      (fun (s, r, u) rule ->
        match Dsl.Rdsl.Verify.verify rule with
        | Dsl.Rdsl.Verify.Sound_bounded -> (s + 1, r, u)
        | Dsl.Rdsl.Verify.Refuted _ -> (s, r + 1, u)
        | Dsl.Rdsl.Verify.Unknown _ -> (s, r, u + 1))
      (0, 0, 0) rules
  in
  let registered = List.map snd Optimizer.Rules.dsl_rules in
  let rs, rr, ru = tally registered in
  let known =
    List.filter_map
      (fun (n, c) -> Discovery.Template.to_rdsl ~name:n c)
      Discovery.Template.known_sound
  in
  let ks, kr, ku = tally known in
  let seeded =
    List.filter_map
      (fun (n, c) -> Discovery.Template.to_rdsl ~name:n c)
      Discovery.Template.seeded_unsound
  in
  let ss, sr, su = tally seeded in
  let secs = now () -. t0 in
  Printf.printf
    "%d DSL-backed registered rules: %d sound, %d refuted, %d unknown\n"
    (List.length registered) rs rr ru;
  Printf.printf "%d known-sound templates: %d sound, %d refuted, %d unknown\n"
    (List.length known) ks kr ku;
  Printf.printf "%d seeded-unsound templates: %d refuted, %d missed\n"
    (List.length seeded) sr (ss + su);
  Printf.printf "  %.2fs\n%!" secs;
  detail "verify"
    (Obs.Json.Obj
       [ ("registered", Obs.Json.Int (List.length registered));
         ("sound", Obs.Json.Int rs);
         ("refuted", Obs.Json.Int rr);
         ("unknown", Obs.Json.Int ru);
         ("registered_all_sound", Obs.Json.Bool (rr = 0 && ru = 0));
         ("known_sound_verified", Obs.Json.Int ks);
         ( "known_sound_all_sound",
           Obs.Json.Bool (ks = List.length known && known <> []) );
         ("seeded_refuted", Obs.Json.Int sr);
         ( "seeded_all_refuted",
           Obs.Json.Bool (sr = List.length seeded && seeded <> []) );
         ("seconds", Obs.Json.Float secs) ])

(* ------------------------------------------------------------------ *)
(* Engine speedup experiments (hash-consing / memoized exploration)     *)
(* ------------------------------------------------------------------ *)

let explore_bench () =
  header "Explore: memoized rewrites vs per-tree recomputation (budget 1200)";
  let cat = Lazy.force catalog in
  let ctx = { Core.Arggen.g = Prng.create 2024; cat } in
  let n_queries = 5 in
  let queries = ref [] in
  for _ = 1 to n_queries do
    queries := Core.Random_gen.generate ~min_ops:5 ~max_ops:8 ctx :: !queries
  done;
  let queries = List.rev !queries in
  let options memoize =
    { Optimizer.Engine.default_options with max_trees = 1200; memoize }
  in
  let time memoize =
    let t0 = now () in
    let trees =
      List.fold_left
        (fun acc q ->
          match Optimizer.Engine.optimize ~options:(options memoize) cat q with
          | Ok r -> acc + r.trees_explored
          | Error _ -> acc)
        0 queries
    in
    (now () -. t0, trees)
  in
  let plain_s, plain_trees = time false in
  let memo_s, memo_trees = time true in
  assert (plain_trees = memo_trees);
  let speedup = plain_s /. Float.max 1e-9 memo_s in
  Printf.printf
    "  %d queries, %d trees total\n  per-tree recomputation  %7.3fs\n  memoized rewrites       %7.3fs\n  speedup                 %6.1fx\n"
    n_queries memo_trees plain_s memo_s speedup;
  detail "explore"
    (Obs.Json.Obj
       [ ("queries", Obs.Json.Int n_queries);
         ("max_trees", Obs.Json.Int 1200);
         ("trees_explored", Obs.Json.Int memo_trees);
         ("unmemoized_seconds", Obs.Json.Float plain_s);
         ("memoized_seconds", Obs.Json.Float memo_s);
         ("speedup", Obs.Json.Float speedup) ])

let matrix_bench ~full ~disk =
  header "Edge-cost matrix: shared exploration vs one optimization per edge";
  let framework = fw () in
  let suite, _, _ = get_pair_suite ~full framework in
  let nt = List.length suite.targets in
  let nq = Array.length suite.entries in
  (* With --cache-dir the first [run] spills the matrix and later runs
     (including a whole later bench process) are served warm — the CI
     warm-start job diffs exactly these timings and edge-cost sums. *)
  let run share =
    F.reset_invocations framework;
    let ec = C.edge_costs ~share_exploration:share ?disk framework suite in
    let t0 = now () in
    let total = ref 0.0 in
    for ti = 0 to nt - 1 do
      for q = 0 to nq - 1 do
        let c = C.edge_cost ec ~target_idx:ti ~query_idx:q in
        if Float.is_finite c then total := !total +. c
      done
    done;
    C.save_matrix ec;
    (now () -. t0, !total, C.invocations_used ec, F.invocations framework)
  in
  let per_s, per_total, per_edges, per_inv = run false in
  let sh_s, sh_total, sh_edges, sh_inv = run true in
  let speedup = per_s /. Float.max 1e-9 sh_s in
  Printf.printf
    "  %d targets x %d queries = %d edges\n  per-edge optimization   %7.3fs  (%d optimizer runs)\n  shared exploration      %7.3fs  (%d optimizer runs)\n  speedup                 %6.1fx   edge-cost sum delta %+.3f%%\n"
    nt nq per_edges per_s per_inv sh_s sh_inv speedup
    (if per_total = 0.0 then 0.0
     else 100.0 *. (sh_total -. per_total) /. per_total);
  ignore sh_edges;
  detail "matrix"
    (Obs.Json.Obj
       [ ("targets", Obs.Json.Int nt);
         ("queries", Obs.Json.Int nq);
         ("edges", Obs.Json.Int per_edges);
         ("per_edge_seconds", Obs.Json.Float per_s);
         ("per_edge_optimizer_runs", Obs.Json.Int per_inv);
         ("shared_seconds", Obs.Json.Float sh_s);
         ("shared_optimizer_runs", Obs.Json.Int sh_inv);
         ("speedup", Obs.Json.Float speedup);
         ("edge_cost_sum_per_edge", Obs.Json.Float per_total);
         ("edge_cost_sum_shared", Obs.Json.Float sh_total) ])

(* Incremental maintenance: a cold pipeline run persists the suite
   manifest; one rule is then "edited" (behavior-preserving fingerprint
   bump) and the incremental rebuild — which regenerates only the
   affected slice and serves the rest from the manifest — is timed
   against a cold rebuild with the same edited registry. The two must be
   byte-identical; the speedup and edge-reuse ratio are the experiment's
   gated metrics. Uses its own temp cache dir so the experiment is
   self-contained whatever --cache-dir says. *)
let incremental_bench ~full () =
  header "Incremental: warm-edit rebuild vs cold rebuild (suite manifest)";
  let n = if full then 24 else 14 in
  let k = if full then 4 else 3 in
  let edited_rule = "PushSelectBelowSemiJoin" in
  let rules = List.filteri (fun i _ -> i < n) Optimizer.Rules.names in
  assert (List.mem edited_rule rules);
  let targets = List.map (fun r -> Su.Single r) rules in
  let pool = Par.Pool.sequential in
  let fresh_dir =
    let stamp = int_of_float (Unix.gettimeofday () *. 1e3) in
    let c = ref 0 in
    fun () ->
      incr c;
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "qtr-bench-incr-%d-%d-%d" (Unix.getpid ()) stamp !c)
  in
  let run ~dir registry =
    let framework =
      F.create ~options:bench_options ~rules:registry (Lazy.force catalog)
    in
    let dc = Diskcache.create ~dir () in
    let sess = Core.Incr.start ~dc ~desc:"bench-incremental" framework in
    let g = Prng.create 2009 in
    let t0 = now () in
    let suite = Core.Incr.generate ~extra_ops:2 ~pool sess g ~targets ~k in
    let ec = C.edge_costs ~warm_edges:(Core.Incr.warm_edges sess) framework suite in
    let sol = C.topk ~pool ~ec framework suite in
    Core.Incr.note_matrix sess ec;
    ignore (Core.Incr.finish sess : bool);
    (now () -. t0, suite, sol, Core.Incr.result sess)
  in
  let base_registry = List.map Optimizer.Rules.find_exn rules in
  let edited_registry =
    Optimizer.Rules.simulate_edit ~rules:base_registry edited_rule
  in
  let dir = fresh_dir () in
  let cold_s, _, _, _ = run ~dir base_registry in
  let warm_s, w_suite, w_sol, r = run ~dir edited_registry in
  (* ground truth: a cold rebuild with the same edited registry *)
  let ref_s, c_suite, c_sol, _ = run ~dir:(fresh_dir ()) edited_registry in
  let identical =
    Array.to_list (Array.map (fun (e : Su.entry) -> (e.query, e.cost)) w_suite.entries)
    = Array.to_list
        (Array.map (fun (e : Su.entry) -> (e.query, e.cost)) c_suite.entries)
    && w_suite.per_target = c_suite.per_target
    && w_sol.assignment = c_sol.assignment
    && w_sol.total_cost = c_sol.total_cost
    && w_sol.invocations = c_sol.invocations
  in
  let speedup = ref_s /. Float.max 1e-9 warm_s in
  let reused_ratio =
    if r.Core.Incr.edges_total = 0 then 0.0
    else
      float_of_int r.Core.Incr.edges_reusable /. float_of_int r.Core.Incr.edges_total
  in
  Printf.printf
    "  %d targets x k=%d, %d edges; edited rule: %s\n\
    \  cold build (manifest write)  %7.3fs\n\
    \  cold rebuild after edit      %7.3fs\n\
    \  incremental rebuild          %7.3fs  (%.1fx, %d/%d edges warm, %d suite \
     entries reused)\n\
    \  byte-identical to cold       %b\n"
    (List.length targets) k r.Core.Incr.edges_total edited_rule cold_s ref_s warm_s
    speedup r.Core.Incr.edges_reusable r.Core.Incr.edges_total
    r.Core.Incr.entries_reused identical;
  detail "incremental"
    (Obs.Json.Obj
       [ ("targets", Obs.Json.Int (List.length targets));
         ("k", Obs.Json.Int k);
         ("edited_rule", Obs.Json.String edited_rule);
         ("cold_seconds", Obs.Json.Float cold_s);
         ("cold_after_edit_seconds", Obs.Json.Float ref_s);
         ("warm_edit_seconds", Obs.Json.Float warm_s);
         ("speedup", Obs.Json.Float speedup);
         ("edges_reused", Obs.Json.Int r.Core.Incr.edges_reusable);
         ("edges_recomputed", Obs.Json.Int r.Core.Incr.edges_recomputed);
         ("edges_total", Obs.Json.Int r.Core.Incr.edges_total);
         ("edges_reused_ratio", Obs.Json.Float reused_ratio);
         ("entries_reused", Obs.Json.Int r.Core.Incr.entries_reused);
         ("targets_reused", Obs.Json.Int r.Core.Incr.targets_reusable);
         ("identical", Obs.Json.Bool identical) ])

let parallel_bench ~full ~jobs_list =
  header "Parallel: worker-pool scaling of generation / edge matrix / validation";
  Printf.printf "  recommended domain count on this machine: %d\n%!"
    (Domain.recommended_domain_count ());
  let framework = fw () in
  let suite, _, _ = get_pair_suite ~full framework in
  let gen_rules = List.filteri (fun i _ -> i < 8) Optimizer.Rules.names in
  let gen_targets = List.map (fun r -> Su.Single r) gen_rules in
  (* Morsel-level scaling measures the executor itself, so it wants a
     table large enough that per-row kernel work dominates: a
     scalar-heavy scan+filter+compute+aggregate over lineitem. *)
  let xcat = Datagen.tpch ~scale:(if full then 0.05 else 0.02) () in
  let batch_plan =
    let module P = Optimizer.Physical in
    let module S = Relalg.Scalar in
    let module I = Relalg.Ident in
    let module A = Relalg.Aggregate in
    let li c = S.Col (I.make "l" c) in
    let fconst x = S.Const (Storage.Value.Float x) in
    let disc_price =
      S.Arith
        (S.Mul, li "l_extendedprice", S.Arith (S.Sub, fconst 1.0, li "l_discount"))
    in
    P.HashAggregate
      { keys = [ I.make "l" "l_returnflag" ];
        aggs =
          [ (I.make "g" "revenue", A.Sum (S.Col (I.make "l" "revenue")));
            (I.make "g" "n", A.CountStar) ];
        child =
          P.ComputeScalar
            { cols =
                [ (I.make "l" "l_returnflag", li "l_returnflag");
                  ( I.make "l" "revenue",
                    S.Arith
                      (S.Mul, disc_price, S.Arith (S.Add, fconst 1.0, li "l_tax"))
                  ) ];
              child =
                P.FilterOp
                  { pred = S.Cmp (S.Gt, li "l_quantity", S.int 2);
                    child = P.TableScan { table = "lineitem"; alias = "l" } } } }
  in
  let batch_rows =
    Storage.Table.row_count (Storage.Catalog.find_exn xcat "lineitem")
  in
  let batch_reps = 3 in
  let measure jobs =
    let pool = Par.Pool.create ~jobs () in
    let g = Prng.create 4321 in
    let t0 = now () in
    let gsuite = Su.generate ~extra_ops:2 ~pool framework g ~targets:gen_targets ~k:4 in
    let gen_s = now () -. t0 in
    let t1 = now () in
    let sol = C.topk ~pool framework suite in
    let matrix_s = now () -. t1 in
    let t2 = now () in
    let report = Core.Correctness.run ~pool framework gsuite (C.topk ~pool framework gsuite) in
    let validate_s = now () -. t2 in
    (* Batch-kernel scaling at this jobs level: executor throughput and
       morsels per worker (the scheduler's work granularity). *)
    Obs.Metrics.set_enabled true;
    Obs.Metrics.reset ();
    let t3 = now () in
    let bres = ref (Error "unrun") in
    for _ = 1 to batch_reps do
      bres := Executor.Exec.run ~pool xcat batch_plan
    done;
    let batch_s = now () -. t3 in
    let morsels =
      Obs.Metrics.counter_value (Obs.Metrics.counter "executor.batch.morsels")
    in
    Obs.Metrics.set_enabled false;
    let batch_rps =
      float_of_int (batch_rows * batch_reps) /. Float.max 1e-9 batch_s
    in
    let morsels_per_worker = float_of_int morsels /. float_of_int jobs in
    ( jobs, gen_s, matrix_s, validate_s, batch_rps, morsels_per_worker,
      (gsuite.Su.per_target, sol, report, !bres) )
  in
  let recommended = Domain.recommended_domain_count () in
  let runs = List.map measure jobs_list in
  let _, g1, m1, v1, _, _, out1 = List.hd runs in
  Printf.printf "  %4s | %10s %10s %10s | %11s %9s | %8s %10s\n" "jobs" "generate"
    "matrix" "validate" "batch r/s" "morsels/w" "speedup" "identical";
  hr ();
  let rows =
    List.map
      (fun (jobs, gs, ms, vs, brps, mpw, out) ->
        let speedup = (g1 +. m1 +. v1) /. Float.max 1e-9 (gs +. ms +. vs) in
        (* Determinism is the contract: every job count must produce the
           same suite, solution, validation report and executor result as
           jobs=1. *)
        let identical = out = out1 in
        (* On machines with fewer cores than jobs, the "speedup" measures
           oversubscription, not scaling — flag those rows so downstream
           consumers don't read them as regressions. *)
        let oversubscribed = jobs > recommended in
        Printf.printf
          "  %4d | %9.2fs %9.2fs %9.2fs | %11.0f %9.1f | %7.2fx %10b%s\n%!" jobs
          gs ms vs brps mpw speedup identical
          (if oversubscribed then
             Printf.sprintf "   [oversubscribed: only %d domain%s recommended]"
               recommended
               (if recommended = 1 then "" else "s")
           else "");
        (jobs, gs, ms, vs, brps, mpw, speedup, identical, oversubscribed))
      runs
  in
  (* Attribution: run the jobs-4 workload once untraced and once with
     metrics + the span profiler on. Two claims are checked downstream
     (bench-diff gates both): the pool's named buckets plus the
     profiled sequential remainder account for ~all of wall x jobs, and
     the telemetry itself is nearly free. *)
  let attr_jobs = 4 in
  let run_workload () =
    let pool = Par.Pool.create ~jobs:attr_jobs () in
    let g = Prng.create 4321 in
    let gsuite =
      Su.generate ~extra_ops:2 ~pool framework g ~targets:gen_targets ~k:4
    in
    ignore (C.topk ~pool framework suite);
    ignore (Core.Correctness.run ~pool framework gsuite (C.topk ~pool framework gsuite))
  in
  (* Untraced baseline: the jobs-4 row of the scaling runs above is the
     same three phases, so reuse its wall time instead of a fourth run
     (unless --force-jobs skipped jobs=4; then run it once here). *)
  let plain_s =
    List.fold_left
      (fun acc (jobs, gs, ms, vs, _, _, _, _, _) ->
        if jobs = attr_jobs then gs +. ms +. vs else acc)
      nan rows
  in
  let plain_s =
    if Float.is_nan plain_s then begin
      let t0 = now () in
      run_workload ();
      now () -. t0
    end
    else plain_s
  in
  (* Overhead of the span profiler alone (the claim under test): metrics
     stay off, so mutex-protected histogram updates from four domains do
     not pollute the measurement. *)
  Obs.Profile.enable ();
  let t0 = now () in
  run_workload ();
  let prof_s = now () -. t0 in
  Obs.Profile.disable ();
  (* Separate fully-instrumented run for the bucket readback (metrics +
     profiler — what `qtr profile --jobs 4` enables). *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Obs.Profile.enable ();
  let t1 = now () in
  run_workload ();
  let instr_s = now () -. t1 in
  Obs.Profile.disable ();
  Obs.Metrics.set_enabled false;
  let wlabel w = Printf.sprintf "w%d" w in
  let bucket name w =
    float_of_int (Obs.Metrics.counter_total ~label:(wlabel w) name)
  in
  let workers =
    List.init attr_jobs (fun w ->
        ( w,
          bucket "par.pool.busy_ns" w,
          bucket "par.pool.steal_ns" w,
          bucket "par.pool.idle_ns" w,
          bucket "par.pool.merge_wait_ns" w,
          bucket "par.pool.wall_ns" w,
          Obs.Metrics.counter_total ~label:(wlabel w) "par.pool.tasks" ))
  in
  let covered_pool =
    List.fold_left (fun acc (_, b, s, i, m, _, _) -> acc +. b +. s +. i +. m) 0.0
      workers
  in
  let wall_ns = instr_s *. 1e9 in
  (* Outside parallel maps only the calling domain runs (helpers do not
     exist); that remainder is covered by the profiler's spans on domain
     0. Time budget = wall x jobs, so helper non-existence during
     sequential stretches is the honest uncovered residue. *)
  let wall_in_maps = bucket "par.pool.wall_ns" 0 in
  let seq_rem = Float.max 0.0 (wall_ns -. wall_in_maps) in
  let coverage =
    Float.min 1.0
      ((covered_pool +. seq_rem) /. Float.max 1e-9 (wall_ns *. float_of_int attr_jobs))
  in
  let overhead = (prof_s -. plain_s) /. Float.max 1e-9 plain_s in
  Printf.printf
    "  attribution @ jobs=%d: untraced %.2fs, profiled %.2fs (overhead %+.1f%%), \
     fully instrumented %.2fs\n"
    attr_jobs plain_s prof_s (100.0 *. overhead) instr_s;
  List.iter
    (fun (w, b, s, i, m, wall, tasks) ->
      let p x = 100.0 *. x /. Float.max 1e-9 wall in
      Printf.printf
        "    w%d: busy %5.1f%% steal %4.1f%% idle %5.1f%% merge %4.1f%% (%d tasks)\n"
        w (p b) (p s) (p i) (p m) tasks)
    workers;
  Printf.printf "  named buckets cover %.1f%% of wall x %d domains\n%!"
    (100.0 *. coverage) attr_jobs;
  let attribution =
    Obs.Json.Obj
      [ ("jobs", Obs.Json.Int attr_jobs);
        ("untraced_seconds", Obs.Json.Float plain_s);
        ("profiled_seconds", Obs.Json.Float prof_s);
        ("instrumented_seconds", Obs.Json.Float instr_s);
        ("profile_overhead", Obs.Json.Float overhead);
        ("coverage", Obs.Json.Float coverage);
        ("wall_in_maps_ns", Obs.Json.Float wall_in_maps);
        ("sequential_ns", Obs.Json.Float seq_rem);
        ( "workers",
          Obs.Json.List
            (List.map
               (fun (w, b, s, i, m, wall, tasks) ->
                 Obs.Json.Obj
                   [ ("worker", Obs.Json.Int w);
                     ("busy_ns", Obs.Json.Float b);
                     ("steal_ns", Obs.Json.Float s);
                     ("idle_ns", Obs.Json.Float i);
                     ("merge_wait_ns", Obs.Json.Float m);
                     ("wall_ns", Obs.Json.Float wall);
                     ("tasks", Obs.Json.Int tasks) ])
               workers) );
        ( "profile_top",
          Obs.Json.List
            (List.filteri
               (fun i _ -> i < 8)
               (List.map
                  (fun (r : Obs.Profile.row) ->
                    Obs.Json.Obj
                      [ ("span", Obs.Json.String r.name);
                        ("count", Obs.Json.Int r.count);
                        ("self_ns", Obs.Json.Float r.self_ns);
                        ("total_ns", Obs.Json.Float r.total_ns) ])
                  (Obs.Profile.rows ()))) ) ]
  in
  detail "parallel"
    (Obs.Json.Obj
       [ ("recommended_domains", Obs.Json.Int recommended);
         ("attribution", attribution);
         ( "runs",
           Obs.Json.List
             (List.map
                (fun (jobs, gs, ms, vs, brps, mpw, speedup, identical, oversubscribed)
                ->
                  Obs.Json.Obj
                    [ ("jobs", Obs.Json.Int jobs);
                      ("generate_seconds", Obs.Json.Float gs);
                      ("matrix_seconds", Obs.Json.Float ms);
                      ("validate_seconds", Obs.Json.Float vs);
                      ("batch_rows_per_sec", Obs.Json.Float brps);
                      ("morsels_per_worker", Obs.Json.Float mpw);
                      ("speedup_vs_jobs1", Obs.Json.Float speedup);
                      ("recommended_domains", Obs.Json.Int recommended);
                      ("oversubscribed", Obs.Json.Bool oversubscribed);
                      ("identical_to_jobs1", Obs.Json.Bool identical) ])
                rows) ) ])

(* ------------------------------------------------------------------ *)
(* Executor: compiled plans vs interpretation; plan-result cache       *)
(* ------------------------------------------------------------------ *)

let execute_bench ~full =
  header "Execute: batch kernels vs row-compiled closures vs interpretation";
  let cat = Lazy.force catalog in
  (* Throughput wants enough rows that per-row work dominates per-plan
     setup; the shared bench catalog is deliberately tiny, so this
     experiment scans a larger one. *)
  let xscale = if full then 0.05 else 0.02 in
  let xcat = Datagen.tpch ~scale:xscale () in
  let module P = Optimizer.Physical in
  let module S = Relalg.Scalar in
  let module I = Relalg.Ident in
  let module A = Relalg.Aggregate in
  let module RS = Executor.Resultset in
  let li c = S.Col (I.make "l" c) in
  let oc c = S.Col (I.make "o" c) in
  let fconst x = S.Const (Storage.Value.Float x) in
  let lineitem = P.TableScan { table = "lineitem"; alias = "l" } in
  let orders = P.TableScan { table = "orders"; alias = "o" } in
  (* Scalar-heavy workloads: what plan compilation removes is the
     per-row cost of hashtable environment lookups and expression-tree
     dispatch, so the plans lean on wide predicates and arithmetic. *)
  let disc_price =
    S.Arith
      ( S.Mul,
        li "l_extendedprice",
        S.Arith (S.Sub, fconst 1.0, li "l_discount") )
  in
  let revenue =
    S.Arith (S.Mul, disc_price, S.Arith (S.Add, fconst 1.0, li "l_tax"))
  in
  (* Named sub-expressions are *inlined* below, so every use duplicates
     the whole subtree — exactly the deep scalar trees whose per-row
     interpretation the compiler is meant to eliminate. *)
  let charge =
    S.Arith (S.Mul, revenue, S.Arith (S.Sub, fconst 2.0, li "l_discount"))
  in
  let score =
    S.Arith
      ( S.Add,
        S.Arith (S.Mul, revenue, fconst 0.3),
        S.Arith
          ( S.Add,
            S.Arith (S.Mul, disc_price, fconst 0.5),
            S.Arith (S.Mul, charge, fconst 0.2) ) )
  in
  let score2 =
    S.Arith (S.Add, score, S.Arith (S.Mul, score, S.Arith (S.Mul, score, fconst 1.0e-12)))
  in
  (* Deep trees re-using whole named subtrees (blend mentions score2,
     score *and* disc_price; quad mentions blend and score again): the
     per-row paths re-evaluate every duplicated occurrence, the batch
     kernels share them per morsel. *)
  let blend =
    S.Arith
      ( S.Add,
        score2,
        S.Arith (S.Mul, charge, S.Arith (S.Sub, score, disc_price)) )
  in
  let quad =
    S.Arith
      ( S.Mul,
        blend,
        S.Arith (S.Add, fconst 1.0, S.Arith (S.Mul, score, fconst 1.0e-9)) )
  in
  let wide_filter =
    S.And
      ( S.Cmp (S.Gt, li "l_quantity", S.int 2),
        S.And
          ( S.Or
              ( S.Cmp (S.Lt, li "l_discount", fconst 0.07),
                S.IsNotNull (li "l_comment") ),
            S.And
              ( S.Or
                  ( S.Cmp (S.Ge, li "l_extendedprice", fconst 100.0),
                    S.Cmp (S.Ne, li "l_linenumber", S.int 0) ),
                S.And
                  ( S.Cmp (S.Lt, disc_price, fconst 1.0e9),
                    S.Or
                      ( S.Cmp (S.Gt, charge, fconst 0.0),
                        S.IsNull (li "l_comment") ) ) ) ) )
  in
  let plans =
    [ ( "scan+filter+compute+agg",
        P.HashAggregate
          { keys = [ I.make "l" "l_returnflag" ];
            aggs =
              [ (I.make "g" "revenue", A.Sum (S.Col (I.make "l" "revenue")));
                (I.make "g" "disc_price", A.Sum (S.Col (I.make "l" "disc_price")));
                (I.make "g" "score", A.Sum (S.Col (I.make "l" "score")));
                (I.make "g" "orders", A.CountStar);
                (I.make "g" "avg_qty", A.Avg (li "l_quantity")) ];
            child =
              P.ComputeScalar
                { (* projection: list everything the aggregate consumes *)
                  cols =
                    [ (I.make "l" "l_returnflag", li "l_returnflag");
                      (I.make "l" "l_quantity", li "l_quantity");
                      (I.make "l" "disc_price", disc_price);
                      (I.make "l" "revenue", revenue);
                      (I.make "l" "score", score2) ];
                  child = P.FilterOp { pred = wide_filter; child = lineitem } }
          } );
      ( "join+compute+filter+agg",
        P.HashAggregate
          { keys = [];
            aggs =
              [ (I.make "g" "margin", A.Sum (S.Col (I.make "j" "margin")));
                (I.make "g" "score", A.Sum (S.Col (I.make "j" "score")));
                (I.make "g" "avg_margin", A.Avg (S.Col (I.make "j" "margin")));
                (I.make "g" "n", A.CountStar) ];
            child =
              P.FilterOp
                { pred = S.Cmp (S.Gt, S.Col (I.make "j" "margin"), fconst 0.0);
                  child =
                    P.ComputeScalar
                      { cols =
                          [ ( I.make "j" "margin",
                              S.Arith (S.Sub, oc "o_totalprice", revenue) );
                            (I.make "j" "score", score2) ];
                        child =
                          P.FilterOp
                            { pred =
                                S.And
                                  ( wide_filter,
                                    S.Cmp (S.Ge, oc "o_totalprice", fconst 0.0)
                                  );
                              child =
                          P.HashJoin
                            { kind = Relalg.Logical.Inner;
                              left_keys = [ I.make "l" "l_orderkey" ];
                              right_keys = [ I.make "o" "o_orderkey" ];
                              residual =
                                S.Cmp (S.Ne, li "l_linenumber", S.int 0);
                              left = lineitem;
                              right = orders } } } } } );
      ( "scan+compute-heavy+agg",
        (* Scalar-dominated: no filter, no sort — nearly all the work is
           deep arithmetic over every lineitem row, which is where batch
           kernels (unboxed columns + per-morsel subtree sharing) pull
           furthest ahead of per-row closures. *)
        P.HashAggregate
          { keys = [ I.make "l" "l_returnflag" ];
            aggs =
              [ (I.make "g" "n", A.CountStar);
                (I.make "g" "revenue", A.Sum (S.Col (I.make "l" "revenue")));
                (I.make "g" "charge", A.Sum (S.Col (I.make "l" "charge")));
                (I.make "g" "score", A.Sum (S.Col (I.make "l" "score2")));
                (I.make "g" "blend", A.Sum (S.Col (I.make "l" "blend")));
                (I.make "g" "quad", A.Sum (S.Col (I.make "l" "quad"))) ];
            child =
              P.ComputeScalar
                { cols =
                    [ (I.make "l" "l_returnflag", li "l_returnflag");
                      (I.make "l" "revenue", revenue);
                      (I.make "l" "charge", charge);
                      (I.make "l" "score2", score2);
                      (I.make "l" "blend", blend);
                      (I.make "l" "quad", quad) ];
                  child = lineitem } } );
      ( "filter+compute+sort+limit",
        P.LimitOp
          { count = 100;
            child =
              P.SortOp
                { keys =
                    [ (I.make "l" "sortkey", Relalg.Logical.Desc);
                      (I.make "l" "l_orderkey", Relalg.Logical.Asc) ];
                  child =
                    P.ComputeScalar
                      { cols =
                          [ (I.make "l" "sortkey", score2);
                            (I.make "l" "l_orderkey", li "l_orderkey") ];
                        child =
                          P.FilterOp
                            { pred =
                                S.And
                                  ( S.Not (S.IsNull (li "l_shipdate")),
                                    wide_filter );
                              child = lineitem } } } } ) ]
  in
  (* Throughput is measured against *source* rows (base tables scanned),
     not output rows — an aggregate emitting 3 groups still chews through
     the whole of lineitem. *)
  let rec source_rows p =
    match p with
    | P.TableScan { table; _ } ->
      Storage.Table.row_count (Storage.Catalog.find_exn xcat table)
    | _ -> List.fold_left (fun acc c -> acc + source_rows c) 0 (P.children p)
  in
  let reps = if full then 12 else 6 in
  let get_ok what = function
    | Ok r -> r
    | Error e ->
      Printf.eprintf "execute bench: %s failed: %s\n%!" what e;
      exit 2
  in
  Printf.printf "  %-26s %10s | %11s %11s %11s | %8s %8s %6s\n" "plan"
    "src rows/rep" "interp r/s" "rowcomp r/s" "batch r/s" "vs intrp" "vs rowc"
    "agree";
  hr ();
  let per_plan = ref [] in
  let all_agree = ref true in
  let tot_rows = ref 0 and tot_isec = ref 0.0 and tot_rsec = ref 0.0 in
  let tot_csec = ref 0.0 in
  List.iter
    (fun (name, plan) ->
      let time_path what f =
        let t0 = now () in
        let r = get_ok (name ^ " (" ^ what ^ ")") (f ()) in
        for _ = 2 to reps do ignore (f ()) done;
        (now () -. t0, r)
      in
      let isec, ires =
        time_path "interpreted" (fun () -> Executor.Exec.run_interpreted xcat plan)
      in
      let rsec, rres =
        time_path "row-compiled" (fun () -> Executor.Exec.run_rowwise xcat plan)
      in
      let csec, cres = time_path "batch" (fun () -> Executor.Exec.run xcat plan) in
      let rows = source_rows plan in
      let agree = RS.equal_bag ires cres && RS.equal_bag rres cres in
      all_agree := !all_agree && agree;
      tot_rows := !tot_rows + (rows * reps);
      tot_isec := !tot_isec +. isec;
      tot_rsec := !tot_rsec +. rsec;
      tot_csec := !tot_csec +. csec;
      let rps sec = float_of_int (rows * reps) /. Float.max 1e-9 sec in
      let speedup = isec /. Float.max 1e-9 csec in
      let vs_rowc = rsec /. Float.max 1e-9 csec in
      Printf.printf "  %-26s %10d | %11.0f %11.0f %11.0f | %7.2fx %7.2fx %6b\n%!"
        name rows (rps isec) (rps rsec) (rps csec) speedup vs_rowc agree;
      per_plan :=
        ( name,
          Obs.Json.Obj
            [ ("source_rows_per_rep", Obs.Json.Int rows);
              ("output_rows", Obs.Json.Int (RS.row_count cres));
              ("interpreted_seconds", Obs.Json.Float isec);
              ("rowcompiled_seconds", Obs.Json.Float rsec);
              ("compiled_seconds", Obs.Json.Float csec);
              ("interpreted_rows_per_sec", Obs.Json.Float (rps isec));
              ("rowcompiled_rows_per_sec", Obs.Json.Float (rps rsec));
              ("compiled_rows_per_sec", Obs.Json.Float (rps csec));
              ("speedup", Obs.Json.Float speedup);
              ("batch_speedup_vs_rowcompiled", Obs.Json.Float vs_rowc);
              ("agree", Obs.Json.Bool agree) ] )
        :: !per_plan)
    plans;
  hr ();
  let overall = !tot_isec /. Float.max 1e-9 !tot_csec in
  let overall_irps = float_of_int !tot_rows /. Float.max 1e-9 !tot_isec in
  let overall_rrps = float_of_int !tot_rows /. Float.max 1e-9 !tot_rsec in
  let overall_crps = float_of_int !tot_rows /. Float.max 1e-9 !tot_csec in
  let overall_vs_rowc = !tot_rsec /. Float.max 1e-9 !tot_csec in
  Printf.printf
    "  overall: interpreter %.0f rows/s, row-compiled %.0f rows/s, batch %.0f \
     rows/s — %.2fx vs interpreter, %.2fx vs row-compiled (agree on all plans: %b)\n"
    overall_irps overall_rrps overall_crps overall overall_vs_rowc !all_agree;

  (* Result cache: run a small fault-injected validate + reduce with
     metrics on and read back the executor's cache counters. Reduction
     re-executes near-identical candidate plans, so a healthy cache shows
     a substantial hit rate here. *)
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Executor.Cache.clear ();
  let victim = "SelectMerge" in
  let fw_bug =
    F.create ~options:bench_options ~rules:(Core.Faults.inject victim) cat
  in
  let g = Prng.create 7 in
  let t0 = now () in
  let suite =
    Su.generate ~extra_ops:2 fw_bug g ~targets:[ Su.Single victim ] ~k:4
  in
  let report = Core.Correctness.run fw_bug suite (C.baseline fw_bug suite) in
  let triaged = Triage.Pipeline.triage fw_bug report in
  let cache_secs = now () -. t0 in
  let hits =
    Obs.Metrics.counter_value (Obs.Metrics.counter "executor.result_cache.hits")
  in
  let misses =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter "executor.result_cache.misses")
  in
  let compile_ns =
    Obs.Metrics.hist_mean (Obs.Metrics.histogram "executor.compile_ns")
  in
  Obs.Metrics.set_enabled false;
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Printf.printf
    "  result cache during validate+reduce (fault %s): %d hits / %d misses (%.0f%% hit rate), %d bug(s), %d reproducer(s), mean compile %.0f ns (%.1fs)\n"
    victim hits misses (100.0 *. hit_rate)
    (List.length report.bugs)
    (List.length triaged.cases)
    compile_ns cache_secs;
  detail "execute"
    (Obs.Json.Obj
       [ ("reps", Obs.Json.Int reps);
         ("scale", Obs.Json.Float xscale);
         ("agree", Obs.Json.Bool !all_agree);
         ("interpreted_rows_per_sec", Obs.Json.Float overall_irps);
         ("rowcompiled_rows_per_sec", Obs.Json.Float overall_rrps);
         ("compiled_rows_per_sec", Obs.Json.Float overall_crps);
         ("speedup", Obs.Json.Float overall);
         ("batch_speedup_vs_rowcompiled", Obs.Json.Float overall_vs_rowc);
         ("compile_ns_mean", Obs.Json.Float compile_ns);
         ( "result_cache",
           Obs.Json.Obj
             [ ("fault", Obs.Json.String victim);
               ("hits", Obs.Json.Int hits);
               ("misses", Obs.Json.Int misses);
               ("hit_rate", Obs.Json.Float hit_rate);
               ("bugs", Obs.Json.Int (List.length report.bugs));
               ("seconds", Obs.Json.Float cache_secs) ] );
         ("per_plan", Obs.Json.Obj (List.rev !per_plan)) ])

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrate                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Microbenchmarks (Bechamel): substrate throughput";
  let open Bechamel in
  let open Toolkit in
  let cat = Lazy.force catalog in
  let g = Prng.create 8 in
  let ctx = { Core.Arggen.g; cat } in
  let query = Core.Random_gen.generate ~min_ops:5 ~max_ops:6 ctx in
  let sql = Relalg.Sql_print.to_sql cat query in
  let plan =
    (Result.get_ok (Optimizer.Engine.optimize ~options:bench_options cat query)).plan
  in
  let tests =
    [ Test.make ~name:"optimize (budget 400)"
        (Staged.stage (fun () ->
             ignore (Optimizer.Engine.optimize ~options:bench_options cat query)));
      Test.make ~name:"ruleset (exploration only)"
        (Staged.stage (fun () ->
             ignore (Optimizer.Engine.ruleset ~options:bench_options cat query)));
      Test.make ~name:"execute plan"
        (Staged.stage (fun () -> ignore (Executor.Exec.run cat plan)));
      Test.make ~name:"sql print"
        (Staged.stage (fun () -> ignore (Relalg.Sql_print.to_sql cat query)));
      Test.make ~name:"sql parse"
        (Staged.stage (fun () -> ignore (Relalg.Sql_parser.parse cat sql)));
      Test.make ~name:"pattern instantiation"
        (Staged.stage (fun () ->
             ignore
               (Core.Query_gen.instantiate ctx
                  (Optimizer.Rules.find_exn "GbAggPullAboveJoin").pattern))) ]
  in
  let benchmark test =
    let instance = Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
    let results = Benchmark.all cfg [ instance ] test in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-34s %14.1f ns/run\n%!" name est
        | _ -> Printf.printf "  %-34s (no estimate)\n%!" name)
      ols
  in
  List.iter benchmark tests

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let json = List.mem "--json" args in
  let opt_of prefix a =
    let pl = String.length prefix in
    if String.length a > pl && String.sub a 0 pl = prefix then
      Some (String.sub a pl (String.length a - pl))
    else None
  in
  (* --force-jobs=1,2,4,8 — escape hatch overriding the parallel
     experiment's default jobs ladder (e.g. to probe beyond the
     recommended domain count, or to shorten CI). *)
  let jobs_list =
    match List.find_map (opt_of "--force-jobs=") args with
    | None -> [ 1; 2; 4 ]
    | Some spec -> (
      match
        List.map
          (fun tok ->
            match int_of_string_opt (String.trim tok) with
            | Some j when j >= 1 -> j
            | _ ->
              Printf.eprintf "--force-jobs: bad jobs list %S\n" spec;
              exit 2)
          (String.split_on_char ',' spec)
      with
      | [] ->
        Printf.eprintf "--force-jobs: empty jobs list\n";
        exit 2
      | l -> l)
  in
  (* --cache-dir=DIR — warm-start persistence shared with `qtr
     --cache-dir`: the execute experiment's result cache and the matrix
     experiment's edge costs spill there and reload on the next run. *)
  let disk =
    match List.find_map (opt_of "--cache-dir=") args with
    | None -> None
    | Some dir ->
      let dc = Storage.Diskcache.create ~dir () in
      Executor.Cache.set_disk
        (Some
           ( dc,
             Printf.sprintf "cat-%x"
               (Storage.Catalog.content_hash (Lazy.force catalog)) ));
      Some dc
  in
  let args =
    List.filter
      (fun a ->
        a <> "--full" && a <> "--json"
        && opt_of "--force-jobs=" a = None
        && opt_of "--cache-dir=" a = None)
      args
  in
  let which = match args with [] -> [ "all" ] | l -> l in
  let rec run name =
    match name with
    | "fig8" -> fig8 ~full
    | "fig9" | "fig10" -> fig9_10 ~full
    | "fig11" -> fig11 ~full
    | "fig12" -> fig12 ~full
    | "fig13" -> fig13 ~full
    | "fig14" -> fig14 ~full
    | "matching" -> ext_matching ()
    | "correctness" -> ext_correctness ()
    | "explore" -> explore_bench ()
    | "matrix" -> matrix_bench ~full ~disk
    | "incremental" -> incremental_bench ~full ()
    | "parallel" -> parallel_bench ~full ~jobs_list
    | "execute" -> execute_bench ~full
    | "reduce" -> reduce_bench ()
    | "discover" -> discover_bench ~disk ()
    | "verify" -> verify_bench ()
    | "micro" -> micro ()
    | "all" ->
      (* `execute` goes first: see the pacing note in [timed]. *)
      List.iter timed
        [ "execute"; "fig8"; "fig9"; "fig11"; "fig12"; "fig13"; "fig14";
          "matching"; "correctness"; "discover"; "verify"; "explore"; "matrix";
          "incremental"; "parallel"; "reduce"; "micro" ]
    | other ->
      Printf.eprintf
        "unknown experiment %s (expected fig8..fig14, matching, correctness, \
         explore, matrix, incremental, parallel, execute, reduce, discover, verify, \
         micro, all)\n"
        other;
      exit 2
  and timed name =
    (* Isolate experiments from each other's heap footprint: the
       hash-consing and property memos grow monotonically and would
       otherwise keep every tree the matrix section ever explored live
       (~300 MB of retained memos), taxing whatever allocation-heavy
       experiment runs next. Dropping the memos is safe — ids are never
       reused, so stale id-keyed caches can miss but never alias.

       This does NOT make the sections fully order-independent on
       OCaml 5.1: after the matrix section's very large heap collapses,
       the major GC's global work accounting is left so far in credit
       that later sections complete almost no major cycles, and their
       large allocations (batch column arrays especially) land on fresh
       kernel pages instead of reused heap — `execute` measured 2-3x
       slower after `matrix` than standalone, with the lost time in
       system time, identical allocation counts, and zero major
       collections. Until the runtime's pacing is fixed (5.2 reworked
       it), the `all` ladder and CI run `execute` before the heap-heavy
       sections. *)
    cached_pair_suite := None;
    Relalg.Hashcons.clear ();
    Relalg.Props.clear ();
    Gc.compact ();
    let t0 = now () in
    run name;
    if name <> "all" then timings := (name, now () -. t0) :: !timings
  in
  Printf.printf
    "Reproduction of 'A Framework for Testing Query Transformation Rules' (SIGMOD'09)\n";
  Printf.printf "TPC-H scale %.3f; optimizer budget %d trees; %s parameters\n" scale
    bench_options.max_trees
    (if full then "paper-scale (--full)" else "quick (use --full for paper-scale)");
  List.iter timed which;
  if json then write_json ~full "BENCH_results.json"
