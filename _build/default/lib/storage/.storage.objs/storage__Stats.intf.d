lib/storage/stats.mli: Format Schema Value
