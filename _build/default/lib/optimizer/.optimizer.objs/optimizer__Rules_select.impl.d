lib/optimizer/rules_select.ml: Ident List Logical Pattern Props Relalg Rule Scalar
