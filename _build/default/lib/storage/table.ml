type t = { schema : Schema.t; rows : Value.t array array; stats : Stats.t }

let create (schema : Schema.t) rows =
  let arity = Schema.arity schema in
  let cols = Array.of_list schema.columns in
  Array.iteri
    (fun ri row ->
      if Array.length row <> arity then
        invalid_arg
          (Printf.sprintf "Table.create(%s): row %d has arity %d, expected %d"
             schema.name ri (Array.length row) arity);
      Array.iteri
        (fun ci v ->
          let c = cols.(ci) in
          match Value.type_of v with
          | None ->
            if not c.Schema.nullable then
              invalid_arg
                (Printf.sprintf "Table.create(%s): NULL in NOT NULL column %s"
                   schema.name c.Schema.col_name)
          | Some ty ->
            if not (Datatype.equal ty c.Schema.col_type) then
              invalid_arg
                (Printf.sprintf
                   "Table.create(%s): type mismatch in column %s: %s vs %s"
                   schema.name c.Schema.col_name (Datatype.to_string ty)
                   (Datatype.to_string c.Schema.col_type)))
        row)
    rows;
  { schema; rows; stats = Stats.compute schema rows }

let row_count t = Array.length t.rows

let column_values t name =
  match Schema.column_index t.schema name with
  | None -> raise Not_found
  | Some i -> Array.map (fun row -> row.(i)) t.rows

let pp fmt t =
  Format.fprintf fmt "@[<v>%s(%s): %d rows" t.schema.name
    (String.concat ", " (Schema.column_names t.schema))
    (row_count t);
  let limit = min 20 (row_count t) in
  for i = 0 to limit - 1 do
    Format.fprintf fmt "@,(%s)"
      (String.concat ", " (Array.to_list (Array.map Value.to_sql t.rows.(i))))
  done;
  if row_count t > limit then Format.fprintf fmt "@,...";
  Format.fprintf fmt "@]"
