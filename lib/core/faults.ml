open Relalg
module L = Logical
module S = Scalar
module R = Optimizer.Rule
module Pat = Optimizer.Pattern

(* Every buggy variant carries ~version:"fault": it shares its victim's
   name and pattern, so only the version tag separates their content
   fingerprints — injecting a fault must invalidate warm-start caches
   keyed on rule content exactly like any other body edit. *)

(* Pushes every pushable conjunct below BOTH sides of a left outer join —
   pushing onto the NULL-padded right side is unsound (it drops padding
   rows the filter would have kept or keeps rows it should not). *)
let buggy_push_below_loj =
  R.make ~version:"fault" "PushSelectBelowLeftOuterJoin"
    (Pat.Op (L.KFilter, [ Pat.Op (L.KJoin L.LeftOuter, [ Pat.Any; Pat.Any ]) ]))
    (fun cat t ->
      match t with
      | L.Filter { pred; child = L.Join ({ kind = L.LeftOuter; left; right; _ } as j) } ->
        let lids = Props.output_idents cat left in
        let rids = Props.output_idents cat right in
        let pl, rest = R.split_by_scope pred lids in
        let pr, rest = R.split_by_scope rest rids in
        if S.equal pl S.true_ && S.equal pr S.true_ then []
        else
          let wrap pred child =
            if S.equal pred S.true_ then child else L.Filter { pred; child }
          in
          [ wrap rest (L.Join { j with left = wrap pl left; right = wrap pr right }) ]
      | _ -> [])

(* Rewrites Filter(LOJ) to Filter(Join) without checking that the filter
   is null-rejecting on the padded side. *)
let buggy_simplify_loj =
  R.make ~version:"fault" "SimplifyLeftOuterJoin"
    (Pat.Op (L.KFilter, [ Pat.Op (L.KJoin L.LeftOuter, [ Pat.Any; Pat.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred; child = L.Join ({ kind = L.LeftOuter; _ } as j) } ->
        [ L.Filter { pred; child = L.Join { j with kind = L.Inner } } ]
      | _ -> [])

(* Merges two stacked filters but forgets the inner predicate. *)
let buggy_select_merge =
  R.make ~version:"fault" "SelectMerge"
    (Pat.Op (L.KFilter, [ Pat.Op (L.KFilter, [ Pat.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Filter { pred = p1; child = L.Filter { pred = _p2; child } } ->
        [ L.Filter { pred = p1; child } ]
      | _ -> [])

(* Pushes a group-by below a join without requiring the join to be on a
   key of the other side: per-group fan-out corrupts the aggregates. *)
let buggy_gbagg_push =
  R.make ~version:"fault" "GbAggPushBelowJoin"
    (Pat.Op (L.KGroupBy, [ Pat.Op (L.KJoin L.Inner, [ Pat.Any; Pat.Any ]) ]))
    (fun cat t ->
      match t with
      | L.GroupBy
          { keys; aggs; child = L.Join { kind = L.Inner; pred; left = x; right = y } } ->
        let xids = Props.output_idents cat x in
        let yids = Props.output_idents cat y in
        let key_set = Ident.Set.of_list keys in
        let kx = List.filter (fun k -> Ident.Set.mem k xids) keys in
        let ky = List.filter (fun k -> Ident.Set.mem k yids) keys in
        let aggs_read_x_only =
          List.for_all
            (fun (_, a) -> Ident.Set.subset (Aggregate.columns a) xids)
            aggs
        in
        let pred_x_cols = Ident.Set.inter (S.columns pred) xids in
        (* Missing: Props.has_key_within cat y ky *)
        if
          aggs_read_x_only
          && Ident.Set.subset pred_x_cols key_set
          && kx <> []
          && List.length kx + List.length ky = List.length keys
        then
          match Props.schema cat t with
          | Error _ -> []
          | Ok out_cols ->
            [ R.identity_project out_cols
                (L.Join
                   { kind = L.Inner;
                     pred;
                     left = L.GroupBy { keys = kx; aggs; child = x };
                     right = y }) ]
        else []
      | _ -> [])

let faults =
  [ ( "PushSelectBelowLeftOuterJoin",
      buggy_push_below_loj,
      "pushes filter conjuncts below the NULL-padded side of a left outer join" );
    ( "SimplifyLeftOuterJoin",
      buggy_simplify_loj,
      "turns LOJ into inner join without the null-rejection precondition" );
    ("SelectMerge", buggy_select_merge, "drops the inner filter's predicate");
    ( "GbAggPushBelowJoin",
      buggy_gbagg_push,
      "pushes group-by below a join without the key precondition" ) ]

let names = List.map (fun (n, _, _) -> n) faults

let find name =
  match List.find_opt (fun (n, _, _) -> String.equal n name) faults with
  | Some f -> f
  | None -> invalid_arg ("Faults: no buggy variant for rule " ^ name)

let inject name =
  let _, buggy, _ = find name in
  List.map
    (fun (r : R.t) -> if String.equal r.name name then buggy else r)
    Optimizer.Rules.all

let describe name =
  let _, _, d = find name in
  d
