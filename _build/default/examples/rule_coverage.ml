(* Rule coverage (paper §3): for every transformation rule in the
   registry, generate a SQL test case that exercises it using the
   pattern-based generator, and compare the trial counts against the
   stochastic RANDOM baseline. The emitted SQL is a ready-to-run coverage
   suite for the optimizer.

     dune exec examples/rule_coverage.exe            -- trials table
     dune exec examples/rule_coverage.exe -- --sql   -- also print the SQL *)

open Storage

let () =
  let show_sql = Array.exists (( = ) "--sql") Sys.argv in
  let cat = Datagen.tpch ~scale:0.002 () in
  let fw =
    Core.Framework.create
      ~options:{ Optimizer.Engine.default_options with max_trees = 400 }
      cat
  in
  Printf.printf "%-34s %8s %9s  %s\n" "rule" "RANDOM" "PATTERN" "ops";
  print_endline (String.make 64 '-');
  let covered = ref 0 in
  List.iteri
    (fun i name ->
      let g = Prng.create (100 + i) in
      let random =
        match Core.Query_gen.random_for_rules ~max_trials:100 fw g [ name ] with
        | Some r -> string_of_int r.trials
        | None -> ">100"
      in
      match Core.Query_gen.for_rule ~max_trials:100 fw g name with
      | None -> Printf.printf "%-34s %8s %9s\n" name random "FAILED"
      | Some { query; trials } ->
        incr covered;
        Printf.printf "%-34s %8s %9d  %d\n" name random trials
          (Relalg.Logical.size query);
        if show_sql then
          Printf.printf "    %s\n" (Relalg.Sql_print.to_sql cat query))
    Optimizer.Rules.names;
  Printf.printf "\ncoverage: %d/%d rules have a generated test case\n" !covered
    Optimizer.Rules.count;
  (* Pair coverage for a sample of rule pairs (paper §3.2). *)
  print_newline ();
  print_endline "Sample rule-pair coverage (pattern composition):";
  let g = Prng.create 7 in
  List.iter
    (fun (r1, r2) ->
      match Core.Query_gen.for_pair ~max_trials:80 fw g (r1, r2) with
      | Some { query; trials } ->
        Printf.printf "  %-28s + %-28s trials=%-3d ops=%d\n" r1 r2 trials
          (Relalg.Logical.size query)
      | None -> Printf.printf "  %-28s + %-28s FAILED\n" r1 r2)
    [ ("JoinCommute", "GbAggPullAboveJoin");
      ("JoinLeftOuterJoinAssoc", "JoinCommute");
      ("SelectMerge", "PushSelectBelowJoin");
      ("UnionAllCommute", "DistinctElimOnKey") ]
