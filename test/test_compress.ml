(* Test-suite generation, the compression algorithms, the exact matching
   variant, and correctness validation with fault injection. *)
module F = Core.Framework
module Su = Core.Suite
module C = Core.Compress

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let cat = Storage.Datagen.tpch ~scale:0.001 ()

let quick_options = { Optimizer.Engine.default_options with max_trees = 400 }

(* One shared suite for the compression tests (built once: generation is
   the expensive part). *)
let fw = F.create ~options:quick_options cat
let g = Storage.Prng.create 7

let rules6 =
  [ "JoinCommute"; "PushSelectBelowJoin"; "SelectMerge"; "MergeSelectIntoJoin";
    "JoinAssocLeft"; "SimplifyLeftOuterJoin" ]

let suite6 : Su.t =
  Su.generate fw g ~targets:(List.map (fun r -> Su.Single r) rules6) ~k:3

let test_targets_helpers () =
  check int_t "nC2 pairs" 10 (List.length (Su.all_pairs [ "a"; "b"; "c"; "d"; "e" ]));
  check (Alcotest.string) "pair name" "a+b" (Su.target_name (Su.Pair ("a", "b")));
  check (Alcotest.list Alcotest.string) "rules of pair" [ "a"; "b" ]
    (Su.rules_of (Su.Pair ("a", "b")))

let test_suite_shape () =
  check int_t "six targets" 6 (List.length suite6.targets);
  check bool_t "entries non-empty" true (Array.length suite6.entries > 0);
  (* every generated query for a target exercises it *)
  List.iter
    (fun (target, indices) ->
      let rules = Su.rules_of target in
      List.iter
        (fun i ->
          check bool_t (Su.target_name target ^ " exercised") true
            (List.for_all
               (fun r -> F.SSet.mem r suite6.entries.(i).ruleset)
               rules))
        indices)
    suite6.per_target;
  (* per-target indices are distinct *)
  List.iter
    (fun (_, indices) ->
      check int_t "distinct per target" (List.length indices)
        (List.length (List.sort_uniq compare indices)))
    suite6.per_target

let test_covering_superset () =
  List.iter
    (fun (target, indices) ->
      let cov = Su.covering suite6 target in
      List.iter
        (fun i -> check bool_t "generated covered" true (List.mem i cov))
        indices)
    suite6.per_target

let test_edge_cost_service () =
  let ec = C.edge_costs fw suite6 in
  check int_t "starts at zero" 0 (C.invocations_used ec);
  let c1 = C.edge_cost ec ~target_idx:0 ~query_idx:0 in
  check int_t "one invocation" 1 (C.invocations_used ec);
  let c1' = C.edge_cost ec ~target_idx:0 ~query_idx:0 in
  check int_t "memoized" 1 (C.invocations_used ec);
  check bool_t "same value" true (c1 = c1');
  (* monotonicity: edge cost >= node cost *)
  check bool_t "edge >= node" true (c1 >= suite6.entries.(0).cost -. 1e-9)

let solution_covers (sol : C.solution) (suite : Su.t) =
  List.for_all
    (fun (target, picks) ->
      let available = List.length (Su.covering suite target) in
      let expected = min suite.k available in
      List.length picks >= expected
      && List.length (List.sort_uniq compare (List.map fst picks)) = List.length picks)
    sol.assignment

let baseline_sol = C.baseline fw suite6
let smc_sol = C.smc fw suite6
let topk_sol = C.topk fw suite6
let topk_mono_sol = C.topk ~exploit_monotonicity:true fw suite6

(* Warm-start determinism: a run that loads every edge from a spilled
   matrix must produce the same solution, the same logical invocation
   count — and do (almost) no optimizer work. *)
let test_warm_matrix_identical () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qtr-test-matrix-%d" (Unix.getpid ()))
  in
  let dc = Storage.Diskcache.create ~dir () in
  let i0 = F.invocations fw in
  let cold = C.topk ~disk:dc fw suite6 in
  let i1 = F.invocations fw in
  check bool_t "cold run spills the matrix" true
    (Storage.Diskcache.entries dc ~ns:"matrix" > 0);
  let warm = C.topk ~disk:dc fw suite6 in
  let i2 = F.invocations fw in
  check bool_t "identical assignment" true (cold.assignment = warm.assignment);
  check bool_t "identical cost" true (cold.total_cost = warm.total_cost);
  check int_t "identical logical invocations" cold.invocations warm.invocations;
  check bool_t "matches the disk-free solution" true
    (topk_sol.assignment = warm.assignment
    && topk_sol.total_cost = warm.total_cost);
  check bool_t "cold run did optimizer work" true (i1 - i0 > 0);
  check int_t "warm run did none" 0 (i2 - i1)

(* Regression: the spilled-matrix key used to hash only rule NAMES, so
   editing a rule's body under an unchanged name kept the old key and a
   warm run served the stale matrix. The key now hashes rule-content
   fingerprints: same names + edited body must miss and recompute
   everything, while an identical registry still warm-starts fully. *)
let test_stale_matrix_on_rule_edit () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qtr-test-stale-%d" (Unix.getpid ()))
  in
  let nt = List.length suite6.targets and nq = Array.length suite6.entries in
  let fill ec =
    for ti = 0 to nt - 1 do
      for q = 0 to nq - 1 do
        ignore (C.edge_cost ec ~target_idx:ti ~query_idx:q)
      done
    done
  in
  let dc = Storage.Diskcache.create ~dir () in
  let ec1 = C.edge_costs ~disk:dc fw suite6 in
  fill ec1;
  C.save_matrix ec1;
  check int_t "seed run computed everything" (nt * nq) (C.computed_edges ec1);
  (* control: the identical registry warm-starts fully *)
  let ec2 = C.edge_costs ~disk:dc fw suite6 in
  fill ec2;
  check int_t "identical registry computes nothing" 0 (C.computed_edges ec2);
  check int_t "identical registry served warm" (nt * nq) (C.warm_served_edges ec2);
  (* the regression: same rule names, one body edited -> new fingerprint
     -> the spilled matrix must NOT be served *)
  let fw_edit =
    F.create ~options:quick_options
      ~rules:(Optimizer.Rules.simulate_edit "JoinCommute")
      cat
  in
  let ec3 = C.edge_costs ~disk:dc fw_edit suite6 in
  fill ec3;
  check int_t "edited body serves nothing stale" 0 (C.warm_served_edges ec3);
  check int_t "edited body recomputes everything" (nt * nq) (C.computed_edges ec3)

let test_baseline () =
  check bool_t "covers" true
    (List.for_all
       (fun (t, picks) ->
         List.length picks = List.length (List.assoc t suite6.per_target))
       baseline_sol.assignment);
  check bool_t "positive cost" true (baseline_sol.total_cost > 0.0)

let test_smc () =
  check bool_t "smc covers" true (solution_covers smc_sol suite6);
  check bool_t "smc total consistent" true
    (abs_float (smc_sol.total_cost -. C.solution_cost suite6 smc_sol) < 1e-6)

let test_topk () =
  check bool_t "topk covers" true (solution_covers topk_sol suite6);
  (* TOPK picks per target the k cheapest edges: verify directly. *)
  let ec = C.edge_costs fw suite6 in
  let targets = Array.of_list suite6.targets in
  List.iter
    (fun (target, picks) ->
      let ti = ref (-1) in
      Array.iteri (fun i t -> if t = target then ti := i) targets;
      let all =
        List.map
          (fun q -> C.edge_cost ec ~target_idx:!ti ~query_idx:q)
          (Su.covering suite6 target)
        |> List.sort compare
      in
      let chosen = List.sort compare (List.map snd picks) in
      let rec prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs', y :: ys' -> abs_float (x -. y) < 1e-9 && prefix xs' ys'
        | _ -> false
      in
      check bool_t (Su.target_name target ^ " picks cheapest") true (prefix chosen all))
    topk_sol.assignment

let test_shared_vs_per_call_edges () =
  (* Shared and per-call edges are each upper bounds on the untruncated
     Cost(q, not R) but are incomparable to each other once the budget
     truncates (the shared all-rules frontier differs from the not-R
     frontier). What IS guaranteed, truncated or not: a shared edge is
     the minimum over a subset of the very closure that produced the node
     cost, so edge >= node always; both services stay finite on
     logical-only targets; and the abstract edge accounting matches. *)
  let shared = C.edge_costs fw suite6 in
  let per_call = C.edge_costs ~share_exploration:false fw suite6 in
  let nt = List.length suite6.targets in
  let nq = Array.length suite6.entries in
  for ti = 0 to nt - 1 do
    for q = 0 to nq - 1 do
      let cs = C.edge_cost shared ~target_idx:ti ~query_idx:q in
      let cp = C.edge_cost per_call ~target_idx:ti ~query_idx:q in
      check bool_t
        (Printf.sprintf "edge (%d,%d) both finite" ti q)
        true
        (Float.is_finite cs && Float.is_finite cp);
      check bool_t
        (Printf.sprintf "edge (%d,%d) shared %.3f >= node" ti q cs)
        true
        (cs >= suite6.entries.(q).cost -. 1e-6)
    done
  done;
  check int_t "same edge accounting" (C.invocations_used per_call)
    (C.invocations_used shared)

let test_monotonicity_sound_and_cheaper () =
  (* Figure 14's two claims: identical solution quality, fewer optimizer
     invocations. *)
  check bool_t "same quality" true
    (abs_float (topk_sol.total_cost -. topk_mono_sol.total_cost) < 1e-6);
  check bool_t
    (Printf.sprintf "fewer invocations (%d <= %d)" topk_mono_sol.invocations
       topk_sol.invocations)
    true
    (topk_mono_sol.invocations <= topk_sol.invocations)

let test_compression_beats_baseline () =
  (* Figure 11's claim: shared execution is dramatically cheaper. *)
  check bool_t "topk <= baseline" true (topk_sol.total_cost <= baseline_sol.total_cost);
  check bool_t "smc <= baseline (singletons)" true
    (smc_sol.total_cost <= baseline_sol.total_cost)

let test_matching () =
  let m = Core.Matching.solve fw suite6 in
  (* queries distinct across the whole assignment *)
  let all_picks = List.concat_map (fun (_, ps) -> List.map fst ps) m.assignment in
  check int_t "no sharing" (List.length all_picks)
    (List.length (List.sort_uniq compare all_picks));
  List.iter
    (fun (_, picks) -> check bool_t "at most k" true (List.length picks <= suite6.k))
    m.assignment;
  check bool_t "cost positive" true (m.total_cost > 0.0);
  (* No-sharing optimum cannot beat sharing... but must not exceed
     BASELINE, whose assignment is one feasible no-sharing solution
     whenever per-target suites are disjoint. *)
  let disjoint =
    let all = List.concat_map snd suite6.per_target in
    List.length all = List.length (List.sort_uniq compare all)
  in
  if disjoint && m.complete then
    check bool_t "optimal <= baseline" true
      (m.total_cost <= baseline_sol.total_cost +. 1e-6)

(* ---------------- correctness + faults ---------------- *)

let test_correctness_clean () =
  let report = Core.Correctness.run fw suite6 topk_sol in
  check int_t "no bugs on sound rules" 0 (List.length report.bugs);
  check int_t "no errors" 0 (List.length report.errors);
  check bool_t "checked everything" true (report.pairs_checked > 0);
  check bool_t "skip accounting consistent" true
    (report.skipped_identical <= report.pairs_checked)

(* Deterministic fault detection: a handcrafted query known to distinguish
   the buggy rewrite on the micro data, run through the very pipeline a
   user would run (suite -> solution -> correctness report). *)
let micro = Storage.Datagen.micro ()

let fault_query victim =
  let open Relalg in
  let module L = Logical in
  let module S = Scalar in
  let id = Ident.make in
  let t1 = L.Get { table = "t1"; alias = "x" } in
  let t2 = L.Get { table = "t2"; alias = "y" } in
  let t3 = L.Get { table = "t3"; alias = "z" } in
  let b = id "x" "b" and a = id "x" "a" and cc = id "x" "c" in
  let d = id "y" "d" and e = id "y" "e" and f = id "z" "f" in
  let loj = L.Join { kind = L.LeftOuter; pred = S.eq (S.col b) (S.col d); left = t1; right = t2 } in
  match victim with
  | "PushSelectBelowLeftOuterJoin" | "SimplifyLeftOuterJoin" ->
    (* Keeps NULL-padded rows: not null-rejecting on the right side. *)
    L.Filter { pred = S.IsNull (S.col e); child = loj }
  | "SelectMerge" ->
    L.Filter
      { pred = S.Cmp (S.Ge, S.col a, S.int 0);
        child = L.Filter { pred = S.eq (S.col cc) (S.Const (Storage.Value.Str "x")); child = t1 } }
  | "GbAggPushBelowJoin" ->
    (* t3 has no key: the correct rule refuses, the buggy one fans out. *)
    L.GroupBy
      { keys = [ b; f ];
        aggs = [ (id "g" "s", Aggregate.Sum (S.col a)) ];
        child = L.Join { kind = L.Inner; pred = S.eq (S.col b) (S.col f); left = t1; right = t3 } }
  | _ -> invalid_arg victim

let fault_detected victim =
  let rules = Core.Faults.inject victim in
  let fw_b = F.create ~rules micro in
  let query = fault_query victim in
  let ruleset = Result.get_ok (F.ruleset fw_b query) in
  check bool_t (victim ^ " exercised by crafted query") true (F.SSet.mem victim ruleset);
  let cost = Result.get_ok (F.cost fw_b query) in
  let s : Su.t =
    { k = 1;
      targets = [ Su.Single victim ];
      entries = [| { Su.query; ruleset; cost } |];
      per_target = [ (Su.Single victim, [ 0 ]) ] }
  in
  let sol = C.baseline fw_b s in
  let report = Core.Correctness.run fw_b s sol in
  check int_t (victim ^ " errors") 0 (List.length report.errors);
  report.bugs <> []

let test_fault_select_merge () =
  check bool_t "buggy SelectMerge caught" true (fault_detected "SelectMerge")

let test_fault_gbagg_push () =
  check bool_t "buggy GbAggPushBelowJoin caught" true
    (fault_detected "GbAggPushBelowJoin")

let test_fault_push_below_loj () =
  check bool_t "buggy PushSelectBelowLeftOuterJoin caught" true
    (fault_detected "PushSelectBelowLeftOuterJoin")

let test_fault_simplify_loj () =
  check bool_t "buggy SimplifyLeftOuterJoin caught" true
    (fault_detected "SimplifyLeftOuterJoin")

(* The same pipeline with the stochastic generator also surfaces bugs —
   the paper's end-to-end story (generation is seeded; a few seeds give
   the generator a fair chance). *)
let test_fault_found_by_generation () =
  let victim = "SelectMerge" in
  let rules = Core.Faults.inject victim in
  let fw_b = F.create ~options:quick_options ~rules cat in
  let found =
    List.exists
      (fun seed ->
        let gb = Storage.Prng.create seed in
        let s = Su.generate fw_b gb ~targets:[ Su.Single victim ] ~k:6 ~extra_ops:2 in
        let sol = C.baseline fw_b s in
        (Core.Correctness.run fw_b s sol).bugs <> [])
      [ 99; 100; 101 ]
  in
  check bool_t "generated suite catches buggy SelectMerge" true found

let test_faults_registry () =
  check int_t "four faults" 4 (List.length Core.Faults.names);
  List.iter
    (fun n ->
      check bool_t (n ^ " described") true (String.length (Core.Faults.describe n) > 0);
      check int_t (n ^ " replaces, not adds") Optimizer.Rules.count
        (List.length (Core.Faults.inject n)))
    Core.Faults.names;
  Alcotest.check_raises "unknown fault"
    (Invalid_argument "Faults: no buggy variant for rule Nope") (fun () ->
      ignore (Core.Faults.inject "Nope"))

let suite =
  [ ( "core.suite",
      [ Alcotest.test_case "target helpers" `Quick test_targets_helpers;
        Alcotest.test_case "suite shape" `Slow test_suite_shape;
        Alcotest.test_case "covering superset" `Slow test_covering_superset ] );
    ( "core.compress",
      [ Alcotest.test_case "edge cost service" `Slow test_edge_cost_service;
        Alcotest.test_case "shared vs per-call edges" `Slow
          test_shared_vs_per_call_edges;
        Alcotest.test_case "baseline" `Slow test_baseline;
        Alcotest.test_case "smc" `Slow test_smc;
        Alcotest.test_case "topk picks cheapest" `Slow test_topk;
        Alcotest.test_case "monotonicity sound and cheaper" `Slow
          test_monotonicity_sound_and_cheaper;
        Alcotest.test_case "warm matrix identical" `Slow
          test_warm_matrix_identical;
        Alcotest.test_case "stale matrix on rule edit" `Slow
          test_stale_matrix_on_rule_edit;
        Alcotest.test_case "compression beats baseline" `Slow
          test_compression_beats_baseline ] );
    ("core.matching", [ Alcotest.test_case "exact no-sharing variant" `Slow test_matching ]);
    ( "core.correctness",
      [ Alcotest.test_case "clean run finds no bugs" `Slow test_correctness_clean;
        Alcotest.test_case "fault: SelectMerge" `Slow test_fault_select_merge;
        Alcotest.test_case "fault: GbAggPushBelowJoin" `Slow test_fault_gbagg_push;
        Alcotest.test_case "fault: PushSelectBelowLOJ" `Slow test_fault_push_below_loj;
        Alcotest.test_case "fault: SimplifyLOJ" `Slow test_fault_simplify_loj;
        Alcotest.test_case "fault found by generation" `Slow
          test_fault_found_by_generation;
        Alcotest.test_case "faults registry" `Quick test_faults_registry ] ) ]
