(** Columnar batch ("morsel") compilation — the executor's default hot
    path since the vectorization rework.

    Scalars compile to {!kernel}s evaluating a whole morsel of rows into
    a [Value.t array] column at a time (one tight loop per expression
    node instead of a closure call per row per node), with a fused
    unboxed [float array] fast path for arithmetic/comparison subtrees
    over all-float columns. Plans compile to the same executable shape
    as {!Compile.t}, but filter / projection / join-probe / per-group
    aggregation are scheduled morsel-wise through a {!Par.Pool} with
    task-order merges, so output is byte-identical for every jobs count.

    Observable behaviour matches {!Eval} and {!Compile.scalar} exactly —
    values, three-valued logic, and errors: kernels track a per-row
    first-error slot, [AND]/[OR] only evaluate their right side over the
    non-short-circuited selection, and materialization raises the lowest
    erroring row's exception, which is what a sequential row scan would
    have raised. The QCheck differential suite holds all three paths to
    value *and* error-message agreement. *)

open Storage

type ctx
(** Evaluation context for one morsel: the rows plus per-row error
    slots shared by all expressions of one operator. *)

val make_ctx : Value.t array array -> ctx

type kernel = ctx -> int array -> Value.t array
(** [kernel ctx sel] fills its output column at the selected row
    indices (ascending); rows outside [sel] or already erroring hold
    unspecified values. Errors are recorded, not raised. *)

val scalar : Relalg.Ident.t array -> Relalg.Scalar.t -> kernel
(** Compile an expression against a row layout. Raises
    {!Compile.Compile_error} on unknown columns, at compile time. *)

val eval_column : kernel -> Value.t array array -> Value.t array
(** Evaluate over one whole morsel and materialize: the column, or the
    lowest erroring row's exception. *)

val full_sel : int -> int array

val check : ctx -> unit
(** Raise the lowest erroring row's recorded exception, if any. *)

val make_agg : Relalg.Ident.t array -> Relalg.Aggregate.t ->
  Value.t array array -> Value.t
(** Batch aggregate over one group's member rows; SUM/AVG fold unboxed
    accumulators over mono-typed numeric columns. Agrees with
    {!Relops.make_agg} on values and errors. *)

val default_morsel_rows : int
(** 1024 — small enough to stay cache-resident, large enough to
    amortize per-morsel setup. *)

val plan :
  ?pool:Par.Pool.t ->
  ?morsel_rows:int ->
  Storage.Catalog.t ->
  Optimizer.Physical.t ->
  Compile.t
(** Compile a plan to morsel-scheduled batch kernels. [pool] defaults
    to {!Par.Pool.sequential} — executor-level parallelism must be opted
    into, because campaign layers already parallelize across queries and
    nesting domain pools oversubscribes. Results and errors are
    identical for every [pool] size and every [morsel_rows] ≥ 1. *)
