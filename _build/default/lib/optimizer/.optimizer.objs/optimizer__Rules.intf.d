lib/optimizer/rules.mli: Rule
