lib/core/matching.ml: Array Compress Float List Stdlib Suite
