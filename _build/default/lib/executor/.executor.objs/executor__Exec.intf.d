lib/executor/exec.mli: Optimizer Relalg Resultset Storage
