lib/core/query_gen.ml: Arggen Framework Fun List Logical Optimizer Option Prng Random_gen Relalg Storage
