(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the framework (data generation, random
    query generation, argument selection) draws from an explicit generator
    state so that experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val pick_arr : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample g n xs] picks [min n (length xs)] distinct elements, in random
    order. *)
