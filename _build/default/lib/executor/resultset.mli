(** Query results and the bag comparison used for correctness validation
    (§2.3: "check if the results of executing the two plans are
    identical"). *)

type t = {
  cols : Relalg.Ident.t array;
  rows : Storage.Value.t array list;
}

val row_count : t -> int

val compare_rows : Storage.Value.t array -> Storage.Value.t array -> int
(** Lexicographic total order on rows ({!Storage.Value.compare_total} per
    column; NULL first). *)

val normalize : t -> t
(** Rows sorted by {!compare_rows} — the canonical form. *)

val equal_bag : t -> t -> bool
(** Same column identifiers in the same order, and the same multiset of
    rows. All equivalent plans for a query produce the same column list,
    so a mismatch of columns simply reports inequality. *)

val first_difference :
  t -> t -> (Storage.Value.t array option * Storage.Value.t array option) option
(** After normalization, the first position where the two results diverge
    (for bug reports); [None] when the results are bag-equal. *)

val pp : Format.formatter -> t -> unit
(** Header and at most 20 rows. *)
