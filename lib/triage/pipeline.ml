module F = Core.Framework
module L = Relalg.Logical
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* Triage: reduce + dedup                                              *)
(* ------------------------------------------------------------------ *)

type case = {
  target : Core.Suite.target;
  signature : Signature.t;
  original : L.t;
  reduced : L.t;
  divergence : Divergence.t;
  stats : Reduce.stats;
  dup_count : int;
}

type report = {
  cases : case list;
  duplicates : int;
  irreducible : (Core.Correctness.bug * string) list;
  checks : int;
  executions : int;
}

let bugs_c = Obs.Metrics.counter "triage.bugs"
let dedup_c = Obs.Metrics.counter "triage.dedup_hits"

let triage ?max_checks ?(pool = Par.Pool.sequential) fw
    (correctness : Core.Correctness.report) =
  Obs.Trace.with_span "triage.run"
    ~args:[ ("bugs", J.Int (List.length correctness.bugs)) ]
  @@ fun () ->
  (* Each bug reduces independently (its own oracle, pure framework
     calls), so reduction fans out; the signature dedup below is
     order-sensitive and runs on the calling domain over the reductions
     in bug order, making the report identical for any pool size. *)
  let reduced =
    Par.Pool.map_list pool
      (fun (bug : Core.Correctness.bug) ->
        Obs.Metrics.incr bugs_c;
        let oracle = Oracle.create fw bug.target in
        let r = Reduce.run ?max_checks oracle bug.query in
        (bug, r, Oracle.checks oracle, Oracle.executions oracle))
      correctness.bugs
  in
  let by_sig : (string, case) Hashtbl.t = Hashtbl.create 16 in
  let order : string list ref = ref [] in
  let irreducible = ref [] in
  let checks = ref 0 and executions = ref 0 in
  List.iter
    (fun ( (bug : Core.Correctness.bug),
           (r : (L.t * Divergence.t * Reduce.stats, string) result),
           bug_checks,
           bug_execs ) ->
      (match r with
      | Error e -> irreducible := (bug, e) :: !irreducible
      | Ok (reduced, divergence, stats) ->
        let signature = Signature.make bug.target divergence.kind reduced in
        let key = Signature.key signature in
        (match Hashtbl.find_opt by_sig key with
        | Some existing ->
          Obs.Metrics.incr dedup_c;
          (* Keep the smaller reproducer for the signature. *)
          let keep =
            if stats.reduced_size < existing.stats.reduced_size then
              { target = bug.target; signature; original = bug.query; reduced;
                divergence; stats; dup_count = existing.dup_count + 1 }
            else { existing with dup_count = existing.dup_count + 1 }
          in
          Hashtbl.replace by_sig key keep
        | None ->
          Hashtbl.replace by_sig key
            { target = bug.target; signature; original = bug.query; reduced;
              divergence; stats; dup_count = 1 };
          order := key :: !order));
      checks := !checks + bug_checks;
      executions := !executions + bug_execs)
    reduced;
  let cases = List.rev_map (fun k -> Hashtbl.find by_sig k) !order in
  { cases;
    duplicates = List.fold_left (fun n c -> n + c.dup_count - 1) 0 cases;
    irreducible = List.rev !irreducible;
    checks = !checks;
    executions = !executions }

(* ------------------------------------------------------------------ *)
(* Corpus persistence                                                  *)
(* ------------------------------------------------------------------ *)

let meta_of_case ~catalog ~budget ~fault (c : case) : Corpus.meta =
  { id = Signature.key c.signature;
    target = Core.Suite.target_name c.target;
    kind = c.divergence.kind;
    shape = c.signature.shape;
    fault;
    catalog;
    budget;
    original_nodes = c.stats.original_size;
    reduced_nodes = c.stats.reduced_size;
    steps = c.stats.steps;
    checks = c.stats.checks;
    expected_rows = c.divergence.expected_rows;
    actual_rows = c.divergence.actual_rows;
    rhs_sql = None }

let save_corpus ~dir ~catalog ~budget ?fault cat (r : report) =
  let ( let* ) = Result.bind in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest ->
      let* path = Corpus.save ~dir cat (meta_of_case ~catalog ~budget ~fault c) c.reduced in
      go (path :: acc) rest
  in
  go [] r.cases

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Reproduced of Divergence.t
  | Clean
  | Not_fired
  | Failed of string

type replayed = { case : Corpus.case; outcome : outcome }

let replay ?(reinject = false) ?budget ?(pool = Par.Pool.sequential) ~dir () =
  let ( let* ) = Result.bind in
  let* cases = Corpus.load ~dir in
  (* Build every needed catalog up front (in case order) so the table is
     read-only by the time cases fan out across domains. *)
  let catalogs : (string, Storage.Catalog.t) Hashtbl.t = Hashtbl.create 4 in
  let key_of = function
    | Corpus.Micro -> "micro"
    | Corpus.Tpch s -> Printf.sprintf "tpch:%g" s
  in
  List.iter
    (fun (case : Corpus.case) ->
      let key = key_of case.meta.catalog in
      if not (Hashtbl.mem catalogs key) then
        Hashtbl.replace catalogs key (Corpus.catalog_of_spec case.meta.catalog))
    cases;
  let catalog_for spec = Hashtbl.find catalogs (key_of spec) in
  let replay_one (case : Corpus.case) =
    let outcome =
      match case.meta.rhs_sql with
      | Some rhs_sql -> (
        (* Differential (discovery) case: the divergence is between two
           queries, not two rule sets — [reinject] is irrelevant. *)
        let cat = catalog_for case.meta.catalog in
        match
          ( Relalg.Sql_parser.parse cat case.sql,
            Relalg.Sql_parser.parse cat rhs_sql )
        with
        | Error e, _ -> Failed ("parse lhs: " ^ e)
        | _, Error e -> Failed ("parse rhs: " ^ e)
        | Ok lhs, Ok rhs -> (
          match
            Differential.check ~site:"replay"
              ~budget:(Option.value budget ~default:case.meta.budget)
              cat lhs rhs
          with
          | Ok (Some d) -> Reproduced d
          | Ok None -> Clean
          | Error e -> Failed e))
      | None -> (
      match Corpus.target_of_name case.meta.target with
      | Error e -> Failed e
      | Ok target -> (
        let cat = catalog_for case.meta.catalog in
        let rules =
          match (reinject, case.meta.fault) with
          | true, Some fault -> Core.Faults.inject fault
          | _ -> Optimizer.Rules.all
        in
        let options =
          { Optimizer.Engine.default_options with
            max_trees = Option.value budget ~default:case.meta.budget }
        in
        let fw = F.create ~options ~rules cat in
        match Relalg.Sql_parser.parse cat case.sql with
        | Error e -> Failed ("parse: " ^ e)
        | Ok q -> (
          match Oracle.check (Oracle.create ~site:"replay" fw target) q with
          | Oracle.Diverges d -> Reproduced d
          | Oracle.Agrees -> Clean
          | Oracle.Rule_not_fired -> Not_fired
          | Oracle.Invalid e -> Failed e)))
    in
    { case; outcome }
  in
  Ok (Par.Pool.map_list pool replay_one cases)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let divergence_json (d : Divergence.t) =
  J.Obj
    [ ("kind", J.String (Divergence.kind_name d.kind));
      ("expected_rows", J.Int d.expected_rows);
      ("actual_rows", J.Int d.actual_rows);
      ("missing_rows", J.Int d.diff.missing_count);
      ("extra_rows", J.Int d.diff.extra_count);
      ("detail", J.String d.detail) ]

let case_json (c : case) =
  J.Obj
    [ ("id", J.String (Signature.key c.signature));
      ("target", J.String (Core.Suite.target_name c.target));
      ("divergence", divergence_json c.divergence);
      ("original_nodes", J.Int c.stats.original_size);
      ("reduced_nodes", J.Int c.stats.reduced_size);
      ("steps", J.Int c.stats.steps);
      ("checks", J.Int c.stats.checks);
      ("budget_exhausted", J.Bool c.stats.budget_exhausted);
      ("duplicates", J.Int (c.dup_count - 1)) ]

let report_json (r : report) =
  J.Obj
    [ ("cases", J.List (List.map case_json r.cases));
      ("duplicates", J.Int r.duplicates);
      ("irreducible", J.Int (List.length r.irreducible));
      ("oracle_checks", J.Int r.checks);
      ("plan_executions", J.Int r.executions) ]

let outcome_name = function
  | Reproduced _ -> "reproduced"
  | Clean -> "clean"
  | Not_fired -> "rule_not_fired"
  | Failed _ -> "failed"

let replay_json (rs : replayed list) =
  let reproduced =
    List.length (List.filter (fun r -> match r.outcome with Reproduced _ -> true | _ -> false) rs)
  in
  J.Obj
    [ ( "cases",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 ([ ("id", J.String r.case.meta.id);
                    ("target", J.String r.case.meta.target);
                    ("outcome", J.String (outcome_name r.outcome)) ]
                 @
                 match r.outcome with
                 | Reproduced d -> [ ("divergence", divergence_json d) ]
                 | Failed e -> [ ("error", J.String e) ]
                 | Clean | Not_fired -> []))
             rs) );
      ("total", J.Int (List.length rs));
      ("reproduced", J.Int reproduced) ]

let pp_case fmt (c : case) =
  Format.fprintf fmt
    "@[<v2>%a (x%d): %d -> %d nodes in %d step(s), %d oracle check(s)%s@,%a@]"
    Signature.pp c.signature c.dup_count c.stats.original_size c.stats.reduced_size
    c.stats.steps c.stats.checks
    (if c.stats.budget_exhausted then " [budget exhausted]" else "")
    L.pp c.reduced

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "@[<v>triage: %d distinct bug(s), %d duplicate(s) merged, %d irreducible; %d \
     oracle checks, %d plan executions"
    (List.length r.cases) r.duplicates
    (List.length r.irreducible)
    r.checks r.executions;
  List.iter (fun c -> Format.fprintf fmt "@,%a" pp_case c) r.cases;
  List.iter
    (fun ((b : Core.Correctness.bug), e) ->
      Format.fprintf fmt "@,irreducible %s on query #%d: %s"
        (Core.Suite.target_name b.target) b.query_index e)
    r.irreducible;
  Format.fprintf fmt "@]"

let pp_replayed fmt (r : replayed) =
  Format.fprintf fmt "%-48s %-12s" r.case.meta.id (outcome_name r.outcome);
  match r.outcome with
  | Reproduced d -> Format.fprintf fmt " %a" Divergence.pp d
  | Failed e -> Format.fprintf fmt " %s" e
  | Clean | Not_fired -> ()
