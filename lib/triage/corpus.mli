(** The persistent regression corpus: one minimized reproducer per bug
    signature, stored as replayable SQL plus JSON metadata.

    Layout: a flat directory with ["<id>.sql"] (the reproducer, in the
    dialect of {!Relalg.Sql_print}, round-trippable through
    {!Relalg.Sql_parser}) and ["<id>.json"] (metadata) per case, where
    [id] is the {!Signature.key}. Saving a case whose signature already
    exists overwrites it — dedup across runs is the id scheme itself. *)

type catalog_spec = Micro | Tpch of float  (** scale factor *)

val catalog_of_spec : catalog_spec -> Storage.Catalog.t
(** Regenerate the (deterministic) database a case was found on. *)

val spec_name : catalog_spec -> string

type meta = {
  id : string;  (** {!Signature.key} of the case *)
  target : string;  (** {!Core.Suite.target_name} — rules to disable *)
  kind : Divergence.kind;
  shape : int;
  fault : string option;
      (** the {!Core.Faults} variant that was injected when the bug was
          found, so a replay can reconstruct the buggy registry *)
  catalog : catalog_spec;
  budget : int;  (** optimizer exploration budget (trees) *)
  original_nodes : int;
  reduced_nodes : int;
  steps : int;
  checks : int;
  expected_rows : int;
  actual_rows : int;
  rhs_sql : string option;
      (** present on differential (discovery) cases: SQL of the
          claimed-equivalent right-hand side. Replay then compares the
          two queries' executions ({!Differential.check}) instead of a
          rule-off plan — the divergence is intrinsic to the pair, so
          such a case must reproduce in both replay modes. *)
}

type case = { meta : meta; sql : string }

val target_of_name : string -> (Core.Suite.target, string) result
(** Inverse of {!Core.Suite.target_name} (rule names never contain '+'). *)

val save :
  dir:string -> Storage.Catalog.t -> meta -> Relalg.Logical.t ->
  (string, string) result
(** Write the case (creating [dir] if needed); returns the metadata path.
    The catalog is needed to render the SQL. *)

val load : dir:string -> (case list, string) result
(** Every case in the directory, sorted by id. Errors on the first
    unreadable or inconsistent case. *)
