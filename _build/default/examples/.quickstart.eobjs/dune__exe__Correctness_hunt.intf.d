examples/correctness_hunt.mli:
