type event =
  | Begin of { name : string; cat : string option; args : (string * Json.t) list }
  | End of { name : string }
  | Instant of { name : string; cat : string option; args : (string * Json.t) list }
  | Counter of { name : string; values : (string * float) list }

type consumer = {
  cname : string;
  handle : ts_ns:int64 -> tid:int -> event -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

(* The consumer list is read on every span entry, so it lives in an
   atomic the hot path loads without a lock; mutation (rare: enabling a
   sink or the profiler) goes through [consumers_lock]. *)
let consumers : consumer list Atomic.t = Atomic.make []
let consumers_lock = Mutex.create ()
let open_spans = Atomic.make 0

let enabled () = Atomic.get consumers <> []
let depth () = Atomic.get open_spans

let flush () = List.iter (fun c -> c.flush ()) (Atomic.get consumers)

let remove_consumer cname =
  let removed =
    Mutex.protect consumers_lock @@ fun () ->
    let gone, kept = List.partition (fun c -> c.cname = cname) (Atomic.get consumers) in
    Atomic.set consumers kept;
    if kept = [] then Atomic.set open_spans 0;
    gone
  in
  List.iter (fun c -> c.close ()) removed

let add_consumer c =
  remove_consumer c.cname;
  Mutex.protect consumers_lock @@ fun () ->
  Atomic.set consumers (Atomic.get consumers @ [ c ])

let consumer_installed cname =
  List.exists (fun c -> c.cname = cname) (Atomic.get consumers)

let shutdown () =
  let all =
    Mutex.protect consumers_lock @@ fun () ->
    let cs = Atomic.get consumers in
    Atomic.set consumers [];
    Atomic.set open_spans 0;
    cs
  in
  List.iter (fun c -> c.close ()) all

(* A crash mid-campaign must not lose the tail of the trace — that is
   the part that explains the crash. Consumers flush per line already;
   the uncaught-exception hook covers anything they still buffer. *)
let () =
  at_exit shutdown;
  Printexc.set_uncaught_exception_handler (fun e bt ->
      (try flush () with _ -> ());
      Printexc.default_uncaught_exception_handler e bt)

(* ------------------------------------------------------------------ *)
(* The JSONL writer: the Chrome trace-event sink, as one consumer       *)
(* ------------------------------------------------------------------ *)

let writer_name = "jsonl-writer"

(* Serializes whole JSONL lines: spans emitted from parallel workers
   interleave per line, never mid-line. The per-domain [tid] field keeps
   them separable in trace viewers. *)
let make_writer ~write ~flush ~close =
  let t0 = Clock.now_ns () in
  let lock = Mutex.create () in
  let handle ~ts_ns ~tid ev =
    let ts = Clock.ns_to_us (Clock.ns_between t0 ts_ns) in
    let base ~ph ~name ~cat =
      [ ("name", Json.String name);
        ("cat", Json.String (Option.value cat ~default:"qtr"));
        ("ph", Json.String ph);
        ("ts", Json.Float ts);
        ("pid", Json.Int 1);
        ("tid", Json.Int tid) ]
    in
    let with_args fields = function
      | [] -> fields
      | args -> fields @ [ ("args", Json.Obj args) ]
    in
    let fields =
      match ev with
      | Begin { name; cat; args } -> with_args (base ~ph:"B" ~name ~cat) args
      | End { name } -> base ~ph:"E" ~name ~cat:None
      | Instant { name; cat; args } -> with_args (base ~ph:"i" ~name ~cat) args
      | Counter { name; values } ->
        with_args
          (base ~ph:"C" ~name ~cat:None)
          (List.map (fun (k, v) -> (k, Json.Float v)) values)
    in
    let buf = Buffer.create 128 in
    Json.to_buffer buf (Json.Obj fields);
    Buffer.add_char buf '\n';
    Mutex.protect lock (fun () -> write (Buffer.contents buf))
  in
  { cname = writer_name; handle; flush; close }

let stop () = remove_consumer writer_name

let start path =
  let oc = open_out path in
  (* Flush per line: a crash loses at most the line being written, not
     the whole tail of the trace. *)
  add_consumer
    (make_writer
       ~write:(fun line ->
         output_string oc line;
         Stdlib.flush oc)
       ~flush:(fun () -> Stdlib.flush oc)
       ~close:(fun () -> close_out oc))

let start_buffer buf =
  add_consumer
    (make_writer ~write:(Buffer.add_string buf) ~flush:ignore ~close:ignore)

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let dispatch cs ev =
  let ts_ns = Clock.now_ns () in
  let tid = (Domain.self () :> int) + 1 in
  List.iter (fun c -> c.handle ~ts_ns ~tid ev) cs

let with_span ?cat ?(args = []) name f =
  match Atomic.get consumers with
  | [] -> f ()
  | cs ->
    dispatch cs (Begin { name; cat; args });
    Atomic.incr open_spans;
    Fun.protect
      ~finally:(fun () ->
        Atomic.decr open_spans;
        (* Consumers may have been stopped while the span was open. *)
        match Atomic.get consumers with
        | [] -> ()
        | cs -> dispatch cs (End { name }))
      f

let instant ?cat ?(args = []) name =
  match Atomic.get consumers with
  | [] -> ()
  | cs -> dispatch cs (Instant { name; cat; args })

let counter name values =
  match Atomic.get consumers with
  | [] -> ()
  | cs -> dispatch cs (Counter { name; values })
